//! Cross-crate integration: execution modes, IAT models, spec persistence,
//! and the real-CSV loader feeding the pipeline.

use faasrail::core::smirnov;
use faasrail::prelude::*;
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use faasrail::trace::MINUTES_PER_DAY;

fn setup() -> (faasrail::trace::Trace, WorkloadPool) {
    (
        gen_azure(&AzureTraceConfig::small(300)),
        WorkloadPool::build_modelled(&CostModel::default_calibration()),
    )
}

#[test]
fn spec_json_roundtrip_replays_identically() {
    let (trace, pool) = setup();
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(20, 5.0)).unwrap();
    let json = spec.to_json();
    let restored = ExperimentSpec::from_json(&json).unwrap();
    assert_eq!(spec, restored);
    assert_eq!(generate_requests(&spec, 11), generate_requests(&restored, 11));
}

#[test]
fn all_iat_models_supported_in_both_modes() {
    let (trace, pool) = setup();
    for iat in [IatModel::Poisson, IatModel::UniformRandom, IatModel::Equidistant] {
        let mut cfg = ShrinkRayConfig::new(10, 5.0);
        cfg.iat = iat;
        let (spec, _) = shrink(&trace, &pool, &cfg).unwrap();
        let reqs = generate_requests(&spec, 1);
        assert!(!reqs.is_empty(), "{iat:?} spec mode");

        let scfg = SmirnovConfig {
            num_invocations: 2_000,
            rate_rps: 50.0,
            iat,
            mapping: MappingConfig::default(),
            seed: 1,
        };
        let (sreqs, _) = smirnov::generate(&trace, &pool, &scfg);
        assert_eq!(sreqs.len(), 2_000, "{iat:?} smirnov mode");
    }
}

#[test]
fn minute_range_mode_preserves_window_verbatim() {
    let (trace, pool) = setup();
    // Find the trace's busiest minute and replay a window around it.
    let agg = trace.aggregate_minutes();
    let (peak_minute, _) = faasrail::stats::timeseries::peak(&agg).unwrap();
    let start = peak_minute.saturating_sub(5).min(MINUTES_PER_DAY - 10);
    let mut cfg = ShrinkRayConfig::new(10, 50.0);
    cfg.time_scaling = TimeScaling::MinuteRange { start, experiment_minutes: 10 };
    let (spec, _) = shrink(&trace, &pool, &cfg).unwrap();
    assert_eq!(spec.duration_minutes, 10);
    // The scaled window must still have its peak where the trace had it.
    let window: Vec<u64> = agg[start..start + 10].to_vec();
    let spec_minutes = spec.aggregate_minutes();
    let want_peak = faasrail::stats::timeseries::peak(&window).unwrap().0;
    let got_peak = faasrail::stats::timeseries::peak(&spec_minutes).unwrap().0;
    assert_eq!(want_peak, got_peak, "peak minute moved within the window");
}

#[test]
fn loader_feeds_pipeline() {
    // A miniature hand-written "real" Azure CSV day runs through the whole
    // shrink ray.
    let minutes_hdr: String = {
        let cols: Vec<String> = (1..=MINUTES_PER_DAY).map(|m| m.to_string()).collect();
        format!("HashOwner,HashApp,HashFunction,Trigger,{}", cols.join(","))
    };
    let row = |owner: &str, func: &str, everyminute: u64| {
        let cols: Vec<String> = (0..MINUTES_PER_DAY).map(|_| everyminute.to_string()).collect();
        format!("{owner},app1,{func},http,{}", cols.join(","))
    };
    let inv = format!(
        "{minutes_hdr}\n{}\n{}\n{}\n",
        row("o1", "f1", 50),
        row("o1", "f2", 5),
        row("o1", "f3", 1)
    );
    let dur = "H,H,H,Average\no1,app1,f1,25\no1,app1,f2,480\no1,app1,f3,9000\n";
    let mem = "H,H,S,AverageAllocatedMb\no1,app1,100,256\n";
    let trace =
        faasrail::trace::loader::load_azure_day(inv.as_bytes(), dur.as_bytes(), mem.as_bytes())
            .expect("load");
    assert_eq!(trace.functions.len(), 3);
    faasrail::trace::validate(&trace).expect("valid");

    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, report) = shrink(&trace, &pool, &ShrinkRayConfig::new(10, 1.0)).expect("shrink");
    assert!(spec.total_requests() > 0);
    assert!(report.mapping.weighted_rel_error < 0.15);
    // 60/min trace peak scaled to ≤ 60/min budget at 1 rps... and the
    // 50:5:1 mix must survive roughly intact in the busiest entries.
    assert!(spec.peak_per_minute() <= 60);
}

#[test]
fn smirnov_trace_roundtrips_through_json() {
    let (trace, pool) = setup();
    let cfg = SmirnovConfig {
        num_invocations: 1_000,
        rate_rps: 20.0,
        iat: IatModel::Poisson,
        mapping: MappingConfig::default(),
        seed: 3,
    };
    let (reqs, _) = smirnov::generate(&trace, &pool, &cfg);
    let json = serde_json::to_string(&reqs).unwrap();
    let back: RequestTrace = serde_json::from_str(&json).unwrap();
    assert_eq!(reqs, back);
}

//! Helpers shared by the root integration tests.
//!
//! Each `tests/*.rs` binary that says `mod common;` compiles its own copy,
//! so every item is `#[allow(dead_code)]` — not every binary uses every
//! helper.

use faasrail::gateway::{
    Gateway, GatewayConfig, GatewayHandle, GatewayStats, ReactorGateway, ReactorHandle,
};
use faasrail::loadgen::Backend;
use faasrail::telemetry::EventSink;
use std::net::SocketAddr;
use std::sync::Arc;

/// Which gateway implementation a test spins up: the thread-per-connection
/// server or the epoll reactor. The external contract (routes, status
/// codes, shedding, fault injection, span semantics) is identical, so the
/// e2e suites run against both.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
#[allow(dead_code)]
pub enum ServerMode {
    Threaded,
    Reactor,
}

#[allow(dead_code)]
impl ServerMode {
    pub const BOTH: [ServerMode; 2] = [ServerMode::Threaded, ServerMode::Reactor];
}

/// A spawned gateway of either mode, exposing the handle surface the tests
/// actually use.
#[allow(dead_code)]
pub enum AnyHandle {
    Threaded(GatewayHandle),
    Reactor(ReactorHandle),
}

#[allow(dead_code)]
impl AnyHandle {
    pub fn addr(&self) -> SocketAddr {
        match self {
            AnyHandle::Threaded(h) => h.addr(),
            AnyHandle::Reactor(h) => h.addr(),
        }
    }

    pub fn stats(&self) -> &GatewayStats {
        match self {
            AnyHandle::Threaded(h) => h.stats(),
            AnyHandle::Reactor(h) => h.stats(),
        }
    }

    pub fn stop(self) {
        match self {
            AnyHandle::Threaded(h) => h.stop(),
            AnyHandle::Reactor(h) => h.stop(),
        }
    }
}

/// Bind and spawn a loopback gateway in the given mode.
#[allow(dead_code)]
pub fn spawn_server(mode: ServerMode, backend: Arc<dyn Backend>, cfg: GatewayConfig) -> AnyHandle {
    spawn_server_with_sink(mode, backend, cfg, None)
}

/// Like [`spawn_server`], with an optional server-side trace sink.
#[allow(dead_code)]
pub fn spawn_server_with_sink(
    mode: ServerMode,
    backend: Arc<dyn Backend>,
    cfg: GatewayConfig,
    sink: Option<Arc<dyn EventSink>>,
) -> AnyHandle {
    match mode {
        ServerMode::Threaded => {
            let mut g = Gateway::bind("127.0.0.1:0", backend, cfg).expect("bind gateway");
            if let Some(s) = sink {
                g = g.with_trace_sink(s);
            }
            AnyHandle::Threaded(g.spawn())
        }
        ServerMode::Reactor => {
            let mut g =
                ReactorGateway::bind("127.0.0.1:0", backend, cfg).expect("bind reactor gateway");
            if let Some(s) = sink {
                g = g.with_trace_sink(s);
            }
            AnyHandle::Reactor(g.spawn())
        }
    }
}

/// A Prometheus metric (or label) name: `[a-zA-Z_:][a-zA-Z0-9_:]*`.
#[allow(dead_code)]
pub fn is_metric_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

/// Scan one `{label="value",...}` body with escape-aware value parsing.
/// Returns the parsed `(name, unescaped_value)` pairs or panics with
/// `line` in the message. Inside a quoted value only `\\`, `\"` and `\n`
/// are legal escapes (text format 0.0.4); raw `"` ends the value and raw
/// newlines cannot occur (the caller iterates lines).
#[allow(dead_code)]
fn parse_label_set(inner: &str, line: &str) -> Vec<(String, String)> {
    let mut pairs = Vec::new();
    let mut chars = inner.chars().peekable();
    loop {
        // Label name up to '='.
        let mut name = String::new();
        while let Some(&c) = chars.peek() {
            if c == '=' {
                break;
            }
            name.push(c);
            chars.next();
        }
        if name.is_empty() && chars.peek().is_none() {
            break; // empty label set `{}` or a trailing comma — both legal
        }
        assert!(is_metric_name(&name), "bad label name {name:?}: {line}");
        assert_eq!(chars.next(), Some('='), "label without '=': {line}");
        assert_eq!(chars.next(), Some('"'), "label value must be quoted: {line}");
        let mut value = String::new();
        loop {
            match chars.next() {
                Some('"') => break,
                Some('\\') => match chars.next() {
                    Some('\\') => value.push('\\'),
                    Some('"') => value.push('"'),
                    Some('n') => value.push('\n'),
                    other => panic!("illegal escape \\{other:?} in label value: {line}"),
                },
                Some(c) => value.push(c),
                None => panic!("unterminated label value: {line}"),
            }
        }
        pairs.push((name, value));
        match chars.next() {
            Some(',') => continue,
            None => break,
            Some(c) => panic!("junk {c:?} after label value: {line}"),
        }
    }
    pairs
}

/// Assert `text` is well-formed Prometheus text exposition format 0.0.4:
/// only `# HELP`/`# TYPE` comments, every sample parseable as
/// `name[{label="value",...}] value` with escape-aware label values (no
/// raw quotes or newlines inside; only `\\`, `\"`, `\n` escapes), and
/// every sample's base metric declared by a preceding `# TYPE` line
/// (histogram samples may append the `_bucket`/`_sum`/`_count` suffixes).
#[allow(dead_code)]
pub fn assert_valid_prometheus_0_0_4(text: &str) {
    let mut types: std::collections::HashMap<String, String> = std::collections::HashMap::new();
    let mut samples = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let name = rest.split_whitespace().next().expect("HELP must name a metric");
            assert!(is_metric_name(name), "bad metric name in HELP: {line}");
        } else if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE must name a metric");
            let ty = it.next().expect("TYPE must give a type");
            assert!(is_metric_name(name), "bad metric name in TYPE: {line}");
            assert!(
                ["counter", "gauge", "histogram", "summary", "untyped"].contains(&ty),
                "unknown metric type: {line}"
            );
            assert!(it.next().is_none(), "trailing junk in TYPE: {line}");
            types.insert(name.to_string(), ty.to_string());
        } else {
            assert!(!line.starts_with('#'), "only HELP/TYPE comments are allowed: {line}");
            let (series, value) = line.rsplit_once(' ').expect("sample line needs a value");
            let v: f64 = value.parse().unwrap_or_else(|_| panic!("unparseable value: {line}"));
            assert!(v.is_finite(), "non-finite sample value: {line}");
            let name = match series.split_once('{') {
                Some((n, labels)) => {
                    let inner = labels
                        .strip_suffix('}')
                        .unwrap_or_else(|| panic!("unterminated label set: {line}"));
                    parse_label_set(inner, line);
                    n
                }
                None => series,
            };
            assert!(is_metric_name(name), "bad sample name: {line}");
            let declared = types.iter().any(|(base, ty)| {
                name == base
                    || (ty == "histogram"
                        && [
                            format!("{base}_bucket"),
                            format!("{base}_sum"),
                            format!("{base}_count"),
                        ]
                        .iter()
                        .any(|s| s == name))
            });
            assert!(declared, "sample without a preceding TYPE declaration: {line}");
            samples += 1;
        }
    }
    assert!(samples > 0, "no samples in exposition");
}

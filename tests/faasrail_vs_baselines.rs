//! The paper's headline claim, as an executable test: FaaSRail-generated
//! load tracks the trace's critical statistical properties *better than
//! every prior-practice baseline* (paper Figs. 1, 8, 9, 10).

use faasrail::baselines::poisson_emulation::{self, PoissonEmulationConfig};
use faasrail::baselines::random_sampling::{self, RandomSamplingConfig};
use faasrail::prelude::*;
use faasrail::stats::ecdf::WeightedEcdf;
use faasrail::stats::ks_distance_weighted;
use faasrail::stats::timeseries::{normalize_peak, rebin_sum};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use faasrail::trace::summarize::invocations_duration_wecdf;

struct Setup {
    trace: faasrail::trace::Trace,
    pool: WorkloadPool,
    vanilla: WorkloadPool,
}

fn setup() -> Setup {
    let model = CostModel::default_calibration();
    Setup {
        trace: gen_azure(&AzureTraceConfig::small(77)),
        pool: WorkloadPool::build_modelled(&model),
        vanilla: WorkloadPool::vanilla(&model),
    }
}

fn requests_wecdf(reqs: &RequestTrace, pool: &WorkloadPool) -> WeightedEcdf {
    WeightedEcdf::new(reqs.expected_durations(pool).into_iter().map(|d| (d, 1.0)))
}

#[test]
fn faasrail_beats_baselines_on_runtime_distribution() {
    let s = setup();
    let target = invocations_duration_wecdf(&s.trace);

    let (spec, _) = shrink(&s.trace, &s.pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();
    let rail = generate_requests(&spec, 1);
    let ks_rail = ks_distance_weighted(&target, &requests_wecdf(&rail, &s.pool));

    let poisson = poisson_emulation::generate(&s.vanilla, &PoissonEmulationConfig::paper_fig1(1));
    let ks_poisson = ks_distance_weighted(&target, &requests_wecdf(&poisson, &s.vanilla));

    let sampling =
        random_sampling::generate(&s.trace, &s.vanilla, &RandomSamplingConfig::paper_fig1(1));
    let ks_sampling = ks_distance_weighted(&target, &requests_wecdf(&sampling, &s.vanilla));

    assert!(
        ks_rail < ks_poisson && ks_rail < ks_sampling,
        "FaaSRail KS {ks_rail:.3} must beat Poisson {ks_poisson:.3} and sampling {ks_sampling:.3}"
    );
    // And not just marginally: the paper's figures show a decisive gap.
    assert!(ks_rail * 2.0 < ks_poisson, "expected ≥2x better than plain Poisson");
}

#[test]
fn faasrail_beats_baselines_on_load_shape() {
    let s = setup();
    let want = normalize_peak(&rebin_sum(&s.trace.aggregate_minutes(), 120));

    let (spec, _) = shrink(&s.trace, &s.pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();
    let rail = generate_requests(&spec, 2);
    let poisson = poisson_emulation::generate(&s.vanilla, &PoissonEmulationConfig::paper_fig1(2));

    let mae = |reqs: &RequestTrace| -> f64 {
        let have = normalize_peak(&reqs.per_minute_counts());
        want.iter().zip(&have).map(|(a, b)| (a - b).abs()).sum::<f64>() / want.len() as f64
    };
    let mae_rail = mae(&rail);
    let mae_poisson = mae(&poisson);
    assert!(
        mae_rail * 2.0 < mae_poisson,
        "load-shape error: faasrail {mae_rail:.4} vs poisson {mae_poisson:.4}"
    );
}

#[test]
fn faasrail_beats_plain_poisson_on_popularity() {
    let s = setup();
    // Trace ground truth: share of invocations from the top 1% of functions.
    let curve = faasrail::trace::summarize::popularity_curve(&s.trace);
    let trace_top1 =
        curve.iter().take_while(|&&(f, _)| f <= 0.01).last().map(|&(_, v)| v).unwrap_or(0.0);

    let top1_share = |reqs: &RequestTrace| -> f64 {
        let mut by_fn: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
        for r in &reqs.requests {
            *by_fn.entry(r.function_index).or_insert(0) += 1;
        }
        let mut counts: Vec<u64> = by_fn.into_values().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let k = (counts.len() / 100).max(1);
        counts[..k].iter().sum::<u64>() as f64 / counts.iter().sum::<u64>() as f64
    };

    let (spec, _) = shrink(&s.trace, &s.pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();
    let rail = top1_share(&generate_requests(&spec, 3));
    let poisson = top1_share(&poisson_emulation::generate(
        &s.vanilla,
        &PoissonEmulationConfig::paper_fig1(3),
    ));

    assert!(trace_top1 > 0.3, "trace should be skewed, top1 = {trace_top1}");
    assert!(
        (rail - trace_top1).abs() < (poisson - trace_top1).abs(),
        "faasrail top-1% {rail:.3} should be closer to trace {trace_top1:.3} than poisson {poisson:.3}"
    );
}

#[test]
fn busy_loops_match_runtimes_but_run_nothing() {
    // The busy-loop baseline *does* match the runtime CDF (its selling
    // point) — FaaSRail's advantage there is real computation, which the
    // type system shows: BusyLoopFunction has no workload input at all.
    let s = setup();
    let funcs = faasrail::baselines::busy_loops::fabricate(&s.trace, 2_000, 4);
    let got =
        faasrail::stats::ecdf::Ecdf::new(&funcs.iter().map(|f| f.duration_ms).collect::<Vec<_>>());
    let want = faasrail::trace::summarize::functions_duration_ecdf(&s.trace);
    let ks = faasrail::stats::ks_distance(&want, &got);
    assert!(ks < 0.06, "busy loops should track the per-function CDF, KS = {ks}");
}

//! Integration of the online load generator with the shrink ray's output
//! and the kernel-executing warm-cache backend.

use faasrail::prelude::*;
use faasrail::sim::{ColdStartModel, WarmCacheBackend, WarmCacheConfig};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::time::Duration;

#[test]
fn generated_load_replays_against_warm_cache_backend() {
    let trace = gen_azure(&AzureTraceConfig::scaled(5, 300, 50_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(5, 2.0)).unwrap();
    let reqs = generate_requests(&spec, 8);
    assert!(!reqs.is_empty());

    let backend = WarmCacheBackend::new(
        pool.clone(),
        WarmCacheConfig {
            capacity_mb: 2_048.0,
            ttl: Duration::from_secs(600),
            cold_start: ColdStartModel::snapshot(),
            cold_scale: 0.0,        // don't sleep cold delays in tests
            execute_kernels: false, // account only; no real compute in CI
        },
    );
    let m = replay(&reqs, &pool, &backend, &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 });
    assert_eq!(m.issued as usize, reqs.len());
    assert_eq!(m.completed as usize, reqs.len());
    assert_eq!(m.errors, 0);
    assert!(m.cold_starts > 0, "first touch of each workload is cold");
    assert!(m.cold_starts <= m.completed);
    // Cold starts are bounded by the distinct workloads plus re-warms after
    // eviction; with 2 GiB capacity evictions occur but stay moderate.
    let distinct: std::collections::BTreeSet<_> =
        reqs.requests.iter().map(|r| r.workload).collect();
    assert!(m.cold_starts >= distinct.len() as u64);
}

#[test]
fn per_kind_accounting_matches_request_mix() {
    let trace = gen_azure(&AzureTraceConfig::scaled(6, 300, 50_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(5, 2.0)).unwrap();
    let reqs = generate_requests(&spec, 9);

    let backend = WarmCacheBackend::new(
        pool.clone(),
        WarmCacheConfig { cold_scale: 0.0, execute_kernels: false, ..Default::default() },
    );
    let m = replay(&reqs, &pool, &backend, &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 });
    let expect = reqs.counts_by_kind(&pool);
    assert_eq!(m.per_kind, expect, "replay-side per-kind counts must match the trace");
}

#[test]
fn realtime_pacing_meets_schedule_under_load() {
    // Short real-time run: 5 seconds of schedule at 40 rps, 8x compressed.
    let trace = gen_azure(&AzureTraceConfig::scaled(7, 200, 40_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(1, 4.0)).unwrap();
    let reqs = generate_requests(&spec, 10);

    let backend = WarmCacheBackend::new(
        pool.clone(),
        WarmCacheConfig { cold_scale: 0.0, execute_kernels: false, ..Default::default() },
    );
    let started = std::time::Instant::now();
    let m = replay(
        &reqs,
        &pool,
        &backend,
        &ReplayConfig { pacing: Pacing::RealTime { compression: 8.0 }, workers: 4 },
    );
    let wall = started.elapsed();
    assert_eq!(m.completed as usize, reqs.len());
    // 60 s of schedule at 8x ≈ 7.5 s; allow generous slack for CI.
    assert!(wall < Duration::from_secs(20), "took {wall:?}");
    assert!(
        m.lateness.quantile(0.5) < 0.01,
        "median dispatch lateness {}s",
        m.lateness.quantile(0.5)
    );
}

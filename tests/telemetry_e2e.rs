//! End-to-end telemetry acceptance tests.
//!
//! 1. **Prometheus validity** — the gateway's `GET /metrics` body and the
//!    replay recorder's rendered snapshot both pass a text-format 0.0.4
//!    grammar check (HELP/TYPE comments, sample lines, quoted label
//!    values, declared types, cumulative histogram with an `+Inf` bucket).
//!
//! 2. **Report reconstruction** — a loopback replay through the gateway
//!    with a JSONL event sink produces a log from which `RunReport`
//!    reconstructs the outcome partition *exactly* as the replay's final
//!    `RunMetrics` recorded it: issued, per-class outcomes, cold starts,
//!    and the per-minute offered/achieved series.

mod common;

use common::assert_valid_prometheus_0_0_4;
use faasrail::gateway::{FaultConfig, Gateway, GatewayConfig, HttpBackend, HttpBackendConfig};
use faasrail::loadgen::{
    replay_observed, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
    ReplayInstruments,
};
use faasrail::prelude::*;
use faasrail::telemetry::{parse_jsonl, JsonlSink, Recorder, RunReport};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::fs::File;
use std::io::BufReader;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic backend reporting each workload's modelled mean duration.
struct ModelBackend {
    pool: WorkloadPool,
}

impl Backend for ModelBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match self.pool.get(req.workload) {
            Some(w) => InvocationResult::success(w.mean_ms, false),
            None => {
                InvocationResult::app_error(0.0, format!("unknown workload {:?}", req.workload))
            }
        }
    }

    fn name(&self) -> &str {
        "model"
    }
}

fn generated_requests(seed: u64, n: usize) -> (RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 300, 60_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let cfg = SmirnovConfig {
        num_invocations: n,
        rate_rps: 50.0,
        iat: IatModel::Poisson,
        mapping: MappingConfig::default(),
        seed,
    };
    let (reqs, _) = faasrail::core::smirnov::generate(&trace, &pool, &cfg);
    assert_eq!(reqs.len(), n);
    (reqs, pool)
}

/// Hostile label values round-trip the exposition grammar: the encoder
/// escapes `\`, `"`, and newlines, and the shared validator's escape-aware
/// scanner accepts the result (it rejects the raw forms).
#[test]
fn counter_vec_label_escaping_survives_the_grammar_check() {
    use faasrail::telemetry::{escape_label_value, PromText};
    let mut out = PromText::new();
    out.counter_vec(
        "faasrail_test_agent_issued_total",
        "per-agent issued",
        "agent",
        &[("agent \"A\"", 3), ("path\\host", 5), ("multi\nline", 8)],
    );
    let text = out.finish();
    assert_valid_prometheus_0_0_4(&text);
    assert!(text.contains(r#"{agent="agent \"A\""} 3"#), "{text}");
    assert!(text.contains(r#"{agent="path\\host"} 5"#), "{text}");
    assert!(text.contains(r#"{agent="multi\nline"} 8"#), "{text}");
    assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");

    // The validator itself must reject an unescaped quote in a value —
    // otherwise the assertions above prove nothing.
    let bad = "# TYPE e_total counter\ne_total{agent=\"un\"escaped\"} 1\n";
    let refused = std::panic::catch_unwind(|| assert_valid_prometheus_0_0_4(bad)).is_err();
    assert!(refused, "validator accepted a raw quote inside a label value");
}

#[test]
fn gateway_metrics_and_recorder_snapshot_are_valid_prometheus() {
    use faasrail::gateway::http::{read_response, write_request};
    let (reqs, pool) = generated_requests(31, 64);

    let handle = Gateway::bind(
        "127.0.0.1:0",
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig { workers: 4, read_timeout: Duration::from_secs(1), ..Default::default() },
    )
    .expect("bind loopback gateway")
    .spawn();

    // Drive real traffic through the gateway with a live recorder attached.
    let client = HttpBackend::connect(&handle.addr().to_string(), HttpBackendConfig::default())
        .expect("resolve gateway address");
    let recorder = Recorder::new(3);
    let inst = ReplayInstruments { recorder: Some(&recorder), ..Default::default() };
    let m = replay_observed(
        &reqs,
        &pool,
        &client,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 },
        &AtomicBool::new(false),
        &inst,
    );
    assert_eq!(m.completed as usize, reqs.len());
    drop(client);

    // The wire-level scrape must be valid 0.0.4 with the right content type.
    let stream = std::net::TcpStream::connect(handle.addr()).expect("connect to gateway");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    write_request(&mut (&stream), "GET", "/metrics", "loopback", "text/plain", b"", false)
        .expect("send GET /metrics");
    let resp = read_response(&mut reader).expect("read /metrics response");
    handle.stop();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.content_type.as_deref(), Some(faasrail::telemetry::prometheus::CONTENT_TYPE));
    let text = String::from_utf8(resp.body).expect("metrics body must be UTF-8");
    assert_valid_prometheus_0_0_4(&text);
    assert!(text.contains(&format!("faasrail_gateway_invocations_total {}", reqs.len())), "{text}");

    // The recorder's rendered snapshot (histogram included) passes too, and
    // its +Inf bucket is cumulative: equal to the series count.
    let snap = recorder.snapshot();
    let prom = snap.to_prometheus("faasrail_replay");
    assert_valid_prometheus_0_0_4(&prom);
    let inf_bucket = prom
        .lines()
        .find(|l| l.starts_with("faasrail_replay_response_seconds_bucket{le=\"+Inf\"}"))
        .expect("histogram must expose an +Inf bucket");
    let count_line = prom
        .lines()
        .find(|l| l.starts_with("faasrail_replay_response_seconds_count"))
        .expect("histogram must expose _count");
    let inf: u64 = inf_bucket.rsplit(' ').next().unwrap().parse().unwrap();
    let count: u64 = count_line.rsplit(' ').next().unwrap().parse().unwrap();
    assert_eq!(inf, count, "+Inf bucket must equal _count");
    assert_eq!(count, m.completed + m.errors);
}

/// Trim trailing zero minutes so series that only differ by schedule-length
/// padding compare equal.
fn trimmed(v: &[u64]) -> &[u64] {
    let end = v.iter().rposition(|&c| c != 0).map_or(0, |i| i + 1);
    &v[..end]
}

#[test]
fn jsonl_event_log_reconstructs_the_exact_run_metrics_partition() {
    let (reqs, pool) = generated_requests(32, 500);

    // Inject 500s server-side; with retries disabled each one surfaces as
    // exactly one transport error, so the run has a non-trivial outcome mix.
    let handle = Gateway::bind(
        "127.0.0.1:0",
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig {
            workers: 8,
            read_timeout: Duration::from_secs(1),
            fault: FaultConfig { error_fraction: 0.2, seed: 5, ..FaultConfig::default() },
            ..Default::default()
        },
    )
    .expect("bind faulty gateway")
    .spawn();

    let client = HttpBackend::connect(
        &handle.addr().to_string(),
        HttpBackendConfig {
            retry: faasrail::gateway::RetryPolicy { max_attempts: 1, ..Default::default() },
            ..Default::default()
        },
    )
    .expect("resolve gateway address");

    let dir = std::env::temp_dir();
    let path = dir.join(format!("faasrail-telemetry-e2e-{}.jsonl", std::process::id()));
    let sink = JsonlSink::create(&path).expect("create JSONL sink");
    let m = replay_observed(
        &reqs,
        &pool,
        &client,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        &AtomicBool::new(false),
        &ReplayInstruments { sink: &sink, recorder: None, pace: None },
    );
    drop(client);
    handle.stop();
    assert_eq!(sink.write_errors(), 0);
    drop(sink); // flush

    assert_eq!(m.issued as usize, reqs.len());
    assert!(m.transport_errors > 0, "fault injection must produce errors");
    assert!(m.completed > 0);

    let events =
        parse_jsonl(BufReader::new(File::open(&path).expect("open event log"))).expect("parse log");
    std::fs::remove_file(&path).ok();
    let report = RunReport::from_events(&events);

    // The reconstruction is exact, not approximate: every counter in the
    // outcome partition matches the replay's own metrics.
    assert_eq!(report.issued, m.issued);
    assert_eq!(report.completed, m.completed);
    assert_eq!(report.errors, m.errors);
    assert_eq!(report.app_errors, m.app_errors);
    assert_eq!(report.timeouts, m.timeouts);
    assert_eq!(report.transport_errors, m.transport_errors);
    assert_eq!(report.shed, m.shed);
    assert_eq!(report.cold_starts, m.cold_starts);
    assert_eq!(
        report.completed
            + report.app_errors
            + report.timeouts
            + report.transport_errors
            + report.shed,
        report.issued,
        "outcome classes partition the issued count"
    );

    // Offered load per minute reconstructs the replay's own series.
    assert_eq!(trimmed(&report.issued_per_minute), trimmed(&m.issued_per_minute));
    assert_eq!(report.issued_per_minute.iter().sum::<u64>(), m.issued);
    assert_eq!(report.completed_per_minute.iter().sum::<u64>(), m.completed);
    assert_eq!(report.errors_per_minute.iter().sum::<u64>(), m.errors);

    // Run-end trailer agrees with the body of the log.
    let end = report.end.expect("log must carry run_end");
    assert_eq!(end.issued, m.issued);
    assert_eq!(end.completed, m.completed);
    assert_eq!(end.errors, m.errors);
    assert!(!end.aborted);

    // And the human-readable rendering reflects the same numbers.
    let md = report.to_markdown();
    assert!(md.contains("# FaaSRail run report"), "{md}");
    assert!(md.contains(&format!("| completed | {} |", m.completed)), "{md}");
}

//! Chaos harness: replay through a gateway that drops, stalls, delays,
//! 500s, and sheds — and prove the bookkeeping survives.
//!
//! The acceptance properties for the overload-resilience work:
//!
//! 1. **Nothing is lost.** Under simultaneous connection drops, injected
//!    `500`s, black-hole stalls, and admission-queue shedding, every request
//!    the replayer issues is accounted for exactly once:
//!    `completed + errors == issued` and the per-class breakdown partitions
//!    the errors (`app_errors + timeouts + transport_errors + shed`).
//! 2. **Overload is a signal.** The gateway's bounded admission queue turns
//!    excess concurrency into `429`s, which the client surfaces as
//!    `OutcomeClass::Shed` rather than hangs or mystery transport errors.
//! 3. **Panics are contained.** A backend kernel that panics mid-replay is
//!    recorded as an app error; the run keeps going.
//! 4. **Stopping is graceful.** Raising the stop flag mid-replay drains the
//!    in-flight work and flushes partial metrics marked `aborted`.

mod common;

use common::{spawn_server, AnyHandle, ServerMode};
use faasrail::core::RequestTrace;
use faasrail::gateway::{FaultConfig, GatewayConfig, HttpBackendConfig, RetryPolicy};
use faasrail::loadgen::{
    replay, replay_until, Backend, InvocationRequest, InvocationResult, NoopBackend, Pacing,
    ReplayConfig, RunMetrics,
};
use faasrail::prelude::*;
use faasrail::workloads::WorkloadId;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A trace of `n` requests to a real pool workload, `gap_ms` apart.
fn dense_trace(n: usize, gap_ms: u64) -> (RequestTrace, WorkloadPool) {
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let trace = RequestTrace {
        duration_minutes: 1 + (n as u64 * gap_ms) as usize / 60_000,
        requests: (0..n as u64)
            .map(|i| faasrail::core::Request {
                at_ms: i * gap_ms,
                workload: WorkloadId(7),
                function_index: 7,
            })
            .collect(),
    };
    (trace, pool)
}

fn assert_nothing_lost(m: &RunMetrics, n: usize) {
    assert_eq!(m.issued as usize, n, "every request dispatched");
    assert_eq!(
        m.completed + m.errors,
        m.issued,
        "accounted exactly once: {}",
        m.outcome_breakdown()
    );
    assert_eq!(
        m.app_errors + m.timeouts + m.transport_errors + m.shed,
        m.errors,
        "outcome classes partition the errors: {}",
        m.outcome_breakdown()
    );
}

/// A small gateway (4 workers, queue of 2) under a seeded fault cocktail,
/// hammered by far more replay workers than it has capacity for.
fn chaos_gateway(mode: ServerMode, fault: FaultConfig) -> AnyHandle {
    spawn_server(
        mode,
        Arc::new(NoopBackend),
        GatewayConfig {
            workers: 4,
            queue_capacity: 2,
            read_timeout: Duration::from_secs(1),
            fault,
            ..GatewayConfig::default()
        },
    )
}

fn chaos_client(addr: &str) -> faasrail::gateway::HttpBackend {
    HttpBackend::connect(
        addr,
        HttpBackendConfig {
            request_timeout: Duration::from_millis(250),
            retry: RetryPolicy {
                max_attempts: 3,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(10),
                jitter: 0.5,
                jitter_seed: 11,
            },
            ..Default::default()
        },
    )
    .expect("resolve chaos gateway")
}

#[test]
fn chaos_replay_accounts_for_every_request() {
    chaos_replay_accounts_for_every_request_in(ServerMode::Threaded);
}

#[test]
fn chaos_replay_accounts_for_every_request_reactor() {
    chaos_replay_accounts_for_every_request_in(ServerMode::Reactor);
}

fn chaos_replay_accounts_for_every_request_in(mode: ServerMode) {
    let n = 300;
    let (trace, pool) = dense_trace(n, 0);
    let handle = chaos_gateway(
        mode,
        FaultConfig {
            drop_fraction: 0.05,
            error_fraction: 0.10,
            stall_fraction: 0.05,
            stall_ms: 400,
            seed: 17,
            ..FaultConfig::default()
        },
    );

    // 24 unpaced workers against 4 server workers + a queue of 2: the first
    // wave alone overflows admission, so shedding must fire.
    let client = chaos_client(&handle.addr().to_string());
    let m = replay(&trace, &pool, &client, &ReplayConfig { pacing: Pacing::Unpaced, workers: 24 });

    assert_nothing_lost(&m, n);
    assert!(m.completed > 0, "some requests must get through: {}", m.outcome_breakdown());
    assert!(m.shed > 0, "overload must surface as Shed: {}", m.outcome_breakdown());

    drop(client);
    let stats = handle.stats();
    assert!(stats.shed.load(Ordering::Relaxed) > 0, "server-side shed counter");
    // The admission queue drains asynchronously: workers still have to pick
    // up (and discard) connections the finished client already closed.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while stats.queue_depth.load(Ordering::Relaxed) > 0 && std::time::Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(stats.queue_depth.load(Ordering::Relaxed), 0, "queue drains to empty");
    handle.stop();
}

/// Every 10th invocation panics inside the backend.
struct PanickyBackend {
    calls: AtomicU64,
}

impl Backend for PanickyBackend {
    fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
        let n = self.calls.fetch_add(1, Ordering::Relaxed);
        if n % 10 == 9 {
            panic!("kernel exploded on call {n}");
        }
        InvocationResult::success(1.0, false)
    }

    fn name(&self) -> &str {
        "panicky"
    }
}

#[test]
fn panicking_kernel_mid_replay_does_not_abort_the_run() {
    let n = 100;
    let (trace, pool) = dense_trace(n, 0);
    let backend = PanickyBackend { calls: AtomicU64::new(0) };
    let m = replay(&trace, &pool, &backend, &ReplayConfig { pacing: Pacing::Unpaced, workers: 8 });

    assert_nothing_lost(&m, n);
    assert!(!m.aborted);
    assert_eq!(m.app_errors, 10, "one app error per panic: {}", m.outcome_breakdown());
    assert_eq!(m.completed, 90);
}

#[test]
fn stop_flag_drains_gateway_replay_and_flushes_partial_metrics() {
    stop_flag_drains_gateway_replay_and_flushes_partial_metrics_in(ServerMode::Threaded);
}

#[test]
fn stop_flag_drains_gateway_replay_and_flushes_partial_metrics_reactor() {
    stop_flag_drains_gateway_replay_and_flushes_partial_metrics_in(ServerMode::Reactor);
}

fn stop_flag_drains_gateway_replay_and_flushes_partial_metrics_in(mode: ServerMode) {
    let n = 5_000;
    let (trace, pool) = dense_trace(n, 2);
    let handle = chaos_gateway(mode, FaultConfig::default());
    let client = chaos_client(&handle.addr().to_string());
    let stop = AtomicBool::new(false);

    let m = std::thread::scope(|s| {
        let worker = s.spawn(|| {
            replay_until(
                &trace,
                &pool,
                &client,
                &ReplayConfig { pacing: Pacing::RealTime { compression: 1.0 }, workers: 8 },
                &stop,
            )
        });
        std::thread::sleep(Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
        worker.join().expect("replay thread")
    });

    assert!(m.aborted, "stop flag must mark the run aborted");
    assert!(m.issued > 0, "some requests dispatched before the stop");
    assert!((m.issued as usize) < n, "stop must cut the schedule short");
    assert_eq!(m.completed + m.errors, m.issued, "drained: {}", m.outcome_breakdown());
    assert_eq!(m.app_errors + m.timeouts + m.transport_errors + m.shed, m.errors);

    drop(client);
    handle.stop();
}

/// Heavier cocktail, more workers, more requests. Slow (several seconds of
/// stall time); run with `cargo test --test chaos -- --ignored`.
#[test]
#[ignore]
fn chaos_stress_heavy_fault_cocktail() {
    chaos_stress_heavy_fault_cocktail_in(ServerMode::Threaded);
}

#[test]
#[ignore]
fn chaos_stress_heavy_fault_cocktail_reactor() {
    chaos_stress_heavy_fault_cocktail_in(ServerMode::Reactor);
}

fn chaos_stress_heavy_fault_cocktail_in(mode: ServerMode) {
    let n = 2_000;
    let (trace, pool) = dense_trace(n, 0);
    let handle = chaos_gateway(
        mode,
        FaultConfig {
            drop_fraction: 0.10,
            error_fraction: 0.15,
            stall_fraction: 0.08,
            stall_ms: 300,
            latency_fraction: 0.10,
            latency_ms: 50,
            seed: 23,
        },
    );

    let client = chaos_client(&handle.addr().to_string());
    let m = replay(&trace, &pool, &client, &ReplayConfig { pacing: Pacing::Unpaced, workers: 32 });

    assert_nothing_lost(&m, n);
    assert!(m.completed > 0);
    assert!(m.shed > 0);
    assert!(m.errors > 0, "a 30%+ fault cocktail must cause visible errors");

    drop(client);
    let stats = handle.stats();
    assert!(stats.shed.load(Ordering::Relaxed) > 0);
    assert!(stats.faults_stalled.load(Ordering::Relaxed) > 0);
    assert!(stats.faults_delayed.load(Ordering::Relaxed) > 0);
    handle.stop();
}

//! End-to-end integration: trace → pool → shrink ray → requests → cluster.
//!
//! These tests cross every crate boundary in one flow and assert the
//! paper's four critical statistical properties survive the pipeline.

use faasrail::prelude::*;
use faasrail::sim::{FixedTtl, WarmFirst};
use faasrail::stats::ecdf::WeightedEcdf;
use faasrail::stats::ks_distance_weighted;
use faasrail::stats::timeseries::{normalize_peak, rebin_sum};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use faasrail::trace::summarize::invocations_duration_wecdf;

fn setup() -> (faasrail::trace::Trace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::small(1234));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    (trace, pool)
}

#[test]
fn full_pipeline_preserves_all_four_properties() {
    let (trace, pool) = setup();
    let cfg = ShrinkRayConfig::new(120, 20.0);
    let (spec, report) = shrink(&trace, &pool, &cfg).expect("shrink");
    let requests = generate_requests(&spec, 99);

    // Property (iii): invocation execution-duration distribution.
    let target = invocations_duration_wecdf(&trace);
    let got = WeightedEcdf::new(requests.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
    let ks = ks_distance_weighted(&target, &got);
    assert!(ks < 0.15, "invocation-duration KS = {ks}");

    // Property (iv): arrival-rate trend over time follows the (thumbnailed)
    // trace day.
    let want = normalize_peak(&rebin_sum(&trace.aggregate_minutes(), 120));
    let have = normalize_peak(&requests.per_minute_counts());
    let mae: f64 = want.iter().zip(&have).map(|(a, b)| (a - b).abs()).sum::<f64>() / 120.0;
    assert!(mae < 0.05, "load-shape mean abs error = {mae}");

    // Property (ii): popularity skew — the top Function still dominates.
    let mut by_fn: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for r in &requests.requests {
        *by_fn.entry(r.function_index).or_insert(0) += 1;
    }
    let mut counts: Vec<u64> = by_fn.into_values().collect();
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let top10 = counts.len() / 10;
    let share: f64 = counts[..top10].iter().sum::<u64>() as f64 / counts.iter().sum::<u64>() as f64;
    assert!(share > 0.5, "top-10% Function share = {share}");

    // Rate budget: no minute exceeds the target.
    assert!(spec.peak_per_minute() <= 1_200);
    // Aggregation actually reduced the function count.
    assert!(report.aggregated_functions < report.trace_functions);

    // The request trace replays cleanly on the simulated cluster.
    let mut lb = WarmFirst;
    let mut ka = FixedTtl::ten_minutes();
    let m = simulate(
        &requests,
        &pool,
        &ClusterConfig::default(),
        &mut lb,
        &mut ka,
        &SimOptions::default(),
    );
    assert_eq!(m.arrivals as usize, requests.len());
    assert_eq!(m.completions + m.starved, m.arrivals);
    assert!(m.cold_start_fraction() < 0.5, "cold fraction {}", m.cold_start_fraction());
}

#[test]
fn pipeline_is_deterministic_end_to_end() {
    let (trace, pool) = setup();
    let cfg = ShrinkRayConfig::new(30, 5.0);
    let run = || {
        let (spec, _) = shrink(&trace, &pool, &cfg).expect("shrink");
        generate_requests(&spec, 5)
    };
    assert_eq!(run(), run());
}

#[test]
fn different_target_rates_scale_linearly() {
    let (trace, pool) = setup();
    let (spec5, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(60, 5.0)).unwrap();
    let (spec20, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(60, 20.0)).unwrap();
    let ratio = spec20.total_requests() as f64 / spec5.total_requests() as f64;
    assert!((ratio - 4.0).abs() < 0.2, "volume ratio = {ratio}");
}

#[test]
fn huawei_pipeline_works_too() {
    let trace =
        faasrail::trace::huawei::generate(&faasrail::trace::huawei::HuaweiTraceConfig::small(9));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, report) = shrink(&trace, &pool, &ShrinkRayConfig::new(60, 10.0)).expect("shrink");
    assert!(spec.total_requests() > 0);
    assert!(spec.peak_per_minute() <= 600);
    // Huawei aggregation uses the finer 0.1 ms resolution automatically.
    assert!(report.aggregated_functions <= report.trace_functions);
    let target = invocations_duration_wecdf(&trace);
    let got = WeightedEcdf::new(
        spec.entries
            .iter()
            .map(|e| (pool.get(e.workload).unwrap().mean_ms, e.total_requests() as f64)),
    );
    let ks = ks_distance_weighted(&target, &got);
    assert!(ks < 0.25, "huawei mapped KS = {ks}");
}

//! Cross-tier distributed-tracing acceptance tests over loopback.
//!
//! These pin the ISSUE-level soundness claims of the span join:
//!
//! 1. **Zero-drop completeness** — a replay with no faults and no sheds
//!    joins 100% of client spans to a server span by trace id, and each
//!    joined trace's six-stage decomposition telescopes to the
//!    client-observed end-to-end latency within the estimated
//!    clock-offset error bound.
//!
//! 2. **Orphan accounting** — under overload, the orphaned client spans
//!    are exactly the sheds plus the transport errors that never reached
//!    the gateway (`RunMetrics` counters), while every served request
//!    still joins.
//!
//! 3. **Fault classification and clock skew** — injected server faults
//!    surface as correctly-classified server spans joined to the client
//!    spans they damaged, and re-joining the same logs under large
//!    artificial clock offsets never produces a negative stage duration.

mod common;

use common::{spawn_server_with_sink, ServerMode};
use faasrail::gateway::{FaultConfig, GatewayConfig, HttpBackend, HttpBackendConfig};
use faasrail::loadgen::{
    replay_observed, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
    ReplayInstruments,
};
use faasrail::prelude::*;
use faasrail::telemetry::{
    join_spans, parse_jsonl, EventSink, JsonlSink, OutcomeClass, RingSink, RunReport, ServerFault,
    TelemetryEvent,
};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::collections::HashSet;
use std::fs::File;
use std::io::BufReader;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Deterministic backend reporting each workload's modelled mean duration.
struct ModelBackend {
    pool: WorkloadPool,
}

impl Backend for ModelBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match self.pool.get(req.workload) {
            Some(w) => InvocationResult::success(w.mean_ms, false),
            None => {
                InvocationResult::app_error(0.0, format!("unknown workload {:?}", req.workload))
            }
        }
    }

    fn name(&self) -> &str {
        "model"
    }
}

/// A backend that actually occupies its worker, so a small gateway pool
/// builds a real admission queue and sheds.
struct SlowBackend {
    ms: u64,
}

impl Backend for SlowBackend {
    fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
        std::thread::sleep(Duration::from_millis(self.ms));
        InvocationResult::success(self.ms as f64, false)
    }

    fn name(&self) -> &str {
        "slow"
    }
}

fn generated_requests(seed: u64, n: usize) -> (RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 300, 60_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let cfg = SmirnovConfig {
        num_invocations: n,
        rate_rps: 50.0,
        iat: IatModel::Poisson,
        mapping: MappingConfig::default(),
        seed,
    };
    let (reqs, _) = faasrail::core::smirnov::generate(&trace, &pool, &cfg);
    assert_eq!(reqs.len(), n);
    (reqs, pool)
}

fn temp_path(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("faasrail-tracing-e2e-{tag}-{}.jsonl", std::process::id()))
}

fn client_spans(events: &[TelemetryEvent]) -> Vec<&faasrail::telemetry::InvocationSpan> {
    events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Invocation(s) => Some(s),
            _ => None,
        })
        .collect()
}

/// Assert every joined trace's stages are non-negative and telescope to the
/// client response within the join's own error bound (plus a little slack
/// for midpoint-estimator noise on a real scheduler).
fn assert_stages_sound(join: &faasrail::telemetry::SpanJoin) {
    let bound_s = 2.0 * join.offset.error_us / 1e6 + 5e-4;
    for j in &join.joined {
        let s = &j.stages;
        for (name, v) in [
            ("lateness", s.lateness_s),
            ("client_queue", s.client_queue_s),
            ("net_out", s.net_out_s),
            ("gateway", s.gateway_s),
            ("service", s.service_s),
            ("net_back", s.net_back_s),
        ] {
            assert!(v >= 0.0, "trace {:#x}: negative {name} stage: {v}", j.client.trace_id);
        }
        assert!(
            (s.stage_sum_s() - s.response_s).abs() <= bound_s,
            "trace {:#x}: stage sum {} vs response {} exceeds error bound {bound_s}",
            j.client.trace_id,
            s.stage_sum_s(),
            s.response_s
        );
    }
}

#[test]
fn zero_drop_replay_joins_every_client_span_and_stages_telescope() {
    zero_drop_replay_joins_every_client_span_and_stages_telescope_in(ServerMode::Threaded);
}

#[test]
fn zero_drop_replay_joins_every_client_span_and_stages_telescope_reactor() {
    zero_drop_replay_joins_every_client_span_and_stages_telescope_in(ServerMode::Reactor);
}

fn zero_drop_replay_joins_every_client_span_and_stages_telescope_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(41, 300);

    let server_path = temp_path(&format!("server-{mode:?}"));
    let client_path = temp_path(&format!("client-{mode:?}"));
    let server_sink = Arc::new(JsonlSink::create(&server_path).expect("create server trace log"));
    let handle = spawn_server_with_sink(
        mode,
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig { workers: 4, read_timeout: Duration::from_secs(1), ..Default::default() },
        Some(Arc::clone(&server_sink) as Arc<dyn EventSink>),
    );

    let client = HttpBackend::connect(&handle.addr().to_string(), HttpBackendConfig::default())
        .expect("resolve gateway address");
    let sink = JsonlSink::create(&client_path).expect("create client event log");
    let m = replay_observed(
        &reqs,
        &pool,
        &client,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        &AtomicBool::new(false),
        &ReplayInstruments { sink: &sink, recorder: None, pace: None },
    );
    drop(client);
    handle.stop(); // joins the accept loop, which flushes the trace sink
    drop(sink);
    assert_eq!(m.completed as usize, reqs.len(), "zero-fault loopback run must be clean");
    assert_eq!(m.errors, 0);

    let client_events = parse_jsonl(BufReader::new(File::open(&client_path).expect("client log")))
        .expect("parse client log");
    let server_events = parse_jsonl(BufReader::new(File::open(&server_path).expect("server log")))
        .expect("parse server log");
    std::fs::remove_file(&client_path).ok();
    std::fs::remove_file(&server_path).ok();

    // Every request got a unique non-zero trace id on the wire.
    let ids: HashSet<u64> = client_spans(&client_events).iter().map(|s| s.trace_id).collect();
    assert_eq!(ids.len(), reqs.len());
    assert!(!ids.contains(&0));

    // 100% join, no orphans, no unmatched server spans, no retries.
    let join = join_spans(&client_events, &server_events);
    assert_eq!(join.joined.len(), reqs.len(), "zero-drop run must join every client span");
    assert_eq!(join.orphaned(), 0);
    assert_eq!(join.orphans_by_class, [0u64; 5]);
    assert_eq!(join.server_unmatched, 0);
    assert_eq!(join.extra_attempts, 0);
    assert_eq!(join.offset.pairs, reqs.len() as u64);
    for j in &join.joined {
        assert_eq!(j.server.outcome, OutcomeClass::Ok);
        assert_eq!(j.server.fault, None);
        assert_eq!(j.attempts, 1);
    }
    assert_stages_sound(&join);

    // The report-level integration sees the same join.
    let (report, rejoin) = RunReport::with_server_events(&client_events, &server_events);
    assert_eq!(rejoin.joined.len(), join.joined.len());
    let ct = report.cross_tier.as_ref().expect("server log present → cross-tier section");
    assert_eq!(ct.joined, reqs.len() as u64);
    assert_eq!(ct.orphaned, 0);
    assert_eq!(ct.decomposition.response.count, reqs.len() as u64);
    let md = report.to_markdown();
    assert!(md.contains("## Cross-tier trace join"), "{md}");
}

#[test]
fn overload_orphans_are_exactly_the_sheds_and_unreached_transport_errors() {
    overload_orphans_are_exactly_the_sheds_and_unreached_transport_errors_in(ServerMode::Threaded);
}

#[test]
fn overload_orphans_are_exactly_the_sheds_and_unreached_transport_errors_reactor() {
    overload_orphans_are_exactly_the_sheds_and_unreached_transport_errors_in(ServerMode::Reactor);
}

fn overload_orphans_are_exactly_the_sheds_and_unreached_transport_errors_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(42, 80);

    // One busy worker, a one-slot admission queue, four eager clients:
    // most connections are shed with 429 before the request is ever read,
    // so they cannot produce a server span — the join must report them as
    // classified orphans, not silently drop them.
    let server_sink = Arc::new(RingSink::with_capacity(4 * reqs.len()));
    let handle = spawn_server_with_sink(
        mode,
        Arc::new(SlowBackend { ms: 3 }),
        GatewayConfig {
            workers: 1,
            queue_capacity: 1,
            read_timeout: Duration::from_secs(1),
            ..Default::default()
        },
        Some(Arc::clone(&server_sink) as Arc<dyn EventSink>),
    );

    let client = HttpBackend::connect(
        &handle.addr().to_string(),
        HttpBackendConfig {
            retry: faasrail::gateway::RetryPolicy { max_attempts: 1, ..Default::default() },
            ..Default::default()
        },
    )
    .expect("resolve gateway address");
    let sink = RingSink::with_capacity(4 * reqs.len());
    let m = replay_observed(
        &reqs,
        &pool,
        &client,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        &AtomicBool::new(false),
        &ReplayInstruments { sink: &sink, recorder: None, pace: None },
    );
    drop(client);
    handle.stop();
    assert!(m.shed > 0, "one worker and a one-slot queue must shed under four clients");
    assert!(m.completed > 0);

    let client_events = sink.events();
    let server_events = server_sink.events();
    let join = join_spans(&client_events, &server_events);

    // Served requests all join; the orphans are exactly the requests the
    // gateway never read: sheds plus client-side transport failures.
    assert_eq!(join.joined.len() as u64, m.completed + m.app_errors + m.timeouts);
    assert_eq!(join.orphaned(), m.shed + m.transport_errors);
    let [ok, app, timeout, transport, shed] = join.orphans_by_class;
    assert_eq!((ok, app, timeout), (0, 0, 0));
    assert_eq!(shed, m.shed);
    assert_eq!(transport, m.transport_errors);
    assert_eq!(join.server_unmatched, 0);
    assert_stages_sound(&join);
}

/// Shift every server-span timestamp forward by `us`, simulating a server
/// clock that runs ahead of the client's.
fn skew_server(events: &[TelemetryEvent], us: u64) -> Vec<TelemetryEvent> {
    events
        .iter()
        .cloned()
        .map(|e| match e {
            TelemetryEvent::ServerSpan(mut s) => {
                s.accepted_us += us;
                s.dequeued_us += us;
                s.handler_start_us += us;
                s.handler_end_us += us;
                s.flushed_us += us;
                TelemetryEvent::ServerSpan(s)
            }
            other => other,
        })
        .collect()
}

/// Shift every client-span timestamp forward by `us` — equivalent to the
/// server clock running *behind* the client's by `us`.
fn skew_client(events: &[TelemetryEvent], us: u64) -> Vec<TelemetryEvent> {
    events
        .iter()
        .cloned()
        .map(|e| match e {
            TelemetryEvent::Invocation(mut s) => {
                s.target_us += us;
                s.dispatched_us += us;
                s.picked_up_us += us;
                s.completed_us += us;
                TelemetryEvent::Invocation(s)
            }
            other => other,
        })
        .collect()
}

#[test]
fn injected_faults_classify_server_spans_and_survive_clock_skew() {
    injected_faults_classify_server_spans_and_survive_clock_skew_in(ServerMode::Threaded);
}

#[test]
fn injected_faults_classify_server_spans_and_survive_clock_skew_reactor() {
    injected_faults_classify_server_spans_and_survive_clock_skew_in(ServerMode::Reactor);
}

fn injected_faults_classify_server_spans_and_survive_clock_skew_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(43, 200);

    // Injected 500s and stragglers; retries off so each fault surfaces as
    // exactly one client outcome.
    let server_sink = Arc::new(RingSink::with_capacity(4 * reqs.len()));
    let handle = spawn_server_with_sink(
        mode,
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig {
            workers: 4,
            read_timeout: Duration::from_secs(1),
            fault: FaultConfig {
                error_fraction: 0.2,
                latency_fraction: 0.1,
                latency_ms: 5,
                seed: 7,
                ..FaultConfig::default()
            },
            ..Default::default()
        },
        Some(Arc::clone(&server_sink) as Arc<dyn EventSink>),
    );

    let client = HttpBackend::connect(
        &handle.addr().to_string(),
        HttpBackendConfig {
            retry: faasrail::gateway::RetryPolicy { max_attempts: 1, ..Default::default() },
            ..Default::default()
        },
    )
    .expect("resolve gateway address");
    let sink = RingSink::with_capacity(4 * reqs.len());
    let m = replay_observed(
        &reqs,
        &pool,
        &client,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 },
        &AtomicBool::new(false),
        &ReplayInstruments { sink: &sink, recorder: None, pace: None },
    );
    drop(client);
    handle.stop();
    assert!(m.transport_errors > 0, "error_fraction must surface transport errors");

    let client_events = sink.events();
    let server_events = server_sink.events();
    let join = join_spans(&client_events, &server_events);

    // Injected 500s reach the client as transport errors, yet the request
    // *was* read — so those spans join, carrying the server's fault tag.
    assert_eq!(join.joined.len() as u64, m.issued, "every request reached the gateway");
    assert_eq!(join.orphaned(), 0);
    let errored: Vec<_> =
        join.joined.iter().filter(|j| j.server.fault == Some(ServerFault::Error)).collect();
    assert_eq!(errored.len() as u64, m.transport_errors);
    for j in &errored {
        assert_eq!(j.client.outcome, OutcomeClass::Transport);
        assert_eq!(j.server.outcome, OutcomeClass::Transport);
    }
    let delayed = join.joined.iter().filter(|j| j.server.fault == Some(ServerFault::Delay));
    for j in delayed {
        assert_eq!(j.client.outcome, OutcomeClass::Ok, "stragglers still answer");
        assert!(j.stages.service_s >= 5e-3, "the injected delay lands in the service stage");
    }
    assert_stages_sound(&join);

    // Re-join the same logs under large artificial clock offsets in both
    // directions: the midpoint estimator must absorb the skew — same join
    // cardinality, still no negative stages, stage sums still bounded.
    let baseline = join.offset.offset_us;
    for (skewed_client, skewed_server, injected) in [
        (client_events.clone(), skew_server(&server_events, 3_000_000_000), 3_000_000_000f64),
        (skew_client(&client_events, 7_500_000_000), server_events.clone(), -7_500_000_000f64),
    ] {
        let skewed = join_spans(&skewed_client, &skewed_server);
        assert_eq!(skewed.joined.len(), join.joined.len());
        assert_eq!(skewed.orphaned(), 0);
        assert!(
            (skewed.offset.offset_us - baseline - injected).abs() <= skewed.offset.error_us + 1.0,
            "skew {injected} not recovered: baseline {baseline}, estimated {}",
            skewed.offset.offset_us
        );
        assert_stages_sound(&skewed);
    }
}

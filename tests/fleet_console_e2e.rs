//! End-to-end ops console: a live fleet run with `--console` serves all
//! four HTTP endpoints, and killing an agent mid-run becomes visible in
//! `/state` (crash status + recorded reassignment) while the run is still
//! going — which is the whole point of an observability plane.
//!
//! Fleet topology: two real agents plus two scripted impostors. The
//! *victim* truthfully acks ~40% of its shard and crashes on signal; the
//! *holder* acks nothing and stays connected until the end, which keeps
//! the run (and therefore the console) alive while the test observes the
//! victim's death over HTTP. `fleet top`'s client half ([`fetch_state`] +
//! [`render_top`]) is exercised against the same live console.

mod common;

use common::assert_valid_prometheus_0_0_4;
use faasrail::core::RequestTrace;
use faasrail::fleet::{
    fetch_state, read_frame, render_top, run_agent_with, wall_clock_us, write_frame, AgentConfig,
    Assignment, Coordinator, FleetConfig, FleetMessage, StateView, WorkPrefix, PROTOCOL_VERSION,
};
use faasrail::loadgen::{
    replay, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
};
use faasrail::prelude::*;
use faasrail::telemetry::Snapshot;
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::io::BufReader;
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Outcome depends only on the request itself, so the fleet's merged
/// partition must match a single-process replay exactly — and an impostor
/// can *truthfully* claim a prefix it never ran.
struct DeterministicBackend;

impl Backend for DeterministicBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match req.function_index % 7 {
            0 => InvocationResult::app_error(0.2, "synthetic app failure"),
            1 => InvocationResult::timeout("synthetic deadline"),
            2 => InvocationResult::shed("synthetic overload"),
            _ => InvocationResult::success(0.2, req.function_index.is_multiple_of(5)),
        }
    }
    fn name(&self) -> &str {
        "deterministic"
    }
}

/// What [`DeterministicBackend`] would report for the first `watermark`
/// requests of `trace` — the prefix a crashing impostor claims.
fn claimed_prefix(trace: &RequestTrace, work: u64, watermark: usize) -> WorkPrefix {
    let mut p = WorkPrefix { work, watermark: watermark as u64, ..WorkPrefix::default() };
    for r in &trace.requests[..watermark] {
        match r.function_index % 7 {
            0 => p.errors[0] += 1,
            1 => p.errors[1] += 1,
            2 => p.errors[3] += 1, // shed
            _ => {
                p.completed += 1;
                if r.function_index.is_multiple_of(5) {
                    p.cold_starts += 1;
                }
            }
        }
    }
    assert!(p.is_consistent());
    p
}

fn small_schedule(seed: u64) -> (RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 250, 40_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(3, 3.0)).unwrap();
    let reqs = generate_requests(&spec, seed);
    assert!(reqs.len() > 50, "schedule too small to exercise sharding: {}", reqs.len());
    (reqs, pool)
}

/// Speak the v2 protocol through the handshake and return at `Start`.
fn impostor_handshake(
    addr: SocketAddr,
    name: &str,
) -> (BufReader<TcpStream>, TcpStream, Assignment) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let hello = FleetMessage::Hello {
        name: name.into(),
        wall_us: wall_clock_us(),
        proto: PROTOCOL_VERSION,
        resume_token: None,
    };
    write_frame(&mut writer, &hello).unwrap();
    let mut assignment = None;
    loop {
        match read_frame(&mut reader).unwrap().unwrap() {
            FleetMessage::HelloAck { proto, .. } => assert_eq!(proto, PROTOCOL_VERSION),
            FleetMessage::Probe { seq, wall_us } => {
                let reply =
                    FleetMessage::ProbeReply { seq, wall_us, agent_wall_us: wall_clock_us() };
                write_frame(&mut writer, &reply).unwrap();
            }
            FleetMessage::Assign { assignment: a } => {
                let ready =
                    FleetMessage::Ready { shard: a.shard, requests: a.trace.requests.len() as u64 };
                write_frame(&mut writer, &ready).unwrap();
                assignment = Some(a);
            }
            FleetMessage::Start { .. } => {
                return (reader, writer, assignment.expect("assign before start"));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

/// One plain HTTP/1.0-style GET against the console, using the same
/// framing the server does. Returns `(status, content_type, body)`.
fn http_get(addr: SocketAddr, path: &str) -> (u16, Option<String>, Vec<u8>) {
    use faasrail::gateway::http::{read_response, write_request};
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut writer = stream.try_clone().unwrap();
    write_request(&mut writer, "GET", path, "console", "application/json", b"", false).unwrap();
    let resp = read_response(&mut BufReader::new(stream)).unwrap();
    (resp.status, resp.content_type, resp.body)
}

fn get_state(addr: SocketAddr, since: u64) -> StateView {
    let (status, _, body) = http_get(addr, &format!("/state?since={since}"));
    assert_eq!(status, 200);
    serde_json::from_slice(&body).expect("/state body parses as StateView")
}

/// Poll `f` every 50 ms until it returns `Some`, or panic after `secs`.
fn poll_until<T>(secs: u64, what: &str, mut f: impl FnMut() -> Option<T>) -> T {
    let deadline = Instant::now() + Duration::from_secs(secs);
    loop {
        if let Some(v) = f() {
            return v;
        }
        assert!(Instant::now() < deadline, "timed out waiting for {what}");
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn live_console_serves_state_metrics_healthz_dashboard_and_shows_a_kill() {
    let (reqs, pool) = small_schedule(29);
    let coordinator =
        Coordinator::bind("127.0.0.1:0").unwrap().with_console("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let console = coordinator.console_addr().expect("pre-bound console address");
    let cfg = FleetConfig {
        agents: 4,
        workers: 3,
        pacing: Pacing::Unpaced,
        capture_events: false,
        progress_every_ms: 100,
        start_delay_ms: 100,
        target: None,
        probes: 3,
        live: false,
        agent_timeout: Duration::from_secs(10),
        lease_ms: 5_000,
        reshard: true,
        // Pre-bound via with_console: cfg.console stays None.
        console: None,
    };
    let drop_victim = AtomicBool::new(false);
    let drop_holder = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        for i in 0..2 {
            scope.spawn(move || {
                let agent_cfg = AgentConfig { name: format!("survivor-{i}"), ..Default::default() };
                run_agent_with(addr, &agent_cfg, |_| {
                    Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
                })
                .unwrap()
                .expect("survivors run to completion");
            });
        }
        // The victim: truthfully acks ~40% of its shard in heartbeats,
        // then crashes (socket drop) when the test signals it.
        let victim_flag = &drop_victim;
        scope.spawn(move || {
            let (_reader, mut writer, assignment) = impostor_handshake(addr, "victim");
            let shard_len = assignment.trace.requests.len();
            assert!(shard_len > 10, "victim's shard too small: {shard_len}");
            let watermark = shard_len * 2 / 5;
            let prefix = claimed_prefix(&assignment.trace, assignment.shard as u64, watermark);
            let snapshot = Snapshot {
                issued: prefix.watermark,
                completed: prefix.completed,
                errors: prefix.errors,
                cold_starts: prefix.cold_starts,
                ..Snapshot::default()
            };
            while !victim_flag.load(Ordering::Acquire) {
                let progress = FleetMessage::Progress {
                    shard: assignment.shard,
                    snapshot: snapshot.clone(),
                    prefixes: vec![prefix.clone()],
                    lag_ms: 0,
                    max_lag_ms: 0,
                    idle: false,
                };
                if write_frame(&mut writer, &progress).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
            // Dropping both halves closes the socket: a crash, not a stall.
        });
        // The holder: acks nothing, keeps its socket open until signaled —
        // it holds the run open so the console stays up for the test.
        let holder_flag = &drop_holder;
        scope.spawn(move || {
            let (_reader, mut writer, assignment) = impostor_handshake(addr, "holder");
            let prefix = claimed_prefix(&assignment.trace, assignment.shard as u64, 0);
            while !holder_flag.load(Ordering::Acquire) {
                let progress = FleetMessage::Progress {
                    shard: assignment.shard,
                    snapshot: Snapshot::default(),
                    prefixes: vec![prefix.clone()],
                    lag_ms: 0,
                    max_lag_ms: 0,
                    idle: false,
                };
                if write_frame(&mut writer, &progress).is_err() {
                    break;
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        });

        // Phase 1: the console comes up with the whole fleet live and a
        // growing sample history.
        let view = poll_until(20, "4 live agents and 3 samples in /state", || {
            let view = get_state(console, 0);
            let live = view.agents.iter().filter(|a| a.is_live()).count();
            (live == 4 && view.samples.len() >= 3).then_some(view)
        });
        assert!(view.total.is_some(), "cumulative totals published");
        assert!(view.next >= 3);
        for name in ["survivor-0", "survivor-1", "victim", "holder"] {
            assert!(view.agents.iter().any(|a| a.name == name), "missing {name}: {view:?}");
        }
        // Windowed samples carry per-agent rows and monotonic cursors.
        let seqs: Vec<u64> = view.samples.iter().map(|s| s.seq).collect();
        assert!(seqs.windows(2).all(|w| w[1] == w[0] + 1), "contiguous seqs: {seqs:?}");

        // The since cursor pages over HTTP exactly like the in-process API.
        let newer = poll_until(10, "a sample newer than the cursor", || {
            let v = get_state(console, view.next);
            (!v.samples.is_empty()).then_some(v)
        });
        assert!(newer.samples.iter().all(|s| s.seq > view.next), "cursor respected");
        assert!(!newer.dropped, "nothing evicted in a short run");
        assert_eq!(newer.agents.len(), 4, "agent rows present even on incremental polls");

        // Phase 2: /metrics is valid Prometheus 0.0.4 with per-agent labels.
        let (status, content_type, body) = http_get(console, "/metrics");
        assert_eq!(status, 200);
        assert_eq!(content_type.as_deref(), Some(faasrail::telemetry::prometheus::CONTENT_TYPE));
        let text = String::from_utf8(body).expect("metrics body is UTF-8");
        assert_valid_prometheus_0_0_4(&text);
        for name in ["survivor-0", "survivor-1", "victim", "holder"] {
            assert!(
                text.contains(&format!("faasrail_fleet_agent_issued_total{{agent=\"{name}\"}}")),
                "missing per-agent series for {name}:\n{text}"
            );
        }
        assert!(text.contains("faasrail_fleet_agents 4"), "{text}");
        assert!(text.contains("faasrail_fleet_agents_by_state{state=\"alive\"} 4"), "{text}");

        // Phase 3: /healthz mirrors the gateway probe shape.
        let (status, _, body) = http_get(console, "/healthz");
        assert_eq!(status, 200);
        let health = String::from_utf8(body).unwrap();
        assert!(health.starts_with("{\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"alive\":4"), "{health}");
        assert!(health.contains("\"crashed\":0"), "{health}");

        // Phase 4: /dashboard is one self-contained page.
        let (status, content_type, body) = http_get(console, "/dashboard");
        assert_eq!(status, 200);
        assert_eq!(content_type.as_deref(), Some("text/html; charset=utf-8"));
        let page = String::from_utf8(body).unwrap();
        assert!(page.contains("<canvas"), "dashboard draws sparklines");
        assert!(page.contains("/state?since="), "dashboard polls the state endpoint");
        assert!(
            !page.contains("http://") && !page.contains("https://"),
            "dashboard must carry no external assets"
        );
        assert_eq!(http_get(console, "/nope").0, 404);

        // Phase 5: `fleet top`'s client half renders the same data.
        let top = render_top(&fetch_state(&console.to_string(), 0).unwrap());
        for name in ["survivor-0", "survivor-1", "victim", "holder"] {
            assert!(top.contains(name), "fleet top must list {name}:\n{top}");
        }
        assert!(top.contains("4 agents (4 live)"), "{top}");
        assert!(top.contains("offered"), "{top}");

        // Phase 6: kill the victim; its crash and the salvage reassignment
        // must surface in /state within one lease interval.
        drop_victim.store(true, Ordering::Release);
        let crashed = poll_until(5, "victim crash visible in /state", || {
            let v = get_state(console, 0);
            let victim = v.agents.iter().find(|a| a.name == "victim")?.clone();
            (victim.status == "crash" && !v.reassignments.is_empty()).then_some((v, victim))
        });
        let (view, victim) = crashed;
        assert!(
            view.reassignments.iter().all(|r| r.from_shard == victim.shard),
            "only the victim has died so far: {:?}",
            view.reassignments
        );
        let regranted: u64 = view.reassignments.iter().map(|r| r.requests).sum();
        assert!(regranted > 0, "the victim's unfinished remainder was regranted");
        let health = String::from_utf8(http_get(console, "/healthz").2).unwrap();
        assert!(health.contains("\"crashed\":1"), "healthz tracks the crash: {health}");
        let top = render_top(&view);
        assert!(top.contains("crash"), "fleet top shows the crash:\n{top}");
        assert!(top.contains("reassignments:"), "fleet top shows the timeline:\n{top}");

        // Phase 7: release the holder; the fleet drains and completes.
        drop_holder.store(true, Ordering::Release);
        run.join().unwrap()
    });

    // The run still resolves the entire schedule: the victim's claimed
    // prefix plus resharded remainders add up to a partition identical to
    // a single-process replay.
    let single = replay(
        &reqs,
        &pool,
        &DeterministicBackend,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
    );
    let m = &report.metrics;
    assert_eq!(report.aborted_invocations, 0, "resharding leaves no aborted remainder");
    assert_eq!(m.issued, single.issued);
    assert_eq!(m.completed, single.completed);
    assert_eq!(m.errors, single.errors);
    assert_eq!(m.completed + m.errors, report.offered);
    let victim = report.agents.iter().find(|a| a.name == "victim").unwrap();
    assert_eq!(victim.status, "crash");
    let holder = report.agents.iter().find(|a| a.name == "holder").unwrap();
    assert_eq!(holder.status, "crash");
    assert!(!report.reassignments.is_empty());

    // The console's sampled history survives into the final report (PR 9):
    // bounded, windowed, monotonically sequenced — the perf-trajectory
    // record a post-mortem reads instead of re-scraping a dead console.
    let history = report.console_history.as_ref().expect("console run persists its history");
    assert!(!history.is_empty(), "at least the terminal sample is recorded");
    assert!(
        history.len() <= faasrail::fleet::DEFAULT_HISTORY_CAPACITY,
        "history stays bounded: {}",
        history.len()
    );
    assert!(history.windows(2).all(|w| w[0].seq < w[1].seq), "samples are ordered");
    assert!(!report.build.git_sha.is_empty(), "fleet report is build-stamped");
}

//! Property tests for the resharding algebra: random kill/rejoin
//! schedules against the *pure* planning layer (`prefix_metrics`,
//! `plan_grants`, `per_minute_of`), asserting the invariants the elastic
//! control plane stakes its accounting on:
//!
//! * **exact partition** — across any sequence of kills, regrants,
//!   rejoins, and a no-survivor collapse, `completed + errors + aborted`
//!   equals the offered schedule exactly, per outcome kind and per
//!   minute (issued + aborted minute series == offered minute series,
//!   element-wise);
//! * **determinism** — replaying the identical kill schedule produces an
//!   identical grant plan and identical merged metrics.
//!
//! The outcome of every request is a pure function of its function index
//! (the same convention the e2e fleet tests use), so "what the agent
//! would have reported" is computable without running anything.

use faasrail::core::{Request, RequestTrace};
use faasrail::fleet::{per_minute_of, plan_grants, prefix_metrics, WorkPrefix};
use faasrail::loadgen::{partition_remainder, RunMetrics};
use faasrail::prelude::*;
use faasrail::workloads::WorkloadId;
use proptest::prelude::*;

/// Deterministic outcome of one request: error bucket index or success
/// (with a cold-start flag), keyed on the function index alone.
fn claimed_prefix(trace: &RequestTrace, work: u64, watermark: usize) -> WorkPrefix {
    let mut p = WorkPrefix { work, watermark: watermark as u64, ..WorkPrefix::default() };
    for r in &trace.requests[..watermark] {
        match r.function_index % 7 {
            0 => p.errors[0] += 1,
            1 => p.errors[1] += 1,
            2 => p.errors[3] += 1,
            _ => {
                p.completed += 1;
                if r.function_index.is_multiple_of(5) {
                    p.cold_starts += 1;
                }
            }
        }
    }
    assert!(p.is_consistent());
    p
}

/// One kill event in the schedule: which live shard dies (as a fraction
/// of the live set), how far through each of its works it got, and
/// whether a fresh agent rejoins right after.
#[derive(Debug, Clone)]
struct Kill {
    victim_frac: f64,
    watermark_frac: f64,
    rejoin: bool,
}

/// What one simulated run produced — everything determinism must cover.
struct Simulated {
    metrics: RunMetrics,
    aborted_per_minute: Vec<u64>,
    /// (target shard, grant id, request count, first at_ms) per grant.
    plan: Vec<(u32, u64, usize, u64)>,
}

/// Drive the pure planning layer through a full fleet lifetime: initial
/// hash partition, kills with prefix salvage + remainder regrants (or
/// aborts when no survivor is left), optional rejoins as fresh capacity,
/// and full completion of whatever is still owned at the end.
fn simulate(trace: &RequestTrace, pool: &WorkloadPool, shards: u32, kills: &[Kill]) -> Simulated {
    let shard_ids: Vec<u32> = (0..shards).collect();
    let mut alive = shard_ids.clone();
    let mut next_shard = shards;
    let mut next_id: u64 = 1 << 32;
    // (work id, owner shard, origin shard, trace)
    let mut works: Vec<(u64, u32, u32, RequestTrace)> = partition_remainder(trace, &shard_ids)
        .into_iter()
        .map(|(s, part)| (s as u64, s, s, part))
        .collect();
    let mut metrics = RunMetrics::new();
    let mut aborted_per_minute: Vec<u64> = Vec::new();
    let mut plan = Vec::new();

    for kill in kills {
        if alive.is_empty() {
            break;
        }
        let victim = alive[(kill.victim_frac * alive.len() as f64) as usize % alive.len()];
        alive.retain(|&s| s != victim);
        let (dead, surviving): (Vec<_>, Vec<_>) =
            works.drain(..).partition(|&(_, owner, _, _)| owner == victim);
        works = surviving;
        for (id, _, origin, work_trace) in dead {
            let n = work_trace.requests.len();
            let watermark = (kill.watermark_frac * n as f64) as usize % (n + 1);
            let prefix = claimed_prefix(&work_trace, id, watermark);
            metrics.merge(&prefix_metrics(&work_trace, pool, &prefix));
            if alive.is_empty() {
                let rest = faasrail::loadgen::remainder_after(&work_trace, watermark);
                let pm = per_minute_of(&rest);
                if aborted_per_minute.len() < pm.len() {
                    aborted_per_minute.resize(pm.len(), 0);
                }
                for (a, b) in aborted_per_minute.iter_mut().zip(&pm) {
                    *a += b;
                }
            } else {
                let grants = plan_grants(&work_trace, watermark as u64, &alive, next_id, origin, 0);
                next_id += grants.len() as u64;
                for (target, grant) in grants {
                    plan.push((
                        target,
                        grant.id,
                        grant.trace.requests.len(),
                        grant.trace.requests.first().map(|r| r.at_ms).unwrap_or(0),
                    ));
                    works.push((grant.id, target, grant.origin_shard, grant.trace));
                }
            }
        }
        if kill.rejoin {
            alive.push(next_shard);
            alive.sort_unstable();
            next_shard += 1;
        }
    }

    // Whoever is still alive finishes everything it holds.
    for (id, _, _, work_trace) in works {
        let n = work_trace.requests.len();
        let prefix = claimed_prefix(&work_trace, id, n);
        metrics.merge(&prefix_metrics(&work_trace, pool, &prefix));
    }
    Simulated { metrics, aborted_per_minute, plan }
}

fn padded(v: &[u64], len: usize) -> Vec<u64> {
    let mut out = v.to_vec();
    out.resize(len.max(out.len()), 0);
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Random traces, shard counts, and kill/rejoin schedules: the
    /// outcome partition stays exact — in total, per error kind, and
    /// minute by minute — and the plan is a pure function of the inputs.
    #[test]
    fn random_kill_schedules_preserve_the_partition_exactly(
        raw in prop::collection::vec((0u64..180_000, 0u32..60, 0u32..4), 20..200),
        shards in 2u32..5,
        kills in prop::collection::vec(
            (0.0f64..1.0, 0.0f64..1.0, 0u8..2).prop_map(|(v, w, r)| Kill {
                victim_frac: v,
                watermark_frac: w,
                rejoin: r == 1,
            }),
            0..6,
        ),
    ) {
        let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
        let mut requests: Vec<Request> = raw
            .iter()
            .map(|&(at_ms, fi, w)| Request {
                at_ms,
                workload: WorkloadId(w % pool.len() as u32),
                function_index: fi,
            })
            .collect();
        requests.sort_by_key(|r| r.at_ms);
        let trace = RequestTrace { duration_minutes: 3, requests };
        let offered = trace.requests.len() as u64;

        let sim = simulate(&trace, &pool, shards, &kills);
        let m = &sim.metrics;
        let aborted: u64 = sim.aborted_per_minute.iter().sum();

        // Total partition: every offered request finished somewhere or
        // aborted with no survivor — never both, never neither.
        prop_assert_eq!(m.completed + m.errors + aborted, offered);
        prop_assert_eq!(m.issued, m.completed + m.errors);
        prop_assert_eq!(
            m.app_errors + m.timeouts + m.transport_errors + m.shed,
            m.errors,
            "error kinds partition the error total"
        );

        // Per-kind conservation: issued requests carry their workload kind.
        prop_assert_eq!(m.per_kind.values().sum::<u64>(), m.issued);

        // Per-minute: issued + aborted == offered, element-wise.
        let full = per_minute_of(&trace);
        let len = full.len();
        let issued_pm = padded(&m.issued_per_minute, len);
        let aborted_pm = padded(&sim.aborted_per_minute, len);
        let full_pm = padded(&full, len);
        for (minute, ((i, a), f)) in
            issued_pm.iter().zip(&aborted_pm).zip(&full_pm).enumerate()
        {
            prop_assert_eq!(i + a, *f, "minute {} must balance", minute);
        }

        // Determinism: the identical schedule replans identically.
        let again = simulate(&trace, &pool, shards, &kills);
        prop_assert_eq!(&sim.plan, &again.plan, "grant plan must be deterministic");
        prop_assert_eq!(
            serde_json::to_string(&sim.metrics).unwrap(),
            serde_json::to_string(&again.metrics).unwrap()
        );
        prop_assert_eq!(&sim.aborted_per_minute, &again.aborted_per_minute);
    }
}

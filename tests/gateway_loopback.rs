//! Over-the-wire replay through the gateway, end to end over loopback.
//!
//! Two acceptance properties for `faasrail-gateway`:
//!
//! 1. **Distribution preservation** — replaying a ≥1k-request generated
//!    spec through `HttpBackend → 127.0.0.1 → Gateway → backend` completes
//!    with zero transport failures and yields the same invocation-duration
//!    distribution as replaying the identical requests in-process
//!    (KS distance < 0.05). The backend is deterministic (it reports each
//!    workload's modelled mean duration), so any distributional drift could
//!    only come from the wire: lost, duplicated, or corrupted invocations.
//!
//! 2. **Fault recovery** — with the server dropping connections and
//!    injecting `500`s at seeded fractions, client-side retry recovers
//!    every retryable failure and the per-class outcome breakdown in the
//!    replay metrics stays clean.
//!
//! 3. **Observability endpoints** — `GET /stats` answers with
//!    `application/json` and `GET /metrics` with Prometheus text format
//!    (`text/plain; version=0.0.4`), both over a real loopback connection.

mod common;

use common::{spawn_server, ServerMode};
use faasrail::gateway::http::{read_response, write_request};
use faasrail::gateway::{FaultConfig, GatewayConfig, HttpBackend, HttpBackendConfig, RetryPolicy};
use faasrail::loadgen::{
    replay, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
};
use faasrail::prelude::*;
use faasrail::stats::{ks_distance, Ecdf};
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Deterministic backend: reports each workload's modelled mean duration.
/// Remote and in-process replays of the same requests therefore produce
/// identical duration multisets unless the wire loses or corrupts some.
struct ModelBackend {
    pool: WorkloadPool,
}

impl Backend for ModelBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match self.pool.get(req.workload) {
            Some(w) => InvocationResult::success(w.mean_ms, false),
            None => {
                InvocationResult::app_error(0.0, format!("unknown workload {:?}", req.workload))
            }
        }
    }

    fn name(&self) -> &str {
        "model"
    }
}

/// Wrapper that records the service duration of every successful invocation.
struct Recording<B> {
    inner: B,
    durations: Mutex<Vec<f64>>,
}

impl<B> Recording<B> {
    fn new(inner: B) -> Self {
        Recording { inner, durations: Mutex::new(Vec::new()) }
    }

    fn durations(&self) -> Vec<f64> {
        self.durations.lock().unwrap().clone()
    }
}

impl<B: Backend> Backend for Recording<B> {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let r = self.inner.invoke(req);
        if r.ok {
            self.durations.lock().unwrap().push(r.service_ms);
        }
        r
    }

    fn name(&self) -> &str {
        self.inner.name()
    }
}

/// A generated spec with an exact request count (Smirnov mode).
fn generated_requests(seed: u64, n: usize) -> (RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 300, 60_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let cfg = SmirnovConfig {
        num_invocations: n,
        rate_rps: 50.0,
        iat: IatModel::Poisson,
        mapping: MappingConfig::default(),
        seed,
    };
    let (reqs, _) = faasrail::core::smirnov::generate(&trace, &pool, &cfg);
    assert_eq!(reqs.len(), n);
    (reqs, pool)
}

#[test]
fn loopback_replay_preserves_invocation_durations() {
    loopback_replay_preserves_invocation_durations_in(ServerMode::Threaded);
}

#[test]
fn loopback_replay_preserves_invocation_durations_reactor() {
    loopback_replay_preserves_invocation_durations_in(ServerMode::Reactor);
}

fn loopback_replay_preserves_invocation_durations_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(21, 1_200);

    let handle = spawn_server(
        mode,
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig { workers: 16, read_timeout: Duration::from_secs(1), ..Default::default() },
    );

    let client = HttpBackend::connect(&handle.addr().to_string(), HttpBackendConfig::default())
        .expect("resolve gateway address");
    let remote = Recording::new(client);
    let replay_cfg = ReplayConfig { pacing: Pacing::Unpaced, workers: 8 };
    let m = replay(&reqs, &pool, &remote, &replay_cfg);

    assert_eq!(m.issued as usize, reqs.len());
    assert_eq!(m.completed as usize, reqs.len(), "every invocation must come back");
    assert_eq!(m.errors, 0, "breakdown: {}", m.outcome_breakdown());
    assert_eq!(m.transport_errors, 0, "zero transport errors over loopback");
    assert_eq!(m.timeouts, 0);

    let remote_durations = remote.durations();
    drop(remote); // release pooled connections before stopping the server
    let server_stats = handle.stats();
    assert_eq!(server_stats.invocations_ok.load(std::sync::atomic::Ordering::Relaxed), 1_200);
    handle.stop();

    // The same requests, replayed in-process.
    let local = Recording::new(ModelBackend { pool: pool.clone() });
    let lm = replay(&reqs, &pool, &local, &replay_cfg);
    assert_eq!(lm.errors, 0);
    let local_durations = local.durations();

    assert_eq!(remote_durations.len(), local_durations.len());
    let d = ks_distance(&Ecdf::new(&remote_durations), &Ecdf::new(&local_durations));
    assert!(d < 0.05, "KS distance remote vs in-process = {d}");
    // With a deterministic backend the distributions should in fact match
    // exactly, not just within the acceptance bound.
    assert!(d < 1e-12, "expected identical duration multisets, KS = {d}");
}

#[test]
fn fault_injection_is_recovered_by_client_retry() {
    fault_injection_is_recovered_by_client_retry_in(ServerMode::Threaded);
}

#[test]
fn fault_injection_is_recovered_by_client_retry_reactor() {
    fault_injection_is_recovered_by_client_retry_in(ServerMode::Reactor);
}

fn fault_injection_is_recovered_by_client_retry_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(22, 400);

    // 5% dropped connections + 15% injected 500s, deterministically seeded.
    let handle = spawn_server(
        mode,
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig {
            workers: 16,
            read_timeout: Duration::from_secs(1),
            fault: FaultConfig {
                drop_fraction: 0.05,
                error_fraction: 0.15,
                seed: 9,
                ..FaultConfig::default()
            },
            ..Default::default()
        },
    );

    let client = HttpBackend::connect(
        &handle.addr().to_string(),
        HttpBackendConfig {
            request_timeout: Duration::from_secs(10),
            retry: RetryPolicy {
                max_attempts: 8,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(20),
                jitter: 0.5,
                jitter_seed: 77,
            },
            ..Default::default()
        },
    )
    .expect("resolve gateway address");

    let m = replay(&reqs, &pool, &client, &ReplayConfig { pacing: Pacing::Unpaced, workers: 4 });

    // Every retryable failure recovered: the replay sees only successes.
    assert_eq!(m.completed as usize, reqs.len(), "breakdown: {}", m.outcome_breakdown());
    assert_eq!(m.errors, 0);
    assert_eq!(m.app_errors, 0);
    assert_eq!(m.timeouts, 0);
    assert_eq!(m.transport_errors, 0);

    // The faults actually fired, and recovery left tracks. An injected 500
    // is a real response, so it always consumes a retry attempt; a dropped
    // connection kills the socket, so it always forces a fresh connect
    // (but only costs a *retry* when it hits a non-reused connection — a
    // reused one is replaced for free, per the pooling contract).
    let retries = client.stats().retries.load(std::sync::atomic::Ordering::Relaxed);
    let connects = client.stats().connects.load(std::sync::atomic::Ordering::Relaxed);
    assert!(retries > 0, "expected some retries under 20% fault rate");
    drop(client);
    let stats = handle.stats();
    let dropped = stats.faults_dropped.load(std::sync::atomic::Ordering::Relaxed);
    let errored = stats.faults_errored.load(std::sync::atomic::Ordering::Relaxed);
    assert!(dropped > 0, "expected some dropped connections");
    assert!(errored > 0, "expected some injected 500s");
    assert!(
        retries >= errored,
        "each injected 500 costs a retry: retries={retries} errored={errored}"
    );
    assert!(
        connects > dropped,
        "each dropped connection forces a reconnect: connects={connects} dropped={dropped}"
    );
    handle.stop();
}

#[test]
fn stats_and_metrics_endpoints_set_correct_content_types() {
    stats_and_metrics_endpoints_set_correct_content_types_in(ServerMode::Threaded);
}

#[test]
fn stats_and_metrics_endpoints_set_correct_content_types_reactor() {
    stats_and_metrics_endpoints_set_correct_content_types_in(ServerMode::Reactor);
}

fn stats_and_metrics_endpoints_set_correct_content_types_in(mode: ServerMode) {
    let (reqs, pool) = generated_requests(23, 32);

    let handle = spawn_server(
        mode,
        Arc::new(ModelBackend { pool: pool.clone() }),
        GatewayConfig { workers: 4, read_timeout: Duration::from_secs(1), ..Default::default() },
    );

    // Put some real traffic on the wire first so the scraped counters are
    // non-trivial.
    let client = HttpBackend::connect(&handle.addr().to_string(), HttpBackendConfig::default())
        .expect("resolve gateway address");
    let m = replay(&reqs, &pool, &client, &ReplayConfig { pacing: Pacing::Unpaced, workers: 2 });
    assert_eq!(m.completed as usize, reqs.len());
    drop(client);

    // Scrape both observability endpoints on one keep-alive connection.
    let stream = TcpStream::connect(handle.addr()).expect("connect to gateway");
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = &stream;

    write_request(&mut writer, "GET", "/stats", "loopback", "text/plain", b"", true)
        .expect("send GET /stats");
    let stats = read_response(&mut reader).expect("read /stats response");
    assert_eq!(stats.status, 200);
    assert_eq!(stats.content_type.as_deref(), Some("application/json"));
    let parsed: serde_json::Value =
        serde_json::from_slice(&stats.body).expect("/stats body must be valid JSON");
    assert_eq!(parsed["invocations_ok"].as_u64(), Some(reqs.len() as u64));
    // The replay client hung up, so once its handlers notice the EOFs the
    // only live connection is the one doing this scrape. Re-poll on the
    // same connection while they wind down.
    let mut active = parsed["connections_active"].as_u64().expect("gauge in /stats");
    for _ in 0..50 {
        if active == 1 {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
        write_request(&mut writer, "GET", "/stats", "loopback", "text/plain", b"", true)
            .expect("send GET /stats");
        let again = read_response(&mut reader).expect("read /stats response");
        let v: serde_json::Value = serde_json::from_slice(&again.body).expect("valid JSON");
        active = v["connections_active"].as_u64().expect("gauge in /stats");
    }
    assert_eq!(active, 1, "the scraping connection must be the only one left");

    write_request(&mut writer, "GET", "/metrics", "loopback", "text/plain", b"", false)
        .expect("send GET /metrics");
    let metrics = read_response(&mut reader).expect("read /metrics response");
    assert_eq!(metrics.status, 200);
    assert_eq!(metrics.content_type.as_deref(), Some("text/plain; version=0.0.4"));
    let text = String::from_utf8(metrics.body).expect("/metrics body must be UTF-8");
    assert!(text.contains("# TYPE faasrail_gateway_invocations_total counter"), "{text}");
    assert!(text.contains(&format!("faasrail_gateway_invocations_total {}", reqs.len())), "{text}");
    assert!(text.contains("# TYPE faasrail_gateway_connections_active gauge"), "{text}");
    assert!(text.contains("faasrail_gateway_connections_active 1"), "{text}");

    drop(reader);
    drop(stream);
    handle.stop();
}

//! HTTP parser and connection-lifecycle torture tests, run against BOTH
//! gateway implementations (thread-per-connection and epoll reactor).
//!
//! The two servers share one external contract; these tests pin the edges
//! of it that normal replay traffic never exercises:
//!
//! 1. **1-byte reads** — a request head dribbled a byte at a time parses
//!    exactly once the final byte lands, in either server.
//! 2. **Pipelining** — several requests written back-to-back on one
//!    keep-alive connection come back complete and in order.
//! 3. **Oversized heads** — a header section past `MAX_HEAD_BYTES` is
//!    rejected with the *same* status (400) by both servers, then the
//!    connection is closed.
//! 4. **Malformed request lines** — garbage before the first CRLF is a
//!    400 in both servers, never a hang or a silent close.
//! 5. **Slow loris** (reactor) — a peer that starts a head and stalls is
//!    reaped after `head_read_timeout` without stalling other connections.
//! 6. **Multiplexed client e2e** — `MuxHttpBackend`'s pipelined pool
//!    replays cleanly against both servers.

mod common;

use common::{spawn_server, ServerMode};
use faasrail::gateway::http::{read_response, write_request, MAX_HEAD_BYTES};
use faasrail::gateway::{GatewayConfig, MuxConfig, MuxHttpBackend};
use faasrail::loadgen::{replay, NoopBackend, Pacing, ReplayConfig};
use faasrail::prelude::*;
use faasrail::workloads::WorkloadId;
use std::io::{BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn default_server(mode: ServerMode) -> common::AnyHandle {
    spawn_server(
        mode,
        Arc::new(NoopBackend),
        GatewayConfig { workers: 4, read_timeout: Duration::from_secs(5), ..Default::default() },
    )
}

fn connect(handle: &common::AnyHandle) -> TcpStream {
    let stream = TcpStream::connect(handle.addr()).expect("connect to gateway");
    stream.set_read_timeout(Some(Duration::from_secs(10))).expect("read timeout");
    stream.set_nodelay(true).expect("nodelay");
    stream
}

// 1. A valid request head fed one byte at a time must parse and answer.

#[test]
fn one_byte_dribble_completes_threaded() {
    one_byte_dribble_completes(ServerMode::Threaded);
}

#[test]
fn one_byte_dribble_completes_reactor() {
    one_byte_dribble_completes(ServerMode::Reactor);
}

fn one_byte_dribble_completes(mode: ServerMode) {
    let handle = default_server(mode);
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));

    let raw = b"GET /healthz HTTP/1.1\r\nHost: torture\r\nConnection: close\r\n\r\n";
    for chunk in raw.chunks(1) {
        (&stream).write_all(chunk).expect("write byte");
        (&stream).flush().expect("flush byte");
        // A small pause defeats loopback coalescing often enough that the
        // server really does see partial heads.
        std::thread::sleep(Duration::from_millis(1));
    }
    let resp = read_response(&mut reader).expect("read dribbled response");
    assert_eq!(resp.status, 200, "{mode:?}");
    assert!(!resp.body.is_empty(), "{mode:?}: healthz body");
    handle.stop();
}

// 2. Pipelined keep-alive requests answer completely and in order.

#[test]
fn pipelined_requests_answer_in_order_threaded() {
    pipelined_requests_answer_in_order(ServerMode::Threaded);
}

#[test]
fn pipelined_requests_answer_in_order_reactor() {
    pipelined_requests_answer_in_order(ServerMode::Reactor);
}

fn pipelined_requests_answer_in_order(mode: ServerMode) {
    let handle = default_server(mode);
    let stream = connect(&handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    let mut writer = &stream;

    // Distinct content types prove the responses come back in request
    // order, not just "five responses".
    let paths = ["/healthz", "/stats", "/metrics", "/healthz", "/stats"];
    for (i, path) in paths.iter().enumerate() {
        let keep = i + 1 < paths.len();
        write_request(&mut writer, "GET", path, "torture", "text/plain", b"", keep)
            .expect("pipeline request");
    }
    for (i, path) in paths.iter().enumerate() {
        let resp = read_response(&mut reader).expect("pipelined response");
        assert_eq!(resp.status, 200, "{mode:?}: response {i} to {path}");
        let want =
            if *path == "/metrics" { "text/plain; version=0.0.4" } else { "application/json" };
        assert_eq!(resp.content_type.as_deref(), Some(want), "{mode:?}: response {i} to {path}");
    }
    handle.stop();
}

// 3 + 4. Protocol violations get the same status from both servers.

/// Send raw bytes on a fresh connection, return the response status, and
/// assert the server closes the connection afterwards.
fn status_for_raw(handle: &common::AnyHandle, raw: &[u8], what: &str) -> u16 {
    let stream = connect(handle);
    let mut reader = BufReader::new(stream.try_clone().expect("clone stream"));
    (&stream).write_all(raw).expect("write raw request");
    let resp = read_response(&mut reader).unwrap_or_else(|e| panic!("{what}: no response: {e}"));
    // The violation must also kill the connection.
    let mut rest = Vec::new();
    let closed = reader.read_to_end(&mut rest);
    assert!(
        matches!(closed, Ok(0)) || closed.is_err(),
        "{what}: connection must close after a {} (read {rest:?})",
        resp.status
    );
    resp.status
}

fn oversized_head() -> Vec<u8> {
    let mut raw = b"GET /healthz HTTP/1.1\r\nHost: torture\r\nX-Flood: ".to_vec();
    raw.extend(std::iter::repeat_n(b'a', MAX_HEAD_BYTES + 1024));
    raw.extend_from_slice(b"\r\n\r\n");
    raw
}

#[test]
fn oversized_header_section_gets_the_same_status_from_both_servers() {
    let mut statuses = Vec::new();
    for mode in ServerMode::BOTH {
        let handle = default_server(mode);
        statuses.push(status_for_raw(&handle, &oversized_head(), "oversized head"));
        handle.stop();
    }
    assert_eq!(statuses, [400, 400], "threaded vs reactor");
}

#[test]
fn malformed_request_line_gets_the_same_status_from_both_servers() {
    let mut statuses = Vec::new();
    for mode in ServerMode::BOTH {
        let handle = default_server(mode);
        statuses.push(status_for_raw(&handle, b"THIS IS NOT HTTP\r\n\r\n", "malformed line"));
        handle.stop();
    }
    assert_eq!(statuses, [400, 400], "threaded vs reactor");
}

// 5. Slow loris: a stalled partial head is reaped on `head_read_timeout`
// without collateral damage to well-behaved connections.

#[test]
fn slow_loris_is_reaped_without_stalling_other_connections() {
    let handle = spawn_server(
        ServerMode::Reactor,
        Arc::new(NoopBackend),
        GatewayConfig {
            workers: 2,
            read_timeout: Duration::from_secs(30),
            head_read_timeout: Duration::from_millis(250),
            ..Default::default()
        },
    );

    // The attacker: starts a request head, then goes quiet forever.
    let loris = connect(&handle);
    (&loris).write_all(b"GET /healthz HTTP/1.1\r\nHost: lo").expect("partial head");

    // A well-behaved client keeps getting answers while the loris hangs.
    let polite = connect(&handle);
    let mut polite_reader = BufReader::new(polite.try_clone().expect("clone stream"));
    let start = Instant::now();
    let mut served = 0;
    while start.elapsed() < Duration::from_millis(400) {
        write_request(&mut (&polite), "GET", "/healthz", "torture", "text/plain", b"", true)
            .expect("polite request");
        let resp = read_response(&mut polite_reader).expect("polite response");
        assert_eq!(resp.status, 200, "well-behaved client must keep being served");
        served += 1;
        std::thread::sleep(Duration::from_millis(20));
    }
    assert!(served > 5, "the polite client got {served} responses during the attack window");

    // The loris connection must be dead by now: ~400ms elapsed against a
    // 250ms head deadline. The server sends nothing — just a close.
    let mut loris_reader = loris.try_clone().expect("clone stream");
    loris_reader.set_read_timeout(Some(Duration::from_secs(5))).expect("read timeout");
    let mut buf = [0u8; 64];
    match loris_reader.read(&mut buf) {
        Ok(0) => {}                                                     // clean FIN
        Err(e) if e.kind() == std::io::ErrorKind::ConnectionReset => {} // RST also fine
        other => panic!("loris socket should be closed, got {other:?}"),
    }
    handle.stop();
}

// 6. The multiplexed pipelined client replays cleanly against both servers.

#[test]
fn mux_client_replays_cleanly_threaded() {
    mux_client_replays_cleanly(ServerMode::Threaded);
}

#[test]
fn mux_client_replays_cleanly_reactor() {
    mux_client_replays_cleanly(ServerMode::Reactor);
}

fn mux_client_replays_cleanly(mode: ServerMode) {
    let n = 400usize;
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let trace = faasrail::core::RequestTrace {
        duration_minutes: 1,
        requests: (0..n as u64)
            .map(|i| faasrail::core::Request {
                at_ms: i,
                workload: WorkloadId(7),
                function_index: 7,
            })
            .collect(),
    };

    let handle = default_server(mode);
    let client = MuxHttpBackend::new(
        handle.addr().to_string(),
        MuxConfig { connections: 3, pipeline_depth: 16, ..MuxConfig::default() },
    )
    .expect("resolve gateway address");

    let m = replay(&trace, &pool, &client, &ReplayConfig { pacing: Pacing::Unpaced, workers: 8 });
    assert_eq!(m.issued as usize, n, "{mode:?}");
    assert_eq!(m.completed as usize, n, "{mode:?}: breakdown: {}", m.outcome_breakdown());
    assert_eq!(m.errors, 0, "{mode:?}: breakdown: {}", m.outcome_breakdown());

    // The whole point of the mux client: few sockets, many requests.
    let stats = client.stats();
    let connects = stats.connects.load(std::sync::atomic::Ordering::Relaxed);
    let reuses = stats.reuses.load(std::sync::atomic::Ordering::Relaxed);
    assert!(connects <= 3, "{mode:?}: fixed pool must not grow: connects={connects}");
    assert!(reuses > 0, "{mode:?}: pipelined connections must be reused");
    drop(client);
    handle.stop();
}

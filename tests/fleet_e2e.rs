//! End-to-end fleet mode: a coordinator and real agent processes (well,
//! threads — same protocol, same code paths, real TCP) replaying one
//! sharded schedule.
//!
//! The load-bearing claims:
//! * a 2-agent fleet produces exactly the same outcome partition as a
//!   single-process replay of the same spec — sharding changes *where*
//!   requests run, never *what* runs;
//! * killing an agent mid-run costs nothing: the coordinator salvages the
//!   acked finished prefix and reshards the remainder to survivors, so
//!   the run completes with zero aborted invocations and the merged
//!   per-minute offered series bit-identical to an unkilled run;
//! * a *stalled* agent (connected but silent past the lease) is detected
//!   and resharded the same way, with a distinguishable status;
//! * killing *every* agent still terminates cleanly with the whole
//!   schedule accounted as aborted, minute by minute;
//! * a protocol-version mismatch is refused with a clean `Abort` naming
//!   both versions;
//! * an agent that loses the coordinator link rejoins with its resume
//!   token and serves grants as fresh capacity;
//! * with `--no-reshard`, a lost shard degrades to the pre-elastic
//!   aborted-remainder accounting.

use faasrail::core::{Request, RequestTrace};
use faasrail::fleet::{
    read_frame, run_agent_with, wall_clock_us, write_frame, AgentConfig, Assignment, Coordinator,
    FleetConfig, FleetMessage, Grant, WorkPrefix, PROTOCOL_VERSION,
};
use faasrail::loadgen::{
    replay, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
};
use faasrail::prelude::*;
use faasrail::telemetry::Snapshot;
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use faasrail::workloads::WorkloadId;
use std::io::BufReader;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Outcome depends only on the request itself (no shared counters, no
/// clock), so a sharded fleet and a single process must classify every
/// request identically — and an impostor can *truthfully* claim a prefix
/// it never ran.
struct DeterministicBackend;

impl Backend for DeterministicBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match req.function_index % 7 {
            0 => InvocationResult::app_error(0.2, "synthetic app failure"),
            1 => InvocationResult::timeout("synthetic deadline"),
            2 => InvocationResult::shed("synthetic overload"),
            _ => InvocationResult::success(0.2, req.function_index.is_multiple_of(5)),
        }
    }
    fn name(&self) -> &str {
        "deterministic"
    }
}

/// What [`DeterministicBackend`] would report for the first `watermark`
/// requests of `trace` — the prefix a crashing impostor claims.
fn claimed_prefix(trace: &RequestTrace, work: u64, watermark: usize) -> WorkPrefix {
    let mut p = WorkPrefix { work, watermark: watermark as u64, ..WorkPrefix::default() };
    for r in &trace.requests[..watermark] {
        match r.function_index % 7 {
            0 => p.errors[0] += 1,
            1 => p.errors[1] += 1,
            2 => p.errors[3] += 1, // shed
            _ => {
                p.completed += 1;
                if r.function_index.is_multiple_of(5) {
                    p.cold_starts += 1;
                }
            }
        }
    }
    assert!(p.is_consistent());
    p
}

fn small_schedule(seed: u64) -> (RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 250, 40_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(3, 3.0)).unwrap();
    let reqs = generate_requests(&spec, seed);
    assert!(reqs.len() > 50, "schedule too small to exercise sharding: {}", reqs.len());
    (reqs, pool)
}

fn fast_fleet_config(agents: usize, capture_events: bool) -> FleetConfig {
    FleetConfig {
        agents,
        workers: 3,
        pacing: Pacing::Unpaced,
        capture_events,
        progress_every_ms: 100,
        start_delay_ms: 100,
        target: None,
        probes: 3,
        live: false,
        agent_timeout: Duration::from_secs(10),
        lease_ms: 5_000,
        reshard: true,
        console: None,
    }
}

fn per_minute(reqs: &RequestTrace) -> Vec<u64> {
    let mut v = Vec::new();
    for r in &reqs.requests {
        let m = (r.at_ms / 60_000) as usize;
        if v.len() <= m {
            v.resize(m + 1, 0);
        }
        v[m] += 1;
    }
    v
}

/// Speak the v2 protocol through the handshake and return at `Start`
/// with the received assignment and the live connection halves.
fn impostor_handshake(
    addr: std::net::SocketAddr,
    name: &str,
) -> (BufReader<TcpStream>, TcpStream, Assignment) {
    let stream = TcpStream::connect(addr).unwrap();
    stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut writer = stream;
    let hello = FleetMessage::Hello {
        name: name.into(),
        wall_us: wall_clock_us(),
        proto: PROTOCOL_VERSION,
        resume_token: None,
    };
    write_frame(&mut writer, &hello).unwrap();
    let mut assignment = None;
    loop {
        match read_frame(&mut reader).unwrap().unwrap() {
            FleetMessage::HelloAck { proto, .. } => assert_eq!(proto, PROTOCOL_VERSION),
            FleetMessage::Probe { seq, wall_us } => {
                let reply =
                    FleetMessage::ProbeReply { seq, wall_us, agent_wall_us: wall_clock_us() };
                write_frame(&mut writer, &reply).unwrap();
            }
            FleetMessage::Assign { assignment: a } => {
                let ready =
                    FleetMessage::Ready { shard: a.shard, requests: a.trace.requests.len() as u64 };
                write_frame(&mut writer, &ready).unwrap();
                assignment = Some(a);
            }
            FleetMessage::Start { .. } => {
                return (reader, writer, assignment.expect("assign before start"));
            }
            other => panic!("unexpected frame {other:?}"),
        }
    }
}

#[test]
fn two_agent_fleet_matches_single_process_replay() {
    let (reqs, pool) = small_schedule(21);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = fast_fleet_config(2, true);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        for i in 0..2 {
            scope.spawn(move || {
                let agent_cfg = AgentConfig { name: format!("agent-{i}"), ..Default::default() };
                let run = run_agent_with(addr, &agent_cfg, |_| {
                    Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
                })
                .unwrap();
                assert!(run.is_some(), "agent {i} must run to completion");
            });
        }
        run.join().unwrap()
    });

    let single = replay(
        &reqs,
        &pool,
        &DeterministicBackend,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
    );

    // The outcome partition is *identical* — not approximately equal.
    let m = &report.metrics;
    assert_eq!(report.offered as usize, reqs.len());
    assert_eq!(report.aborted_invocations, 0);
    assert_eq!(m.issued, single.issued);
    assert_eq!(m.completed, single.completed);
    assert_eq!(m.errors, single.errors);
    assert_eq!(m.app_errors, single.app_errors);
    assert_eq!(m.timeouts, single.timeouts);
    assert_eq!(m.transport_errors, single.transport_errors);
    assert_eq!(m.shed, single.shed);
    assert_eq!(m.cold_starts, single.cold_starts);
    assert_eq!(m.per_kind, single.per_kind);
    assert_eq!(m.issued_per_minute, single.issued_per_minute);
    assert!(!m.aborted);
    assert_eq!(m.completed + m.errors + report.aborted_invocations, report.offered);

    // Both agents completed and together cover the schedule exactly.
    assert_eq!(report.shards, 2);
    assert_eq!(report.agents.len(), 2);
    assert!(report.agents.iter().all(|a| a.completed && a.status == "done"), "{:?}", report.agents);
    assert_eq!(report.agents.iter().map(|a| a.assigned).sum::<u64>(), report.offered);
    let names: Vec<&str> = report.agents.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"agent-0") && names.contains(&"agent-1"), "{names:?}");
    assert!(report.reassignments.is_empty(), "nothing died; nothing reshards");
    assert!(report.abort_reasons.is_empty());

    // Captured spans merged across agents: one per offered request, and
    // the merged report reproduces the metrics.
    let spans = report
        .events
        .iter()
        .filter(|e| matches!(e, faasrail::telemetry::TelemetryEvent::Invocation(_)))
        .count();
    assert_eq!(spans as u64, report.offered, "no span lost or duplicated in the merge");
    let rr = report.run_report.as_ref().expect("capture_events builds a run report");
    assert_eq!(rr.issued, m.issued);
    assert_eq!(rr.completed, m.completed);
    assert_eq!(rr.timeouts, m.timeouts);
}

/// The tentpole claim: kill 1 of 3 agents at ~40% of its shard and the
/// fleet still completes 100% of the offered schedule via resharding —
/// zero aborted invocations, outcome partition and per-minute offered
/// series bit-identical to an unkilled (single-process) run.
#[test]
fn killing_one_of_three_reshards_to_survivors() {
    let (reqs, pool) = small_schedule(23);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = fast_fleet_config(3, false);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        for i in 0..2 {
            scope.spawn(move || {
                let agent_cfg = AgentConfig { name: format!("survivor-{i}"), ..Default::default() };
                run_agent_with(addr, &agent_cfg, |_| {
                    Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
                })
                .unwrap()
                .expect("survivors run to completion");
            });
        }
        // The victim: a scripted agent that truthfully reports ~40% of
        // its shard finished (outcomes the deterministic backend would
        // have produced), then crashes.
        scope.spawn(move || {
            let (_reader, mut writer, assignment) = impostor_handshake(addr, "victim");
            let shard_len = assignment.trace.requests.len();
            assert!(shard_len > 10, "victim's shard too small: {shard_len}");
            let watermark = shard_len * 2 / 5;
            let prefix = claimed_prefix(&assignment.trace, assignment.shard as u64, watermark);
            let snapshot = Snapshot {
                issued: prefix.watermark,
                completed: prefix.completed,
                errors: prefix.errors,
                cold_starts: prefix.cold_starts,
                ..Snapshot::default()
            };
            let progress = FleetMessage::Progress {
                shard: assignment.shard,
                snapshot,
                prefixes: vec![prefix],
                lag_ms: 0,
                max_lag_ms: 0,
                idle: false,
            };
            write_frame(&mut writer, &progress).unwrap();
            // Dropping both halves closes the socket: a crash, not a stall.
        });
        run.join().unwrap()
    });

    let single = replay(
        &reqs,
        &pool,
        &DeterministicBackend,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
    );

    let m = &report.metrics;
    assert_eq!(report.aborted_invocations, 0, "resharding leaves no aborted remainder");
    assert!(!m.aborted);
    assert_eq!(m.issued, single.issued);
    assert_eq!(m.completed, single.completed);
    assert_eq!(m.errors, single.errors);
    assert_eq!(m.app_errors, single.app_errors);
    assert_eq!(m.timeouts, single.timeouts);
    assert_eq!(m.shed, single.shed);
    assert_eq!(m.cold_starts, single.cold_starts);
    assert_eq!(m.per_kind, single.per_kind);
    assert_eq!(
        m.issued_per_minute, single.issued_per_minute,
        "per-minute offered series must be bit-identical to an unkilled run"
    );
    assert_eq!(m.completed + m.errors + report.aborted_invocations, report.offered);

    let victim = report.agents.iter().find(|a| a.name == "victim").unwrap();
    assert_eq!(victim.status, "crash");
    assert!(!victim.completed);
    assert!(!report.reassignments.is_empty(), "the victim's remainder was regranted");
    let regranted: u64 = report.reassignments.iter().map(|r| r.requests).sum();
    let watermark = victim.assigned as usize * 2 / 5;
    assert_eq!(regranted, victim.assigned - watermark as u64);
    assert!(report.reassignments.iter().all(|r| r.from_shard == victim.shard));
    let granted: u64 =
        report.agents.iter().filter(|a| a.name.starts_with("survivor")).map(|a| a.granted).sum();
    assert_eq!(granted, report.reassignments.len() as u64);
}

/// A connected-but-silent agent trips the lease and reshards just like a
/// crash — but with a distinguishable `stall` status.
#[test]
fn stalled_agent_is_detected_and_resharded() {
    let (reqs, pool) = small_schedule(24);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = FleetConfig { lease_ms: 500, ..fast_fleet_config(2, false) };
    let done = AtomicBool::new(false);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        scope.spawn(|| {
            let agent_cfg = AgentConfig { name: "survivor".into(), ..Default::default() };
            run_agent_with(addr, &agent_cfg, |_| {
                Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
            })
            .unwrap()
            .expect("survivor runs to completion");
        });
        let done = &done;
        scope.spawn(move || {
            // Handshake, then go silent while *keeping the socket open*.
            let (_reader, _writer, _assignment) = impostor_handshake(addr, "sleeper");
            while !done.load(Ordering::Acquire) {
                std::thread::sleep(Duration::from_millis(20));
            }
        });
        let report = run.join().unwrap();
        done.store(true, Ordering::Release);
        report
    });

    assert_eq!(report.aborted_invocations, 0);
    assert_eq!(report.metrics.completed + report.metrics.errors, report.offered);
    let sleeper = report.agents.iter().find(|a| a.name == "sleeper").unwrap();
    assert_eq!(sleeper.status, "stall", "silence past the lease is a stall, not a crash");
    assert!(!report.reassignments.is_empty());
    assert_eq!(
        report.reassignments.iter().map(|r| r.requests).sum::<u64>(),
        sleeper.assigned,
        "the sleeper acked nothing, so its whole shard moves"
    );
}

/// Killing every agent cannot hang the run or lose accounting: the
/// coordinator terminates with the entire schedule aborted, and the
/// per-minute aborted series is exactly the offered schedule's.
#[test]
fn killing_every_agent_terminates_with_full_accounting() {
    let (reqs, pool) = small_schedule(25);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = fast_fleet_config(2, false);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        for i in 0..2 {
            scope.spawn(move || {
                // Crash the moment the run starts.
                let _ = impostor_handshake(addr, &format!("casualty-{i}"));
            });
        }
        run.join().unwrap()
    });

    assert_eq!(report.aborted_invocations, report.offered, "nothing ran anywhere");
    assert_eq!(report.metrics.issued, 0);
    assert!(report.metrics.aborted);
    assert!(report.agents.iter().all(|a| a.status == "crash"));
    let aborted_pm = report.aborted_per_minute.as_ref().expect("resharding runs track the series");
    assert_eq!(aborted_pm.iter().sum::<u64>(), report.offered);
    assert_eq!(aborted_pm, &per_minute(&reqs), "aborted minute-by-minute == offered schedule");
}

/// A protocol-version mismatch is refused with a clean `Abort` naming
/// both versions, and the coordinator reports the handshake failure.
#[test]
fn version_mismatch_is_refused_with_abort() {
    let (reqs, pool) = small_schedule(26);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = fast_fleet_config(1, false);

    std::thread::scope(|scope| {
        let run = scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)));
        scope.spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let hello = FleetMessage::Hello {
                name: "time-traveler".into(),
                wall_us: wall_clock_us(),
                proto: 999,
                resume_token: None,
            };
            write_frame(&mut writer, &hello).unwrap();
            match read_frame(&mut reader).unwrap().unwrap() {
                FleetMessage::Abort { reason } => {
                    assert!(reason.contains("999") && reason.contains("version"), "{reason}");
                }
                other => panic!("expected abort, got {other:?}"),
            }
        });
        let err = run.join().unwrap().expect_err("mismatched agent fails the handshake");
        assert!(err.to_string().contains("protocol version mismatch"), "{err}");
    });
}

/// An agent that loses the coordinator link reconnects with the resume
/// token from its `HelloAck` and serves grants as fresh capacity. The
/// coordinator here is scripted so the test controls the link loss.
#[test]
fn agent_rejoins_with_resume_token_and_serves_grants() {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let pool = WorkloadPool::vanilla(&CostModel::default_calibration());
    let mini = |n: u64| RequestTrace {
        duration_minutes: 1,
        requests: (0..n)
            .map(|i| Request { at_ms: i * 10, workload: WorkloadId(0), function_index: 4 })
            .collect(),
    };
    let assignment = |trace: RequestTrace, pool: &WorkloadPool| Assignment {
        shard: 0,
        shards: 1,
        pacing: Pacing::Unpaced,
        workers: 2,
        capture_events: false,
        progress_every_ms: 50,
        target: None,
        trace,
        pool: pool.clone(),
        event_capacity: 0,
    };

    std::thread::scope(|scope| {
        let (pool, mini, assignment) = (&pool, &mini, &assignment);
        let script = scope.spawn(move || {
            let expect_hello =
                |reader: &mut BufReader<TcpStream>| match read_frame(reader).unwrap().unwrap() {
                    FleetMessage::Hello { proto, resume_token, .. } => {
                        assert_eq!(proto, PROTOCOL_VERSION);
                        resume_token
                    }
                    other => panic!("expected hello, got {other:?}"),
                };
            // Connection 1: admit, assign, start — then hang up.
            let (stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            assert_eq!(expect_hello(&mut reader), None, "first contact has no resume token");
            let ack = FleetMessage::HelloAck {
                proto: PROTOCOL_VERSION,
                token: "tok-1".into(),
                lease_ms: 5_000,
            };
            write_frame(&mut writer, &ack).unwrap();
            write_frame(
                &mut writer,
                &FleetMessage::Assign { assignment: assignment(mini(5), pool) },
            )
            .unwrap();
            match read_frame(&mut reader).unwrap().unwrap() {
                FleetMessage::Ready { requests: 5, .. } => {}
                other => panic!("expected ready for 5, got {other:?}"),
            }
            write_frame(&mut writer, &FleetMessage::Start { at_agent_wall_us: wall_clock_us() })
                .unwrap();
            drop(writer);
            drop(reader); // link lost

            // Connection 2: the rejoin. Same agent, token echoed back.
            let (stream, _) = listener.accept().unwrap();
            stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            assert_eq!(
                expect_hello(&mut reader),
                Some("tok-1".into()),
                "rejoin presents the HelloAck token"
            );
            let ack = FleetMessage::HelloAck {
                proto: PROTOCOL_VERSION,
                token: "tok-2".into(),
                lease_ms: 5_000,
            };
            write_frame(&mut writer, &ack).unwrap();
            write_frame(
                &mut writer,
                &FleetMessage::Assign { assignment: assignment(mini(0), pool) },
            )
            .unwrap();
            match read_frame(&mut reader).unwrap().unwrap() {
                FleetMessage::Ready { requests: 0, .. } => {}
                other => panic!("expected empty ready, got {other:?}"),
            }
            write_frame(&mut writer, &FleetMessage::Start { at_agent_wall_us: wall_clock_us() })
                .unwrap();

            // Fresh capacity: hand it a grant, watch the prefix complete.
            let grant = Grant { id: 1 << 32, origin_shard: 7, elapsed_ms: 0, trace: mini(3) };
            write_frame(&mut writer, &FleetMessage::Reassign { grant }).unwrap();
            let mut acked = false;
            loop {
                match read_frame(&mut reader).unwrap().unwrap() {
                    FleetMessage::ReassignAck { grant: id, requests, .. } => {
                        assert_eq!(id, 1 << 32);
                        assert_eq!(requests, 3);
                        acked = true;
                    }
                    FleetMessage::Progress { prefixes, .. } => {
                        if let Some(p) = prefixes.iter().find(|p| p.work == 1 << 32) {
                            if p.watermark == 3 {
                                assert!(acked, "ack precedes completion");
                                assert!(p.is_consistent());
                                break;
                            }
                        }
                    }
                    other => panic!("unexpected frame {other:?}"),
                }
            }
            write_frame(&mut writer, &FleetMessage::Finish).unwrap();
            loop {
                match read_frame(&mut reader).unwrap().unwrap() {
                    FleetMessage::Done { metrics, .. } => {
                        assert_eq!(metrics.issued, 3, "second session ran exactly the grant");
                        break;
                    }
                    FleetMessage::Progress { .. } => {}
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        });

        let agent_cfg = AgentConfig {
            name: "phoenix".into(),
            retry_delay: Duration::from_millis(50),
            max_rejoin_backoff: Duration::from_millis(200),
            ..Default::default()
        };
        let run = run_agent_with(addr, &agent_cfg, |_| {
            Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
        })
        .unwrap()
        .expect("rejoined agent finishes");
        assert_eq!(run.rejoined, 1, "exactly one link loss");
        assert_eq!(run.granted, 1, "served the regrant after rejoining");
        assert_eq!(run.metrics.issued, 3);
        script.join().unwrap();
    });
}

/// `--no-reshard` restores the pre-elastic semantics exactly: a lost
/// shard's remainder books as aborted from its last snapshot and nothing
/// is reassigned.
#[test]
fn no_reshard_degrades_to_aborted_remainder() {
    let (reqs, pool) = small_schedule(22);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = FleetConfig { reshard: false, ..fast_fleet_config(2, false) };

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        scope.spawn(move || {
            let agent_cfg = AgentConfig { name: "survivor".into(), ..Default::default() };
            run_agent_with(addr, &agent_cfg, |_| {
                Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
            })
            .unwrap();
        });
        // An impostor that crashes the moment the run starts.
        scope.spawn(move || {
            let _ = impostor_handshake(addr, "crasher");
        });
        run.join().unwrap()
    });

    let crashed = report.agents.iter().find(|a| a.name == "crasher").expect("impostor in report");
    let survivor = report.agents.iter().find(|a| a.name == "survivor").expect("agent in report");
    assert!(!crashed.completed, "dead shard must be marked lost");
    assert_eq!(crashed.status, "crash");
    assert!(survivor.completed);
    assert_eq!(survivor.status, "done");

    // The dead shard never dispatched anything, so its entire assignment
    // is the aborted remainder — and the partition still balances.
    assert_eq!(report.aborted_invocations, crashed.assigned);
    assert!(report.aborted_invocations > 0, "crasher's shard must not be empty");
    assert!(report.reassignments.is_empty(), "no-reshard must not reassign");
    assert!(report.aborted_per_minute.is_none(), "pre-elastic accounting has no aborted series");
    let m = &report.metrics;
    assert!(m.aborted, "a degraded fleet run is marked aborted");
    assert_eq!(m.completed + m.errors, survivor.assigned);
    assert_eq!(m.completed + m.errors + report.aborted_invocations, report.offered);
}

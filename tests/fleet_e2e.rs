//! End-to-end fleet mode: a coordinator and real agent processes (well,
//! threads — same protocol, same code paths, real TCP) replaying one
//! sharded schedule.
//!
//! The load-bearing claims:
//! * a 2-agent fleet produces exactly the same outcome partition as a
//!   single-process replay of the same spec — sharding changes *where*
//!   requests run, never *what* runs;
//! * killing an agent mid-run degrades the report (its shard's remainder
//!   books as aborted) instead of hanging the coordinator.

use faasrail::fleet::{
    run_agent_with, wall_clock_us, write_frame, AgentConfig, Coordinator, FleetConfig, FleetMessage,
};
use faasrail::loadgen::{
    replay, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
};
use faasrail::prelude::*;
use faasrail::trace::azure::{generate as gen_azure, AzureTraceConfig};
use std::io::BufReader;
use std::net::TcpStream;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::Duration;

/// Outcome depends only on the request itself (no shared counters, no
/// clock), so a sharded fleet and a single process must classify every
/// request identically.
struct DeterministicBackend;

impl Backend for DeterministicBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        match req.function_index % 7 {
            0 => InvocationResult::app_error(0.2, "synthetic app failure"),
            1 => InvocationResult::timeout("synthetic deadline"),
            2 => InvocationResult::shed("synthetic overload"),
            _ => InvocationResult::success(0.2, req.function_index % 5 == 0),
        }
    }
    fn name(&self) -> &str {
        "deterministic"
    }
}

fn small_schedule(seed: u64) -> (faasrail::core::RequestTrace, WorkloadPool) {
    let trace = gen_azure(&AzureTraceConfig::scaled(seed, 250, 40_000));
    let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(3, 3.0)).unwrap();
    let reqs = generate_requests(&spec, seed);
    assert!(reqs.len() > 50, "schedule too small to exercise sharding: {}", reqs.len());
    (reqs, pool)
}

fn fast_fleet_config(agents: usize, capture_events: bool) -> FleetConfig {
    FleetConfig {
        agents,
        workers: 3,
        pacing: Pacing::Unpaced,
        capture_events,
        progress_every_ms: 100,
        start_delay_ms: 100,
        target: None,
        probes: 3,
        live: false,
        agent_timeout: Duration::from_secs(10),
    }
}

#[test]
fn two_agent_fleet_matches_single_process_replay() {
    let (reqs, pool) = small_schedule(21);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    let cfg = fast_fleet_config(2, true);

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        for i in 0..2 {
            scope.spawn(move || {
                let agent_cfg = AgentConfig { name: format!("agent-{i}"), ..Default::default() };
                let run = run_agent_with(addr, &agent_cfg, |_| {
                    Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
                })
                .unwrap();
                assert!(run.is_some(), "agent {i} must run to completion");
            });
        }
        run.join().unwrap()
    });

    let single = replay(
        &reqs,
        &pool,
        &DeterministicBackend,
        &ReplayConfig { pacing: Pacing::Unpaced, workers: 3 },
    );

    // The outcome partition is *identical* — not approximately equal.
    let m = &report.metrics;
    assert_eq!(report.offered as usize, reqs.len());
    assert_eq!(report.aborted_invocations, 0);
    assert_eq!(m.issued, single.issued);
    assert_eq!(m.completed, single.completed);
    assert_eq!(m.errors, single.errors);
    assert_eq!(m.app_errors, single.app_errors);
    assert_eq!(m.timeouts, single.timeouts);
    assert_eq!(m.transport_errors, single.transport_errors);
    assert_eq!(m.shed, single.shed);
    assert_eq!(m.cold_starts, single.cold_starts);
    assert_eq!(m.per_kind, single.per_kind);
    assert_eq!(m.issued_per_minute, single.issued_per_minute);
    assert!(!m.aborted);
    assert_eq!(m.completed + m.errors + report.aborted_invocations, report.offered);

    // Both agents completed and together cover the schedule exactly.
    assert_eq!(report.shards, 2);
    assert_eq!(report.agents.len(), 2);
    assert!(report.agents.iter().all(|a| a.completed));
    assert_eq!(report.agents.iter().map(|a| a.assigned).sum::<u64>(), report.offered);
    let names: Vec<&str> = report.agents.iter().map(|a| a.name.as_str()).collect();
    assert!(names.contains(&"agent-0") && names.contains(&"agent-1"), "{names:?}");

    // Captured spans merged across agents: one per offered request, and
    // the merged report reproduces the metrics.
    let spans = report
        .events
        .iter()
        .filter(|e| matches!(e, faasrail::telemetry::TelemetryEvent::Invocation(_)))
        .count();
    assert_eq!(spans as u64, report.offered, "no span lost or duplicated in the merge");
    let rr = report.run_report.as_ref().expect("capture_events builds a run report");
    assert_eq!(rr.issued, m.issued);
    assert_eq!(rr.completed, m.completed);
    assert_eq!(rr.timeouts, m.timeouts);
}

#[test]
fn lost_agent_degrades_to_aborted_remainder() {
    let (reqs, pool) = small_schedule(22);
    let coordinator = Coordinator::bind("127.0.0.1:0").unwrap();
    let addr = coordinator.local_addr().unwrap();
    // Short timeout so the dead shard resolves quickly.
    let cfg = FleetConfig { agent_timeout: Duration::from_secs(2), ..fast_fleet_config(2, false) };

    let report = std::thread::scope(|scope| {
        let run =
            scope.spawn(|| coordinator.run(&reqs, &pool, &cfg, &AtomicBool::new(false)).unwrap());
        // A well-behaved agent...
        scope.spawn(move || {
            let agent_cfg = AgentConfig { name: "survivor".into(), ..Default::default() };
            run_agent_with(addr, &agent_cfg, |_| {
                Ok(Arc::new(DeterministicBackend) as Arc<dyn Backend>)
            })
            .unwrap();
        });
        // ...and an impostor that speaks the protocol through the
        // handshake, then dies the moment the run starts.
        scope.spawn(move || {
            let stream = TcpStream::connect(addr).unwrap();
            let mut reader = BufReader::new(stream.try_clone().unwrap());
            let mut writer = stream;
            let hello = FleetMessage::Hello { name: "crasher".into(), wall_us: wall_clock_us() };
            write_frame(&mut writer, &hello).unwrap();
            loop {
                match faasrail::fleet::read_frame(&mut reader).unwrap().unwrap() {
                    FleetMessage::Probe { seq, wall_us } => {
                        let reply = FleetMessage::ProbeReply {
                            seq,
                            wall_us,
                            agent_wall_us: wall_clock_us(),
                        };
                        write_frame(&mut writer, &reply).unwrap();
                    }
                    FleetMessage::Assign { assignment } => {
                        let ready = FleetMessage::Ready {
                            shard: assignment.shard,
                            requests: assignment.trace.requests.len() as u64,
                        };
                        write_frame(&mut writer, &ready).unwrap();
                    }
                    FleetMessage::Start { .. } => return, // drop the connection: crash
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        });
        run.join().unwrap()
    });

    let crashed = report.agents.iter().find(|a| a.name == "crasher").expect("impostor in report");
    let survivor = report.agents.iter().find(|a| a.name == "survivor").expect("agent in report");
    assert!(!crashed.completed, "dead shard must be marked lost");
    assert!(survivor.completed);

    // The dead shard never dispatched anything, so its entire assignment
    // is the aborted remainder — and the partition still balances.
    assert_eq!(report.aborted_invocations, crashed.assigned);
    assert!(report.aborted_invocations > 0, "crasher's shard must not be empty");
    let m = &report.metrics;
    assert!(m.aborted, "a degraded fleet run is marked aborted");
    assert_eq!(m.completed + m.errors, survivor.assigned);
    assert_eq!(m.completed + m.errors + report.aborted_invocations, report.offered);
}

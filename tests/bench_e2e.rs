//! Acceptance suite for the online-tier benchmark harness (ISSUE 9).
//!
//! 1. **Fixed-rate on loopback** — a real `HttpBackend → 127.0.0.1 →
//!    Gateway(noop)` rung produces a schema-valid `BenchReport` with all
//!    five stages quantified (p50/p95/p99/p999), environment metadata,
//!    and a clean outcome partition.
//! 2. **Saturation on loopback** — the bracket-and-bisect search runs
//!    end-to-end over TCP and reports a positive sustained rate under
//!    generous criteria.
//! 3. **Regression gate** — `diff` fires on an injected p99 regression
//!    past the threshold and stays silent under it.
//! 4. **Properties** — `BenchReport` serde round-trips *exactly* (bit
//!    equality, via proptest), and `diff(A, A)` is all-zero at every
//!    threshold (symmetric consistency).

use faasrail::gateway::{Gateway, GatewayConfig, HttpBackend, HttpBackendConfig, RetryPolicy};
use faasrail::loadgen::{ArrivalProcess, NoopBackend};
use faasrail::prelude::*;
use faasrail::workloads::WorkloadId;
use faasrail_bench::harness::{
    diff_reports, run_fixed_rate, saturation_search, AcceptCriteria, BenchReport, BenchWorkload,
    FixedRateSpec, LatencyQuantiles, RateRun, SaturationSummary, SearchConfig, StageLatencies,
    SCHEMA,
};
use proptest::prelude::*;
use std::sync::Arc;
use std::time::Duration;

fn loopback_gateway() -> faasrail::gateway::GatewayHandle {
    Gateway::bind("127.0.0.1:0", Arc::new(NoopBackend), GatewayConfig::default())
        .expect("bind loopback")
        .spawn()
}

fn connect(addr: &str) -> HttpBackend {
    let cfg = HttpBackendConfig {
        request_timeout: Duration::from_secs(2),
        retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
        ..HttpBackendConfig::default()
    };
    HttpBackend::connect(addr, cfg).expect("connect")
}

fn vanilla_pool() -> WorkloadPool {
    WorkloadPool::vanilla(&CostModel::default_calibration())
}

fn gateway_workload(duration_s: f64, workers: u64) -> BenchWorkload {
    BenchWorkload {
        arrivals: "uniform".to_string(),
        duration_s,
        workers,
        seed: 42,
        target: "loopback/noop".to_string(),
    }
}

#[test]
fn fixed_rate_bench_produces_schema_valid_report_on_loopback() {
    let handle = loopback_gateway();
    let backend = connect(&handle.addr().to_string());
    let pool = vanilla_pool();
    let spec = FixedRateSpec {
        rps: 200.0,
        duration_s: 1.0,
        workers: 4,
        process: ArrivalProcess::Uniform,
        seed: 42,
        workload: WorkloadId(7),
    };
    let run = run_fixed_rate(&backend, &pool, &spec);
    handle.stop();

    // Open loop: everything scheduled was offered, and a loopback noop
    // gateway at 200 rps completes cleanly.
    assert_eq!(run.offered, 200);
    assert_eq!(run.completed + run.errors, run.offered);
    assert_eq!(run.errors, 0, "loopback noop rung must be error-free");
    assert_eq!(run.error_rate, 0.0);
    assert!(run.achieved_rps > 100.0, "achieved {}", run.achieved_rps);

    // Every stage is quantified with ordered tails.
    for (name, q) in [
        ("lateness", &run.stages.lateness),
        ("queue_wait", &run.stages.queue_wait),
        ("service", &run.stages.service),
        ("overhead", &run.stages.overhead),
        ("response", &run.stages.response),
    ] {
        assert!(q.count > 0, "{name} unmeasured");
        assert!(
            q.p50_ms <= q.p95_ms && q.p95_ms <= q.p99_ms && q.p99_ms <= q.p999_ms,
            "{name} tails out of order: {q:?}"
        );
    }
    assert!(run.stages.response.p50_ms > 0.0, "a TCP round trip takes nonzero time");

    // The report the CLI writes: schema-valid, env-stamped, round-trips.
    let mut report = BenchReport::new("gateway-loopback", "gateway", gateway_workload(1.0, 4));
    report.runs.push(run);
    let json = report.to_json();
    let back = BenchReport::from_json(&json).expect("schema-valid");
    assert_eq!(report, back);
    assert_eq!(back.schema, SCHEMA);
    assert!(!back.env.build.git_sha.is_empty());
    assert!(!back.env.build.rustc.is_empty());
    assert!(back.env.cores > 0);
    assert!(json.contains("p999_ms"), "documented schema carries p999 per stage");
}

#[test]
fn saturation_search_runs_end_to_end_on_loopback() {
    let handle = loopback_gateway();
    let backend = connect(&handle.addr().to_string());
    let pool = vanilla_pool();
    // Generous criteria: this asserts the plumbing (search over real TCP
    // rungs), not the machine's absolute capacity.
    let criteria =
        AcceptCriteria { p99_ms: 2_000.0, max_error_rate: 0.05, max_lateness_p99_ms: 2_000.0 };
    let search =
        SearchConfig { start_rps: 50.0, max_rps: 200.0, resolution_rps: 50.0, max_probes: 6 };
    let (summary, runs) = saturation_search(
        |rps| {
            let spec = FixedRateSpec {
                rps,
                duration_s: 0.5,
                workers: 4,
                process: ArrivalProcess::Uniform,
                seed: 7,
                workload: WorkloadId(7),
            };
            run_fixed_rate(&backend, &pool, &spec)
        },
        &criteria,
        &search,
    );
    handle.stop();

    assert!(summary.max_sustained_rps >= 50.0, "loopback noop sustains ≥ start: {summary:?}");
    assert_eq!(summary.probes as usize, runs.len());
    assert!(!runs.is_empty());
    assert!(runs.iter().all(|r| r.offered > 0));

    let mut report = BenchReport::new("gateway-saturate", "gateway", gateway_workload(0.5, 4));
    report.runs = runs;
    report.saturation = Some(summary);
    let back = BenchReport::from_json(&report.to_json()).expect("schema-valid");
    assert_eq!(report, back);
}

#[test]
fn diff_gate_fires_on_p99_regression_beyond_threshold_only() {
    let baseline = synthetic_report(10.0, 4_000.0);
    // +60% p99 (and well past the absolute noise floor).
    let regressed = synthetic_report(16.0, 4_000.0);

    let diff = diff_reports(&baseline, &regressed).expect("same tier");
    let fired = diff.regressions(0.10);
    assert!(
        fired.iter().any(|r| r.metric.contains("response.p99_ms")),
        "p99 regression must fire: {fired:?}"
    );
    // The CLI exits nonzero exactly when this list is non-empty.
    assert!(!fired.is_empty());
    // Under a tolerant threshold the same delta passes.
    assert!(diff.regressions(0.80).is_empty());
    // And the improvement direction never fires.
    let diff = diff_reports(&regressed, &baseline).expect("same tier");
    assert!(diff.regressions(0.10).is_empty());
}

fn synthetic_report(p99_ms: f64, sustained_rps: f64) -> BenchReport {
    let mut report = BenchReport::new("synthetic", "gateway", gateway_workload(1.0, 4));
    let quantiles = |scale: f64| LatencyQuantiles {
        count: 1_000,
        mean_ms: 0.4 * scale,
        p50_ms: 0.3 * scale,
        p95_ms: 0.7 * scale,
        p99_ms: scale,
        p999_ms: 1.4 * scale,
        max_ms: 2.0 * scale,
    };
    report.runs.push(RateRun {
        target_rps: 1_000.0,
        duration_s: 1.0,
        offered: 1_000,
        completed: 1_000,
        errors: 0,
        achieved_rps: 1_000.0,
        error_rate: 0.0,
        accepted: true,
        stages: StageLatencies {
            response: quantiles(p99_ms),
            queue_wait: quantiles(p99_ms / 10.0),
            ..Default::default()
        },
    });
    report.saturation = Some(SaturationSummary {
        max_sustained_rps: sustained_rps,
        criteria: AcceptCriteria::default(),
        probes: 5,
    });
    report
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

fn arb_quantiles() -> impl Strategy<Value = LatencyQuantiles> {
    ((any::<u32>(), 0.0..1e6f64, 0.0..1e6f64, 0.0..1e6f64), (0.0..1e6f64, 0.0..1e6f64, 0.0..1e6f64))
        .prop_map(|((count, mean, p50, p95), (p99, p999, max))| LatencyQuantiles {
            count: count as u64,
            mean_ms: mean,
            p50_ms: p50,
            p95_ms: p95,
            p99_ms: p99,
            p999_ms: p999,
            max_ms: max,
        })
}

fn arb_run() -> impl Strategy<Value = RateRun> {
    (1.0..1e5f64, 0.1..60.0f64, any::<u16>(), any::<u16>(), arb_quantiles(), arb_quantiles())
        .prop_map(|(rps, duration, completed, errors, response, lateness)| {
            let completed = completed as u64;
            let errors = errors as u64;
            let offered = completed + errors;
            RateRun {
                target_rps: rps,
                duration_s: duration,
                offered,
                completed,
                errors,
                achieved_rps: completed as f64 / duration,
                error_rate: if offered > 0 { errors as f64 / offered as f64 } else { 0.0 },
                accepted: errors == 0,
                stages: StageLatencies { response, lateness, ..Default::default() },
            }
        })
}

fn arb_report() -> impl Strategy<Value = BenchReport> {
    let arb_saturation = prop_oneof![
        Just(None::<SaturationSummary>),
        (1.0..1e5f64, 1u64..50).prop_map(|(rps, probes)| {
            Some(SaturationSummary {
                max_sustained_rps: rps,
                criteria: AcceptCriteria::default(),
                probes,
            })
        }),
    ];
    (prop::collection::vec(arb_run(), 0..5), arb_saturation, any::<u64>()).prop_map(
        |(runs, saturation, seed)| {
            let mut report = BenchReport::new("prop", "gateway", gateway_workload(1.0, 4));
            report.workload.seed = seed;
            report.runs = runs;
            report.saturation = saturation;
            report
        },
    )
}

proptest! {
    /// The trajectory format must survive write → read with *bit-exact*
    /// equality — a lossy schema would manufacture phantom perf deltas.
    #[test]
    fn bench_report_serde_round_trips_exactly(report in arb_report()) {
        let back = BenchReport::from_json(&report.to_json()).expect("own output parses");
        prop_assert_eq!(report, back);
    }

    /// diff(A, A) is all-zero and can never fire, at any threshold —
    /// otherwise the CI gate would flag unchanged performance.
    #[test]
    fn self_diff_is_zero_and_never_fires(report in arb_report(), threshold in 0.0..10.0f64) {
        let diff = diff_reports(&report, &report).expect("same tier");
        for row in &diff.rows {
            prop_assert_eq!(row.delta(), 0.0);
            prop_assert_eq!(row.delta_frac(), 0.0);
        }
        prop_assert!(diff.unmatched.is_empty());
        prop_assert!(diff.regressions(threshold).is_empty());
    }
}

//! Property tests over the shrink-ray pipeline with randomly generated
//! miniature traces: the invariants must hold for *any* valid input, not
//! just the synthetic Azure/Huawei profiles.

use faasrail_core::{generate_requests, shrink, ShrinkError, ShrinkRayConfig};
use faasrail_trace::{
    App, AppId, DayStats, FunctionId, MinuteSeries, Trace, TraceFunction, TraceKind,
    MINUTES_PER_DAY,
};
use faasrail_workloads::{CostModel, WorkloadPool};
use proptest::prelude::*;

/// Strategy: a small arbitrary trace (1–40 functions, arbitrary sparse
/// minute patterns, durations spanning 1 ms – 200 s).
fn arb_trace() -> impl Strategy<Value = Trace> {
    let arb_function = (
        0.0f64..1.0, // duration position (log space)
        proptest::collection::btree_map(0u16..MINUTES_PER_DAY as u16, 1u32..500, 1..30),
    );
    proptest::collection::vec(arb_function, 1..40).prop_map(|fns| {
        let functions: Vec<TraceFunction> = fns
            .into_iter()
            .enumerate()
            .map(|(i, (dpos, minutes))| {
                let duration = 1.0 * (200_000.0f64 / 1.0).powf(dpos); // 1 ms .. 200 s
                let minutes = MinuteSeries::new(minutes.into_iter().collect());
                let total = minutes.total();
                TraceFunction {
                    id: FunctionId(i as u32),
                    app: AppId(0),
                    trigger: Default::default(),
                    avg_duration_ms: duration.max(1.0).round(),
                    daily: vec![DayStats {
                        avg_duration_ms: duration.max(1.0).round(),
                        invocations: total,
                    }],
                    minutes,
                }
            })
            .collect();
        Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions,
            apps: vec![App { id: AppId(0), memory_mb: 128.0 }],
        }
    })
}

fn pool() -> WorkloadPool {
    WorkloadPool::build_modelled(&CostModel::default_calibration())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn shrink_invariants_hold_for_any_trace(
        trace in arb_trace(),
        minutes in 1usize..240,
        max_rps in 0.2f64..50.0,
    ) {
        let pool = pool();
        let cfg = ShrinkRayConfig::new(minutes, max_rps);
        match shrink(&trace, &pool, &cfg) {
            Ok((spec, report)) => {
                // 1. The spec is structurally valid.
                prop_assert_eq!(spec.validate(), Ok(()));
                // 2. The budget is never exceeded.
                let budget = (max_rps * 60.0).round() as u64;
                prop_assert!(spec.peak_per_minute() <= budget);
                // 3. Conservation: scaled volume equals the scale report's.
                prop_assert_eq!(spec.total_requests(), report.scale.total_after);
                // 4. Aggregation never invents or loses invocations.
                prop_assert_eq!(report.scale.total_before, trace.total_invocations());
                // 5. Every entry's workload exists in the pool.
                for e in &spec.entries {
                    prop_assert!(pool.get(e.workload).is_some());
                }
                // 6. Request generation is deterministic and in-window.
                let r1 = generate_requests(&spec, 3);
                let r2 = generate_requests(&spec, 3);
                prop_assert_eq!(&r1, &r2);
                let end = minutes as u64 * 60_000;
                prop_assert!(r1.requests.iter().all(|r| r.at_ms < end));
            }
            // The only acceptable failure for these inputs: an all-zero
            // scaled trace (every function silenced by extreme downscaling)
            // surfaces as an empty/invalid spec, never a panic.
            Err(ShrinkError::Spec(_)) | Err(ShrinkError::EmptyTrace) => {}
            Err(other) => prop_assert!(false, "unexpected error: {other}"),
        }
    }

    #[test]
    fn upscaling_and_downscaling_are_both_proportional(
        trace in arb_trace(),
        factor in 0.1f64..10.0,
    ) {
        // Peak-after tracks target for any direction of scaling.
        let pool = pool();
        let day_peak = trace
            .aggregate_minutes()
            .into_iter()
            .max()
            .unwrap_or(0);
        prop_assume!(day_peak > 0);
        let target_rpm = ((day_peak as f64 * factor).round() as u64).max(1);
        let cfg = ShrinkRayConfig::new(MINUTES_PER_DAY, target_rpm as f64 / 60.0);
        if let Ok((spec, _)) = shrink(&trace, &pool, &cfg) {
            let peak = spec.peak_per_minute();
            prop_assert!(peak <= target_rpm);
            // The busiest minute lands within rounding of the target.
            prop_assert!(
                peak + spec.entries.len() as u64 >= target_rpm.min(day_peak * 20),
                "peak {peak} vs target {target_rpm}"
            );
        }
    }
}

//! Smirnov Transform execution mode (paper §3.2.2, Fig. 5).
//!
//! Instead of replaying per-minute trace rates, this mode samples invocation
//! durations directly from the trace's invocation-weighted empirical CDF by
//! inverse transform sampling (the Smirnov transform, with linear
//! interpolation between support points), maps each sampled duration to a
//! pool Workload, and emits requests at a user-chosen constant rate with the
//! configured inter-arrival distribution. The result follows the trace's
//! invocation-runtime distribution while leaving the load pattern synthetic
//! and tunable.

use crate::mapping::{BalanceStrategy, MappingConfig};
use crate::request::{Request, RequestTrace};
use crate::spec::IatModel;
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::sampler::{Exponential, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_trace::summarize::invocations_duration_wecdf;
use faasrail_trace::Trace;
use faasrail_workloads::{WorkloadId, WorkloadKind, WorkloadPool};
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, HashMap};

/// Configuration for a Smirnov-mode run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmirnovConfig {
    /// How many invocation requests to produce.
    pub num_invocations: usize,
    /// Constant request rate, requests/second.
    pub rate_rps: f64,
    /// Inter-arrival model (Poisson → exponential gaps at `rate_rps`).
    pub iat: IatModel,
    /// Mapping parameters (threshold + balance), reused per sampled value.
    pub mapping: MappingConfig,
    pub seed: u64,
}

impl SmirnovConfig {
    /// A paper-style run: 120 K invocations at 20 rps, Poisson arrivals.
    pub fn paper_default(seed: u64) -> Self {
        SmirnovConfig {
            num_invocations: 120_408,
            rate_rps: 20.0,
            iat: IatModel::Poisson,
            mapping: MappingConfig::default(),
            seed,
        }
    }
}

/// What a Smirnov run reports alongside its request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmirnovReport {
    /// Requests per benchmark kind (paper Fig. 12b).
    pub counts_by_kind: BTreeMap<WorkloadKind, u64>,
    /// Fraction of samples mapped within the error threshold.
    pub within_threshold_fraction: f64,
    /// Mean relative duration error of the mapping.
    pub mean_rel_error: f64,
}

/// Generate a Smirnov-mode request trace from a trace and a pool.
pub fn generate(
    trace: &Trace,
    pool: &WorkloadPool,
    cfg: &SmirnovConfig,
) -> (RequestTrace, SmirnovReport) {
    assert!(cfg.num_invocations > 0, "need at least one invocation");
    assert!(cfg.rate_rps > 0.0, "rate must be positive");
    let wecdf: WeightedEcdf = invocations_duration_wecdf(trace);
    let mut rng = seeded_rng(cfg.seed);

    // Pool sorted by runtime for candidate-range queries.
    let mut by_ms: Vec<(f64, WorkloadId, WorkloadKind)> =
        pool.workloads().iter().map(|w| (w.mean_ms, w.id, w.kind())).collect();
    by_ms.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));

    // Candidate-range cache keyed by the sampled duration quantized to 0.1 ms
    // (the ECDF's inverse is piecewise linear, so nearby samples share
    // candidates).
    let mut range_cache: HashMap<u64, (usize, usize)> = HashMap::new();
    // Balance load per Workload *variant* (see `mapping::BalanceStrategy`).
    let mut variant_load: BTreeMap<WorkloadId, u64> = BTreeMap::new();
    let mut counts_by_kind: BTreeMap<WorkloadKind, u64> = BTreeMap::new();
    let mut within = 0usize;
    let mut err_sum = 0.0f64;

    // Arrival times.
    let total_ms = cfg.num_invocations as f64 / cfg.rate_rps * 1_000.0;
    let mut requests = Vec::with_capacity(cfg.num_invocations);
    let gap = Exponential::from_mean(1_000.0 / cfg.rate_rps);
    let mut t = 0.0f64;
    // Bursty (Cox-process) state: Gamma rate multiplier, resampled every
    // 10 s of generated time.
    let burst_gamma = match cfg.iat {
        IatModel::Bursty { cv } if cv > 0.0 => {
            Some(faasrail_stats::sampler::Gamma::unit_mean_with_cv(cv))
        }
        _ => None,
    };
    let mut burst_mult = 1.0f64;
    let mut burst_until = 0.0f64;

    for i in 0..cfg.num_invocations {
        // 1. Smirnov transform: uniform variate through the inverse CDF.
        let d = wecdf.inverse(rng.gen::<f64>());

        // 2. Map the sampled duration to a Workload.
        let key = (d * 10.0).round() as u64;
        let (start, end) = *range_cache.entry(key).or_insert_with(|| {
            let lo = d * (1.0 - cfg.mapping.error_threshold);
            let hi = d * (1.0 + cfg.mapping.error_threshold);
            (
                by_ms.partition_point(|&(ms, _, _)| ms < lo),
                by_ms.partition_point(|&(ms, _, _)| ms <= hi),
            )
        });
        let chosen = if start < end {
            within += 1;
            let candidates = &by_ms[start..end];
            match cfg.mapping.balance {
                BalanceStrategy::NearestOnly => candidates
                    .iter()
                    .min_by(|a, b| (a.0 - d).abs().partial_cmp(&(b.0 - d).abs()).expect("finite"))
                    .expect("non-empty"),
                _ => candidates
                    .iter()
                    .min_by(|a, b| {
                        let la = variant_load.get(&a.1).copied().unwrap_or(0);
                        let lb = variant_load.get(&b.1).copied().unwrap_or(0);
                        la.cmp(&lb).then_with(|| {
                            (a.0 - d).abs().partial_cmp(&(b.0 - d).abs()).expect("finite")
                        })
                    })
                    .expect("non-empty"),
            }
        } else {
            let pos = by_ms.partition_point(|&(ms, _, _)| ms < d);
            match (pos.checked_sub(1).map(|i| &by_ms[i]), by_ms.get(pos)) {
                (Some(a), Some(b)) => {
                    if (a.0 - d).abs() <= (b.0 - d).abs() {
                        a
                    } else {
                        b
                    }
                }
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("pool is non-empty"),
            }
        };
        *variant_load.entry(chosen.1).or_insert(0) += 1;
        *counts_by_kind.entry(chosen.2).or_insert(0) += 1;
        err_sum += if d > 0.0 { (chosen.0 - d).abs() / d } else { 0.0 };

        // 3. Arrival time under the configured IAT model.
        let at_ms = match cfg.iat {
            IatModel::Poisson => {
                t += gap.sample(&mut rng);
                t as u64
            }
            IatModel::UniformRandom => (rng.gen::<f64>() * total_ms) as u64,
            IatModel::Equidistant => ((i as f64 + 0.5) * 1_000.0 / cfg.rate_rps) as u64,
            IatModel::Bursty { .. } => {
                if t >= burst_until {
                    burst_mult = burst_gamma.as_ref().map_or(1.0, |g| g.sample(&mut rng)).max(1e-3);
                    burst_until = t + 10_000.0;
                }
                t += gap.sample(&mut rng) / burst_mult;
                t as u64
            }
        };
        requests.push(Request {
            at_ms,
            workload: chosen.1,
            // Smirnov requests have no originating trace Function; carry the
            // workload id for grouping.
            function_index: chosen.1 .0,
        });
    }

    requests.sort_by_key(|r| (r.at_ms, r.function_index));
    let duration_minutes = requests.last().map(|r| (r.at_ms / 60_000) as usize + 1).unwrap_or(1);

    let report = SmirnovReport {
        counts_by_kind,
        within_threshold_fraction: within as f64 / cfg.num_invocations as f64,
        mean_rel_error: err_sum / cfg.num_invocations as f64,
    };
    (RequestTrace { duration_minutes, requests }, report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::ks_distance_weighted;
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};
    use faasrail_trace::huawei::{generate as gen_huawei, HuaweiTraceConfig};
    use faasrail_workloads::CostModel;

    fn small_cfg(seed: u64) -> SmirnovConfig {
        SmirnovConfig {
            num_invocations: 20_000,
            rate_rps: 50.0,
            iat: IatModel::Poisson,
            mapping: MappingConfig::default(),
            seed,
        }
    }

    #[test]
    fn deterministic() {
        let trace = gen_azure(&AzureTraceConfig::small(1));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let a = generate(&trace, &pool, &small_cfg(5));
        let b = generate(&trace, &pool, &small_cfg(5));
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn azure_runtime_distribution_followed() {
        // Fig. 11a: the mapped workloads' runtimes follow the trace's
        // invocation-duration CDF.
        let trace = gen_azure(&AzureTraceConfig::small(2));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let (reqs, report) = generate(&trace, &pool, &small_cfg(7));
        let target = invocations_duration_wecdf(&trace);
        let got = WeightedEcdf::new(reqs.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
        let ks = ks_distance_weighted(&target, &got);
        assert!(ks < 0.10, "KS = {ks}");
        assert!(report.within_threshold_fraction > 0.85, "{report:?}");
    }

    #[test]
    fn huawei_short_runtimes_followed() {
        // Fig. 11b: works for the much-faster Huawei distribution too.
        let trace = gen_huawei(&HuaweiTraceConfig::small(3));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let (reqs, _) = generate(&trace, &pool, &small_cfg(9));
        let target = invocations_duration_wecdf(&trace);
        let got = WeightedEcdf::new(reqs.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
        let ks = ks_distance_weighted(&target, &got);
        assert!(ks < 0.25, "KS = {ks}");
    }

    #[test]
    fn huawei_mapping_imbalanced_toward_pyaes() {
        // Fig. 12b: under the current augmentation pyaes dominates the
        // short-running pool, so Huawei-mapped requests skew heavily to it,
        // and the slow benchmarks (cnn, lr_training, video) rarely appear.
        let trace = gen_huawei(&HuaweiTraceConfig::small(4));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let (_, report) = generate(&trace, &pool, &small_cfg(11));
        let total: u64 = report.counts_by_kind.values().sum();
        let aes = report.counts_by_kind.get(&WorkloadKind::Pyaes).copied().unwrap_or(0);
        assert!(aes as f64 / total as f64 > 0.3, "pyaes share = {}/{total}", aes);
        let slow =
            [WorkloadKind::CnnServing, WorkloadKind::LrTraining, WorkloadKind::VideoProcessing];
        for k in slow {
            let c = report.counts_by_kind.get(&k).copied().unwrap_or(0);
            assert!((c as f64) < total as f64 * 0.05, "{k} over-represented: {c}/{total}");
        }
    }

    #[test]
    fn equidistant_arrivals_constant_rate() {
        let trace = gen_azure(&AzureTraceConfig::small(5));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let mut cfg = small_cfg(13);
        cfg.iat = IatModel::Equidistant;
        cfg.num_invocations = 600;
        cfg.rate_rps = 10.0;
        let (reqs, _) = generate(&trace, &pool, &cfg);
        assert_eq!(reqs.len(), 600);
        // 600 requests at 10 rps = one minute; every second carries ~10.
        let secs = reqs.per_second_counts();
        assert!(secs.iter().take(60).all(|&c| c == 10), "{secs:?}");
    }

    #[test]
    fn poisson_duration_close_to_expected() {
        let trace = gen_azure(&AzureTraceConfig::small(6));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let cfg = small_cfg(15);
        let (reqs, _) = generate(&trace, &pool, &cfg);
        let expected_minutes = cfg.num_invocations as f64 / cfg.rate_rps / 60.0;
        assert!(
            (reqs.duration_minutes as f64 - expected_minutes).abs() < expected_minutes * 0.1 + 2.0,
            "duration = {} minutes, expected ≈ {expected_minutes}",
            reqs.duration_minutes
        );
    }
}

//! Experiment specifications — the shrink ray's output artifact.
//!
//! A spec pins down *what* to invoke (one mapped Workload per Function),
//! *how much* (per-experiment-minute request counts, already rate- and
//! time-scaled), and *how* sub-minute arrivals are modelled. Specs are
//! plain serde data: serialize one to JSON, commit it, and every replay of
//! it is identical — the paper's "consistent evaluation" goal.

use faasrail_workloads::WorkloadId;
use serde::{Deserialize, Serialize};

/// Sub-minute inter-arrival model (paper §3.2.1.3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum IatModel {
    /// The per-minute count is the intensity λ of a Poisson process:
    /// exponentially distributed gaps, stochastic per-minute totals.
    /// The paper's default: emulates sub-minute burstiness.
    Poisson,
    /// Deterministic count, uniformly random positions within the minute.
    UniformRandom,
    /// Deterministic count, equidistant positions (constant intra-minute
    /// rate, as in prior-work replay utilities).
    Equidistant,
    /// Doubly-stochastic Poisson (Cox) process: the minute is split into
    /// 10-second intervals whose rates are the per-minute rate modulated by
    /// unit-mean Gamma multipliers with the given coefficient of variation.
    ///
    /// This extends the paper's sub-minute model toward the *per-second*
    /// burstiness the Huawei trace reports (paper §3.3 flags incorporating
    /// it as future work): `cv = 0` degenerates to plain Poisson; the
    /// Huawei-like regime sits around `cv ≈ 1–2`.
    Bursty {
        /// Coefficient of variation of the 10-second rate multipliers.
        cv: f64,
    },
}

/// One Function's line in the spec.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SpecEntry {
    /// Index of the aggregated Function this entry descends from.
    pub function_index: u32,
    /// The mapped Workload to invoke.
    pub workload: WorkloadId,
    /// Optional alternate Workloads of the same benchmark, all within the
    /// mapping threshold of the Function's duration. When non-empty, request
    /// generation rotates the input across invocations — the paper's
    /// "variable inputs per function" extension (§3.3). Empty by default.
    #[serde(default)]
    pub alternates: Vec<WorkloadId>,
    /// The Function's reported average duration (for analysis/plots), ms.
    pub trace_duration_ms: f64,
    /// Requests to issue during each experiment minute.
    pub per_minute: Vec<u64>,
}

impl SpecEntry {
    /// Total requests across the experiment.
    pub fn total_requests(&self) -> u64 {
        self.per_minute.iter().sum()
    }
}

/// A complete experiment specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExperimentSpec {
    /// Experiment duration, minutes.
    pub duration_minutes: usize,
    /// The user's target maximum request rate, requests/second.
    pub target_max_rps: f64,
    /// Sub-minute arrival model.
    pub iat: IatModel,
    /// Per-Function entries. Functions silenced by rate scaling are dropped.
    pub entries: Vec<SpecEntry>,
}

impl ExperimentSpec {
    /// Total requests across all Functions.
    pub fn total_requests(&self) -> u64 {
        self.entries.iter().map(|e| e.total_requests()).sum()
    }

    /// Aggregate per-minute totals.
    pub fn aggregate_minutes(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.duration_minutes];
        for e in &self.entries {
            for (t, &v) in out.iter_mut().zip(&e.per_minute) {
                *t += v;
            }
        }
        out
    }

    /// The busiest experiment minute's request count.
    pub fn peak_per_minute(&self) -> u64 {
        self.aggregate_minutes().into_iter().max().unwrap_or(0)
    }

    /// Structural validation.
    pub fn validate(&self) -> Result<(), String> {
        if self.duration_minutes == 0 {
            return Err("zero-duration experiment".into());
        }
        if self.target_max_rps <= 0.0 {
            return Err("non-positive target rate".into());
        }
        for e in &self.entries {
            if e.per_minute.len() != self.duration_minutes {
                return Err(format!(
                    "entry for function {} has {} minutes, spec has {}",
                    e.function_index,
                    e.per_minute.len(),
                    self.duration_minutes
                ));
            }
            if e.total_requests() == 0 {
                return Err(format!("entry for function {} is empty", e.function_index));
            }
        }
        let budget = (self.target_max_rps * 60.0).round() as u64;
        let peak = self.peak_per_minute();
        if peak > budget {
            return Err(format!("peak minute {peak} exceeds budget {budget}"));
        }
        Ok(())
    }

    /// Restrict the spec to experiment minutes `[start, start + len)`.
    /// Entries left with no requests are dropped.
    ///
    /// # Panics
    /// Panics if the window exceeds the spec duration or is empty.
    pub fn slice(&self, start: usize, len: usize) -> ExperimentSpec {
        assert!(len > 0 && start + len <= self.duration_minutes, "window out of range");
        let entries = self
            .entries
            .iter()
            .filter_map(|e| {
                let per_minute = e.per_minute[start..start + len].to_vec();
                per_minute.iter().any(|&v| v > 0).then(|| SpecEntry {
                    function_index: e.function_index,
                    workload: e.workload,
                    alternates: e.alternates.clone(),
                    trace_duration_ms: e.trace_duration_ms,
                    per_minute,
                })
            })
            .collect();
        ExperimentSpec {
            duration_minutes: len,
            target_max_rps: self.target_max_rps,
            iat: self.iat,
            entries,
        }
    }

    /// Scale the request volume by `factor` (per entry, largest-remainder
    /// rounding, so each Function keeps its share and its minute shape).
    /// The rate budget scales accordingly. Entries scaled to zero are
    /// dropped.
    ///
    /// # Panics
    /// Panics unless `factor > 0`.
    pub fn scale_volume(&self, factor: f64) -> ExperimentSpec {
        assert!(factor > 0.0 && factor.is_finite(), "factor must be positive");
        let entries: Vec<SpecEntry> = self
            .entries
            .iter()
            .filter_map(|e| {
                let target = (e.total_requests() as f64 * factor).round() as u64;
                if target == 0 {
                    return None;
                }
                let per_minute =
                    faasrail_stats::timeseries::apportion_largest_remainder(&e.per_minute, target);
                Some(SpecEntry {
                    function_index: e.function_index,
                    workload: e.workload,
                    alternates: e.alternates.clone(),
                    trace_duration_ms: e.trace_duration_ms,
                    per_minute,
                })
            })
            .collect();
        let spec = ExperimentSpec {
            duration_minutes: self.duration_minutes,
            target_max_rps: self.target_max_rps * factor,
            iat: self.iat,
            entries,
        };
        // Rounding can nudge a minute past the scaled budget; widen to fit.
        let needed = spec.peak_per_minute() as f64 / 60.0;
        ExperimentSpec { target_max_rps: spec.target_max_rps.max(needed), ..spec }
    }

    /// Merge two specs of equal duration into one experiment (e.g. to mix
    /// loads fitted from different traces). The other spec's Function
    /// indices are offset to stay distinct; budgets add.
    ///
    /// # Panics
    /// Panics on duration or IAT-model mismatch.
    pub fn merge(&self, other: &ExperimentSpec) -> ExperimentSpec {
        assert_eq!(self.duration_minutes, other.duration_minutes, "duration mismatch");
        assert_eq!(self.iat, other.iat, "IAT model mismatch");
        let offset = self.entries.iter().map(|e| e.function_index).max().map_or(0, |m| m + 1);
        let mut entries = self.entries.clone();
        entries.extend(other.entries.iter().map(|e| SpecEntry {
            function_index: e.function_index + offset,
            workload: e.workload,
            alternates: e.alternates.clone(),
            trace_duration_ms: e.trace_duration_ms,
            per_minute: e.per_minute.clone(),
        }));
        ExperimentSpec {
            duration_minutes: self.duration_minutes,
            target_max_rps: self.target_max_rps + other.target_max_rps,
            iat: self.iat,
            entries,
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("spec serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn demo_spec() -> ExperimentSpec {
        ExperimentSpec {
            duration_minutes: 3,
            target_max_rps: 1.0,
            iat: IatModel::Poisson,
            entries: vec![
                SpecEntry {
                    function_index: 0,
                    workload: WorkloadId(4),
                    alternates: vec![],
                    trace_duration_ms: 120.0,
                    per_minute: vec![10, 0, 5],
                },
                SpecEntry {
                    function_index: 1,
                    workload: WorkloadId(9),
                    alternates: vec![WorkloadId(10), WorkloadId(11)],
                    trace_duration_ms: 900.0,
                    per_minute: vec![0, 45, 0],
                },
            ],
        }
    }

    #[test]
    fn totals_and_peak() {
        let s = demo_spec();
        assert_eq!(s.total_requests(), 60);
        assert_eq!(s.aggregate_minutes(), vec![10, 45, 5]);
        assert_eq!(s.peak_per_minute(), 45);
    }

    #[test]
    fn validates_ok() {
        assert_eq!(demo_spec().validate(), Ok(()));
    }

    #[test]
    fn rejects_ragged_entries() {
        let mut s = demo_spec();
        s.entries[0].per_minute.pop();
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_peak_over_budget() {
        let mut s = demo_spec();
        s.target_max_rps = 0.5; // budget = 30/min < peak 45
        assert!(s.validate().is_err());
    }

    #[test]
    fn rejects_empty_entry() {
        let mut s = demo_spec();
        s.entries[0].per_minute = vec![0, 0, 0];
        assert!(s.validate().is_err());
    }

    #[test]
    fn json_roundtrip() {
        let s = demo_spec();
        let back = ExperimentSpec::from_json(&s.to_json()).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn slice_window() {
        let s = demo_spec();
        let w = s.slice(1, 2);
        assert_eq!(w.duration_minutes, 2);
        // Function 0 has requests only at minutes 0 and 2 → minute 2 stays.
        assert_eq!(w.entries.len(), 2);
        assert_eq!(w.aggregate_minutes(), vec![45, 5]);
        assert_eq!(w.validate(), Ok(()));
        // A window with no requests drops the entry.
        let tail = s.slice(2, 1);
        assert_eq!(tail.entries.len(), 1);
        assert_eq!(tail.total_requests(), 5);
    }

    #[test]
    #[should_panic]
    fn slice_out_of_range_panics() {
        demo_spec().slice(2, 2);
    }

    #[test]
    fn scale_volume_preserves_shares() {
        let s = demo_spec();
        let doubled = s.scale_volume(2.0);
        assert_eq!(doubled.total_requests(), 120);
        assert_eq!(doubled.aggregate_minutes(), vec![20, 90, 10]);
        assert_eq!(doubled.validate(), Ok(()));
        // 15 × 0.1 and 45 × 0.1 both round half away from zero: 2 + 5.
        let tenth = s.scale_volume(0.1);
        assert_eq!(tenth.total_requests(), 7);
        assert_eq!(tenth.validate(), Ok(()));
    }

    #[test]
    fn merge_offsets_functions_and_adds_budget() {
        let a = demo_spec();
        let b = demo_spec();
        let m = a.merge(&b);
        assert_eq!(m.total_requests(), 120);
        assert_eq!(m.entries.len(), 4);
        assert_eq!(m.target_max_rps, 2.0);
        // Function indices stay unique.
        let mut idx: Vec<u32> = m.entries.iter().map(|e| e.function_index).collect();
        idx.sort_unstable();
        idx.dedup();
        assert_eq!(idx.len(), 4);
        assert_eq!(m.validate(), Ok(()));
    }
}

//! Time scaling: fitting a 24-hour trace day into an experiment window
//! (paper §3.2.1.2).
//!
//! Two modes: **Thumbnails** (default) rebins the 1440 trace minutes into
//! one group per experiment minute, preserving the diurnal shape at a
//! coarser resolution; **Minute Range** replays a verbatim window of trace
//! minutes, preserving exact minute-level burstiness but discarding the rest
//! of the day.

use faasrail_stats::timeseries::rebin_sum;
use faasrail_trace::MINUTES_PER_DAY;
use serde::{Deserialize, Serialize};

/// Time-scaling mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeScaling {
    /// Aggregate adjacent trace minutes into `experiment_minutes` groups.
    Thumbnails { experiment_minutes: usize },
    /// Replay trace minutes `[start, start + experiment_minutes)` verbatim.
    MinuteRange { start: usize, experiment_minutes: usize },
}

impl TimeScaling {
    /// The experiment duration this mode produces, in minutes.
    pub fn experiment_minutes(&self) -> usize {
        match *self {
            TimeScaling::Thumbnails { experiment_minutes } => experiment_minutes,
            TimeScaling::MinuteRange { experiment_minutes, .. } => experiment_minutes,
        }
    }

    /// Validate the mode against a 1440-minute day.
    pub fn validate(&self) -> Result<(), String> {
        match *self {
            TimeScaling::Thumbnails { experiment_minutes } => {
                if experiment_minutes == 0 || experiment_minutes > MINUTES_PER_DAY {
                    Err(format!(
                        "thumbnails experiment must be 1..={MINUTES_PER_DAY} minutes, got {experiment_minutes}"
                    ))
                } else {
                    Ok(())
                }
            }
            TimeScaling::MinuteRange { start, experiment_minutes } => {
                if experiment_minutes == 0 {
                    Err("minute range must be non-empty".into())
                } else if start + experiment_minutes > MINUTES_PER_DAY {
                    Err(format!(
                        "minute range [{start}, {}) exceeds the {MINUTES_PER_DAY}-minute day",
                        start + experiment_minutes
                    ))
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Apply the mode to one function's dense per-minute day series.
    ///
    /// ```
    /// use faasrail_core::TimeScaling;
    /// let day: Vec<u64> = (0..1440).map(|m| m % 3).collect();
    /// // Thumbnails: total preserved across the rebinned experiment.
    /// let two_hours = TimeScaling::Thumbnails { experiment_minutes: 120 }.apply(&day);
    /// assert_eq!(two_hours.iter().sum::<u64>(), day.iter().sum::<u64>());
    /// // Minute range: a verbatim window.
    /// let window = TimeScaling::MinuteRange { start: 10, experiment_minutes: 3 }.apply(&day);
    /// assert_eq!(window, day[10..13].to_vec());
    /// ```
    pub fn apply(&self, day: &[u64]) -> Vec<u64> {
        assert_eq!(day.len(), MINUTES_PER_DAY, "expected a full 1440-minute day");
        self.validate().expect("invalid time scaling");
        match *self {
            TimeScaling::Thumbnails { experiment_minutes } => rebin_sum(day, experiment_minutes),
            TimeScaling::MinuteRange { start, experiment_minutes } => {
                day[start..start + experiment_minutes].to_vec()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ramp_day() -> Vec<u64> {
        (0..MINUTES_PER_DAY as u64).collect()
    }

    #[test]
    fn thumbnails_two_hours_preserves_total_and_shape() {
        let day = ramp_day();
        let mode = TimeScaling::Thumbnails { experiment_minutes: 120 };
        let scaled = mode.apply(&day);
        assert_eq!(scaled.len(), 120);
        assert_eq!(scaled.iter().sum::<u64>(), day.iter().sum::<u64>());
        // A monotone day stays monotone after rebinning.
        assert!(scaled.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn minute_range_is_verbatim() {
        let day = ramp_day();
        let mode = TimeScaling::MinuteRange { start: 100, experiment_minutes: 30 };
        let scaled = mode.apply(&day);
        assert_eq!(scaled, (100u64..130).collect::<Vec<_>>());
    }

    #[test]
    fn full_day_thumbnails_is_identity() {
        let day = ramp_day();
        let mode = TimeScaling::Thumbnails { experiment_minutes: MINUTES_PER_DAY };
        assert_eq!(mode.apply(&day), day);
    }

    #[test]
    fn validation_errors() {
        assert!(TimeScaling::Thumbnails { experiment_minutes: 0 }.validate().is_err());
        assert!(TimeScaling::Thumbnails { experiment_minutes: 2000 }.validate().is_err());
        assert!(TimeScaling::MinuteRange { start: 1435, experiment_minutes: 10 }
            .validate()
            .is_err());
        assert!(TimeScaling::MinuteRange { start: 0, experiment_minutes: 0 }.validate().is_err());
        assert!(TimeScaling::MinuteRange { start: 1430, experiment_minutes: 10 }
            .validate()
            .is_ok());
    }

    #[test]
    fn thumbnails_smooths_peaks() {
        // The paper notes Thumbnails can hide steep single-minute peaks:
        // a lone spike is averaged into its group.
        let mut day = vec![0u64; MINUTES_PER_DAY];
        day[700] = 1200;
        let scaled = TimeScaling::Thumbnails { experiment_minutes: 120 }.apply(&day);
        let peak = *scaled.iter().max().unwrap();
        assert_eq!(peak, 1200, "sum-rebinning keeps the mass in one group");
        // ...but MinuteRange preserves the spike's isolation exactly.
        let window = TimeScaling::MinuteRange { start: 695, experiment_minutes: 10 }.apply(&day);
        assert_eq!(window[5], 1200);
        assert_eq!(window.iter().filter(|&&v| v > 0).count(), 1);
    }
}

//! Fitting the sub-minute arrival model to a trace's burstiness.
//!
//! The paper (§3.3, "Sub-minute behavior") defaults to Poisson arrivals
//! because Azure reports only per-minute counts, while noting the Huawei
//! trace shows burstiness at second scale and flagging its incorporation as
//! future work. This module closes that gap heuristically: it estimates the
//! trace's *minute-scale* overdispersion (detrended of diurnal shape) and
//! fits the Cox-process [`IatModel::Bursty`] multiplier CV under the
//! self-similarity assumption that sub-minute burstiness mirrors
//! minute-scale burstiness.
//!
//! For a Gamma-modulated Poisson process with per-interval mean `λ` and
//! unit-mean multiplier CV `v`, per-interval counts have
//! `Var = λ + λ²v²  ⇒  v² = (Fano − 1) / λ`, which is what we invert here.

use crate::spec::IatModel;
use faasrail_stats::timeseries::moving_average;
use faasrail_stats::Summary;
use faasrail_trace::Trace;
use serde::{Deserialize, Serialize};

/// What the fit measured (for reporting alongside the chosen model).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BurstinessFit {
    /// Invocation-weighted mean of per-function multiplier CV estimates.
    pub cv: f64,
    /// Functions with enough volume to estimate (≥ 1 invocation/minute).
    pub functions_measured: usize,
    /// The recommended model.
    pub model: IatModel,
}

/// Per-function multiplier-CV estimate from its detrended minute series.
/// Returns `None` when the function is too sparse to measure.
fn function_cv(dense: &[u64]) -> Option<f64> {
    let total: u64 = dense.iter().sum();
    if (total as usize) < dense.len() {
        return None; // below ~1/min: minute counts are almost all 0/1
    }
    let counts: Vec<f64> = dense.iter().map(|&c| c as f64).collect();
    // Remove the diurnal trend so only sub-hour burstiness remains.
    let trend = moving_average(&counts, 61);
    let residuals: Vec<f64> = counts.iter().zip(&trend).map(|(c, t)| c - t).collect();
    let mean = total as f64 / dense.len() as f64;
    let var = Summary::from_slice(&residuals).variance();
    let excess = (var - mean).max(0.0); // Poisson noise contributes `mean`
    Some((excess / (mean * mean)).sqrt())
}

/// Fit the sub-minute model to a trace.
///
/// Traces whose (detrended) minute counts are Poisson-like (CV below
/// `poisson_cutoff`, default 0.35) get [`IatModel::Poisson`]; burstier
/// traces get [`IatModel::Bursty`] with the measured CV (capped at 4).
pub fn fit_iat_model(trace: &Trace, poisson_cutoff: f64) -> BurstinessFit {
    let mut weighted_cv = 0.0;
    let mut weight = 0.0;
    let mut measured = 0usize;
    for f in trace.active_functions() {
        let dense = f.minutes.dense();
        if let Some(cv) = function_cv(&dense) {
            let w = f.total_invocations() as f64;
            weighted_cv += cv * w;
            weight += w;
            measured += 1;
        }
    }
    let cv = if weight > 0.0 { (weighted_cv / weight).min(4.0) } else { 0.0 };
    let model = if cv <= poisson_cutoff { IatModel::Poisson } else { IatModel::Bursty { cv } };
    BurstinessFit { cv, functions_measured: measured, model }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};
    use faasrail_trace::huawei::{generate as gen_huawei, HuaweiTraceConfig};

    #[test]
    fn steady_poisson_series_measures_near_zero() {
        use faasrail_stats::sampler::Poisson;
        use faasrail_stats::seeded_rng;
        let mut rng = seeded_rng(1);
        let d = Poisson::new(20.0);
        let dense: Vec<u64> = (0..1440).map(|_| d.sample(&mut rng)).collect();
        let cv = function_cv(&dense).unwrap();
        assert!(cv < 0.15, "Poisson series measured cv = {cv}");
    }

    #[test]
    fn modulated_series_measures_its_cv() {
        use faasrail_stats::sampler::{Gamma, Poisson, Sampler};
        use faasrail_stats::seeded_rng;
        let mut rng = seeded_rng(2);
        let gamma = Gamma::unit_mean_with_cv(1.0);
        let dense: Vec<u64> = (0..1440)
            .map(|_| {
                let mult = gamma.sample(&mut rng);
                Poisson::new((30.0 * mult).max(1e-6)).sample(&mut rng)
            })
            .collect();
        let cv = function_cv(&dense).unwrap();
        assert!((cv - 1.0).abs() < 0.25, "measured cv = {cv}");
    }

    #[test]
    fn sparse_functions_are_skipped() {
        let mut dense = vec![0u64; 1440];
        dense[3] = 2;
        assert_eq!(function_cv(&dense), None);
    }

    #[test]
    fn huawei_fits_burstier_than_azure() {
        let azure = gen_azure(&AzureTraceConfig::small(9));
        let huawei = gen_huawei(&HuaweiTraceConfig::small(9));
        let fa = fit_iat_model(&azure, 0.35);
        let fh = fit_iat_model(&huawei, 0.35);
        assert!(fa.functions_measured > 10);
        assert!(fh.functions_measured > 10);
        assert!(fh.cv > fa.cv, "huawei cv {:.2} should exceed azure cv {:.2}", fh.cv, fa.cv);
        // The bursty Huawei trace should trigger the Cox-process model.
        assert!(matches!(fh.model, IatModel::Bursty { .. }), "{fh:?}");
    }

    #[test]
    fn empty_trace_defaults_to_poisson() {
        let t = faasrail_trace::Trace {
            kind: faasrail_trace::TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions: vec![],
            apps: vec![],
        };
        let fit = fit_iat_model(&t, 0.35);
        assert_eq!(fit.model, IatModel::Poisson);
        assert_eq!(fit.functions_measured, 0);
    }
}

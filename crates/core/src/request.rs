//! Request-trace expansion: turning a spec's per-minute counts into a
//! timestamped stream of invocation requests (paper §3.2.1.3).
//!
//! For each Function and each experiment minute, arrivals are placed by the
//! spec's [`IatModel`]: a Poisson process with the minute's count as its
//! intensity (the default — exponential gaps, bursty even at second scale),
//! uniformly random positions, or equidistant positions.

use crate::spec::ExperimentSpec;
use faasrail_workloads::{WorkloadId, WorkloadKind, WorkloadPool};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Milliseconds per experiment minute.
pub const MS_PER_MINUTE: u64 = 60_000;

/// One invocation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Request {
    /// Arrival time, milliseconds from experiment start.
    pub at_ms: u64,
    /// The Workload to invoke.
    pub workload: WorkloadId,
    /// The originating (aggregated) Function.
    pub function_index: u32,
}

/// A replayable, time-ordered request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestTrace {
    pub duration_minutes: usize,
    /// Requests sorted by arrival time.
    pub requests: Vec<Request>,
}

impl RequestTrace {
    /// Number of requests.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True when no requests were generated.
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Per-minute aggregate counts (for load-over-time plots).
    pub fn per_minute_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.duration_minutes];
        for r in &self.requests {
            let m = (r.at_ms / MS_PER_MINUTE) as usize;
            if m < out.len() {
                out[m] += 1;
            }
        }
        out
    }

    /// Per-second aggregate counts (for sub-minute burstiness analysis).
    pub fn per_second_counts(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.duration_minutes * 60];
        for r in &self.requests {
            let s = (r.at_ms / 1_000) as usize;
            if s < out.len() {
                out[s] += 1;
            }
        }
        out
    }

    /// How many requests target each benchmark kind (paper Fig. 12).
    pub fn counts_by_kind(&self, pool: &WorkloadPool) -> BTreeMap<WorkloadKind, u64> {
        let mut out = BTreeMap::new();
        for r in &self.requests {
            let kind = pool.get(r.workload).expect("workload in pool").kind();
            *out.entry(kind).or_insert(0) += 1;
        }
        out
    }

    /// Per-request expected durations `(duration_ms, 1.0)` pairs, for
    /// invocation-runtime CDFs (paper Figs. 9, 11).
    pub fn expected_durations(&self, pool: &WorkloadPool) -> Vec<f64> {
        self.requests
            .iter()
            .map(|r| pool.get(r.workload).expect("workload in pool").mean_ms)
            .collect()
    }
}

/// Expand a spec into a request trace. Deterministic under `seed`.
///
/// Materializes by draining the lazy [`ArrivalStream`](crate::ArrivalStream)
/// over the spec's [`ScheduleModel`](crate::ScheduleModel): each
/// (Function, minute) cell is expanded with its own deterministic RNG, so
/// the lazy and materialized paths agree exactly by construction. The
/// output is sorted by `(at_ms, function_index)`.
pub fn generate_requests(spec: &ExperimentSpec, seed: u64) -> RequestTrace {
    spec.validate().expect("invalid spec");
    let model = crate::ScheduleModel::from_spec(spec);
    crate::schedule::materialize(&crate::ArrivalStream::new(&model, seed))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{IatModel, SpecEntry};

    fn spec(iat: IatModel) -> ExperimentSpec {
        ExperimentSpec {
            duration_minutes: 5,
            target_max_rps: 10.0,
            iat,
            entries: vec![
                SpecEntry {
                    function_index: 0,
                    workload: WorkloadId(0),
                    alternates: vec![],
                    trace_duration_ms: 10.0,
                    per_minute: vec![120, 60, 0, 30, 240],
                },
                SpecEntry {
                    function_index: 1,
                    workload: WorkloadId(1),
                    alternates: vec![],
                    trace_duration_ms: 500.0,
                    per_minute: vec![0, 60, 60, 0, 0],
                },
            ],
        }
    }

    #[test]
    fn deterministic_under_seed() {
        let s = spec(IatModel::Poisson);
        assert_eq!(generate_requests(&s, 7), generate_requests(&s, 7));
        assert_ne!(generate_requests(&s, 7), generate_requests(&s, 8));
    }

    #[test]
    fn sorted_and_in_range() {
        let s = spec(IatModel::Poisson);
        let t = generate_requests(&s, 1);
        assert!(t.requests.windows(2).all(|w| w[0].at_ms <= w[1].at_ms));
        let end = s.duration_minutes as u64 * MS_PER_MINUTE;
        assert!(t.requests.iter().all(|r| r.at_ms < end));
    }

    #[test]
    fn deterministic_modes_exact_counts() {
        for iat in [IatModel::UniformRandom, IatModel::Equidistant] {
            let s = spec(iat);
            let t = generate_requests(&s, 3);
            assert_eq!(t.len() as u64, s.total_requests(), "{iat:?}");
            // Per-function, per-minute counts match the spec exactly.
            let mut counts = vec![vec![0u64; 5]; 2];
            for r in &t.requests {
                counts[r.function_index as usize][(r.at_ms / MS_PER_MINUTE) as usize] += 1;
            }
            assert_eq!(counts[0], s.entries[0].per_minute);
            assert_eq!(counts[1], s.entries[1].per_minute);
        }
    }

    #[test]
    fn poisson_counts_close_in_expectation() {
        let s = spec(IatModel::Poisson);
        let mut total = 0u64;
        for seed in 0..30 {
            total += generate_requests(&s, seed).len() as u64;
        }
        let mean = total as f64 / 30.0;
        let expect = s.total_requests() as f64;
        assert!((mean / expect - 1.0).abs() < 0.05, "mean {mean}, expected {expect}");
    }

    #[test]
    fn equidistant_gaps_are_constant() {
        let s = ExperimentSpec {
            duration_minutes: 1,
            target_max_rps: 1.0,
            iat: IatModel::Equidistant,
            entries: vec![SpecEntry {
                function_index: 0,
                workload: WorkloadId(0),
                alternates: vec![],
                trace_duration_ms: 1.0,
                per_minute: vec![60],
            }],
        };
        let t = generate_requests(&s, 0);
        let gaps: Vec<i64> =
            t.requests.windows(2).map(|w| w[1].at_ms as i64 - w[0].at_ms as i64).collect();
        assert!(gaps.iter().all(|&g| g == 1_000), "{gaps:?}");
    }

    #[test]
    fn per_minute_counts_roundtrip() {
        let s = spec(IatModel::Equidistant);
        let t = generate_requests(&s, 0);
        assert_eq!(t.per_minute_counts(), s.aggregate_minutes());
        assert_eq!(t.per_second_counts().iter().sum::<u64>() as usize, t.len());
    }

    #[test]
    fn bursty_model_is_more_bursty_than_poisson() {
        // The Cox-process extension must raise second-scale overdispersion
        // relative to plain Poisson at the same mean rate.
        let mk = |iat: IatModel| ExperimentSpec {
            duration_minutes: 10,
            target_max_rps: 100.0,
            iat,
            entries: vec![SpecEntry {
                function_index: 0,
                workload: WorkloadId(0),
                alternates: vec![],
                trace_duration_ms: 1.0,
                per_minute: vec![3_000; 10],
            }],
        };
        let fano = |iat: IatModel, seed: u64| {
            let t = generate_requests(&mk(iat), seed);
            faasrail_stats::timeseries::fano_factor(&t.per_second_counts())
        };
        let poisson = fano(IatModel::Poisson, 21);
        let bursty = fano(IatModel::Bursty { cv: 1.5 }, 21);
        assert!((poisson - 1.0).abs() < 0.3, "poisson Fano = {poisson}");
        assert!(bursty > poisson * 2.0, "bursty {bursty} vs poisson {poisson}");
    }

    #[test]
    fn bursty_preserves_expected_volume() {
        let spec = ExperimentSpec {
            duration_minutes: 5,
            target_max_rps: 100.0,
            iat: IatModel::Bursty { cv: 1.0 },
            entries: vec![SpecEntry {
                function_index: 0,
                workload: WorkloadId(0),
                alternates: vec![],
                trace_duration_ms: 1.0,
                per_minute: vec![1_200; 5],
            }],
        };
        let mut total = 0u64;
        for seed in 0..40 {
            total += generate_requests(&spec, seed).len() as u64;
        }
        let mean = total as f64 / 40.0;
        assert!((mean / 6_000.0 - 1.0).abs() < 0.06, "mean volume {mean}, expected 6000");
    }

    #[test]
    fn bursty_cv_zero_degenerates_to_poisson_stats() {
        let mk = |iat: IatModel| ExperimentSpec {
            duration_minutes: 5,
            target_max_rps: 100.0,
            iat,
            entries: vec![SpecEntry {
                function_index: 0,
                workload: WorkloadId(0),
                alternates: vec![],
                trace_duration_ms: 1.0,
                per_minute: vec![2_400; 5],
            }],
        };
        let t = generate_requests(&mk(IatModel::Bursty { cv: 0.0 }), 5);
        let fano = faasrail_stats::timeseries::fano_factor(&t.per_second_counts());
        assert!((fano - 1.0).abs() < 0.35, "Fano = {fano}");
    }

    #[test]
    fn poisson_bursty_at_second_scale() {
        // The Poisson model produces second-scale variation: not every
        // second carries the same count.
        let s = ExperimentSpec {
            duration_minutes: 2,
            target_max_rps: 100.0,
            iat: IatModel::Poisson,
            entries: vec![SpecEntry {
                function_index: 0,
                workload: WorkloadId(0),
                alternates: vec![],
                trace_duration_ms: 1.0,
                per_minute: vec![3_000, 3_000],
            }],
        };
        let t = generate_requests(&s, 11);
        let secs = t.per_second_counts();
        let min = secs.iter().min().unwrap();
        let max = secs.iter().max().unwrap();
        assert!(max > min, "per-second counts should vary: {min}..{max}");
    }
}

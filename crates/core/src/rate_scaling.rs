//! Request-rate scaling: normalizing the trace load to a target maximum
//! request rate (paper §3.2.1.1).
//!
//! Given per-Function per-minute counts, the busiest aggregate minute is
//! scaled to approximate the user's target, no minute ever exceeds it, and
//! each minute's total is apportioned back to the Functions proportionally
//! (largest-remainder), so both the aggregate load shape (Fig. 8) and the
//! per-function popularity (Fig. 10) survive the downsampling as faithfully
//! as integer counts allow.

use faasrail_stats::timeseries::apportion_largest_remainder;
use serde::{Deserialize, Serialize};

/// Report of a rate-scaling pass.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ScaleReport {
    /// Busiest-minute total before scaling.
    pub peak_before: u64,
    /// Busiest-minute total after scaling.
    pub peak_after: u64,
    /// The applied multiplicative factor (`target / peak_before`).
    pub factor: f64,
    /// Total requests before scaling.
    pub total_before: u64,
    /// Total requests after scaling.
    pub total_after: u64,
    /// Functions whose scaled series became all-zero (popularity lost —
    /// the inevitable misrepresentation the paper acknowledges).
    pub silenced_functions: usize,
}

/// Scale per-Function minute series so the busiest aggregate minute
/// approximates `target_peak_per_minute` and no minute exceeds it.
///
/// `series` is one dense per-minute vector per Function (all equal length).
/// Series are modified in place.
///
/// # Panics
/// Panics if series lengths differ, the trace is empty/all-zero, or the
/// target is zero.
pub fn scale_request_rate(series: &mut [Vec<u64>], target_peak_per_minute: u64) -> ScaleReport {
    assert!(target_peak_per_minute > 0, "target peak must be positive");
    assert!(!series.is_empty(), "no functions to scale");
    let minutes = series[0].len();
    assert!(series.iter().all(|s| s.len() == minutes), "ragged minute series");

    // Aggregate per-minute totals.
    let mut totals = vec![0u64; minutes];
    for s in series.iter() {
        for (t, &v) in totals.iter_mut().zip(s.iter()) {
            *t += v;
        }
    }
    let peak_before = totals.iter().copied().max().expect("non-empty");
    assert!(peak_before > 0, "all-zero trace cannot be rate-scaled");
    let total_before: u64 = totals.iter().sum();

    let factor = target_peak_per_minute as f64 / peak_before as f64;

    // Scale each minute's aggregate total, then apportion it across the
    // functions active that minute.
    let mut column = vec![0u64; series.len()];
    for m in 0..minutes {
        let scaled_total = ((totals[m] as f64) * factor).round() as u64;
        // Floor guarantee: never exceed the target even with rounding.
        let scaled_total = scaled_total.min(target_peak_per_minute);
        for (f, s) in series.iter().enumerate() {
            column[f] = s[m];
        }
        if totals[m] == 0 {
            continue;
        }
        let scaled = apportion_largest_remainder(&column, scaled_total);
        for (f, s) in series.iter_mut().enumerate() {
            s[m] = scaled[f];
        }
    }

    let mut totals_after = vec![0u64; minutes];
    for s in series.iter() {
        for (t, &v) in totals_after.iter_mut().zip(s.iter()) {
            *t += v;
        }
    }
    let peak_after = totals_after.iter().copied().max().expect("non-empty");
    let total_after: u64 = totals_after.iter().sum();
    let silenced_functions = series.iter().filter(|s| s.iter().all(|&v| v == 0)).count();

    ScaleReport { peak_before, peak_after, factor, total_before, total_after, silenced_functions }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::timeseries::normalize_peak;

    #[test]
    fn peak_hits_target_exactly() {
        let mut series = vec![vec![100, 50, 200, 10], vec![100, 50, 200, 10]];
        let report = scale_request_rate(&mut series, 40);
        assert_eq!(report.peak_before, 400);
        assert_eq!(report.peak_after, 40);
        let totals: Vec<u64> = (0..4).map(|m| series.iter().map(|s| s[m]).sum()).collect();
        assert_eq!(totals, vec![20, 10, 40, 2]);
    }

    #[test]
    fn no_minute_exceeds_target() {
        let mut series = vec![vec![7, 13, 999, 1], vec![3, 1, 1, 1], vec![0, 900, 0, 42]];
        let report = scale_request_rate(&mut series, 17);
        assert!(report.peak_after <= 17);
        for m in 0..4 {
            let total: u64 = series.iter().map(|s| s[m]).sum();
            assert!(total <= 17, "minute {m} total {total}");
        }
    }

    #[test]
    fn aggregate_shape_preserved() {
        // Relative minute-to-minute shape survives scaling.
        let mut series = vec![vec![1000, 800, 600, 1000, 400]];
        let before = normalize_peak(&series[0]);
        scale_request_rate(&mut series, 100);
        let after = normalize_peak(&series[0]);
        for (b, a) in before.iter().zip(&after) {
            assert!((b - a).abs() < 0.02, "shape drift: {before:?} vs {after:?}");
        }
    }

    #[test]
    fn per_function_shares_preserved_in_busy_minute() {
        let mut series = vec![vec![900], vec![90], vec![10]];
        scale_request_rate(&mut series, 100);
        assert_eq!(series[0][0], 90);
        assert_eq!(series[1][0], 9);
        assert_eq!(series[2][0], 1);
    }

    #[test]
    fn rare_functions_may_be_silenced() {
        // A function with one invocation in a 10^4-request trace disappears
        // when scaled down 1000x — the paper's acknowledged distortion.
        let mut series = vec![vec![10_000, 10_000], vec![1, 0]];
        let report = scale_request_rate(&mut series, 20);
        assert_eq!(report.silenced_functions, 1);
        assert!(series[1].iter().all(|&v| v == 0));
    }

    #[test]
    fn upscaling_works_too() {
        let mut series = vec![vec![1, 2, 3]];
        let report = scale_request_rate(&mut series, 30);
        assert_eq!(report.peak_after, 30);
        assert_eq!(series[0], vec![10, 20, 30]);
    }

    #[test]
    #[should_panic]
    fn all_zero_panics() {
        let mut series = vec![vec![0, 0]];
        scale_request_rate(&mut series, 10);
    }

    #[test]
    #[should_panic]
    fn ragged_panics() {
        let mut series = vec![vec![1, 2], vec![1]];
        scale_request_rate(&mut series, 10);
    }
}

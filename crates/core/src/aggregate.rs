//! Aggregation of trace functions into duration-keyed super-Functions.
//!
//! Paper §3.1.2 ("Aggregation"): all trace functions with the same reported
//! mean execution duration are merged into a single "super-Function" whose
//! invocation counts are the sums of its members'. This reduces Azure's
//! ~50 K functions to ~12.8 K Functions while *exactly* preserving the
//! invocation-weighted duration distribution, and — as Fig. 4 shows —
//! leaving function popularity virtually unaffected.

use faasrail_trace::{MinuteSeries, Trace, MINUTES_PER_DAY};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Resolution at which durations are considered "the same".
///
/// The Azure trace reports integer milliseconds; the Huawei trace's sub-10 ms
/// durations need a finer key.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DurationResolution {
    Millisecond,
    TenthMillisecond,
}

impl DurationResolution {
    /// Quantize a duration to its aggregation key.
    pub fn key(self, ms: f64) -> u64 {
        match self {
            DurationResolution::Millisecond => ms.round().max(1.0) as u64,
            DurationResolution::TenthMillisecond => (ms * 10.0).round().max(1.0) as u64,
        }
    }

    /// Convert a key back to a representative duration in ms.
    pub fn ms(self, key: u64) -> f64 {
        match self {
            DurationResolution::Millisecond => key as f64,
            DurationResolution::TenthMillisecond => key as f64 / 10.0,
        }
    }

    /// The natural resolution for a trace kind.
    pub fn for_trace(trace: &Trace) -> Self {
        match trace.kind {
            faasrail_trace::TraceKind::HuaweiPrivate => DurationResolution::TenthMillisecond,
            _ => DurationResolution::Millisecond,
        }
    }
}

/// A super-Function: every trace function sharing one duration key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AggregatedFunction {
    /// Quantized duration key.
    pub key: u64,
    /// Representative average duration, ms.
    pub avg_duration_ms: f64,
    /// Indices (into `trace.functions`) of the member functions.
    pub members: Vec<u32>,
    /// Summed per-minute invocations of all members (selected day).
    pub minutes: MinuteSeries,
    /// Invocation-weighted mean of the members' app memory, MiB.
    pub memory_mb: f64,
}

impl AggregatedFunction {
    /// Total selected-day invocations.
    pub fn total_invocations(&self) -> u64 {
        self.minutes.total()
    }
}

/// The result of the aggregation step.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Aggregation {
    pub resolution: DurationResolution,
    /// Super-Functions ordered by ascending duration key.
    pub functions: Vec<AggregatedFunction>,
}

impl Aggregation {
    /// Total invocations across all super-Functions.
    pub fn total_invocations(&self) -> u64 {
        self.functions.iter().map(|f| f.total_invocations()).sum()
    }

    /// Number of super-Functions (Azure: ~12 757 at paper scale).
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// True when no functions were aggregated.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

/// Aggregate a trace's functions by quantized mean duration.
pub fn aggregate(trace: &Trace, resolution: DurationResolution) -> Aggregation {
    struct Acc {
        members: Vec<u32>,
        minutes: Vec<u64>,
        mem_weighted: f64,
        weight: f64,
    }
    let mut groups: BTreeMap<u64, Acc> = BTreeMap::new();
    for (i, f) in trace.functions.iter().enumerate() {
        let key = resolution.key(f.avg_duration_ms);
        let acc = groups.entry(key).or_insert_with(|| Acc {
            members: Vec::new(),
            minutes: vec![0u64; MINUTES_PER_DAY],
            mem_weighted: 0.0,
            weight: 0.0,
        });
        acc.members.push(i as u32);
        for &(m, c) in f.minutes.entries() {
            acc.minutes[m as usize] += c as u64;
        }
        let mem = trace.app(f.app).map(|a| a.memory_mb).unwrap_or(170.0);
        // Weight memory by invocations, falling back to plain averaging for
        // groups of never-invoked functions.
        let w = f.total_invocations().max(1) as f64;
        acc.mem_weighted += mem * w;
        acc.weight += w;
    }

    let functions = groups
        .into_iter()
        .map(|(key, acc)| AggregatedFunction {
            key,
            avg_duration_ms: resolution.ms(key),
            members: acc.members,
            minutes: MinuteSeries::from_dense(&acc.minutes),
            memory_mb: acc.mem_weighted / acc.weight,
        })
        .collect();
    Aggregation { resolution, functions }
}

/// Popularity change caused by aggregation (paper Fig. 4).
///
/// For every super-Function: its popularity (share of total daily
/// invocations) minus the *maximum* popularity among its member functions.
/// Values are ≥ 0 by construction and overwhelmingly tiny.
pub fn popularity_changes(trace: &Trace, agg: &Aggregation) -> Vec<f64> {
    let grand_total = trace.total_invocations() as f64;
    if grand_total == 0.0 {
        return Vec::new();
    }
    agg.functions
        .iter()
        .map(|af| {
            let new_pop = af.total_invocations() as f64 / grand_total;
            let max_member_pop = af
                .members
                .iter()
                .map(|&i| trace.functions[i as usize].total_invocations() as f64 / grand_total)
                .fold(0.0, f64::max);
            new_pop - max_member_pop
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_trace::azure::{generate, AzureTraceConfig};
    use faasrail_trace::summarize::invocations_duration_wecdf;
    use faasrail_trace::{App, AppId, FunctionId, TraceFunction, TraceKind};

    fn tiny_trace() -> Trace {
        let mk = |id: u32, dur: f64, minute: u16, count: u32| TraceFunction {
            id: FunctionId(id),
            app: AppId(0),
            trigger: Default::default(),
            avg_duration_ms: dur,
            minutes: MinuteSeries::new(vec![(minute, count)]),
            daily: vec![],
        };
        Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions: vec![
                mk(0, 100.2, 0, 10),
                mk(1, 99.9, 5, 20), // same ms key (100) as f0
                mk(2, 250.0, 5, 5),
                mk(3, 250.4, 9, 1), // same ms key (250) as f2
                mk(4, 4000.0, 3, 7),
            ],
            apps: vec![App { id: AppId(0), memory_mb: 128.0 }],
        }
    }

    #[test]
    fn groups_by_rounded_ms() {
        let t = tiny_trace();
        let agg = aggregate(&t, DurationResolution::Millisecond);
        assert_eq!(agg.len(), 3);
        let keys: Vec<u64> = agg.functions.iter().map(|f| f.key).collect();
        assert_eq!(keys, vec![100, 250, 4000]);
        assert_eq!(agg.functions[0].members.len(), 2);
        assert_eq!(agg.functions[0].total_invocations(), 30);
        // Minute series summed.
        assert_eq!(agg.functions[0].minutes.get(0), 10);
        assert_eq!(agg.functions[0].minutes.get(5), 20);
    }

    #[test]
    fn finer_resolution_splits_groups() {
        let t = tiny_trace();
        let agg = aggregate(&t, DurationResolution::TenthMillisecond);
        assert_eq!(agg.len(), 5, "0.1 ms keys keep all five distinct");
    }

    #[test]
    fn total_invocations_preserved() {
        let t = tiny_trace();
        let agg = aggregate(&t, DurationResolution::Millisecond);
        assert_eq!(agg.total_invocations(), t.total_invocations());
    }

    #[test]
    fn weighted_duration_distribution_nearly_preserved() {
        // Aggregation quantizes durations to 1 ms, so the weighted CDF can
        // move by at most the quantization step.
        let t = generate(&AzureTraceConfig::small(5));
        let agg = aggregate(&t, DurationResolution::Millisecond);
        let before = invocations_duration_wecdf(&t);
        let after = WeightedEcdf::new(
            agg.functions
                .iter()
                .filter(|f| f.total_invocations() > 0)
                .map(|f| (f.avg_duration_ms, f.total_invocations() as f64)),
        );
        let ks = faasrail_stats::ks_distance_weighted(&before, &after);
        assert!(ks < 0.01, "KS after aggregation = {ks}");
    }

    #[test]
    fn reduces_function_count_substantially() {
        let t = generate(&AzureTraceConfig::small(6));
        let agg = aggregate(&t, DurationResolution::Millisecond);
        assert!(agg.len() < t.functions.len(), "{} !< {}", agg.len(), t.functions.len());
    }

    #[test]
    fn popularity_changes_nonnegative_and_tiny() {
        // Fig. 4: apart from a handful of outliers, popularity changes are
        // far below 1 %.
        let t = generate(&AzureTraceConfig::small(7));
        let agg = aggregate(&t, DurationResolution::Millisecond);
        let changes = popularity_changes(&t, &agg);
        assert_eq!(changes.len(), agg.len());
        assert!(changes.iter().all(|&c| c >= -1e-12));
        let big = changes.iter().filter(|&&c| c > 0.01).count();
        assert!(
            (big as f64) / (changes.len() as f64) < 0.01,
            "{big}/{} groups changed popularity by more than 1%",
            changes.len()
        );
    }

    #[test]
    fn memory_weighted_mean() {
        let mut t = tiny_trace();
        t.apps = vec![App { id: AppId(0), memory_mb: 100.0 }];
        let agg = aggregate(&t, DurationResolution::Millisecond);
        for f in &agg.functions {
            assert_eq!(f.memory_mb, 100.0);
        }
    }

    #[test]
    fn resolution_key_roundtrip() {
        let r = DurationResolution::Millisecond;
        assert_eq!(r.key(100.4), 100);
        assert_eq!(r.ms(100), 100.0);
        let r = DurationResolution::TenthMillisecond;
        assert_eq!(r.key(0.14), 1);
        assert_eq!(r.ms(14), 1.4);
        // Sub-resolution durations clamp to the smallest key, never zero.
        assert_eq!(DurationResolution::Millisecond.key(0.01), 1);
    }
}

//! FaaSRail core — the "shrink ray" (HPDC '24).
//!
//! FaaSRail fits real open-source FaaS workloads to production workload
//! traces so that the generated load preserves the traces' critical
//! statistical properties: (i) the distribution of distinct functions'
//! execution durations, (ii) the skewed popularity of functions, (iii) the
//! distribution of all invocations' execution durations, and (iv) the
//! arrival rates of invocations.
//!
//! Pipeline (paper Fig. 2):
//!
//! ```text
//! trace ──► day selection (CV) ──► aggregation ──► mapping ─┐
//!                                                           ▼
//!   Spec mode:    time scaling ► rate scaling ► ExperimentSpec ► requests
//!   Smirnov mode: weighted-ECDF inverse sampling ► mapping ► requests
//! ```
//!
//! Entry points: [`shrinkray::shrink`] (Spec mode) and [`smirnov::generate`]
//! (Smirnov Transform mode); [`request::generate_requests`] expands a spec
//! into a timestamped, replayable request trace.

pub mod aggregate;
pub mod dayselect;
pub mod error;
pub mod evaluate;
pub mod mapping;
pub mod rate_scaling;
pub mod request;
pub mod schedule;
pub mod shrinkray;
pub mod smirnov;
pub mod spec;
pub mod subminute;
pub mod time_scaling;

pub use aggregate::{aggregate, AggregatedFunction, Aggregation, DurationResolution};
pub use error::ShrinkError;
pub use evaluate::{evaluate, Representativity};
pub use mapping::{map_functions, BalanceStrategy, FunctionMapping, MappingConfig};
pub use request::{generate_requests, Request, RequestTrace};
pub use schedule::{
    materialize, Arrival, ArrivalCursor, ArrivalStream, ModelEntry, ScheduleModel, ScheduleSource,
};
pub use shrinkray::{shrink, ShrinkRayConfig, ShrinkReport};
pub use smirnov::{SmirnovConfig, SmirnovReport};
pub use spec::{ExperimentSpec, IatModel, SpecEntry};
pub use subminute::{fit_iat_model, BurstinessFit};
pub use time_scaling::TimeScaling;

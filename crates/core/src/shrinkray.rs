//! The shrink ray: the offline pipeline that turns a production trace plus
//! a Workload pool into a replayable experiment specification (paper Fig. 2,
//! "Spec mode").
//!
//! Pipeline: validate → day-selection check → aggregate functions by mean
//! duration → map Functions to Workloads → scale each Function's day in
//! time (Thumbnails / Minute Range) → scale the aggregate request rate to
//! the target maximum → emit the spec.
//!
//! Ordering note: time scaling runs *before* rate scaling so the "no minute
//! exceeds the target" guarantee (paper §3.2.1.1) holds for the experiment's
//! wall-clock minutes — Thumbnails sums groups of trace minutes, so
//! normalizing first and rebinning after would overshoot the target by the
//! group size.

use crate::aggregate::{aggregate, DurationResolution};
use crate::dayselect::{select_day, DaySelection};
use crate::error::ShrinkError;
use crate::mapping::{map_functions, FunctionMapping, MappingConfig, MappingStats};
use crate::rate_scaling::{scale_request_rate, ScaleReport};
use crate::spec::{ExperimentSpec, IatModel, SpecEntry};
use crate::time_scaling::TimeScaling;
use faasrail_trace::{validate, Trace};
use faasrail_workloads::WorkloadPool;
use serde::{Deserialize, Serialize};

/// Shrink-ray configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkRayConfig {
    /// Target maximum request rate, requests/second (the paper's primary
    /// user input alongside the experiment duration).
    pub max_rps: f64,
    /// Time-scaling mode; its `experiment_minutes` is the experiment
    /// duration (the paper's second user input).
    pub time_scaling: TimeScaling,
    /// Function→Workload mapping parameters.
    pub mapping: MappingConfig,
    /// Duration-aggregation resolution; `None` picks the trace's natural
    /// resolution (1 ms for Azure, 0.1 ms for Huawei).
    pub resolution: Option<DurationResolution>,
    /// Sub-minute arrival model recorded in the spec.
    pub iat: IatModel,
    /// Minimum fraction of cross-day-stable functions required by the
    /// day-selection safety check (advisory; reported, not enforced).
    pub day_safety_fraction: f64,
    /// Variable-inputs extension (paper §3.3 "next step"): record up to
    /// `max_alternates` same-benchmark Workloads within the mapping
    /// threshold for each Function, so request generation can vary the input
    /// across invocations. 0 (default) reproduces the paper's fixed-input
    /// behaviour.
    #[serde(default)]
    pub max_alternates: usize,
}

impl ShrinkRayConfig {
    /// The paper's canonical configuration: Thumbnails time scaling,
    /// Poisson sub-minute arrivals, 10 % mapping threshold.
    pub fn new(experiment_minutes: usize, max_rps: f64) -> Self {
        ShrinkRayConfig {
            max_rps,
            time_scaling: TimeScaling::Thumbnails { experiment_minutes },
            mapping: MappingConfig::default(),
            resolution: None,
            iat: IatModel::Poisson,
            day_safety_fraction: 0.8,
            max_alternates: 0,
        }
    }
}

/// Everything the pipeline learned along the way (for analysis & figures).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShrinkReport {
    pub day: DaySelection,
    /// Number of trace functions before aggregation.
    pub trace_functions: usize,
    /// Number of super-Functions after aggregation.
    pub aggregated_functions: usize,
    pub mapping: MappingStats,
    pub scale: ScaleReport,
}

/// Run the full Spec-mode pipeline.
pub fn shrink(
    trace: &Trace,
    pool: &WorkloadPool,
    cfg: &ShrinkRayConfig,
) -> Result<(ExperimentSpec, ShrinkReport), ShrinkError> {
    validate(trace)?;
    cfg.time_scaling.validate().map_err(ShrinkError::Config)?;
    if cfg.max_rps <= 0.0 {
        return Err(ShrinkError::Config("max_rps must be positive".into()));
    }
    if trace.total_invocations() == 0 {
        return Err(ShrinkError::EmptyTrace);
    }

    let day = select_day(trace, cfg.day_safety_fraction);
    let resolution = cfg.resolution.unwrap_or_else(|| DurationResolution::for_trace(trace));
    let agg = aggregate(trace, resolution);
    let mapping: FunctionMapping = map_functions(&agg, pool, &cfg.mapping);

    // Per-Function experiment-minute series.
    let mut series: Vec<Vec<u64>> =
        agg.functions.iter().map(|f| cfg.time_scaling.apply(&f.minutes.dense())).collect();

    let target_peak_per_minute = (cfg.max_rps * 60.0).round().max(1.0) as u64;
    let scale = scale_request_rate(&mut series, target_peak_per_minute);

    // Variable-inputs extension: same-benchmark pool Workloads within the
    // mapping threshold, nearest first.
    let mut pool_by_ms: Vec<(f64, faasrail_workloads::WorkloadId)> =
        pool.workloads().iter().map(|w| (w.mean_ms, w.id)).collect();
    pool_by_ms.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let alternates_for = |i: usize, chosen: faasrail_workloads::WorkloadId| -> Vec<_> {
        if cfg.max_alternates == 0 {
            return Vec::new();
        }
        let chosen_kind = pool.get(chosen).expect("mapped workload").kind();
        let d = agg.functions[i].avg_duration_ms;
        let lo = d * (1.0 - cfg.mapping.error_threshold);
        let hi = d * (1.0 + cfg.mapping.error_threshold);
        let start = pool_by_ms.partition_point(|&(ms, _)| ms < lo);
        let end = pool_by_ms.partition_point(|&(ms, _)| ms <= hi);
        let mut cands: Vec<(f64, faasrail_workloads::WorkloadId)> = pool_by_ms[start..end]
            .iter()
            .filter(|&&(_, id)| {
                id != chosen && pool.get(id).expect("in pool").kind() == chosen_kind
            })
            .copied()
            .collect();
        cands.sort_by(|a, b| (a.0 - d).abs().partial_cmp(&(b.0 - d).abs()).expect("finite"));
        cands.into_iter().take(cfg.max_alternates).map(|(_, id)| id).collect()
    };

    let entries: Vec<SpecEntry> = series
        .into_iter()
        .enumerate()
        .filter(|(_, s)| s.iter().any(|&v| v > 0))
        .map(|(i, per_minute)| {
            let workload =
                mapping.workload_for(i as u32).expect("every aggregated function was mapped");
            SpecEntry {
                function_index: i as u32,
                workload,
                alternates: alternates_for(i, workload),
                trace_duration_ms: agg.functions[i].avg_duration_ms,
                per_minute,
            }
        })
        .collect();

    let spec = ExperimentSpec {
        duration_minutes: cfg.time_scaling.experiment_minutes(),
        target_max_rps: cfg.max_rps,
        iat: cfg.iat,
        entries,
    };
    spec.validate().map_err(ShrinkError::Spec)?;

    let report = ShrinkReport {
        day,
        trace_functions: trace.functions.len(),
        aggregated_functions: agg.len(),
        mapping: mapping.stats,
        scale,
    };
    Ok((spec, report))
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::ks_distance_weighted;
    use faasrail_trace::azure::{generate, AzureTraceConfig};
    use faasrail_trace::summarize::invocations_duration_wecdf;
    use faasrail_workloads::CostModel;

    fn run_small() -> (Trace, WorkloadPool, ExperimentSpec, ShrinkReport) {
        let trace = generate(&AzureTraceConfig::small(33));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let cfg = ShrinkRayConfig::new(120, 20.0);
        let (spec, report) = shrink(&trace, &pool, &cfg).expect("pipeline runs");
        (trace, pool, spec, report)
    }

    #[test]
    fn produces_valid_spec() {
        let (_, _, spec, report) = run_small();
        assert_eq!(spec.validate(), Ok(()));
        assert_eq!(spec.duration_minutes, 120);
        assert!(report.aggregated_functions < report.trace_functions);
        assert!(report.day.single_day_safe);
    }

    #[test]
    fn peak_respects_budget() {
        let (_, _, spec, _) = run_small();
        assert!(spec.peak_per_minute() <= 20 * 60);
        // And comes close to it (the busiest minute approximates the target).
        assert!(spec.peak_per_minute() >= (20 * 60) * 95 / 100, "{}", spec.peak_per_minute());
    }

    #[test]
    fn scaled_volume_matches_paper_ballpark() {
        // Paper: Azure day 1 at 2 h / 20 rps yields ~118 K invocations. Our
        // synthetic small trace has the same shape, so the spec total should
        // land near target_peak × duration × (mean/peak load ratio) — i.e.
        // well within [60 % .. 100 %] of 2h × 20rps = 144 K.
        let (_, _, spec, _) = run_small();
        let budget = 144_000u64;
        let total = spec.total_requests();
        assert!(
            total > budget * 55 / 100 && total <= budget,
            "spec total = {total}, budget = {budget}"
        );
    }

    #[test]
    fn weighted_duration_distribution_tracks_trace() {
        // The heart of Fig. 9: the spec's invocation-weighted duration CDF
        // (with trace durations) stays close to the trace's own.
        let (trace, _, spec, _) = run_small();
        let before = invocations_duration_wecdf(&trace);
        let after = WeightedEcdf::new(
            spec.entries.iter().map(|e| (e.trace_duration_ms, e.total_requests() as f64)),
        );
        let ks = ks_distance_weighted(&before, &after);
        assert!(ks < 0.06, "KS(trace, spec) = {ks}");
    }

    #[test]
    fn mapped_workload_durations_track_trace() {
        // Same check but through the *mapped workload* runtimes — the CDF a
        // real replay would realize.
        let (trace, pool, spec, _) = run_small();
        let before = invocations_duration_wecdf(&trace);
        let after = WeightedEcdf::new(
            spec.entries
                .iter()
                .map(|e| (pool.get(e.workload).unwrap().mean_ms, e.total_requests() as f64)),
        );
        // Looser than the trace-duration check: the 10 % mapping threshold
        // plus balanced selection displaces a little mass by design.
        let ks = ks_distance_weighted(&before, &after);
        assert!(ks < 0.15, "KS(trace, mapped) = {ks}");
    }

    #[test]
    fn aggregate_load_shape_tracks_trace() {
        // Fig. 8: the spec's per-minute aggregate, normalized to peak,
        // follows the thumbnailed trace day.
        let (trace, _, spec, _) = run_small();
        let day = trace.aggregate_minutes();
        let rebinned = faasrail_stats::timeseries::rebin_sum(&day, 120);
        let expect = faasrail_stats::timeseries::normalize_peak(&rebinned);
        let got = faasrail_stats::timeseries::normalize_peak(&spec.aggregate_minutes());
        let mean_abs_err: f64 =
            expect.iter().zip(&got).map(|(a, b)| (a - b).abs()).sum::<f64>() / 120.0;
        assert!(mean_abs_err < 0.02, "mean |shape error| = {mean_abs_err}");
    }

    #[test]
    fn determinism() {
        let trace = generate(&AzureTraceConfig::small(44));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let cfg = ShrinkRayConfig::new(60, 5.0);
        let a = shrink(&trace, &pool, &cfg).unwrap();
        let b = shrink(&trace, &pool, &cfg).unwrap();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
    }

    #[test]
    fn minute_range_mode_works() {
        let trace = generate(&AzureTraceConfig::small(55));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let mut cfg = ShrinkRayConfig::new(30, 10.0);
        cfg.time_scaling = TimeScaling::MinuteRange { start: 600, experiment_minutes: 30 };
        let (spec, _) = shrink(&trace, &pool, &cfg).expect("minute range runs");
        assert_eq!(spec.duration_minutes, 30);
        assert!(spec.peak_per_minute() <= 600);
    }

    #[test]
    fn variable_inputs_extension() {
        let trace = generate(&AzureTraceConfig::small(88));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let mut cfg = ShrinkRayConfig::new(30, 10.0);
        cfg.max_alternates = 3;
        let (spec, _) = shrink(&trace, &pool, &cfg).expect("shrink");

        // Alternates exist, stay within the threshold, and keep the kind.
        let mut with_alternates = 0usize;
        for e in &spec.entries {
            let chosen = pool.get(e.workload).unwrap();
            assert!(e.alternates.len() <= 3);
            for &alt in &e.alternates {
                let w = pool.get(alt).unwrap();
                assert_eq!(w.kind(), chosen.kind(), "alternate changes benchmark");
                assert_ne!(alt, e.workload);
                let rel = (w.mean_ms - e.trace_duration_ms).abs() / e.trace_duration_ms;
                assert!(rel <= 0.10 + 1e-9, "alternate outside threshold: {rel}");
            }
            if !e.alternates.is_empty() {
                with_alternates += 1;
            }
        }
        assert!(
            with_alternates * 2 > spec.entries.len(),
            "most entries should have alternates ({with_alternates}/{})",
            spec.entries.len()
        );

        // Request generation actually rotates inputs.
        let reqs = crate::generate_requests(&spec, 4);
        let busiest =
            spec.entries.iter().max_by_key(|e| e.total_requests()).expect("non-empty spec");
        if !busiest.alternates.is_empty() {
            let used: std::collections::BTreeSet<_> = reqs
                .requests
                .iter()
                .filter(|r| r.function_index == busiest.function_index)
                .map(|r| r.workload)
                .collect();
            assert!(used.len() > 1, "rotation should use multiple inputs");
        }
    }

    #[test]
    fn rejects_bad_config() {
        let trace = generate(&AzureTraceConfig::small(66));
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        let mut cfg = ShrinkRayConfig::new(60, 10.0);
        cfg.max_rps = 0.0;
        assert!(matches!(shrink(&trace, &pool, &cfg), Err(ShrinkError::Config(_))));
        let cfg = ShrinkRayConfig::new(0, 10.0);
        assert!(matches!(shrink(&trace, &pool, &cfg), Err(ShrinkError::Config(_))));
    }
}

//! Representativity evaluation: score a generated request trace against a
//! production trace on the paper's four critical statistical properties.
//!
//! This packages the evaluation methodology of paper §4 as a reusable API:
//! given the original [`Trace`], the generated [`RequestTrace`], and the
//! [`WorkloadPool`] it draws from, compute one score per property —
//!
//! 1. distinct-workload duration distribution (Fig. 6): KS distance,
//! 2. function popularity (Fig. 10): top-share differences,
//! 3. invocation duration distribution (Figs. 9/11): weighted KS,
//! 4. arrival rates over time (Fig. 8): normalized-shape MAE and
//!    second-scale burstiness ratio —
//!
//! so any load generator (FaaSRail's modes, the baselines, or a user's own)
//! can be judged with one call.

use crate::request::RequestTrace;
use faasrail_stats::ecdf::{Ecdf, WeightedEcdf};
use faasrail_stats::timeseries::{fano_factor, normalize_peak, rebin_sum};
use faasrail_stats::{ks_distance, ks_distance_weighted};
use faasrail_trace::summarize::{functions_duration_ecdf, invocations_duration_wecdf};
use faasrail_trace::Trace;
use faasrail_workloads::WorkloadPool;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Scores for the four critical properties (lower is better for the
/// distances; ratios are relative to the trace's own value).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Representativity {
    /// KS between the trace's distinct-function duration CDF and the
    /// distinct-workloads-used duration CDF (property i / Fig. 6).
    pub ks_workload_durations: f64,
    /// Weighted KS between invocation-duration CDFs (property iii / Fig. 9).
    pub ks_invocation_durations: f64,
    /// |top-1% invocation share (trace) − top-1% share (generated)|
    /// (property ii / Fig. 10).
    pub top1_share_error: f64,
    /// Same at the top decile.
    pub top10_share_error: f64,
    /// Mean |relative load error| per experiment minute against the
    /// thumbnailed trace day (property iv / Fig. 8). `NaN` when the
    /// generated trace is shorter than 2 minutes.
    pub load_shape_mae: f64,
    /// Generated-to-trace ratio of per-minute Fano factors (burstiness);
    /// 1.0 = same overdispersion character.
    pub burstiness_ratio: f64,
}

impl Representativity {
    /// A blunt one-number summary: the maximum of the distribution distances
    /// and share errors (shape and burstiness reported separately).
    pub fn worst_distance(&self) -> f64 {
        self.ks_workload_durations
            .max(self.ks_invocation_durations)
            .max(self.top1_share_error)
            .max(self.top10_share_error)
    }
}

fn top_share_of_counts(counts: &mut [u64], frac: f64) -> f64 {
    counts.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = counts.iter().sum();
    if grand == 0 {
        return 0.0;
    }
    let k = ((counts.len() as f64 * frac).round() as usize).max(1);
    counts.iter().take(k).sum::<u64>() as f64 / grand as f64
}

/// Evaluate a generated request trace against a production trace.
///
/// # Panics
/// Panics if the request trace is empty or references workloads missing
/// from the pool.
pub fn evaluate(trace: &Trace, requests: &RequestTrace, pool: &WorkloadPool) -> Representativity {
    assert!(!requests.is_empty(), "cannot evaluate an empty request trace");

    // (i) distinct workloads used vs distinct trace functions.
    let mut used: Vec<u32> = requests.requests.iter().map(|r| r.workload.0).collect();
    used.sort_unstable();
    used.dedup();
    let used_durs: Vec<f64> = used
        .iter()
        .map(|&i| pool.get(faasrail_workloads::WorkloadId(i)).expect("in pool").mean_ms)
        .collect();
    let ks_workload_durations =
        ks_distance(&functions_duration_ecdf(trace), &Ecdf::new(&used_durs));

    // (iii) invocation durations.
    let generated =
        WeightedEcdf::new(requests.expected_durations(pool).into_iter().map(|d| (d, 1.0)));
    let ks_invocation_durations =
        ks_distance_weighted(&invocations_duration_wecdf(trace), &generated);

    // (ii) popularity by originating function.
    let mut by_fn: HashMap<u32, u64> = HashMap::new();
    for r in &requests.requests {
        *by_fn.entry(r.function_index).or_insert(0) += 1;
    }
    let mut gen_counts: Vec<u64> = by_fn.into_values().collect();
    let mut trace_counts: Vec<u64> =
        trace.functions.iter().map(|f| f.total_invocations()).filter(|&t| t > 0).collect();
    let top1_share_error = (top_share_of_counts(&mut trace_counts, 0.01)
        - top_share_of_counts(&mut gen_counts, 0.01))
    .abs();
    let top10_share_error = (top_share_of_counts(&mut trace_counts, 0.10)
        - top_share_of_counts(&mut gen_counts, 0.10))
    .abs();

    // (iv) load over time.
    let minutes = requests.duration_minutes;
    let load_shape_mae = if minutes >= 2 {
        let want = normalize_peak(&rebin_sum(&trace.aggregate_minutes(), minutes));
        let have = normalize_peak(&requests.per_minute_counts());
        want.iter().zip(&have).map(|(a, b)| (a - b).abs()).sum::<f64>() / minutes as f64
    } else {
        f64::NAN
    };
    let trace_fano = fano_factor(&trace.aggregate_minutes());
    let gen_fano = fano_factor(&requests.per_minute_counts());
    // Compare relative overdispersion (Fano scales with the mean, so
    // normalize each by its mean rate first).
    let trace_rel = trace_fano
        / (trace.total_invocations() as f64 / faasrail_trace::MINUTES_PER_DAY as f64).max(1e-9);
    let gen_rel = gen_fano / (requests.len() as f64 / minutes.max(1) as f64).max(1e-9);
    let burstiness_ratio = gen_rel / trace_rel.max(1e-12);

    Representativity {
        ks_workload_durations,
        ks_invocation_durations,
        top1_share_error,
        top10_share_error,
        load_shape_mae,
        burstiness_ratio,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate_requests, shrink, ShrinkRayConfig};
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};
    use faasrail_workloads::CostModel;

    fn setup() -> (Trace, WorkloadPool) {
        (
            gen_azure(&AzureTraceConfig::small(404)),
            WorkloadPool::build_modelled(&CostModel::default_calibration()),
        )
    }

    #[test]
    fn faasrail_load_scores_well_on_every_property() {
        let (trace, pool) = setup();
        let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();
        let reqs = generate_requests(&spec, 1);
        let r = evaluate(&trace, &reqs, &pool);
        assert!(r.ks_invocation_durations < 0.15, "{r:?}");
        assert!(r.load_shape_mae < 0.05, "{r:?}");
        assert!(r.top1_share_error < 0.30, "{r:?}");
        assert!(r.worst_distance() < 0.45, "{r:?}");
        assert!(r.burstiness_ratio.is_finite() && r.burstiness_ratio > 0.0);
    }

    #[test]
    fn poisson_baseline_scores_visibly_worse() {
        let (trace, pool) = setup();
        let vanilla = WorkloadPool::vanilla(&CostModel::default_calibration());
        let baseline = faasrail_baselines_shim(&vanilla);
        let rb = evaluate(&trace, &baseline, &vanilla);

        let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).unwrap();
        let rr = evaluate(&trace, &generate_requests(&spec, 1), &pool);
        assert!(
            rr.ks_invocation_durations * 2.0 < rb.ks_invocation_durations,
            "faasrail {rr:?} vs baseline {rb:?}"
        );
        assert!(rr.load_shape_mae * 2.0 < rb.load_shape_mae);
    }

    /// A miniature plain-Poisson baseline without depending on the
    /// baselines crate (which depends on this one).
    fn faasrail_baselines_shim(pool: &WorkloadPool) -> RequestTrace {
        use faasrail_stats::sampler::{Exponential, Sampler};
        use rand::Rng;
        let mut rng = faasrail_stats::seeded_rng(5);
        let gap = Exponential::from_mean(50.0);
        let mut t = 0.0;
        let mut requests = Vec::new();
        while (t as u64) < 120 * 60_000 {
            let w = pool.workloads()[rng.gen_range(0..pool.len())].id;
            requests.push(crate::Request { at_ms: t as u64, workload: w, function_index: w.0 });
            t += gap.sample(&mut rng);
        }
        RequestTrace { duration_minutes: 120, requests }
    }

    #[test]
    #[should_panic]
    fn empty_requests_panic() {
        let (trace, pool) = setup();
        let empty = RequestTrace { duration_minutes: 1, requests: vec![] };
        evaluate(&trace, &empty, &pool);
    }
}

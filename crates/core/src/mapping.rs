//! The Function-to-Workload mapping algorithm (paper §3.1.3).
//!
//! Each (aggregated) Function is associated with the set of pool Workloads
//! whose mean runtime lies within a configurable relative-error threshold of
//! the Function's reported average duration; when that set is empty the
//! nearest Workload is used instead (the paper's relaxation for
//! long-running outliers). A final selection pass picks one Workload per
//! Function, balancing how much invocation weight each *benchmark type*
//! accumulates so the suite's execution-characteristic mix is preserved
//! (evaluated in paper §4.4 / Fig. 12).

use crate::aggregate::Aggregation;
#[cfg(test)]
use faasrail_workloads::WorkloadKind;
use faasrail_workloads::{WorkloadId, WorkloadPool};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How the selection pass balances candidates.
///
/// Balancing is tracked per *Workload variant*, not per benchmark type:
/// a benchmark with richer augmentation (more variants in a duration band)
/// legitimately attracts more Functions. This reproduces the paper's
/// emergent imbalances — barely-augmented `cnn_serving` stays rare, and
/// `pyaes` (dense on the short end) dominates Huawei mappings (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BalanceStrategy {
    /// Prefer the candidate Workload that has accumulated the least
    /// invocation weight so far (the default).
    ByInvocations,
    /// Prefer the candidate Workload with the fewest Functions assigned.
    ByFunctionCount,
    /// Always pick the duration-closest candidate (the Ilúvatar-style
    /// baseline the paper criticizes; kept for the ablation benches).
    NearestOnly,
}

/// Mapping configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingConfig {
    /// Maximum relative duration error for a candidate (default 10 %).
    pub error_threshold: f64,
    pub balance: BalanceStrategy,
    /// Weight of the *memory* term when choosing among equally-loaded
    /// candidates (paper §3.3 lists approaching the traces' memory
    /// distributions as FaaSRail's next step; this implements it).
    ///
    /// 0 (default) reproduces the paper: duration-only selection. Positive
    /// values add `memory_weight × |ln(workload_mem / Function_mem)|` to the
    /// tie-break score, steering each Function toward Workloads that also
    /// match its app's reported memory — without ever violating the duration
    /// threshold, so runtime representativity is preserved.
    #[serde(default)]
    pub memory_weight: f64,
}

impl Default for MappingConfig {
    fn default() -> Self {
        MappingConfig {
            error_threshold: 0.10,
            balance: BalanceStrategy::ByInvocations,
            memory_weight: 0.0,
        }
    }
}

/// One Function's assignment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Assignment {
    /// Index into `Aggregation::functions`.
    pub function_index: u32,
    pub workload: WorkloadId,
    /// Relative duration error of the chosen Workload.
    pub rel_error: f64,
    /// Whether the threshold had to be relaxed (nearest-neighbour fallback).
    pub fallback: bool,
}

/// Aggregate quality statistics of a mapping.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MappingStats {
    pub functions: usize,
    pub within_threshold: usize,
    pub fallbacks: usize,
    /// Unweighted mean relative error.
    pub mean_rel_error: f64,
    /// Invocation-weighted mean relative error.
    pub weighted_rel_error: f64,
    pub max_rel_error: f64,
}

/// The result of the mapping stage.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FunctionMapping {
    pub assignments: Vec<Assignment>,
    pub stats: MappingStats,
}

impl FunctionMapping {
    /// Assignment for a given aggregated-function index.
    pub fn workload_for(&self, function_index: u32) -> Option<WorkloadId> {
        self.assignments
            .binary_search_by_key(&function_index, |a| a.function_index)
            .ok()
            .map(|i| self.assignments[i].workload)
    }
}

/// Map every aggregated Function to one pool Workload.
pub fn map_functions(
    agg: &Aggregation,
    pool: &WorkloadPool,
    cfg: &MappingConfig,
) -> FunctionMapping {
    assert!(cfg.error_threshold >= 0.0, "negative error threshold");
    assert!(!pool.is_empty(), "empty workload pool");

    // Pool sorted by mean runtime for range/nearest queries.
    struct Candidate {
        ms: f64,
        id: WorkloadId,
        memory_mb: f64,
    }
    let mut by_ms: Vec<Candidate> = pool
        .workloads()
        .iter()
        .map(|w| Candidate { ms: w.mean_ms, id: w.id, memory_mb: w.memory_mb })
        .collect();
    by_ms.sort_by(|a, b| a.ms.partial_cmp(&b.ms).expect("finite"));

    // Process Functions in descending invocation order so the busiest
    // Functions get first pick of under-used benchmark types.
    let mut order: Vec<usize> = (0..agg.functions.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(agg.functions[i].total_invocations()));

    let mut variant_weight: BTreeMap<WorkloadId, f64> = BTreeMap::new();
    let mut variant_count: BTreeMap<WorkloadId, u64> = BTreeMap::new();
    let mut assignments = Vec::with_capacity(agg.functions.len());

    for idx in order {
        let f = &agg.functions[idx];
        let d = f.avg_duration_ms;
        let f_mem = f.memory_mb;
        let lo = d * (1.0 - cfg.error_threshold);
        let hi = d * (1.0 + cfg.error_threshold);
        let start = by_ms.partition_point(|c| c.ms < lo);
        let end = by_ms.partition_point(|c| c.ms <= hi);

        // Tie-break score among equally-loaded candidates: relative duration
        // error plus (optionally) a log-memory mismatch term.
        let score = |c: &Candidate| -> f64 {
            let dur_err = if d > 0.0 { (c.ms - d).abs() / d } else { 0.0 };
            if cfg.memory_weight > 0.0 && f_mem > 0.0 && c.memory_mb > 0.0 {
                dur_err + cfg.memory_weight * (c.memory_mb / f_mem).ln().abs()
            } else {
                dur_err
            }
        };

        let (chosen, fallback) = if start < end {
            let candidates = &by_ms[start..end];
            let pick = match cfg.balance {
                BalanceStrategy::NearestOnly => candidates
                    .iter()
                    .min_by(|a, b| score(a).partial_cmp(&score(b)).expect("finite"))
                    .expect("non-empty candidate range"),
                BalanceStrategy::ByInvocations | BalanceStrategy::ByFunctionCount => candidates
                    .iter()
                    .min_by(|a, b| {
                        let load = |w: WorkloadId| match cfg.balance {
                            BalanceStrategy::ByInvocations => {
                                variant_weight.get(&w).copied().unwrap_or(0.0)
                            }
                            _ => variant_count.get(&w).copied().unwrap_or(0) as f64,
                        };
                        let (la, lb) = (load(a.id), load(b.id));
                        la.partial_cmp(&lb)
                            .expect("finite")
                            .then_with(|| score(a).partial_cmp(&score(b)).expect("finite"))
                    })
                    .expect("non-empty candidate range"),
            };
            (pick, false)
        } else {
            // Nearest neighbour: compare the two workloads flanking `d`.
            let pos = by_ms.partition_point(|c| c.ms < d);
            let nearest = match (pos.checked_sub(1).map(|i| &by_ms[i]), by_ms.get(pos)) {
                (Some(a), Some(b)) => {
                    if (a.ms - d).abs() <= (b.ms - d).abs() {
                        a
                    } else {
                        b
                    }
                }
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => unreachable!("pool verified non-empty"),
            };
            (nearest, true)
        };

        *variant_weight.entry(chosen.id).or_insert(0.0) += f.total_invocations() as f64;
        *variant_count.entry(chosen.id).or_insert(0) += 1;
        assignments.push(Assignment {
            function_index: idx as u32,
            workload: chosen.id,
            rel_error: if d > 0.0 { (chosen.ms - d).abs() / d } else { 0.0 },
            fallback,
        });
    }

    assignments.sort_by_key(|a| a.function_index);

    let functions = assignments.len();
    let fallbacks = assignments.iter().filter(|a| a.fallback).count();
    let mean_rel_error =
        assignments.iter().map(|a| a.rel_error).sum::<f64>() / functions.max(1) as f64;
    let total_weight: f64 =
        agg.functions.iter().map(|f| f.total_invocations() as f64).sum::<f64>().max(1.0);
    let weighted_rel_error = assignments
        .iter()
        .map(|a| a.rel_error * agg.functions[a.function_index as usize].total_invocations() as f64)
        .sum::<f64>()
        / total_weight;
    let max_rel_error = assignments.iter().map(|a| a.rel_error).fold(0.0, f64::max);

    FunctionMapping {
        stats: MappingStats {
            functions,
            within_threshold: functions - fallbacks,
            fallbacks,
            mean_rel_error,
            weighted_rel_error,
            max_rel_error,
        },
        assignments,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aggregate::{aggregate, DurationResolution};
    use faasrail_trace::azure::{generate, AzureTraceConfig};
    use faasrail_workloads::CostModel;

    fn azure_parts() -> (Aggregation, WorkloadPool) {
        let trace = generate(&AzureTraceConfig::small(21));
        let agg = aggregate(&trace, DurationResolution::Millisecond);
        let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
        (agg, pool)
    }

    #[test]
    fn every_function_assigned_once() {
        let (agg, pool) = azure_parts();
        let m = map_functions(&agg, &pool, &MappingConfig::default());
        assert_eq!(m.assignments.len(), agg.len());
        for (i, a) in m.assignments.iter().enumerate() {
            assert_eq!(a.function_index as usize, i);
            assert!(pool.get(a.workload).is_some());
        }
    }

    #[test]
    fn threshold_respected_for_non_fallbacks() {
        let (agg, pool) = azure_parts();
        let cfg = MappingConfig { error_threshold: 0.1, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        for a in &m.assignments {
            if !a.fallback {
                assert!(a.rel_error <= 0.1 + 1e-9, "rel_error {} without fallback", a.rel_error);
            }
        }
        // With a dense 2 K pool over the trace range, fallbacks are rare and
        // confined to outliers.
        assert!(
            (m.stats.fallbacks as f64) / (m.stats.functions as f64) < 0.2,
            "fallback fraction = {}/{}",
            m.stats.fallbacks,
            m.stats.functions
        );
    }

    #[test]
    fn weighted_error_small() {
        // The invocation mass should be mapped accurately: popular Functions
        // sit in the well-covered part of the pool.
        let (agg, pool) = azure_parts();
        let m = map_functions(&agg, &pool, &MappingConfig::default());
        assert!(
            m.stats.weighted_rel_error < 0.10,
            "weighted relative error = {}",
            m.stats.weighted_rel_error
        );
    }

    #[test]
    fn balancing_spreads_kinds() {
        let (agg, pool) = azure_parts();
        let balanced = map_functions(&agg, &pool, &MappingConfig::default());
        let nearest = map_functions(
            &agg,
            &pool,
            &MappingConfig { balance: BalanceStrategy::NearestOnly, ..Default::default() },
        );
        let distinct_kinds = |m: &FunctionMapping| {
            let mut kinds: Vec<WorkloadKind> =
                m.assignments.iter().map(|a| pool.get(a.workload).unwrap().kind()).collect();
            kinds.sort_unstable();
            kinds.dedup();
            kinds.len()
        };
        assert!(distinct_kinds(&balanced) >= distinct_kinds(&nearest));
        assert!(distinct_kinds(&balanced) >= 7, "balanced mapping uses most benchmark types");
    }

    #[test]
    fn zero_threshold_still_assigns_everything() {
        let (agg, pool) = azure_parts();
        let cfg = MappingConfig { error_threshold: 0.0, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        assert_eq!(m.assignments.len(), agg.len());
        // Nearly everything becomes a nearest-neighbour fallback.
        assert!(m.stats.fallbacks > 0);
    }

    #[test]
    fn workload_for_lookup() {
        let (agg, pool) = azure_parts();
        let m = map_functions(&agg, &pool, &MappingConfig::default());
        let a = &m.assignments[3];
        assert_eq!(m.workload_for(a.function_index), Some(a.workload));
        assert_eq!(m.workload_for(u32::MAX), None);
    }

    #[test]
    fn memory_weight_improves_memory_match_without_breaking_durations() {
        let (agg, pool) = azure_parts();
        let plain = map_functions(&agg, &pool, &MappingConfig::default());
        let memaware =
            map_functions(&agg, &pool, &MappingConfig { memory_weight: 0.5, ..Default::default() });

        // Invocation-weighted mean |ln(workload_mem / Function_mem)|.
        let mem_err = |m: &FunctionMapping| -> f64 {
            let mut err = 0.0;
            let mut weight = 0.0;
            for a in &m.assignments {
                let f = &agg.functions[a.function_index as usize];
                let w = pool.get(a.workload).unwrap();
                let inv = f.total_invocations() as f64;
                err += (w.memory_mb / f.memory_mb).ln().abs() * inv;
                weight += inv;
            }
            err / weight
        };
        assert!(
            mem_err(&memaware) < mem_err(&plain),
            "memory-aware {:.3} should beat plain {:.3}",
            mem_err(&memaware),
            mem_err(&plain)
        );
        // Duration fidelity must not collapse: the threshold still binds.
        for a in &memaware.assignments {
            if !a.fallback {
                assert!(a.rel_error <= 0.10 + 1e-9);
            }
        }
        assert!(memaware.stats.weighted_rel_error < 0.10);
    }

    #[test]
    fn by_function_count_strategy_runs() {
        let (agg, pool) = azure_parts();
        let cfg = MappingConfig { balance: BalanceStrategy::ByFunctionCount, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        assert_eq!(m.assignments.len(), agg.len());
    }
}

//! Day selection: is a single trace day a statistically safe sample?
//!
//! Paper §3.1.2 ("Sampling"): the coefficients of variation of each
//! function's daily average execution time and daily invocation count are
//! computed across all trace days; since ~90 % of Azure functions yield CVs
//! below 1 (Fig. 3), replaying a single day is statistically safe. This
//! module computes those CVs and encodes the decision rule.

use faasrail_stats::Summary;
use faasrail_trace::Trace;
use serde::{Deserialize, Serialize};

/// Per-function cross-day coefficients of variation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FunctionCv {
    pub function_index: u32,
    /// CV of the daily average execution time.
    pub cv_duration: f64,
    /// CV of the daily invocation count.
    pub cv_invocations: f64,
}

/// Compute cross-day CVs for every function carrying daily roll-ups.
pub fn cv_analysis(trace: &Trace) -> Vec<FunctionCv> {
    trace
        .functions
        .iter()
        .enumerate()
        .filter(|(_, f)| f.daily.len() >= 2)
        .map(|(i, f)| {
            let durs: Vec<f64> = f.daily.iter().map(|d| d.avg_duration_ms).collect();
            let cnts: Vec<f64> = f.daily.iter().map(|d| d.invocations as f64).collect();
            FunctionCv {
                function_index: i as u32,
                cv_duration: Summary::from_slice(&durs).cv(),
                cv_invocations: Summary::from_slice(&cnts).cv(),
            }
        })
        .collect()
}

/// Fraction of functions whose CV is below `threshold`, for the chosen
/// extractor (duration or invocations).
pub fn fraction_below(cvs: &[FunctionCv], threshold: f64, duration: bool) -> f64 {
    if cvs.is_empty() {
        return f64::NAN;
    }
    let below = cvs
        .iter()
        .filter(|c| {
            let v = if duration { c.cv_duration } else { c.cv_invocations };
            v.is_finite() && v < threshold
        })
        .count();
    below as f64 / cvs.len() as f64
}

/// Outcome of the day-selection safety check.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DaySelection {
    /// The day to use (the trace's materialized day).
    pub day: usize,
    /// Fraction of functions with CV(duration) < 1 across days.
    pub stable_duration_fraction: f64,
    /// Fraction of functions with CV(invocations) < 1 across days.
    pub stable_invocations_fraction: f64,
    /// Whether single-day sampling meets the paper's safety bar.
    pub single_day_safe: bool,
}

/// Apply the paper's decision rule: single-day sampling is safe when at
/// least `safety_fraction` of the functions have both CVs below 1.
///
/// Traces without multi-day roll-ups (e.g. a loaded single-day CSV) are
/// trivially "safe": there is nothing else to sample.
pub fn select_day(trace: &Trace, safety_fraction: f64) -> DaySelection {
    let cvs = cv_analysis(trace);
    if cvs.is_empty() {
        return DaySelection {
            day: trace.selected_day,
            stable_duration_fraction: f64::NAN,
            stable_invocations_fraction: f64::NAN,
            single_day_safe: true,
        };
    }
    let sd = fraction_below(&cvs, 1.0, true);
    let si = fraction_below(&cvs, 1.0, false);
    DaySelection {
        day: trace.selected_day,
        stable_duration_fraction: sd,
        stable_invocations_fraction: si,
        single_day_safe: sd >= safety_fraction && si >= safety_fraction,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_trace::azure::{generate, AzureTraceConfig};
    use faasrail_trace::{
        App, AppId, DayStats, FunctionId, MinuteSeries, TraceFunction, TraceKind,
    };

    fn trace_with_daily(daily: Vec<DayStats>) -> Trace {
        Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: daily.len().max(1),
            functions: vec![TraceFunction {
                id: FunctionId(0),
                app: AppId(0),
                trigger: Default::default(),
                avg_duration_ms: daily.first().map(|d| d.avg_duration_ms).unwrap_or(1.0),
                minutes: MinuteSeries::new(vec![(
                    0,
                    daily.first().map(|d| d.invocations as u32).unwrap_or(0),
                )]),
                daily,
            }],
            apps: vec![App { id: AppId(0), memory_mb: 100.0 }],
        }
    }

    #[test]
    fn constant_days_have_zero_cv() {
        let t = trace_with_daily(vec![
            DayStats { avg_duration_ms: 100.0, invocations: 10 },
            DayStats { avg_duration_ms: 100.0, invocations: 10 },
            DayStats { avg_duration_ms: 100.0, invocations: 10 },
        ]);
        let cvs = cv_analysis(&t);
        assert_eq!(cvs.len(), 1);
        assert_eq!(cvs[0].cv_duration, 0.0);
        assert_eq!(cvs[0].cv_invocations, 0.0);
        assert!(select_day(&t, 0.8).single_day_safe);
    }

    #[test]
    fn wild_days_flagged_unsafe() {
        let t = trace_with_daily(vec![
            DayStats { avg_duration_ms: 1.0, invocations: 1 },
            DayStats { avg_duration_ms: 10_000.0, invocations: 1_000_000 },
            DayStats { avg_duration_ms: 2.0, invocations: 2 },
        ]);
        let sel = select_day(&t, 0.8);
        assert!(!sel.single_day_safe);
        assert_eq!(sel.stable_duration_fraction, 0.0);
    }

    #[test]
    fn single_day_trace_trivially_safe() {
        let t = trace_with_daily(vec![DayStats { avg_duration_ms: 5.0, invocations: 3 }]);
        let sel = select_day(&t, 0.9);
        assert!(sel.single_day_safe);
        assert!(sel.stable_duration_fraction.is_nan());
    }

    #[test]
    fn azure_synthetic_is_safe() {
        // The synthetic Azure trace reproduces Fig. 3's stability: ~90 % of
        // functions below CV 1 on both axes.
        let t = generate(&AzureTraceConfig::small(11));
        let sel = select_day(&t, 0.8);
        assert!(sel.single_day_safe, "{sel:?}");
        assert!(sel.stable_duration_fraction > 0.8);
        assert!(sel.stable_invocations_fraction > 0.8);
    }

    #[test]
    fn fraction_below_empty_is_nan() {
        assert!(fraction_below(&[], 1.0, true).is_nan());
    }
}

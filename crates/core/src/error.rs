//! Error type for the shrink-ray pipeline.

use faasrail_trace::ValidationError;
use std::fmt;

/// Errors arising while shrinking a trace into an experiment spec.
#[derive(Debug, Clone, PartialEq)]
pub enum ShrinkError {
    /// The input trace violates a structural invariant.
    Trace(ValidationError),
    /// Invalid configuration (time scaling, rates, thresholds).
    Config(String),
    /// The pipeline produced an inconsistent spec (internal bug guard).
    Spec(String),
    /// The trace has no invocations on the selected day.
    EmptyTrace,
}

impl fmt::Display for ShrinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShrinkError::Trace(e) => write!(f, "invalid trace: {e}"),
            ShrinkError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            ShrinkError::Spec(msg) => write!(f, "inconsistent spec produced: {msg}"),
            ShrinkError::EmptyTrace => write!(f, "trace has no invocations on the selected day"),
        }
    }
}

impl std::error::Error for ShrinkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ShrinkError::Trace(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ValidationError> for ShrinkError {
    fn from(e: ValidationError) -> Self {
        ShrinkError::Trace(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        assert!(ShrinkError::EmptyTrace.to_string().contains("no invocations"));
        assert!(ShrinkError::Config("bad".into()).to_string().contains("bad"));
        let e = ShrinkError::from(ValidationError::DuplicateFunctionId(3));
        assert!(e.to_string().contains("duplicate"));
    }
}

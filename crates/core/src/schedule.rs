//! Lazy arrival schedules: generate invocation arrivals on demand instead
//! of materializing the full request vector.
//!
//! A paper-scale Azure day is ~908 M invocations — tens of GB as a
//! [`RequestTrace`] — yet the information content is just each Function's
//! per-minute counts plus the sub-minute [`IatModel`]. This module keeps
//! the *model* in memory (O(functions), sparse per-minute series) and
//! expands arrivals one at a time:
//!
//! * [`ScheduleSource`] — anything the simulator can consume: a cursor of
//!   time-ordered [`Arrival`]s plus duration/size hints. Implemented by the
//!   materialized [`RequestTrace`] and by the lazy [`ArrivalStream`].
//! * [`ScheduleModel`] — the compact description (one [`ModelEntry`] per
//!   Function with a sparse minute series), built from an
//!   [`ExperimentSpec`] or directly from a production [`Trace`] day at
//!   full fidelity.
//! * [`ArrivalStream`] — the lazy source: each (function, minute) cell is
//!   expanded with its own deterministic RNG seeded from
//!   `(seed, function_index, minute)`, and the per-function streams are
//!   merged by an indexed next-arrival heap. Peak memory is
//!   O(functions + one minute's arrivals), independent of total volume.
//!
//! [`generate_requests`](crate::generate_requests) materializes by draining
//! an [`ArrivalStream`], so the lazy and materialized paths yield the same
//! `(at_ms, workload, function_index)` sequence by construction.

use crate::aggregate::{aggregate, DurationResolution};
use crate::error::ShrinkError;
use crate::mapping::{map_functions, MappingConfig};
use crate::request::{Request, RequestTrace, MS_PER_MINUTE};
use crate::spec::{ExperimentSpec, IatModel};
use faasrail_stats::sampler::{Exponential, Gamma, Sampler};
use faasrail_trace::Trace;
use faasrail_workloads::{WorkloadId, WorkloadPool};
use rand::{Rng, RngCore};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One invocation arrival, as yielded by a schedule cursor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Arrival time, milliseconds of virtual time from experiment start.
    pub at_ms: u64,
    /// The Workload to invoke.
    pub workload: WorkloadId,
    /// The originating Function.
    pub function_index: u32,
}

/// A stream of time-ordered arrivals. Implementations must yield
/// non-decreasing `at_ms`.
pub trait ArrivalCursor {
    /// The next arrival, or `None` when the schedule is exhausted.
    fn next_arrival(&mut self) -> Option<Arrival>;
}

/// A source of invocation arrivals the simulation engine can replay.
///
/// Two implementations ship: the materialized [`RequestTrace`] (exact
/// requests, O(invocations) memory) and the lazy [`ArrivalStream`]
/// (generated on demand, O(functions) memory).
pub trait ScheduleSource {
    /// The cursor type produced by [`ScheduleSource::cursor`].
    type Cursor<'a>: ArrivalCursor
    where
        Self: 'a;

    /// Schedule duration in experiment minutes.
    fn duration_minutes(&self) -> usize;

    /// Expected number of arrivals (exact for deterministic schedules,
    /// the mean for stochastic ones). Sizing hint only.
    fn arrivals_hint(&self) -> u64;

    /// Open a fresh cursor over the schedule.
    fn cursor(&self) -> Self::Cursor<'_>;
}

// ---------------------------------------------------------------------------
// Materialized source: RequestTrace.
// ---------------------------------------------------------------------------

/// Cursor over a materialized [`RequestTrace`].
///
/// Yields the requests in non-decreasing `at_ms` order: already-sorted
/// traces (the [`generate_requests`](crate::generate_requests) invariant)
/// are walked in place; hand-built unsorted traces get a stable index sort
/// first, preserving vector order among equal timestamps — the same tie
/// order the engine's historic all-arrivals-in-heap implementation used.
pub struct TraceCursor<'a> {
    trace: &'a RequestTrace,
    /// Stable sort of request indices by `at_ms`; `None` when the vector
    /// is already sorted.
    order: Option<Vec<u32>>,
    pos: usize,
}

impl ArrivalCursor for TraceCursor<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let idx = match &self.order {
            Some(order) => *order.get(self.pos)? as usize,
            None => {
                if self.pos >= self.trace.requests.len() {
                    return None;
                }
                self.pos
            }
        };
        self.pos += 1;
        let r = &self.trace.requests[idx];
        Some(Arrival { at_ms: r.at_ms, workload: r.workload, function_index: r.function_index })
    }
}

impl ScheduleSource for RequestTrace {
    type Cursor<'a> = TraceCursor<'a>;

    fn duration_minutes(&self) -> usize {
        self.duration_minutes
    }

    fn arrivals_hint(&self) -> u64 {
        self.requests.len() as u64
    }

    fn cursor(&self) -> TraceCursor<'_> {
        let sorted = self.requests.windows(2).all(|w| w[0].at_ms <= w[1].at_ms);
        let order = (!sorted).then(|| {
            let mut idx: Vec<u32> = (0..self.requests.len() as u32).collect();
            idx.sort_by_key(|&i| self.requests[i as usize].at_ms);
            idx
        });
        TraceCursor { trace: self, order, pos: 0 }
    }
}

// ---------------------------------------------------------------------------
// The compact schedule model.
// ---------------------------------------------------------------------------

/// One Function's line in a [`ScheduleModel`]: which Workload to invoke and
/// a sparse per-minute count series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelEntry {
    pub function_index: u32,
    pub workload: WorkloadId,
    /// Optional alternate Workloads (variable-inputs extension); rotation
    /// across them is deterministic per minute cell.
    #[serde(default)]
    pub alternates: Vec<WorkloadId>,
    /// Sparse `(minute, count)` pairs, minutes strictly ascending,
    /// counts positive.
    pub minutes: Vec<(u32, u64)>,
}

impl ModelEntry {
    /// Total scheduled arrivals (exact for deterministic IAT models).
    pub fn total(&self) -> u64 {
        self.minutes.iter().map(|&(_, c)| c).sum()
    }
}

/// The compact, lazily-expandable description of an experiment's load:
/// everything [`generate_requests`](crate::generate_requests) needs, at
/// O(functions) memory.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScheduleModel {
    pub duration_minutes: usize,
    pub iat: IatModel,
    pub entries: Vec<ModelEntry>,
}

impl ScheduleModel {
    /// Build from an [`ExperimentSpec`] (dense per-minute vectors become
    /// sparse series).
    pub fn from_spec(spec: &ExperimentSpec) -> ScheduleModel {
        let entries = spec
            .entries
            .iter()
            .map(|e| ModelEntry {
                function_index: e.function_index,
                workload: e.workload,
                alternates: e.alternates.clone(),
                minutes: e
                    .per_minute
                    .iter()
                    .enumerate()
                    .filter(|&(_, &c)| c > 0)
                    .map(|(m, &c)| (m as u32, c))
                    .collect(),
            })
            .filter(|e| !e.minutes.is_empty())
            .collect();
        ScheduleModel { duration_minutes: spec.duration_minutes, iat: spec.iat, entries }
    }

    /// Build a *full-fidelity* schedule for one production-trace day: every
    /// active trace function keeps its own identity and exact per-minute
    /// counts; Workloads are assigned through the paper's aggregation +
    /// mapping steps (so every member of a duration group shares its
    /// group's mapped Workload), but no time or rate scaling is applied.
    ///
    /// This is how the lab replays "all 908 M invocations": the model stays
    /// O(functions) while the arrivals are expanded lazily.
    pub fn from_trace_day(
        trace: &Trace,
        pool: &WorkloadPool,
        mapping_cfg: &MappingConfig,
        iat: IatModel,
    ) -> Result<ScheduleModel, ShrinkError> {
        faasrail_trace::validate(trace)?;
        if trace.total_invocations() == 0 {
            return Err(ShrinkError::EmptyTrace);
        }
        let resolution = DurationResolution::for_trace(trace);
        let agg = aggregate(trace, resolution);
        let mapping = map_functions(&agg, pool, mapping_cfg);

        let mut entries: Vec<ModelEntry> = Vec::new();
        for (gi, group) in agg.functions.iter().enumerate() {
            let workload =
                mapping.workload_for(gi as u32).expect("every aggregated function is mapped");
            for &member in &group.members {
                let f = &trace.functions[member as usize];
                if f.minutes.is_empty() {
                    continue;
                }
                entries.push(ModelEntry {
                    function_index: member,
                    workload,
                    alternates: Vec::new(),
                    minutes: f
                        .minutes
                        .entries()
                        .iter()
                        .map(|&(m, c)| (m as u32, c as u64))
                        .collect(),
                });
            }
        }
        entries.sort_by_key(|e| e.function_index);
        Ok(ScheduleModel { duration_minutes: faasrail_trace::MINUTES_PER_DAY, iat, entries })
    }

    /// Total scheduled arrivals across all entries.
    pub fn total_arrivals(&self) -> u64 {
        self.entries.iter().map(ModelEntry::total).sum()
    }
}

// ---------------------------------------------------------------------------
// Deterministic per-cell RNG.
// ---------------------------------------------------------------------------

/// A minimal splitmix64 RNG.
///
/// Each (function, minute) cell gets its own instance, so any cell can be
/// expanded independently of every other — the property that makes lazy
/// streaming, materialization, and re-streaming all agree exactly. The
/// sequence is fixed by this implementation (not by an external crate), so
/// schedules are reproducible across rand versions and platforms.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }
}

impl RngCore for SplitMix64 {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), rand::Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Mix `(seed, function_index, minute)` into one cell seed (splitmix64
/// finalizer over the packed coordinates).
fn cell_seed(seed: u64, function_index: u32, minute: u32) -> u64 {
    let packed = ((function_index as u64) << 32) | minute as u64;
    let mut z = seed ^ packed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Expand one (entry, minute) cell into `buf` as `(at_ms, workload)` pairs
/// in non-decreasing `at_ms` order. Deterministic in
/// `(seed, entry.function_index, minute)` alone.
fn expand_cell(
    iat: IatModel,
    entry: &ModelEntry,
    minute: u32,
    count: u64,
    seed: u64,
    buf: &mut Vec<(u64, WorkloadId)>,
) {
    buf.clear();
    if count == 0 {
        return;
    }
    let mut rng = SplitMix64::new(cell_seed(seed, entry.function_index, minute));
    let minute_start = minute as u64 * MS_PER_MINUTE;
    // Variable-inputs rotation, restarted deterministically per cell (offset
    // by the minute so once-a-minute functions still cycle across inputs).
    let n_inputs = entry.alternates.len() + 1;
    let mut rotation = minute as usize % n_inputs;
    let mut next_workload = || -> WorkloadId {
        let pick = rotation % n_inputs;
        rotation += 1;
        if pick == 0 {
            entry.workload
        } else {
            entry.alternates[pick - 1]
        }
    };
    match iat {
        IatModel::Poisson => {
            // Exponential gaps with mean 60s/count: the cell's count is the
            // intensity; realized totals vary.
            let gap = Exponential::from_mean(MS_PER_MINUTE as f64 / count as f64);
            let mut t = gap.sample(&mut rng);
            while t < MS_PER_MINUTE as f64 {
                buf.push((minute_start + t as u64, next_workload()));
                t += gap.sample(&mut rng);
            }
        }
        IatModel::UniformRandom => {
            for _ in 0..count {
                let off = rng.gen_range(0..MS_PER_MINUTE);
                buf.push((minute_start + off, next_workload()));
            }
            // Workloads were assigned in generation order; the stable sort
            // keeps that order among equal timestamps.
            buf.sort_by_key(|&(at_ms, _)| at_ms);
        }
        IatModel::Equidistant => {
            let step = MS_PER_MINUTE as f64 / count as f64;
            for i in 0..count {
                buf.push((minute_start + ((i as f64 + 0.5) * step) as u64, next_workload()));
            }
        }
        IatModel::Bursty { cv } => {
            // Cox process: Gamma-modulated Poisson rate per 10-second
            // interval.
            const INTERVAL_MS: f64 = 10_000.0;
            const INTERVALS: usize = (MS_PER_MINUTE / 10_000) as usize;
            let base_rate = count as f64 / MS_PER_MINUTE as f64; // events per ms
            let modulator = (cv > 0.0).then(|| Gamma::unit_mean_with_cv(cv));
            for j in 0..INTERVALS {
                let mult = modulator.as_ref().map_or(1.0, |m| m.sample(&mut rng));
                if mult <= 0.0 {
                    continue;
                }
                let gap = Exponential::new(base_rate * mult);
                let mut t = gap.sample(&mut rng);
                while t < INTERVAL_MS {
                    buf.push((minute_start + (j as f64 * INTERVAL_MS + t) as u64, next_workload()));
                    t += gap.sample(&mut rng);
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// The lazy source: ArrivalStream.
// ---------------------------------------------------------------------------

/// The lazy schedule source: expands a [`ScheduleModel`] on demand under a
/// seed. Opening a cursor costs O(functions); iterating costs
/// O(1 amortized) per arrival with O(functions + one minute of arrivals)
/// peak memory.
#[derive(Debug, Clone, Copy)]
pub struct ArrivalStream<'m> {
    model: &'m ScheduleModel,
    seed: u64,
}

impl<'m> ArrivalStream<'m> {
    /// Wrap a model under a generation seed.
    pub fn new(model: &'m ScheduleModel, seed: u64) -> Self {
        ArrivalStream { model, seed }
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

struct EntryState {
    /// Index into `entry.minutes` of the next unexpanded cell.
    next_cell: u32,
    /// Next unconsumed arrival in `buf`.
    pos: u32,
    /// The active cell's arrivals, time-ordered.
    buf: Vec<(u64, WorkloadId)>,
}

/// Cursor over an [`ArrivalStream`]: per-entry cell buffers merged by an
/// indexed next-arrival heap keyed `(at_ms, function_index, entry_idx)` —
/// the same global order [`generate_requests`](crate::generate_requests)'s
/// output vector has.
pub struct LazyCursor<'m> {
    model: &'m ScheduleModel,
    seed: u64,
    states: Vec<EntryState>,
    /// Min-heap of each live entry's next arrival.
    heap: BinaryHeap<Reverse<(u64, u32, u32)>>,
}

impl<'m> LazyCursor<'m> {
    fn new(model: &'m ScheduleModel, seed: u64) -> Self {
        let mut cursor = LazyCursor {
            model,
            seed,
            states: Vec::with_capacity(model.entries.len()),
            heap: BinaryHeap::with_capacity(model.entries.len()),
        };
        for i in 0..model.entries.len() {
            cursor.states.push(EntryState { next_cell: 0, pos: 0, buf: Vec::new() });
            cursor.refill(i as u32);
        }
        cursor
    }

    /// Expand cells for entry `idx` until its buffer holds an arrival (a
    /// Poisson cell can realize zero), then advertise it on the heap.
    fn refill(&mut self, idx: u32) {
        let entry = &self.model.entries[idx as usize];
        let state = &mut self.states[idx as usize];
        while (state.pos as usize) >= state.buf.len() {
            let Some(&(minute, count)) = entry.minutes.get(state.next_cell as usize) else {
                // Exhausted: release the buffer.
                state.buf = Vec::new();
                state.pos = 0;
                return;
            };
            state.next_cell += 1;
            state.pos = 0;
            expand_cell(self.model.iat, entry, minute, count, self.seed, &mut state.buf);
        }
        let at_ms = state.buf[state.pos as usize].0;
        self.heap.push(Reverse((at_ms, entry.function_index, idx)));
    }
}

impl ArrivalCursor for LazyCursor<'_> {
    fn next_arrival(&mut self) -> Option<Arrival> {
        let Reverse((at_ms, function_index, idx)) = self.heap.pop()?;
        let state = &mut self.states[idx as usize];
        let (_, workload) = state.buf[state.pos as usize];
        state.pos += 1;
        self.refill(idx);
        Some(Arrival { at_ms, workload, function_index })
    }
}

impl ScheduleSource for ArrivalStream<'_> {
    type Cursor<'a>
        = LazyCursor<'a>
    where
        Self: 'a;

    fn duration_minutes(&self) -> usize {
        self.model.duration_minutes
    }

    fn arrivals_hint(&self) -> u64 {
        self.model.total_arrivals()
    }

    fn cursor(&self) -> LazyCursor<'_> {
        LazyCursor::new(self.model, self.seed)
    }
}

/// Drain a schedule source into a materialized, time-ordered request
/// vector.
pub fn materialize<S: ScheduleSource + ?Sized>(source: &S) -> RequestTrace {
    let mut requests = Vec::with_capacity(source.arrivals_hint() as usize);
    let mut cursor = source.cursor();
    while let Some(a) = cursor.next_arrival() {
        requests.push(Request {
            at_ms: a.at_ms,
            workload: a.workload,
            function_index: a.function_index,
        });
    }
    RequestTrace { duration_minutes: source.duration_minutes(), requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::SpecEntry;

    fn spec(iat: IatModel) -> ExperimentSpec {
        ExperimentSpec {
            duration_minutes: 4,
            target_max_rps: 10.0,
            iat,
            entries: vec![
                SpecEntry {
                    function_index: 0,
                    workload: WorkloadId(0),
                    alternates: vec![WorkloadId(5), WorkloadId(6)],
                    trace_duration_ms: 10.0,
                    per_minute: vec![120, 0, 30, 240],
                },
                SpecEntry {
                    function_index: 3,
                    workload: WorkloadId(1),
                    alternates: vec![],
                    trace_duration_ms: 500.0,
                    per_minute: vec![0, 60, 60, 0],
                },
            ],
        }
    }

    fn drain(model: &ScheduleModel, seed: u64) -> Vec<Arrival> {
        let stream = ArrivalStream::new(model, seed);
        let mut out = Vec::new();
        let mut c = stream.cursor();
        while let Some(a) = c.next_arrival() {
            out.push(a);
        }
        out
    }

    #[test]
    fn lazy_stream_is_globally_ordered_and_deterministic() {
        for iat in [
            IatModel::Poisson,
            IatModel::UniformRandom,
            IatModel::Equidistant,
            IatModel::Bursty { cv: 1.0 },
        ] {
            let model = ScheduleModel::from_spec(&spec(iat));
            let a = drain(&model, 9);
            let b = drain(&model, 9);
            assert_eq!(a, b, "{iat:?}");
            assert!(
                a.windows(2).all(|w| (w[0].at_ms, w[0].function_index)
                    <= (w[1].at_ms, w[1].function_index)),
                "{iat:?} out of order"
            );
            let end = 4 * MS_PER_MINUTE;
            assert!(a.iter().all(|x| x.at_ms < end));
        }
    }

    #[test]
    fn deterministic_models_hit_exact_counts() {
        for iat in [IatModel::UniformRandom, IatModel::Equidistant] {
            let s = spec(iat);
            let model = ScheduleModel::from_spec(&s);
            assert_eq!(model.total_arrivals(), s.total_requests());
            assert_eq!(drain(&model, 1).len() as u64, s.total_requests(), "{iat:?}");
        }
    }

    #[test]
    fn materialize_equals_generate_requests() {
        for iat in [IatModel::Poisson, IatModel::UniformRandom, IatModel::Bursty { cv: 1.5 }] {
            let s = spec(iat);
            let model = ScheduleModel::from_spec(&s);
            let lazy = materialize(&ArrivalStream::new(&model, 7));
            let eager = crate::generate_requests(&s, 7);
            assert_eq!(lazy, eager, "{iat:?}");
        }
    }

    #[test]
    fn trace_cursor_matches_vector_order_when_sorted() {
        let s = spec(IatModel::Equidistant);
        let eager = crate::generate_requests(&s, 3);
        let again = materialize(&eager);
        assert_eq!(eager, again);
    }

    #[test]
    fn trace_cursor_sorts_unsorted_traces_stably() {
        let trace = RequestTrace {
            duration_minutes: 1,
            requests: vec![
                Request { at_ms: 500, workload: WorkloadId(1), function_index: 1 },
                Request { at_ms: 0, workload: WorkloadId(2), function_index: 2 },
                Request { at_ms: 500, workload: WorkloadId(3), function_index: 3 },
            ],
        };
        let mut c = trace.cursor();
        let order: Vec<u32> =
            std::iter::from_fn(|| c.next_arrival()).map(|a| a.function_index).collect();
        // Time order, with vector order preserved among equal timestamps.
        assert_eq!(order, vec![2, 1, 3]);
    }

    #[test]
    fn cells_are_independent_of_surrounding_minutes() {
        // Removing another minute from the spec must not change the
        // arrivals of the minutes that remain — per-cell RNG, not a
        // threaded sequence.
        let full = spec(IatModel::Poisson);
        let model = ScheduleModel::from_spec(&full);
        let all = drain(&model, 11);

        let mut clipped = full.clone();
        clipped.entries[0].per_minute = vec![120, 0, 0, 0];
        let clipped_model = ScheduleModel::from_spec(&clipped);
        let clipped_arrivals = drain(&clipped_model, 11);

        let minute0_fn0: Vec<Arrival> = all
            .iter()
            .filter(|a| a.function_index == 0 && a.at_ms < MS_PER_MINUTE)
            .copied()
            .collect();
        let clipped_fn0: Vec<Arrival> =
            clipped_arrivals.iter().filter(|a| a.function_index == 0).copied().collect();
        assert_eq!(minute0_fn0, clipped_fn0);
    }

    #[test]
    fn rotation_cycles_inputs_within_and_across_cells() {
        let s = spec(IatModel::Equidistant);
        let model = ScheduleModel::from_spec(&s);
        let arrivals = drain(&model, 0);
        let used: std::collections::BTreeSet<WorkloadId> =
            arrivals.iter().filter(|a| a.function_index == 0).map(|a| a.workload).collect();
        assert_eq!(used.len(), 3, "all three inputs rotate: {used:?}");
    }

    #[test]
    fn splitmix_is_stable() {
        // Pin the generator's first outputs: schedule reproducibility
        // depends on this sequence never changing.
        let mut rng = SplitMix64::new(0);
        assert_eq!(rng.next_u64(), 0xE220_A839_7B1D_CDAF);
        assert_eq!(rng.next_u64(), 0x6E78_9E6A_A1B9_65F4);
        let mut rng = SplitMix64::new(42);
        assert_eq!(rng.next_u64(), 0xBDD7_3226_2FEB_6E95);
    }

    #[test]
    fn cell_seed_spreads() {
        let mut seen = std::collections::BTreeSet::new();
        for f in 0..50u32 {
            for m in 0..50u32 {
                seen.insert(cell_seed(1, f, m));
            }
        }
        assert_eq!(seen.len(), 2_500, "cell seeds must not collide trivially");
    }

    #[test]
    fn from_spec_drops_empty_minutes_and_entries() {
        let mut s = spec(IatModel::Poisson);
        s.entries[1].per_minute = vec![0, 0, 0, 0];
        let model = ScheduleModel::from_spec(&s);
        assert_eq!(model.entries.len(), 1);
        assert_eq!(model.entries[0].minutes, vec![(0, 120), (2, 30), (3, 240)]);
    }
}

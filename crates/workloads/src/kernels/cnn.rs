//! `cnn_serving`: convolutional-network image classification.
//!
//! Mirrors FunctionBench's TensorFlow CNN inference: a two-stage conv net
//! (3×3 conv → ReLU → 2×2 average pool → 3×3 conv → global pool → dense)
//! over a synthetic RGB image, in plain f32 loops.

use super::{fold_f64, SplitMix64};

/// Run one forward pass on an `image_size`² RGB image with `filters`
/// convolution filters per stage; returns a checksum of the class scores.
pub fn run(image_size: u32, filters: u32) -> u64 {
    let s = image_size as usize;
    let k = filters as usize;
    assert!(s >= 4, "image too small for two conv+pool stages");
    let mut rng = SplitMix64::new(0xCC17_u64 ^ ((image_size as u64) << 32 | filters as u64));

    // Synthetic image: s × s × 3, channel-last.
    let image: Vec<f32> = (0..s * s * 3).map(|_| rng.next_weight()).collect();
    // Stage-1 weights: k filters of 3×3×3.
    let w1: Vec<f32> = (0..k * 27).map(|_| rng.next_weight() * 0.1).collect();
    // Stage-2 weights: k filters of 3×3×k.
    let w2: Vec<f32> = (0..k * 9 * k).map(|_| rng.next_weight() * 0.1).collect();
    // Dense head: k → 10 classes.
    let wd: Vec<f32> = (0..k * 10).map(|_| rng.next_weight() * 0.1).collect();

    // Conv1 (valid padding, stride 1) + ReLU.
    let o1 = s - 2;
    let mut map1 = vec![0f32; o1 * o1 * k];
    for y in 0..o1 {
        for x in 0..o1 {
            for f in 0..k {
                let mut acc = 0f32;
                let wf = &w1[f * 27..(f + 1) * 27];
                let mut wi = 0;
                for dy in 0..3 {
                    for dx in 0..3 {
                        let base = ((y + dy) * s + (x + dx)) * 3;
                        acc += wf[wi] * image[base]
                            + wf[wi + 1] * image[base + 1]
                            + wf[wi + 2] * image[base + 2];
                        wi += 3;
                    }
                }
                map1[(y * o1 + x) * k + f] = acc.max(0.0);
            }
        }
    }

    // 2×2 average pool.
    let p = o1 / 2;
    let mut pooled = vec![0f32; p * p * k];
    for y in 0..p {
        for x in 0..p {
            for f in 0..k {
                let a = map1[((2 * y) * o1 + 2 * x) * k + f];
                let b = map1[((2 * y) * o1 + 2 * x + 1) * k + f];
                let c = map1[((2 * y + 1) * o1 + 2 * x) * k + f];
                let d = map1[((2 * y + 1) * o1 + 2 * x + 1) * k + f];
                pooled[(y * p + x) * k + f] = (a + b + c + d) * 0.25;
            }
        }
    }

    // Conv2 (k → k) + ReLU, accumulated directly into a global average.
    let o2 = p.saturating_sub(2).max(1);
    let mut global = vec![0f32; k];
    for y in 0..o2 {
        for x in 0..o2 {
            for f in 0..k {
                let mut acc = 0f32;
                let wf = &w2[f * 9 * k..(f + 1) * 9 * k];
                let mut wi = 0;
                for dy in 0..3 {
                    for dx in 0..3 {
                        let yy = (y + dy).min(p - 1);
                        let xx = (x + dx).min(p - 1);
                        let base = (yy * p + xx) * k;
                        for c in 0..k {
                            acc += wf[wi + c] * pooled[base + c];
                        }
                        wi += k;
                    }
                }
                global[f] += acc.max(0.0);
            }
        }
    }
    let denom = (o2 * o2) as f32;
    for g in &mut global {
        *g /= denom;
    }

    // Dense head + argmax-style checksum over the logits.
    let mut acc = 0xCAFE_F00Du64;
    for class in 0..10 {
        let mut logit = 0f32;
        for f in 0..k {
            logit += wd[class * k + f] * global[f];
        }
        acc = fold_f64(acc, logit as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(16, 4), run(16, 4));
    }

    #[test]
    fn sensitive_to_input() {
        assert_ne!(run(16, 4), run(20, 4));
        assert_ne!(run(16, 4), run(16, 8));
    }

    #[test]
    #[should_panic]
    fn rejects_tiny_images() {
        run(3, 4);
    }
}

//! `chameleon`: HTML table rendering.
//!
//! FunctionBench's chameleon workload renders a large HTML table through a
//! template engine. This kernel performs the same work — per-cell string
//! formatting, escaping, and row assembly — streaming row by row so a
//! million-row table does not hold the whole document in memory.

use super::{fold, SplitMix64};

/// Minimal HTML escaping, applied to every cell (the hot path of real
/// template rendering).
fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            _ => out.push(c),
        }
    }
}

/// Render a `rows` × `cols` HTML table; returns a checksum over the
/// rendered markup.
pub fn run(rows: u32, cols: u32) -> u64 {
    let mut rng = SplitMix64::new(0xC4A_0002 ^ ((rows as u64) << 32 | cols as u64));
    let mut acc = 0x9E37_79B9u64;
    let mut row_buf = String::with_capacity(cols as usize * 32 + 16);
    let mut cell = String::with_capacity(24);

    acc = fold(acc, rows as u64);
    for r in 0..rows {
        row_buf.clear();
        row_buf.push_str("<tr>");
        for c in 0..cols {
            cell.clear();
            // A mix of text and numeric cells, some needing escaping.
            let v = rng.next_u64();
            if v & 3 == 0 {
                cell.push_str("<val&>");
            }
            cell.push_str("cell-");
            push_u64(&mut cell, r as u64);
            cell.push(':');
            push_u64(&mut cell, c as u64);
            cell.push('=');
            push_u64(&mut cell, v % 100_000);
            row_buf.push_str("<td>");
            escape_into(&mut row_buf, &cell);
            row_buf.push_str("</td>");
        }
        row_buf.push_str("</tr>");
        // Fold the rendered row into the checksum (streaming emit).
        for &b in row_buf.as_bytes() {
            acc = acc.rotate_left(7) ^ b as u64;
        }
    }
    acc
}

/// Integer-to-decimal without the `format!` allocation.
fn push_u64(out: &mut String, mut v: u64) {
    if v == 0 {
        out.push('0');
        return;
    }
    let mut buf = [0u8; 20];
    let mut i = buf.len();
    while v > 0 {
        i -= 1;
        buf[i] = b'0' + (v % 10) as u8;
        v /= 10;
    }
    out.push_str(std::str::from_utf8(&buf[i..]).expect("ASCII digits"));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(50, 8), run(50, 8));
    }

    #[test]
    fn sensitive_to_shape() {
        assert_ne!(run(50, 8), run(8, 50));
        assert_ne!(run(50, 8), run(51, 8));
    }

    #[test]
    fn zero_rows_is_stable() {
        assert_eq!(run(0, 8), run(0, 8));
    }

    #[test]
    fn escape_works() {
        let mut s = String::new();
        escape_into(&mut s, r#"<a & "b">"#);
        assert_eq!(s, "&lt;a &amp; &quot;b&quot;&gt;");
    }

    #[test]
    fn push_u64_matches_format() {
        for v in [0u64, 1, 9, 10, 12345, u64::MAX] {
            let mut s = String::new();
            push_u64(&mut s, v);
            assert_eq!(s, v.to_string());
        }
    }
}

//! `matmul`: dense matrix multiplication.
//!
//! FunctionBench's numpy matmul, here as a cache-blocked triple loop over
//! `f64` — the canonical CPU-bound FaaS benchmark.

use super::{fold_f64, SplitMix64};

const BLOCK: usize = 32;

/// Multiply two synthetic `n`×`n` matrices; returns a checksum of the result.
pub fn run(n: u32) -> u64 {
    let n = n as usize;
    if n == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x3A73 ^ (n as u64) << 16);
    let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
    let mut c = vec![0f64; n * n];

    // i-k-j loop order with blocking: streams `b` rows, accumulates into `c`.
    for ib in (0..n).step_by(BLOCK) {
        for kb in (0..n).step_by(BLOCK) {
            for jb in (0..n).step_by(BLOCK) {
                for i in ib..(ib + BLOCK).min(n) {
                    for k in kb..(kb + BLOCK).min(n) {
                        let aik = a[i * n + k];
                        let brow = &b[k * n + jb..k * n + (jb + BLOCK).min(n)];
                        let crow = &mut c[i * n + jb..i * n + (jb + BLOCK).min(n)];
                        for (cv, bv) in crow.iter_mut().zip(brow) {
                            *cv += aik * bv;
                        }
                    }
                }
            }
        }
    }

    // Fold the trace (diagonal) plus corners — touches the whole result
    // lineage without hashing n² elements.
    let mut acc = 0x1234_5678u64;
    for i in 0..n {
        acc = fold_f64(acc, c[i * n + i]);
    }
    acc = fold_f64(acc, c[n - 1]);
    acc = fold_f64(acc, c[(n - 1) * n]);
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(24), run(24));
    }

    #[test]
    fn sensitive_to_n() {
        assert_ne!(run(24), run(25));
    }

    #[test]
    fn zero_is_zero() {
        assert_eq!(run(0), 0);
    }

    #[test]
    fn blocked_matches_naive() {
        // Cross-check the blocked loop against a reference triple loop by
        // reproducing the kernel's data generation.
        let n = 17usize; // deliberately not a multiple of BLOCK
        let mut rng = SplitMix64::new(0x3A73 ^ (n as u64) << 16);
        let a: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let b: Vec<f64> = (0..n * n).map(|_| rng.next_f64() - 0.5).collect();
        let mut c = vec![0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut s = 0.0;
                for k in 0..n {
                    s += a[i * n + k] * b[k * n + j];
                }
                c[i * n + j] = s;
            }
        }
        let mut acc = 0x1234_5678u64;
        for i in 0..n {
            acc = fold_f64(acc, c[i * n + i]);
        }
        acc = fold_f64(acc, c[n - 1]);
        acc = fold_f64(acc, c[(n - 1) * n]);
        assert_eq!(acc, run(n as u32));
    }
}

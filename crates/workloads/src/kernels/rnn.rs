//! `rnn_serving`: word-generation RNN forward pass.
//!
//! Mirrors FunctionBench's PyTorch RNN: a GRU cell stepped `seq_len` times
//! over a hidden state of width `hidden`, sampling the next "character" from
//! the output each step.

use super::{fold_f64, SplitMix64};

#[inline]
fn sigmoid(x: f32) -> f32 {
    1.0 / (1.0 + (-x).exp())
}

/// Run a GRU for `seq_len` steps with hidden width `hidden`; returns a
/// checksum of the generated token sequence.
pub fn run(seq_len: u32, hidden: u32) -> u64 {
    let h = hidden as usize;
    assert!(h > 0, "hidden width must be positive");
    let mut rng = SplitMix64::new(0x6172 ^ ((seq_len as u64) << 32 | hidden as u64));

    // Three gates (update, reset, candidate), each h×h plus a small input
    // projection (input dim fixed at 8, like a character embedding).
    const IN: usize = 8;
    let wz: Vec<f32> = (0..h * h).map(|_| rng.next_weight() * 0.2).collect();
    let wr: Vec<f32> = (0..h * h).map(|_| rng.next_weight() * 0.2).collect();
    let wh: Vec<f32> = (0..h * h).map(|_| rng.next_weight() * 0.2).collect();
    let uz: Vec<f32> = (0..h * IN).map(|_| rng.next_weight() * 0.2).collect();
    let ur: Vec<f32> = (0..h * IN).map(|_| rng.next_weight() * 0.2).collect();
    let uh: Vec<f32> = (0..h * IN).map(|_| rng.next_weight() * 0.2).collect();

    let mut state = vec![0f32; h];
    let mut new_state = vec![0f32; h];
    let mut x = [0f32; IN];
    let mut acc = 0x6272_7565u64;

    for step in 0..seq_len {
        // Input embedding for this step (driven by the previous token).
        for (i, v) in x.iter_mut().enumerate() {
            *v = (((acc >> (i * 8)) & 0xFF) as f32 / 255.0) - 0.5;
        }
        for i in 0..h {
            let mut z = 0f32;
            let mut r = 0f32;
            for j in 0..h {
                z += wz[i * h + j] * state[j];
                r += wr[i * h + j] * state[j];
            }
            for j in 0..IN {
                z += uz[i * IN + j] * x[j];
                r += ur[i * IN + j] * x[j];
            }
            let z = sigmoid(z);
            let r = sigmoid(r);
            let mut cand = 0f32;
            for j in 0..h {
                cand += wh[i * h + j] * (r * state[j]);
            }
            for j in 0..IN {
                cand += uh[i * IN + j] * x[j];
            }
            let cand = cand.tanh();
            new_state[i] = (1.0 - z) * state[i] + z * cand;
        }
        std::mem::swap(&mut state, &mut new_state);
        // "Sample" a token: argmax over the first 32 hidden units.
        let tok = state
            .iter()
            .take(32)
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i as u64)
            .unwrap_or(0);
        acc = acc.rotate_left(5) ^ tok ^ step as u64;
    }
    for s in state.iter().take(16) {
        acc = fold_f64(acc, *s as f64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(8, 16), run(8, 16));
    }

    #[test]
    fn sensitive_to_params() {
        assert_ne!(run(8, 16), run(9, 16));
        assert_ne!(run(8, 16), run(8, 17));
    }

    #[test]
    fn zero_steps_stable() {
        assert_eq!(run(0, 16), run(0, 16));
    }

    #[test]
    #[should_panic]
    fn zero_hidden_rejected() {
        run(4, 0);
    }
}

//! `json_serdes`: JSON serialization and deserialization.
//!
//! FunctionBench's workload round-trips a large JSON document. This kernel
//! streams: it builds one record at a time as a `serde_json::Value`,
//! serializes it, parses it back, and folds a field into the checksum — the
//! same serialize/deserialize work without holding a multi-GB document.

use super::{fold, SplitMix64};
use serde_json::{json, Value};

/// Round-trip `records` JSON records; returns a checksum over parsed fields.
pub fn run(records: u32) -> u64 {
    let mut rng = SplitMix64::new(0x15 << 32 ^ records as u64);
    let mut acc = 0xDEAD_BEEFu64;
    for i in 0..records {
        let v = rng.next_u64();
        let record = json!({
            "id": i,
            "user": format!("user-{}", v % 10_000),
            "score": (v % 1_000) as f64 / 10.0,
            "active": v & 1 == 1,
            "tags": [format!("t{}", v % 7), format!("t{}", v % 13)],
            "nested": { "lat": (v % 180) as f64 - 90.0, "lon": (v % 360) as f64 - 180.0 },
        });
        let s = serde_json::to_string(&record).expect("serializable");
        let parsed: Value = serde_json::from_str(&s).expect("round-trip");
        let id = parsed["id"].as_u64().expect("id present");
        let active = parsed["active"].as_bool().expect("active present");
        acc = fold(acc, id ^ ((active as u64) << 63) ^ s.len() as u64);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(100), run(100));
    }

    #[test]
    fn sensitive_to_count() {
        assert_ne!(run(100), run(101));
    }

    #[test]
    fn zero_records() {
        assert_eq!(run(0), 0xDEAD_BEEF);
    }
}

//! `video_processing`: gray-scale effect over a frame stream.
//!
//! Mirrors FunctionBench's OpenCV workload: decode frames, apply a
//! gray-scale effect, re-encode. Frames are synthesized and processed one at
//! a time (streaming), so arbitrarily long "videos" keep a constant
//! footprint of one frame row.

use super::{fold, SplitMix64};

/// Integer luma (shared shape with the image kernel, but per-frame).
#[inline]
fn luma(r: u8, g: u8, b: u8) -> u8 {
    ((77 * r as u32 + 150 * g as u32 + 29 * b as u32) >> 8) as u8
}

/// Gray-scale `frames` frames of `size`² pixels; returns a checksum over
/// per-frame luma histograms.
pub fn run(frames: u32, size: u32) -> u64 {
    let w = size as usize;
    if w == 0 || frames == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x51DE0 ^ ((frames as u64) << 32 | size as u64));
    let mut acc = 0x9E37_79B9_7F4Au64;
    let mut histogram = [0u32; 16];

    for frame in 0..frames {
        histogram.fill(0);
        // Per-frame motion offset, so frames differ like a real video.
        let motion = rng.next_u64();
        for _y in 0..w {
            for _x in 0..w {
                let v = rng.next_u64() ^ motion;
                let g = luma((v & 0xFF) as u8, ((v >> 8) & 0xFF) as u8, ((v >> 16) & 0xFF) as u8);
                histogram[(g >> 4) as usize] += 1;
            }
        }
        for (bin, &count) in histogram.iter().enumerate() {
            acc = fold(acc, (frame as u64) << 40 | (bin as u64) << 32 | count as u64);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(3, 32), run(3, 32));
    }

    #[test]
    fn sensitive_to_both_dims() {
        assert_ne!(run(3, 32), run(4, 32));
        assert_ne!(run(3, 32), run(3, 33));
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(run(0, 32), 0);
        assert_eq!(run(3, 0), 0);
    }
}

//! `image_processing`: per-pixel image manipulation.
//!
//! FunctionBench's workload loads a JPEG and applies a pipeline of pixel
//! transformations. This kernel synthesizes a `size`² RGB image row by row
//! and applies grayscale conversion, a 3×3 box blur (3-row rolling window,
//! so memory stays O(width)), and thresholding.

use super::{fold, SplitMix64};

/// Integer luma approximation (ITU-R BT.601 weights scaled to /256).
#[inline]
fn luma(r: u8, g: u8, b: u8) -> u8 {
    ((77 * r as u32 + 150 * g as u32 + 29 * b as u32) >> 8) as u8
}

/// Generate the next synthetic row, already converted to grayscale.
fn gray_row(rng: &mut SplitMix64, width: usize) -> Vec<u8> {
    (0..width)
        .map(|_| {
            let v = rng.next_u64();
            luma((v & 0xFF) as u8, ((v >> 8) & 0xFF) as u8, ((v >> 16) & 0xFF) as u8)
        })
        .collect()
}

/// Process a `size`² synthetic image; returns a checksum of the output.
pub fn run(size: u32) -> u64 {
    let w = size as usize;
    if w == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x1111_0A6Eu64.wrapping_add(size as u64));
    let mut acc = 0x811C_9DC5u64;

    // Rolling window: the row above, the row being blurred, the row below.
    let mut prev: Vec<u8> = Vec::new();
    let mut cur = gray_row(&mut rng, w);
    let mut next = if w > 1 { gray_row(&mut rng, w) } else { Vec::new() };

    for y in 0..w {
        for x in 0..w {
            let mut sum = 0u32;
            let mut cnt = 0u32;
            for row in [&prev, &cur, &next] {
                if row.is_empty() {
                    continue;
                }
                for &px in &row[x.saturating_sub(1)..=(x + 1).min(w - 1)] {
                    sum += px as u32;
                    cnt += 1;
                }
            }
            let blurred = (sum / cnt) as u8;
            // Threshold into a bitmap and fold both into the checksum.
            let bit = (blurred > 96) as u64;
            acc = fold(acc, (blurred as u64) << 1 | bit);
        }
        prev = std::mem::replace(&mut cur, std::mem::take(&mut next));
        if y + 2 < w {
            next = gray_row(&mut rng, w);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(run(64), run(64));
    }

    #[test]
    fn sensitive_to_size() {
        assert_ne!(run(64), run(65));
    }

    #[test]
    fn zero_size_is_zero() {
        assert_eq!(run(0), 0);
    }

    #[test]
    fn tiny_sizes_run() {
        // Exercise the window edge cases.
        for s in 1..=4 {
            assert_eq!(run(s), run(s));
        }
    }

    #[test]
    fn luma_bounds() {
        assert_eq!(luma(0, 0, 0), 0);
        assert_eq!(luma(255, 255, 255), 255);
        assert!(luma(255, 0, 0) < luma(0, 255, 0), "green weighs more than red");
    }
}

//! Native compute kernels — the executable bodies of the ten workloads.
//!
//! Each kernel performs the same *kind* of work as its FunctionBench
//! counterpart (HTML rendering, CNN inference, AES, …) with trip counts
//! driven by the [`WorkloadInput`]. Kernels are:
//!
//! * **deterministic** — input data is synthesized from a fixed-seed
//!   [`SplitMix64`], and every kernel returns a checksum so results can be
//!   asserted and the optimizer cannot elide the work;
//! * **bounded-memory** — oversized inputs are processed in a streaming
//!   fashion (row buffers, block counters) so augmenting a workload to
//!   multi-second runtimes never balloons its footprint.

pub mod aes;
pub mod auxiliary;
pub mod chameleon;
pub mod cnn;
pub mod image;
pub mod json;
pub mod lr;
pub mod matmul;
pub mod rnn;
pub mod video;

use crate::input::WorkloadInput;

/// Tiny, fast, deterministic PRNG for synthesizing kernel input data.
/// (Sebastiano Vigna's SplitMix64 — the canonical seeding generator.)
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seed the generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f32` in `[-1, 1)`, handy for synthetic model weights.
    #[inline]
    pub fn next_weight(&mut self) -> f32 {
        (self.next_f64() * 2.0 - 1.0) as f32
    }
}

/// Mix a value into a running checksum (FNV-1a style with a 64-bit fold).
#[inline]
pub fn fold(acc: u64, v: u64) -> u64 {
    (acc ^ v).wrapping_mul(0x100_0000_01B3)
}

/// Fold a float by its bit pattern, quantized to survive tiny FP reordering.
#[inline]
pub fn fold_f64(acc: u64, v: f64) -> u64 {
    fold(acc, (v * 1e6).round() as i64 as u64)
}

/// Execute the kernel selected by `input`, returning its checksum.
pub fn execute(input: &WorkloadInput) -> u64 {
    match *input {
        WorkloadInput::Chameleon { rows, cols } => chameleon::run(rows, cols),
        WorkloadInput::CnnServing { image_size, filters } => cnn::run(image_size, filters),
        WorkloadInput::ImageProcessing { size } => image::run(size),
        WorkloadInput::JsonSerdes { records } => json::run(records),
        WorkloadInput::Matmul { n } => matmul::run(n),
        WorkloadInput::LrServing { samples, features } => lr::run_serving(samples, features),
        WorkloadInput::LrTraining { epochs, samples, features } => {
            lr::run_training(epochs, samples, features)
        }
        WorkloadInput::Pyaes { bytes } => aes::run(bytes),
        WorkloadInput::RnnServing { seq_len, hidden } => rnn::run(seq_len, hidden),
        WorkloadInput::VideoProcessing { frames, size } => video::run(frames, size),
        WorkloadInput::Compression { bytes } => auxiliary::run_compression(bytes),
        WorkloadInput::GraphBfs { vertices, degree } => auxiliary::run_graph_bfs(vertices, degree),
        WorkloadInput::PageRank { vertices, iters } => auxiliary::run_pagerank(vertices, iters),
        WorkloadInput::SortData { elements } => auxiliary::run_sort(elements),
        WorkloadInput::TextSearch { haystack_bytes, patterns } => {
            auxiliary::run_text_search(haystack_bytes, patterns)
        }
        WorkloadInput::WordCount { bytes } => auxiliary::run_word_count(bytes),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::WorkloadKind;

    #[test]
    fn splitmix_deterministic() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(1);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn splitmix_f64_in_unit_interval() {
        let mut r = SplitMix64::new(99);
        for _ in 0..1000 {
            let v = r.next_f64();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn every_kernel_runs_and_is_deterministic() {
        // Miniature inputs: fast even in debug builds.
        let inputs = [
            WorkloadInput::Chameleon { rows: 20, cols: 4 },
            WorkloadInput::CnnServing { image_size: 16, filters: 4 },
            WorkloadInput::ImageProcessing { size: 32 },
            WorkloadInput::JsonSerdes { records: 50 },
            WorkloadInput::Matmul { n: 16 },
            WorkloadInput::LrServing { samples: 64, features: 8 },
            WorkloadInput::LrTraining { epochs: 2, samples: 64, features: 8 },
            WorkloadInput::Pyaes { bytes: 1024 },
            WorkloadInput::RnnServing { seq_len: 4, hidden: 16 },
            WorkloadInput::VideoProcessing { frames: 2, size: 32 },
            WorkloadInput::Compression { bytes: 4_096 },
            WorkloadInput::GraphBfs { vertices: 200, degree: 4 },
            WorkloadInput::PageRank { vertices: 100, iters: 2 },
            WorkloadInput::SortData { elements: 500 },
            WorkloadInput::TextSearch { haystack_bytes: 4_096, patterns: 2 },
            WorkloadInput::WordCount { bytes: 4_096 },
        ];
        let mut seen_kinds = Vec::new();
        for input in &inputs {
            let a = execute(input);
            let b = execute(input);
            assert_eq!(a, b, "{input:?} not deterministic");
            seen_kinds.push(input.kind());
        }
        seen_kinds.sort_unstable();
        seen_kinds.dedup();
        assert_eq!(seen_kinds.len(), WorkloadKind::ALL_SUITES.len(), "all sixteen kinds covered");
    }

    #[test]
    fn checksums_differ_across_inputs() {
        let a = execute(&WorkloadInput::Pyaes { bytes: 1024 });
        let b = execute(&WorkloadInput::Pyaes { bytes: 2048 });
        assert_ne!(a, b);
    }

    mod proptests {
        use super::*;
        use proptest::prelude::*;

        /// A miniature input for any kind, scaled by `s` in 1..=4.
        fn tiny_input(kind: WorkloadKind, s: u32) -> WorkloadInput {
            match kind {
                WorkloadKind::Chameleon => WorkloadInput::Chameleon { rows: 8 * s, cols: 4 },
                WorkloadKind::CnnServing => {
                    WorkloadInput::CnnServing { image_size: 8 + 4 * s, filters: 4 }
                }
                WorkloadKind::ImageProcessing => WorkloadInput::ImageProcessing { size: 8 * s },
                WorkloadKind::JsonSerdes => WorkloadInput::JsonSerdes { records: 10 * s },
                WorkloadKind::Matmul => WorkloadInput::Matmul { n: 4 * s },
                WorkloadKind::LrServing => {
                    WorkloadInput::LrServing { samples: 16 * s, features: 8 }
                }
                WorkloadKind::LrTraining => {
                    WorkloadInput::LrTraining { epochs: s, samples: 16, features: 4 }
                }
                WorkloadKind::Pyaes => WorkloadInput::Pyaes { bytes: 64 * s },
                WorkloadKind::RnnServing => WorkloadInput::RnnServing { seq_len: s, hidden: 8 },
                WorkloadKind::VideoProcessing => {
                    WorkloadInput::VideoProcessing { frames: s, size: 8 }
                }
                WorkloadKind::Compression => WorkloadInput::Compression { bytes: 256 * s },
                WorkloadKind::GraphBfs => WorkloadInput::GraphBfs { vertices: 32 * s, degree: 3 },
                WorkloadKind::PageRank => WorkloadInput::PageRank { vertices: 16 * s, iters: 2 },
                WorkloadKind::SortData => WorkloadInput::SortData { elements: 64 * s },
                WorkloadKind::TextSearch => {
                    WorkloadInput::TextSearch { haystack_bytes: 512 * s, patterns: 2 }
                }
                WorkloadKind::WordCount => WorkloadInput::WordCount { bytes: 256 * s },
            }
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(24))]

            #[test]
            fn any_kernel_any_tiny_input_is_deterministic(
                kind_idx in 0usize..WorkloadKind::ALL_SUITES.len(),
                scale in 1u32..=4,
            ) {
                let input = tiny_input(WorkloadKind::ALL_SUITES[kind_idx], scale);
                prop_assert_eq!(execute(&input), execute(&input));
            }

            #[test]
            fn scaling_the_input_changes_the_checksum(
                kind_idx in 0usize..WorkloadKind::ALL_SUITES.len(),
                scale in 1u32..=3,
            ) {
                let kind = WorkloadKind::ALL_SUITES[kind_idx];
                let a = execute(&tiny_input(kind, scale));
                let b = execute(&tiny_input(kind, scale + 1));
                prop_assert_ne!(a, b, "{:?} scale {} vs {}", kind, scale, scale + 1);
            }
        }
    }
}

//! The auxiliary benchmark suite: six vSwarm/SeBS-inspired kernels.
//!
//! Paper §3.3 plans to "augment and integrate more open-source benchmarking
//! suites … aiming to significantly enrich our Workload pool even further".
//! These kernels add execution profiles the FunctionBench ten lack:
//! dictionary compression, pointer-chasing graph traversal, iterative
//! numeric relaxation, comparison sorting, multi-pattern text scanning, and
//! hash-heavy aggregation. Like the primary kernels they are deterministic,
//! checksum-producing, and bounded-memory.

use super::{fold, SplitMix64};

// --------------------------------------------------------------------------
// compression: LZSS-style sliding window
// --------------------------------------------------------------------------

const WINDOW: usize = 4 * 1024;
const MIN_MATCH: usize = 4;
const MAX_MATCH: usize = 64;

/// Generate compressible synthetic "text": words drawn from a small
/// vocabulary, so back-references actually occur.
fn gen_text(rng: &mut SplitMix64, len: usize) -> Vec<u8> {
    const VOCAB: [&str; 16] = [
        "request",
        "invoke",
        "lambda",
        "serverless",
        "function",
        "trace",
        "cold",
        "warm",
        "queue",
        "sandbox",
        "memory",
        "scale",
        "burst",
        "idle",
        "node",
        "pool",
    ];
    let mut out = Vec::with_capacity(len + 16);
    while out.len() < len {
        out.extend_from_slice(VOCAB[(rng.next_u64() % 16) as usize].as_bytes());
        out.push(b' ');
    }
    out.truncate(len);
    out
}

/// Compress `bytes` of synthetic text with a greedy LZSS matcher; returns a
/// checksum over the emitted token stream plus the output length.
pub fn run_compression(bytes: u32) -> u64 {
    let n = bytes as usize;
    if n == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0xC0DE_C0DE ^ bytes as u64);
    let data = gen_text(&mut rng, n);

    // Hash-chain match finder over 3-byte prefixes.
    let mut head = vec![usize::MAX; 1 << 13];
    let hash = |a: u8, b: u8, c: u8| -> usize {
        ((a as usize) << 6 ^ (b as usize) << 3 ^ c as usize) & ((1 << 13) - 1)
    };

    let mut acc = 0x1255_C0DEu64;
    let mut out_len = 0u64;
    let mut i = 0usize;
    while i < n {
        let mut best_len = 0usize;
        let mut best_dist = 0usize;
        if i + MIN_MATCH <= n {
            let h = hash(data[i], data[i + 1], data[i + 2]);
            let cand = head[h];
            if cand != usize::MAX && cand < i && i - cand <= WINDOW {
                let mut l = 0usize;
                while i + l < n && l < MAX_MATCH && data[cand + l] == data[i + l] {
                    l += 1;
                }
                if l >= MIN_MATCH {
                    best_len = l;
                    best_dist = i - cand;
                }
            }
            head[h] = i;
        }
        if best_len >= MIN_MATCH {
            acc = fold(acc, (best_dist as u64) << 16 | best_len as u64);
            out_len += 3; // (dist, len) token
            i += best_len;
        } else {
            acc = acc.rotate_left(3) ^ data[i] as u64;
            out_len += 1;
            i += 1;
        }
    }
    fold(acc, out_len)
}

// --------------------------------------------------------------------------
// graph_bfs: BFS over an implicit random graph
// --------------------------------------------------------------------------

/// Neighbours are computed on the fly from a hash of the vertex id, so the
/// graph never materializes: memory is the visited bitmap plus the frontier.
#[inline]
fn neighbour(v: u32, j: u32, vertices: u32, salt: u64) -> u32 {
    let mut x = SplitMix64::new(salt ^ ((v as u64) << 20) ^ j as u64);
    (x.next_u64() % vertices as u64) as u32
}

/// BFS from vertex 0 over `vertices` nodes of out-degree `degree`; returns
/// a checksum of (reached count, level histogram).
pub fn run_graph_bfs(vertices: u32, degree: u32) -> u64 {
    if vertices == 0 {
        return 0;
    }
    let n = vertices as usize;
    let salt = 0xB_F5 ^ ((vertices as u64) << 8) ^ degree as u64;
    let mut visited = vec![false; n];
    let mut frontier = vec![0u32];
    visited[0] = true;
    let mut reached = 1u64;
    let mut acc = 0x6B5F_0001u64;
    let mut level = 0u64;
    while !frontier.is_empty() {
        let mut next = Vec::with_capacity(frontier.len() * 2);
        for &v in &frontier {
            for j in 0..degree {
                let u = neighbour(v, j, vertices, salt);
                if !visited[u as usize] {
                    visited[u as usize] = true;
                    reached += 1;
                    next.push(u);
                }
            }
        }
        acc = fold(acc, level << 32 | next.len() as u64);
        level += 1;
        frontier = next;
    }
    fold(acc, reached)
}

// --------------------------------------------------------------------------
// pagerank: power iteration over the same implicit graph
// --------------------------------------------------------------------------

const PR_DEGREE: u32 = 8;

/// `iters` PageRank power iterations over `vertices` nodes (out-degree 8);
/// returns a checksum over the top ranks.
pub fn run_pagerank(vertices: u32, iters: u32) -> u64 {
    if vertices == 0 || iters == 0 {
        return 0;
    }
    let n = vertices as usize;
    let salt = 0x9A6E ^ (vertices as u64) << 4;
    let damping = 0.85f64;
    let mut rank = vec![1.0 / n as f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iters {
        next.iter_mut().for_each(|x| *x = (1.0 - damping) / n as f64);
        for v in 0..vertices {
            let share = damping * rank[v as usize] / PR_DEGREE as f64;
            for j in 0..PR_DEGREE {
                let u = neighbour(v, j, vertices, salt);
                next[u as usize] += share;
            }
        }
        std::mem::swap(&mut rank, &mut next);
    }
    let mut acc = 0x7A6E_7A6Eu64;
    for &r in rank.iter().take(16) {
        acc = super::fold_f64(acc, r * n as f64);
    }
    acc
}

// --------------------------------------------------------------------------
// sort_data
// --------------------------------------------------------------------------

/// Sort `elements` synthetic u64s; returns a checksum over order statistics.
pub fn run_sort(elements: u32) -> u64 {
    if elements == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x5027 ^ (elements as u64) << 7);
    let mut data: Vec<u64> = (0..elements).map(|_| rng.next_u64()).collect();
    data.sort_unstable();
    let n = data.len();
    let mut acc = 0x5027_DA7Au64;
    for q in [0usize, n / 4, n / 2, 3 * n / 4, n - 1] {
        acc = fold(acc, data[q]);
    }
    // Verify sortedness while folding a stride of elements (the checksum
    // depends on the whole permutation having been ordered).
    for w in data.windows(2).step_by((n / 64).max(1)) {
        debug_assert!(w[0] <= w[1]);
        acc = acc.rotate_left(1) ^ (w[1] - w[0]);
    }
    acc
}

// --------------------------------------------------------------------------
// text_search: Boyer–Moore–Horspool over streaming logs
// --------------------------------------------------------------------------

/// Search `patterns` fixed patterns over `haystack_bytes` of synthetic log
/// text; returns a checksum of match counts and positions.
pub fn run_text_search(haystack_bytes: u32, patterns: u32) -> u64 {
    if haystack_bytes == 0 || patterns == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x7EC7 ^ ((haystack_bytes as u64) << 8) ^ patterns as u64);
    let hay = gen_text(&mut rng, haystack_bytes as usize);

    const CANDIDATES: [&str; 8] =
        ["cold start", "sandbox", "burst", "queue full", "invoke", "scale out", "idle", "node"];
    let mut acc = 0x7E57_0001u64;
    for p in 0..patterns.min(8) {
        let needle = CANDIDATES[p as usize].as_bytes();
        let m = needle.len();
        // Horspool bad-character table.
        let mut skip = [m; 256];
        for (i, &b) in needle.iter().enumerate().take(m - 1) {
            skip[b as usize] = m - 1 - i;
        }
        let mut count = 0u64;
        let mut i = 0usize;
        while i + m <= hay.len() {
            if &hay[i..i + m] == needle {
                count += 1;
                acc = acc.rotate_left(5) ^ i as u64;
                i += m;
            } else {
                i += skip[hay[i + m - 1] as usize];
            }
        }
        acc = fold(acc, (p as u64) << 32 | count);
    }
    acc
}

// --------------------------------------------------------------------------
// word_count
// --------------------------------------------------------------------------

/// Count word frequencies over `bytes` of synthetic text; returns a
/// checksum of the (sorted) histogram.
pub fn run_word_count(bytes: u32) -> u64 {
    if bytes == 0 {
        return 0;
    }
    let mut rng = SplitMix64::new(0x30C4 ^ (bytes as u64) << 3);
    let text = gen_text(&mut rng, bytes as usize);
    let mut counts = std::collections::HashMap::<&[u8], u64>::new();
    for word in text.split(|&b| b == b' ') {
        if !word.is_empty() {
            *counts.entry(word).or_insert(0) += 1;
        }
    }
    let mut entries: Vec<(&[u8], u64)> = counts.into_iter().collect();
    entries.sort_unstable();
    let mut acc = 0x30C4_0001u64;
    for (word, count) in entries {
        let mut h = 0u64;
        for &b in word {
            h = h.rotate_left(7) ^ b as u64;
        }
        acc = fold(acc, h ^ count << 40);
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compression_deterministic_and_compresses() {
        assert_eq!(run_compression(8_192), run_compression(8_192));
        assert_ne!(run_compression(8_192), run_compression(8_193));
        assert_eq!(run_compression(0), 0);
    }

    #[test]
    fn compression_finds_matches_in_repetitive_text() {
        // The vocabulary repeats within the window, so the match path runs;
        // simply assert the two paths (literal vs match) both execute by
        // checking different sizes give different structure-sensitive sums.
        let a = run_compression(1_000);
        let b = run_compression(2_000);
        assert_ne!(a, b);
    }

    #[test]
    fn bfs_reaches_most_of_a_dense_graph() {
        // With degree 8 over 1000 vertices, the giant component spans
        // essentially everything reachable from vertex 0.
        let sum = run_graph_bfs(1_000, 8);
        assert_eq!(sum, run_graph_bfs(1_000, 8));
        assert_ne!(sum, run_graph_bfs(1_000, 7));
        assert_eq!(run_graph_bfs(0, 8), 0);
    }

    #[test]
    fn bfs_single_vertex() {
        assert_eq!(run_graph_bfs(1, 4), run_graph_bfs(1, 4));
    }

    #[test]
    fn pagerank_deterministic_and_iteration_sensitive() {
        assert_eq!(run_pagerank(500, 5), run_pagerank(500, 5));
        assert_ne!(run_pagerank(500, 5), run_pagerank(500, 6));
        assert_eq!(run_pagerank(0, 5), 0);
        assert_eq!(run_pagerank(500, 0), 0);
    }

    #[test]
    fn sort_deterministic_and_size_sensitive() {
        assert_eq!(run_sort(10_000), run_sort(10_000));
        assert_ne!(run_sort(10_000), run_sort(10_001));
        assert_eq!(run_sort(0), 0);
        assert_eq!(run_sort(1), run_sort(1));
    }

    #[test]
    fn text_search_finds_vocabulary_words() {
        // "invoke" is in the generator vocabulary, so matches must occur —
        // different pattern counts change the checksum.
        let one = run_text_search(50_000, 1);
        let five = run_text_search(50_000, 5);
        assert_ne!(one, five);
        assert_eq!(one, run_text_search(50_000, 1));
        assert_eq!(run_text_search(0, 3), 0);
    }

    #[test]
    fn word_count_deterministic() {
        assert_eq!(run_word_count(20_000), run_word_count(20_000));
        assert_ne!(run_word_count(20_000), run_word_count(20_100));
        assert_eq!(run_word_count(0), 0);
    }
}

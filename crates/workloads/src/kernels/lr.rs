//! `lr_serving` / `lr_training`: logistic regression.
//!
//! Mirrors FunctionBench's scikit-learn workloads: serving scores a stream
//! of feature vectors against a fixed model; training runs mini-batch SGD
//! over a synthetic dataset for a configurable number of epochs (the
//! long-running outlier of the suite — its quickest configurations take
//! seconds, which is why the paper finds it under-represented in mapped
//! request streams).

use super::{fold_f64, SplitMix64};

#[inline]
fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

/// Score `samples` synthetic feature vectors of width `features`; returns a
/// checksum of the predictions.
pub fn run_serving(samples: u32, features: u32) -> u64 {
    let d = features as usize;
    let mut rng = SplitMix64::new(0x175E ^ ((samples as u64) << 32 | features as u64));
    let weights: Vec<f64> = (0..d).map(|_| rng.next_f64() - 0.5).collect();
    let bias = rng.next_f64() - 0.5;

    let mut acc = 0x5E17_1D0Cu64;
    let mut positives = 0u64;
    // Stream one sample at a time: memory stays O(features).
    let mut x = vec![0f64; d];
    for _ in 0..samples {
        for v in &mut x {
            *v = rng.next_f64() - 0.5;
        }
        let z: f64 = x.iter().zip(&weights).map(|(a, w)| a * w).sum::<f64>() + bias;
        let p = sigmoid(z);
        positives += (p > 0.5) as u64;
        acc = fold_f64(acc, p);
    }
    acc ^ positives
}

/// Train a logistic model with `epochs` of SGD over `samples` × `features`;
/// returns a checksum of the learned weights.
pub fn run_training(epochs: u32, samples: u32, features: u32) -> u64 {
    let m = samples as usize;
    let d = features as usize;
    let mut rng = SplitMix64::new(
        0x17A1 ^ ((epochs as u64) << 40 | (samples as u64) << 16 | features as u64),
    );

    // Synthetic dataset with a planted ground-truth separator, held in
    // memory like a real training job (bounded by the input grid).
    let truth: Vec<f64> = (0..d).map(|_| rng.next_f64() - 0.5).collect();
    let mut xs = vec![0f64; m * d];
    let mut ys = vec![0f64; m];
    for i in 0..m {
        let row = &mut xs[i * d..(i + 1) * d];
        for v in row.iter_mut() {
            *v = rng.next_f64() - 0.5;
        }
        let z: f64 = row.iter().zip(&truth).map(|(a, w)| a * w).sum();
        ys[i] = (z > 0.0) as u64 as f64;
    }

    let mut w = vec![0f64; d];
    let mut b = 0f64;
    let lr = 0.5;
    for _ in 0..epochs {
        for i in 0..m {
            let row = &xs[i * d..(i + 1) * d];
            let z: f64 = row.iter().zip(&w).map(|(a, wi)| a * wi).sum::<f64>() + b;
            let err = sigmoid(z) - ys[i];
            for (wi, a) in w.iter_mut().zip(row) {
                *wi -= lr * err * a;
            }
            b -= lr * err;
        }
    }

    let mut acc = 0x7124_111Bu64;
    for wi in &w {
        acc = fold_f64(acc, *wi);
    }
    fold_f64(acc, b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serving_deterministic_and_sensitive() {
        assert_eq!(run_serving(128, 8), run_serving(128, 8));
        assert_ne!(run_serving(128, 8), run_serving(129, 8));
    }

    #[test]
    fn training_deterministic_and_sensitive() {
        assert_eq!(run_training(2, 64, 8), run_training(2, 64, 8));
        assert_ne!(run_training(2, 64, 8), run_training(3, 64, 8));
    }

    #[test]
    fn training_actually_learns() {
        // After training, the model should classify its own training set
        // well above chance — i.e. the SGD loop is doing real work.
        let m = 200usize;
        let d = 8usize;
        let mut rng = SplitMix64::new(0x17A1 ^ ((20u64) << 40 | (m as u64) << 16 | d as u64));
        let truth: Vec<f64> = (0..d).map(|_| rng.next_f64() - 0.5).collect();
        let mut xs = vec![0f64; m * d];
        let mut ys = vec![0f64; m];
        for i in 0..m {
            let row = &mut xs[i * d..(i + 1) * d];
            for v in row.iter_mut() {
                *v = rng.next_f64() - 0.5;
            }
            let z: f64 = row.iter().zip(&truth).map(|(a, w)| a * w).sum();
            ys[i] = (z > 0.0) as u64 as f64;
        }
        let mut w = vec![0f64; d];
        let mut b = 0f64;
        for _ in 0..20 {
            for i in 0..m {
                let row = &xs[i * d..(i + 1) * d];
                let z: f64 = row.iter().zip(&w).map(|(a, wi)| a * wi).sum::<f64>() + b;
                let err = sigmoid(z) - ys[i];
                for (wi, a) in w.iter_mut().zip(row) {
                    *wi -= 0.5 * err * a;
                }
                b -= 0.5 * err;
            }
        }
        let correct = (0..m)
            .filter(|&i| {
                let row = &xs[i * d..(i + 1) * d];
                let z: f64 = row.iter().zip(&w).map(|(a, wi)| a * wi).sum::<f64>() + b;
                (sigmoid(z) > 0.5) == (ys[i] > 0.5)
            })
            .count();
        assert!(correct as f64 / m as f64 > 0.9, "accuracy = {}/{m}", correct);
    }

    #[test]
    fn sigmoid_range() {
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 0.999);
        assert!(sigmoid(-20.0) < 0.001);
    }
}

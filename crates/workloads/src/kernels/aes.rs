//! `pyaes`: AES-128 in CTR mode, implemented in pure software.
//!
//! FunctionBench's `pyaes` workload runs a pure-Python AES; the point of the
//! benchmark is *software* block encryption (table-free, constant work per
//! byte), not hardware AES-NI throughput. This is a straightforward,
//! from-scratch AES-128 with the standard S-box, used in CTR mode over a
//! deterministically generated plaintext stream.

use super::{fold, SplitMix64};

/// The AES S-box.
#[rustfmt::skip]
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 10] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];

/// xtime: multiply by 2 in GF(2^8).
#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

/// Expanded AES-128 key schedule: 11 round keys of 16 bytes.
fn expand_key(key: &[u8; 16]) -> [[u8; 16]; 11] {
    let mut rk = [[0u8; 16]; 11];
    rk[0] = *key;
    for round in 1..11 {
        let prev = rk[round - 1];
        let mut t = [prev[12], prev[13], prev[14], prev[15]];
        // RotWord + SubWord + Rcon
        t.rotate_left(1);
        for b in &mut t {
            *b = SBOX[*b as usize];
        }
        t[0] ^= RCON[round - 1];
        for i in 0..4 {
            rk[round][i] = prev[i] ^ t[i];
        }
        for i in 4..16 {
            rk[round][i] = prev[i] ^ rk[round][i - 4];
        }
    }
    rk
}

fn add_round_key(state: &mut [u8; 16], rk: &[u8; 16]) {
    for (s, k) in state.iter_mut().zip(rk) {
        *s ^= k;
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// ShiftRows on column-major state (byte i holds row i%4, col i/4).
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for col in 0..4 {
        for row in 1..4 {
            state[col * 4 + row] = s[((col + row) % 4) * 4 + row];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for col in 0..4 {
        let a = [state[col * 4], state[col * 4 + 1], state[col * 4 + 2], state[col * 4 + 3]];
        let t = a[0] ^ a[1] ^ a[2] ^ a[3];
        state[col * 4] = a[0] ^ t ^ xtime(a[0] ^ a[1]);
        state[col * 4 + 1] = a[1] ^ t ^ xtime(a[1] ^ a[2]);
        state[col * 4 + 2] = a[2] ^ t ^ xtime(a[2] ^ a[3]);
        state[col * 4 + 3] = a[3] ^ t ^ xtime(a[3] ^ a[0]);
    }
}

/// Encrypt one 16-byte block with the expanded key.
pub fn encrypt_block(block: &[u8; 16], rk: &[[u8; 16]; 11]) -> [u8; 16] {
    let mut state = *block;
    add_round_key(&mut state, &rk[0]);
    #[allow(clippy::needless_range_loop)] // round number is the crypto-spec index
    for round in 1..10 {
        sub_bytes(&mut state);
        shift_rows(&mut state);
        mix_columns(&mut state);
        add_round_key(&mut state, &rk[round]);
    }
    sub_bytes(&mut state);
    shift_rows(&mut state);
    add_round_key(&mut state, &rk[10]);
    state
}

/// Encrypt `bytes` of synthetic plaintext with AES-128-CTR; returns a
/// checksum of the ciphertext stream.
pub fn run(bytes: u32) -> u64 {
    let key: [u8; 16] = *b"faasrail-aes-key";
    let rk = expand_key(&key);
    let mut data_gen = SplitMix64::new(0xAE5_0001 ^ bytes as u64);
    let blocks = (bytes as u64).div_ceil(16);
    let mut acc = 0xcbf2_9ce4_8422_2325u64;
    for ctr in 0..blocks {
        // CTR keystream block.
        let mut counter = [0u8; 16];
        counter[..8].copy_from_slice(&ctr.to_be_bytes());
        counter[8..].copy_from_slice(&0xF0F0_F0F0_0D0D_0D0Du64.to_be_bytes());
        let keystream = encrypt_block(&counter, &rk);
        // Synthetic plaintext block XOR keystream.
        let p0 = data_gen.next_u64().to_le_bytes();
        let p1 = data_gen.next_u64().to_le_bytes();
        for i in 0..8 {
            acc = fold(acc, (keystream[i] ^ p0[i]) as u64);
            acc = fold(acc, (keystream[8 + i] ^ p1[i]) as u64);
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// FIPS-197 Appendix C.1 known-answer test.
    #[test]
    fn fips197_vector() {
        let key: [u8; 16] = [
            0x00, 0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08, 0x09, 0x0a, 0x0b, 0x0c, 0x0d,
            0x0e, 0x0f,
        ];
        let plaintext: [u8; 16] = [
            0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd,
            0xee, 0xff,
        ];
        let expected: [u8; 16] = [
            0x69, 0xc4, 0xe0, 0xd8, 0x6a, 0x7b, 0x04, 0x30, 0xd8, 0xcd, 0xb7, 0x80, 0x70, 0xb4,
            0xc5, 0x5a,
        ];
        let rk = expand_key(&key);
        assert_eq!(encrypt_block(&plaintext, &rk), expected);
    }

    /// FIPS-197 Appendix A.1 key-expansion spot checks.
    #[test]
    fn key_expansion_vector() {
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let rk = expand_key(&key);
        // w4..w7 (round key 1) from the spec.
        assert_eq!(
            rk[1],
            [
                0xa0, 0xfa, 0xfe, 0x17, 0x88, 0x54, 0x2c, 0xb1, 0x23, 0xa3, 0x39, 0x39, 0x2a, 0x6c,
                0x76, 0x05
            ]
        );
        // Final round key (w40..w43).
        assert_eq!(
            rk[10],
            [
                0xd0, 0x14, 0xf9, 0xa8, 0xc9, 0xee, 0x25, 0x89, 0xe1, 0x3f, 0x0c, 0xc8, 0xb6, 0x63,
                0x0c, 0xa6
            ]
        );
    }

    #[test]
    fn ctr_deterministic_and_size_sensitive() {
        assert_eq!(run(1024), run(1024));
        assert_ne!(run(1024), run(1040));
    }

    #[test]
    fn partial_block_rounds_up() {
        // 17 bytes → 2 blocks; must differ from 16 and 32.
        assert_ne!(run(16), run(17));
        assert_ne!(run(17), run(32));
    }

    #[test]
    fn xtime_known_values() {
        assert_eq!(xtime(0x57), 0xae);
        assert_eq!(xtime(0xae), 0x47); // overflow path: 0x15c ^ 0x11b
    }
}

//! Calibration: registering real warm execution times on the target machine.
//!
//! Paper §3.1.1: "To register the Workloads execution times, we deploy each
//! in a distinct container and run it multiple times to capture its average
//! warm execution time on a target machine." Here each kernel runs in-process
//! (warm), is timed over several repetitions, and the per-kind linear cost
//! model is refit by least squares over `(work_units, time)` pairs.

use crate::cost_model::{CostModel, KindCost};
use crate::input::WorkloadInput;
use crate::kernels;
use crate::registry::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::time::Instant;

/// Options controlling a calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationOptions {
    /// Untimed warm-up executions before measuring.
    pub warmups: u32,
    /// Timed repetitions; the *median* is recorded (robust to stragglers).
    pub repeats: u32,
}

impl Default for CalibrationOptions {
    fn default() -> Self {
        CalibrationOptions { warmups: 2, repeats: 5 }
    }
}

/// One measured `(input, time)` sample.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Measurement {
    pub input: WorkloadInput,
    /// Median warm execution time over the repetitions, milliseconds.
    pub median_ms: f64,
    /// Mean warm execution time, milliseconds.
    pub mean_ms: f64,
    pub repeats: u32,
}

/// Measure one input's warm execution time.
pub fn measure(input: &WorkloadInput, opts: &CalibrationOptions) -> Measurement {
    assert!(opts.repeats >= 1, "need at least one timed repetition");
    for _ in 0..opts.warmups {
        std::hint::black_box(kernels::execute(input));
    }
    let mut times_ms = Vec::with_capacity(opts.repeats as usize);
    for _ in 0..opts.repeats {
        let start = Instant::now();
        std::hint::black_box(kernels::execute(input));
        times_ms.push(start.elapsed().as_secs_f64() * 1_000.0);
    }
    times_ms.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    let median_ms = times_ms[times_ms.len() / 2];
    let mean_ms = times_ms.iter().sum::<f64>() / times_ms.len() as f64;
    Measurement { input: *input, median_ms, mean_ms, repeats: opts.repeats }
}

/// Least-squares fit of `time_us = overhead_us + (ns_per_unit/1000) × units`
/// over one kind's measurements. With a single point, only the slope is fit
/// (overhead pinned at zero). Coefficients are clamped non-negative, with a
/// strictly positive slope floor so the model stays invertible.
pub fn fit_kind(measurements: &[Measurement]) -> KindCost {
    assert!(!measurements.is_empty(), "cannot fit with no measurements");
    let pts: Vec<(f64, f64)> = measurements
        .iter()
        .map(|m| (m.input.work_units(), m.median_ms * 1_000.0)) // (units, µs)
        .collect();
    if pts.len() == 1 {
        let (u, t) = pts[0];
        return KindCost { overhead_us: 0.0, ns_per_unit: (t * 1_000.0 / u).max(1e-6) };
    }
    let n = pts.len() as f64;
    let sx: f64 = pts.iter().map(|p| p.0).sum();
    let sy: f64 = pts.iter().map(|p| p.1).sum();
    let sxx: f64 = pts.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = pts.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    let (slope_us_per_unit, intercept_us) = if denom.abs() < f64::EPSILON {
        // All identical unit counts: degenerate; fall back to ratio.
        (sy / sx.max(1.0), 0.0)
    } else {
        let slope = (n * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / n;
        (slope, intercept)
    };
    KindCost {
        overhead_us: intercept_us.max(0.0),
        ns_per_unit: (slope_us_per_unit * 1_000.0).max(1e-6),
    }
}

/// Fit a full cost model from measurements, falling back to the default
/// coefficients for kinds without data.
pub fn fit_model(measurements: &[Measurement]) -> CostModel {
    let mut by_kind: BTreeMap<WorkloadKind, Vec<Measurement>> = BTreeMap::new();
    for m in measurements {
        by_kind.entry(m.input.kind()).or_default().push(*m);
    }
    let mut model = CostModel::default_calibration();
    for (kind, ms) in &by_kind {
        model.set(*kind, fit_kind(ms));
    }
    model
}

/// Calibrate every kind over a ladder of small inputs — a fast, end-to-end
/// refit suitable for test machines (larger inputs give better fits; this
/// is what `faasrail build-pool --measure` does with a bigger ladder).
pub fn quick_calibration(opts: &CalibrationOptions) -> CostModel {
    let mut measurements = Vec::new();
    for kind in WorkloadKind::ALL_SUITES {
        for scale in [1.0f64, 4.0, 16.0] {
            let input = match kind {
                WorkloadKind::CnnServing => WorkloadInput::CnnServing {
                    image_size: (16.0 * scale.sqrt()) as u32,
                    filters: 8,
                },
                _ => {
                    let base_units = 200_000.0;
                    match WorkloadInput::for_work_units(kind, base_units * scale) {
                        Some(i) => i,
                        None => continue,
                    }
                }
            };
            measurements.push(measure(&input, opts));
        }
    }
    fit_model(&measurements)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive_times() {
        let m = measure(
            &WorkloadInput::Pyaes { bytes: 64 * 1024 },
            &CalibrationOptions { warmups: 1, repeats: 3 },
        );
        assert!(m.median_ms > 0.0);
        assert!(m.mean_ms > 0.0);
        assert_eq!(m.repeats, 3);
    }

    #[test]
    fn fit_recovers_synthetic_line() {
        // time_us = 50 + 0.002 * units  (i.e. 2 ns/unit)
        let mk = |units: f64| Measurement {
            input: WorkloadInput::Pyaes { bytes: units as u32 },
            median_ms: (50.0 + 0.002 * units) / 1_000.0,
            mean_ms: (50.0 + 0.002 * units) / 1_000.0,
            repeats: 1,
        };
        let ms: Vec<Measurement> = [1e4, 5e4, 1e5, 5e5].iter().map(|&u| mk(u)).collect();
        let fit = fit_kind(&ms);
        assert!((fit.overhead_us - 50.0).abs() < 1.0, "overhead = {}", fit.overhead_us);
        assert!((fit.ns_per_unit - 2.0).abs() < 0.05, "slope = {}", fit.ns_per_unit);
    }

    #[test]
    fn fit_single_point() {
        let m = Measurement {
            input: WorkloadInput::Pyaes { bytes: 1_000 },
            median_ms: 0.01,
            mean_ms: 0.01,
            repeats: 1,
        };
        let fit = fit_kind(&[m]);
        assert_eq!(fit.overhead_us, 0.0);
        assert!((fit.ns_per_unit - 10.0).abs() < 1e-6);
    }

    #[test]
    fn fit_clamps_negative_intercept() {
        // A line with negative intercept must clamp to zero overhead.
        let mk = |units: f64, t_us: f64| Measurement {
            input: WorkloadInput::Pyaes { bytes: units as u32 },
            median_ms: t_us / 1_000.0,
            mean_ms: t_us / 1_000.0,
            repeats: 1,
        };
        let fit = fit_kind(&[mk(1e4, 10.0), mk(1e5, 200.0)]);
        assert!(fit.overhead_us >= 0.0);
        assert!(fit.ns_per_unit > 0.0);
    }

    #[test]
    fn fit_model_falls_back_to_defaults() {
        let model = fit_model(&[]);
        assert_eq!(model, CostModel::default_calibration());
    }

    #[test]
    fn measured_times_scale_with_input() {
        // The whole premise of augmentation: bigger input, longer runtime.
        // Environment-dependent by nature (real kernel wall-clock time), so
        // it is deliberately forgiving: a 16x input gap only has to show a
        // >2x median gap, the large input keeps the small one's constant
        // overhead negligible, and a noisy round may be retried.
        let opts = CalibrationOptions { warmups: 1, repeats: 5 };
        let mut last = (0.0, 0.0);
        for _attempt in 0..3 {
            let small = measure(&WorkloadInput::Pyaes { bytes: 64 * 1024 }, &opts);
            let large = measure(&WorkloadInput::Pyaes { bytes: 1024 * 1024 }, &opts);
            last = (small.median_ms, large.median_ms);
            if large.median_ms > small.median_ms * 2.0 {
                return;
            }
        }
        panic!("64K: {} ms, 1M: {} ms — scaling ratio stayed under 2x", last.0, last.1);
    }
}

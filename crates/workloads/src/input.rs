//! Workload input specifications.
//!
//! A *Workload* in FaaSRail terms is a `(function, input)` pair: the same
//! FunctionBench benchmark invoked with a different input has a different
//! warm execution time, and augmenting the ten benchmarks over many inputs
//! is how the paper grows ten functions into ~2300 Workloads (§3.1.1).

use crate::registry::WorkloadKind;
use serde::{Deserialize, Serialize};

/// A fully specified input for one workload kind.
///
/// Every field that drives the kernel's inner-loop trip counts is here, so a
/// `WorkloadInput` pins down both the computational work and the memory
/// footprint of an invocation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadInput {
    /// Render an HTML table of `rows` × `cols` cells.
    Chameleon { rows: u32, cols: u32 },
    /// Forward pass on an `image_size`² RGB image with `filters` conv filters.
    CnnServing { image_size: u32, filters: u32 },
    /// Grayscale + 3×3 blur + threshold over a `size`² image.
    ImageProcessing { size: u32 },
    /// Serialize and re-parse `records` JSON records.
    JsonSerdes { records: u32 },
    /// `n`×`n` dense matrix multiply.
    Matmul { n: u32 },
    /// Score `samples` × `features` with a logistic model.
    LrServing { samples: u32, features: u32 },
    /// `epochs` of SGD over `samples` × `features`.
    LrTraining { epochs: u32, samples: u32, features: u32 },
    /// Encrypt `bytes` with AES-128-CTR.
    Pyaes { bytes: u32 },
    /// `seq_len` GRU steps with hidden width `hidden`.
    RnnServing { seq_len: u32, hidden: u32 },
    /// Grayscale `frames` frames of `size`² pixels.
    VideoProcessing { frames: u32, size: u32 },
    // ---- auxiliary suite (paper §3.3 extension) ----
    /// LZSS-compress `bytes` of synthetic text.
    Compression { bytes: u32 },
    /// BFS over `vertices` nodes of out-degree `degree`.
    GraphBfs { vertices: u32, degree: u32 },
    /// `iters` PageRank power iterations over `vertices` nodes.
    PageRank { vertices: u32, iters: u32 },
    /// Sort `elements` 64-bit keys.
    SortData { elements: u32 },
    /// Search `patterns` patterns over `haystack_bytes` of text.
    TextSearch { haystack_bytes: u32, patterns: u32 },
    /// Count word frequencies over `bytes` of text.
    WordCount { bytes: u32 },
}

impl WorkloadInput {
    /// Which benchmark this input belongs to.
    pub fn kind(&self) -> WorkloadKind {
        match self {
            WorkloadInput::Chameleon { .. } => WorkloadKind::Chameleon,
            WorkloadInput::CnnServing { .. } => WorkloadKind::CnnServing,
            WorkloadInput::ImageProcessing { .. } => WorkloadKind::ImageProcessing,
            WorkloadInput::JsonSerdes { .. } => WorkloadKind::JsonSerdes,
            WorkloadInput::Matmul { .. } => WorkloadKind::Matmul,
            WorkloadInput::LrServing { .. } => WorkloadKind::LrServing,
            WorkloadInput::LrTraining { .. } => WorkloadKind::LrTraining,
            WorkloadInput::Pyaes { .. } => WorkloadKind::Pyaes,
            WorkloadInput::RnnServing { .. } => WorkloadKind::RnnServing,
            WorkloadInput::VideoProcessing { .. } => WorkloadKind::VideoProcessing,
            WorkloadInput::Compression { .. } => WorkloadKind::Compression,
            WorkloadInput::GraphBfs { .. } => WorkloadKind::GraphBfs,
            WorkloadInput::PageRank { .. } => WorkloadKind::PageRank,
            WorkloadInput::SortData { .. } => WorkloadKind::SortData,
            WorkloadInput::TextSearch { .. } => WorkloadKind::TextSearch,
            WorkloadInput::WordCount { .. } => WorkloadKind::WordCount,
        }
    }

    /// Abstract work units: the kernel's inner-loop trip count. The cost
    /// model predicts `time ≈ c0 + ns_per_unit × work_units`.
    pub fn work_units(&self) -> f64 {
        match *self {
            WorkloadInput::Chameleon { rows, cols } => rows as f64 * cols as f64,
            WorkloadInput::CnnServing { image_size, filters } => {
                let s2 = (image_size as f64).powi(2);
                let k = filters as f64;
                // conv1 (3→k, 3×3) + conv2 on pooled map (k→k, 3×3).
                s2 * k * (27.0 + 2.25 * k)
            }
            WorkloadInput::ImageProcessing { size } => 14.0 * (size as f64).powi(2),
            WorkloadInput::JsonSerdes { records } => records as f64,
            WorkloadInput::Matmul { n } => (n as f64).powi(3),
            WorkloadInput::LrServing { samples, features } => samples as f64 * features as f64,
            WorkloadInput::LrTraining { epochs, samples, features } => {
                epochs as f64 * samples as f64 * features as f64
            }
            WorkloadInput::Pyaes { bytes } => bytes as f64,
            WorkloadInput::RnnServing { seq_len, hidden } => {
                3.0 * seq_len as f64 * (hidden as f64).powi(2)
            }
            WorkloadInput::VideoProcessing { frames, size } => {
                2.0 * frames as f64 * (size as f64).powi(2)
            }
            WorkloadInput::Compression { bytes } => bytes as f64,
            WorkloadInput::GraphBfs { vertices, degree } => vertices as f64 * degree as f64,
            WorkloadInput::PageRank { vertices, iters } => 8.0 * vertices as f64 * iters as f64,
            WorkloadInput::SortData { elements } => {
                let n = elements as f64;
                n * n.max(2.0).log2()
            }
            WorkloadInput::TextSearch { haystack_bytes, patterns } => {
                haystack_bytes as f64 * patterns as f64
            }
            WorkloadInput::WordCount { bytes } => bytes as f64,
        }
    }

    /// The canonical "vanilla FunctionBench" input for each benchmark — the
    /// single configuration commonly used in the literature (paper Fig. 6's
    /// "FunctionBench (10)" curve).
    pub fn vanilla(kind: WorkloadKind) -> WorkloadInput {
        match kind {
            WorkloadKind::Chameleon => WorkloadInput::Chameleon { rows: 4_000, cols: 8 },
            WorkloadKind::CnnServing => WorkloadInput::CnnServing { image_size: 224, filters: 64 },
            WorkloadKind::ImageProcessing => WorkloadInput::ImageProcessing { size: 1_024 },
            WorkloadKind::JsonSerdes => WorkloadInput::JsonSerdes { records: 60_000 },
            WorkloadKind::Matmul => WorkloadInput::Matmul { n: 512 },
            WorkloadKind::LrServing => WorkloadInput::LrServing { samples: 4_000, features: 64 },
            WorkloadKind::LrTraining => {
                WorkloadInput::LrTraining { epochs: 600, samples: 10_000, features: 64 }
            }
            WorkloadKind::Pyaes => WorkloadInput::Pyaes { bytes: 1 << 20 },
            WorkloadKind::RnnServing => WorkloadInput::RnnServing { seq_len: 1_000, hidden: 128 },
            WorkloadKind::VideoProcessing => {
                WorkloadInput::VideoProcessing { frames: 2_000, size: 512 }
            }
            WorkloadKind::Compression => WorkloadInput::Compression { bytes: 4 << 20 },
            WorkloadKind::GraphBfs => WorkloadInput::GraphBfs { vertices: 500_000, degree: 16 },
            WorkloadKind::PageRank => WorkloadInput::PageRank { vertices: 200_000, iters: 10 },
            WorkloadKind::SortData => WorkloadInput::SortData { elements: 4 << 20 },
            WorkloadKind::TextSearch => {
                WorkloadInput::TextSearch { haystack_bytes: 16 << 20, patterns: 4 }
            }
            WorkloadKind::WordCount => WorkloadInput::WordCount { bytes: 8 << 20 },
        }
    }

    /// Construct the input of this kind whose [`Self::work_units`] best
    /// approximates `units` (kernel-specific inversion with fixed secondary
    /// dimensions, matching how the augmentation grids vary one knob).
    ///
    /// Returns `None` for kinds that are not augmented by unit inversion
    /// (`CnnServing` keeps its small fixed grid, mirroring the paper's note
    /// that cnn_serving is barely augmented).
    pub fn for_work_units(kind: WorkloadKind, units: f64) -> Option<WorkloadInput> {
        let units = units.max(1.0);
        Some(match kind {
            WorkloadKind::Chameleon => {
                WorkloadInput::Chameleon { rows: ((units / 8.0).round() as u32).max(1), cols: 8 }
            }
            WorkloadKind::CnnServing => return None,
            WorkloadKind::ImageProcessing => WorkloadInput::ImageProcessing {
                size: ((units / 14.0).sqrt().round() as u32).max(1),
            },
            WorkloadKind::JsonSerdes => {
                WorkloadInput::JsonSerdes { records: (units.round() as u32).max(1) }
            }
            WorkloadKind::Matmul => {
                WorkloadInput::Matmul { n: (units.cbrt().round() as u32).max(1) }
            }
            WorkloadKind::LrServing => WorkloadInput::LrServing {
                samples: ((units / 64.0).round() as u32).max(1),
                features: 64,
            },
            WorkloadKind::LrTraining => WorkloadInput::LrTraining {
                epochs: ((units / (10_000.0 * 64.0)).round() as u32).max(1),
                samples: 10_000,
                features: 64,
            },
            WorkloadKind::Pyaes => WorkloadInput::Pyaes { bytes: (units.round() as u32).max(16) },
            WorkloadKind::RnnServing => WorkloadInput::RnnServing {
                seq_len: ((units / (3.0 * 128.0 * 128.0)).round() as u32).max(1),
                hidden: 128,
            },
            WorkloadKind::VideoProcessing => WorkloadInput::VideoProcessing {
                frames: ((units / (2.0 * 512.0 * 512.0)).round() as u32).max(1),
                size: 512,
            },
            WorkloadKind::Compression => {
                WorkloadInput::Compression { bytes: (units.round() as u32).max(64) }
            }
            WorkloadKind::GraphBfs => WorkloadInput::GraphBfs {
                vertices: ((units / 16.0).round() as u32).max(2),
                degree: 16,
            },
            WorkloadKind::PageRank => WorkloadInput::PageRank {
                vertices: ((units / (8.0 * 10.0)).round() as u32).max(16),
                iters: 10,
            },
            WorkloadKind::SortData => {
                // Invert n·log2(n) = units by fixed-point iteration.
                let mut n = (units / units.max(4.0).log2()).max(2.0);
                for _ in 0..20 {
                    n = (units / n.max(2.0).log2()).max(2.0);
                }
                WorkloadInput::SortData { elements: (n.round() as u32).max(2) }
            }
            WorkloadKind::TextSearch => WorkloadInput::TextSearch {
                haystack_bytes: ((units / 4.0).round() as u32).max(64),
                patterns: 4,
            },
            WorkloadKind::WordCount => {
                WorkloadInput::WordCount { bytes: (units.round() as u32).max(64) }
            }
        })
    }

    /// Estimated resident memory footprint of one invocation, in MiB.
    ///
    /// Kind-dependent base (runtime + libraries, mirroring the footprints
    /// reported for FunctionBench in the literature) plus the input-driven
    /// working set. Kernels are written to stream oversized data, so the
    /// input-driven term is bounded.
    pub fn memory_mb(&self) -> f64 {
        let mb = 1024.0 * 1024.0;
        let (base, dynamic) = match *self {
            WorkloadInput::Chameleon { cols, .. } => (64.0, cols as f64 * 64.0 * 1_024.0 / mb),
            WorkloadInput::CnnServing { image_size, filters } => {
                (256.0, (image_size as f64).powi(2) * (3.0 + filters as f64) * 4.0 / mb)
            }
            WorkloadInput::ImageProcessing { size } => (96.0, size as f64 * 3.0 * 4.0 * 3.0 / mb),
            WorkloadInput::JsonSerdes { .. } => (64.0, 2.0),
            WorkloadInput::Matmul { n } => (48.0, 3.0 * (n as f64).powi(2) * 8.0 / mb),
            WorkloadInput::LrServing { features, .. } => (128.0, features as f64 * 8.0 / mb),
            WorkloadInput::LrTraining { samples, features, .. } => {
                (192.0, samples as f64 * features as f64 * 8.0 / mb)
            }
            WorkloadInput::Pyaes { .. } => (32.0, 1.0),
            WorkloadInput::RnnServing { hidden, .. } => {
                (160.0, 6.0 * (hidden as f64).powi(2) * 8.0 / mb)
            }
            WorkloadInput::VideoProcessing { size, .. } => (128.0, size as f64 * 3.0 * 8.0 / mb),
            WorkloadInput::Compression { bytes } => (48.0, bytes as f64 * 2.0 / mb),
            WorkloadInput::GraphBfs { vertices, .. } => (64.0, vertices as f64 * 5.0 / mb),
            WorkloadInput::PageRank { vertices, .. } => (64.0, vertices as f64 * 16.0 / mb),
            WorkloadInput::SortData { elements } => (48.0, elements as f64 * 8.0 / mb),
            WorkloadInput::TextSearch { haystack_bytes, .. } => {
                (48.0, haystack_bytes as f64 * 1.2 / mb)
            }
            WorkloadInput::WordCount { bytes } => (64.0, bytes as f64 * 1.5 / mb),
        };
        (base + dynamic).clamp(16.0, 2_048.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_accessor_consistent() {
        for k in WorkloadKind::ALL_SUITES {
            assert_eq!(WorkloadInput::vanilla(k).kind(), k);
        }
    }

    #[test]
    fn work_units_positive_for_vanilla() {
        for k in WorkloadKind::ALL_SUITES {
            assert!(WorkloadInput::vanilla(k).work_units() > 0.0);
        }
    }

    #[test]
    fn work_units_monotone_in_size() {
        let small = WorkloadInput::Matmul { n: 10 }.work_units();
        let big = WorkloadInput::Matmul { n: 100 }.work_units();
        assert!(big > small * 100.0);
    }

    #[test]
    fn inversion_roundtrips_within_quantization() {
        for k in WorkloadKind::ALL_SUITES {
            if k == WorkloadKind::CnnServing {
                assert!(WorkloadInput::for_work_units(k, 1e8).is_none());
                continue;
            }
            // Targets sit above every kind's input-granularity floor
            // (lr_training's coarsest step is one epoch = 640 K units).
            for target in [1e7, 1e8, 1e9] {
                let input = WorkloadInput::for_work_units(k, target).unwrap();
                let got = input.work_units();
                assert!((got / target - 1.0).abs() < 0.25, "{k}: target {target} got {got}");
            }
        }
    }

    #[test]
    fn inversion_handles_tiny_targets() {
        for k in WorkloadKind::ALL_SUITES {
            if let Some(input) = WorkloadInput::for_work_units(k, 0.5) {
                assert!(input.work_units() >= 1.0);
            }
        }
    }

    #[test]
    fn memory_in_plausible_range() {
        for k in WorkloadKind::ALL_SUITES {
            let m = WorkloadInput::vanilla(k).memory_mb();
            assert!((16.0..=2_048.0).contains(&m), "{k}: {m} MiB");
        }
    }

    #[test]
    fn memory_cnn_heavier_than_pyaes() {
        let cnn = WorkloadInput::vanilla(WorkloadKind::CnnServing).memory_mb();
        let aes = WorkloadInput::vanilla(WorkloadKind::Pyaes).memory_mb();
        assert!(cnn > aes * 3.0, "cnn {cnn} vs aes {aes}");
    }
}

//! The Workload pool: augmentation of ten benchmarks into ~2300 Workloads.
//!
//! Paper §3.1.1: "We consider each `(function, input)` combination as a
//! distinct Workload, and in this way we generate a pool of Workloads with
//! execution runtimes that span over the whole distribution found in a
//! trace." The grid below reproduces both the pool cardinality (2291) and
//! its deliberate asymmetries: `pyaes` dominates the short-runtime end,
//! `cnn_serving` is barely augmented (4 variants), `lr_training` only
//! exists above three seconds.

use crate::cost_model::CostModel;
use crate::input::WorkloadInput;
use crate::registry::WorkloadKind;
use faasrail_stats::ecdf::Ecdf;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};

/// Identifier of a Workload within a pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WorkloadId(pub u32);

/// One Workload: a benchmark plus a concrete input, with its registered
/// (modelled or measured) mean warm execution time and memory footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Workload {
    pub id: WorkloadId,
    pub input: WorkloadInput,
    /// Mean warm execution time, milliseconds.
    pub mean_ms: f64,
    /// Estimated resident memory, MiB.
    pub memory_mb: f64,
}

impl Workload {
    /// The benchmark this Workload was derived from.
    pub fn kind(&self) -> WorkloadKind {
        self.input.kind()
    }
}

/// Augmentation grid entry: how many variants of a kind, over which runtime
/// range (modelled milliseconds).
#[derive(Clone, Copy)]
struct GridSpec {
    kind: WorkloadKind,
    count: usize,
    lo_ms: f64,
    hi_ms: f64,
}

/// The paper-scale grid: 2287 inverted variants + 4 fixed cnn_serving
/// configurations = 2291 Workloads (Fig. 6's pool cardinality).
const GRID: [GridSpec; 9] = [
    GridSpec { kind: WorkloadKind::Pyaes, count: 400, lo_ms: 0.05, hi_ms: 500.0 },
    GridSpec { kind: WorkloadKind::LrServing, count: 200, lo_ms: 2.0, hi_ms: 800.0 },
    GridSpec { kind: WorkloadKind::JsonSerdes, count: 250, lo_ms: 10.0, hi_ms: 3_000.0 },
    GridSpec { kind: WorkloadKind::ImageProcessing, count: 300, lo_ms: 20.0, hi_ms: 8_000.0 },
    GridSpec { kind: WorkloadKind::Chameleon, count: 300, lo_ms: 50.0, hi_ms: 20_000.0 },
    GridSpec { kind: WorkloadKind::RnnServing, count: 250, lo_ms: 100.0, hi_ms: 10_000.0 },
    GridSpec { kind: WorkloadKind::Matmul, count: 200, lo_ms: 2.0, hi_ms: 60_000.0 },
    GridSpec { kind: WorkloadKind::VideoProcessing, count: 300, lo_ms: 500.0, hi_ms: 120_000.0 },
    GridSpec { kind: WorkloadKind::LrTraining, count: 87, lo_ms: 3_000.0, hi_ms: 120_000.0 },
];

/// Auxiliary-suite grid (paper §3.3's "integrate more benchmarking suites"):
/// six further kernels, 840 variants, extending the pool to ~3100 Workloads.
/// Ranges are bounded so even the largest variant stays within a FaaS-like
/// footprint (the text/sort kernels materialize their input).
const AUX_GRID: [GridSpec; 6] = [
    GridSpec { kind: WorkloadKind::Compression, count: 150, lo_ms: 2.0, hi_ms: 1_000.0 },
    GridSpec { kind: WorkloadKind::GraphBfs, count: 150, lo_ms: 5.0, hi_ms: 5_000.0 },
    GridSpec { kind: WorkloadKind::PageRank, count: 120, lo_ms: 50.0, hi_ms: 10_000.0 },
    GridSpec { kind: WorkloadKind::SortData, count: 150, lo_ms: 2.0, hi_ms: 5_000.0 },
    GridSpec { kind: WorkloadKind::TextSearch, count: 150, lo_ms: 1.0, hi_ms: 400.0 },
    GridSpec { kind: WorkloadKind::WordCount, count: 120, lo_ms: 5.0, hi_ms: 1_000.0 },
];

/// Fixed cnn_serving variants (image sizes at 64 filters) — deliberately
/// few, reproducing the paper's observation that cnn_serving lacks
/// augmentation and is therefore rarely mapped.
const CNN_VARIANTS: [WorkloadInput; 4] = [
    WorkloadInput::CnnServing { image_size: 128, filters: 64 },
    WorkloadInput::CnnServing { image_size: 192, filters: 64 },
    WorkloadInput::CnnServing { image_size: 256, filters: 64 },
    WorkloadInput::CnnServing { image_size: 320, filters: 64 },
];

/// Reference duration mixture used to place grid points: the mid-popularity
/// Azure mixture (log-normal components for short / medium / long
/// functions). CDF evaluated exactly; quantiles by bisection.
pub mod reference {
    use faasrail_stats::special::normal_cdf;

    const COMPONENTS: [(f64, f64, f64); 3] = [
        // (weight, median_ms, sigma)
        (0.55, 300.0, 1.0817),
        (0.29, 1_500.0, 0.9395),
        (0.16, 15_000.0, 1.0817),
    ];

    /// CDF of the reference Azure-like duration mixture at `ms`.
    pub fn mixture_cdf(ms: f64) -> f64 {
        assert!(ms > 0.0);
        COMPONENTS
            .iter()
            .map(|&(w, median, sigma)| w * normal_cdf((ms.ln() - median.ln()) / sigma))
            .sum()
    }

    /// Quantile of the mixture restricted to `[lo, hi]`, by bisection.
    pub fn restricted_quantile(u: f64, lo: f64, hi: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u) && lo > 0.0 && lo < hi);
        let (c_lo, c_hi) = (mixture_cdf(lo), mixture_cdf(hi));
        let target = c_lo + u * (c_hi - c_lo);
        let (mut a, mut b) = (lo, hi);
        for _ in 0..80 {
            let mid = (a * b).sqrt(); // geometric bisection over log-space
            if mixture_cdf(mid) < target {
                a = mid;
            } else {
                b = mid;
            }
        }
        (a * b).sqrt()
    }
}

/// The augmented Workload pool.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadPool {
    workloads: Vec<Workload>,
}

impl WorkloadPool {
    /// Build a pool from explicit workloads (ids are reassigned densely).
    pub fn from_workloads(mut workloads: Vec<Workload>) -> Self {
        assert!(!workloads.is_empty(), "pool must not be empty");
        for (i, w) in workloads.iter_mut().enumerate() {
            w.id = WorkloadId(i as u32);
            assert!(w.mean_ms > 0.0 && w.mean_ms.is_finite(), "bad mean_ms {}", w.mean_ms);
        }
        WorkloadPool { workloads }
    }

    /// Build the paper-scale modelled pool (2291 Workloads).
    ///
    /// Half of each kind's variants are placed log-uniformly over the kind's
    /// feasible runtime range (coverage), half at quantiles of the reference
    /// Azure mixture restricted to that range (shape), so the pool both
    /// spans the full trace distribution and concentrates where trace mass
    /// concentrates.
    ///
    /// ```
    /// use faasrail_workloads::{CostModel, WorkloadPool};
    /// let pool = WorkloadPool::build_modelled(&CostModel::default_calibration());
    /// assert!(pool.len() > 2_000);                       // ~2291 Workloads
    /// let (lo, hi) = pool.duration_ecdf().support();
    /// assert!(lo < 1.0 && hi > 60_000.0);                // 1 ms .. minutes
    /// ```
    pub fn build_modelled(model: &CostModel) -> Self {
        Self::build_from_grids(model, &GRID)
    }

    /// Build the *extended* pool: the paper-scale FunctionBench grid plus
    /// the auxiliary suite (~3100 Workloads) — the §3.3 enrichment plan.
    pub fn build_modelled_extended(model: &CostModel) -> Self {
        let mut grids: Vec<GridSpec> = Vec::with_capacity(GRID.len() + AUX_GRID.len());
        grids.extend(GRID);
        grids.extend(AUX_GRID);
        Self::build_from_grids(model, &grids)
    }

    fn build_from_grids(model: &CostModel, grids: &[GridSpec]) -> Self {
        let mut seen: BTreeSet<WorkloadInput> = BTreeSet::new();
        let mut workloads: Vec<Workload> = Vec::with_capacity(2_291);

        let mut push = |input: WorkloadInput, seen: &mut BTreeSet<WorkloadInput>| {
            if seen.insert(input) {
                workloads.push(Workload {
                    id: WorkloadId(0), // reassigned below
                    input,
                    mean_ms: model.predict_ms(&input),
                    memory_mb: input.memory_mb(),
                });
            }
        };

        for input in CNN_VARIANTS {
            push(input, &mut seen);
        }
        for spec in grids {
            let half = spec.count / 2;
            // Log-uniform coverage points.
            for i in 0..half {
                let u = (i as f64 + 0.5) / half as f64;
                let target = spec.lo_ms * (spec.hi_ms / spec.lo_ms).powf(u);
                let units = model.units_for_ms(spec.kind, target);
                if let Some(input) = WorkloadInput::for_work_units(spec.kind, units) {
                    push(input, &mut seen);
                }
            }
            // Azure-mixture quantile points.
            for i in 0..(spec.count - half) {
                let u = (i as f64 + 0.5) / (spec.count - half) as f64;
                let target = reference::restricted_quantile(u, spec.lo_ms, spec.hi_ms);
                let units = model.units_for_ms(spec.kind, target);
                if let Some(input) = WorkloadInput::for_work_units(spec.kind, units) {
                    push(input, &mut seen);
                }
            }
        }
        Self::from_workloads(workloads)
    }

    /// The ten vanilla FunctionBench configurations (Fig. 6's baseline).
    pub fn vanilla(model: &CostModel) -> Self {
        Self::from_workloads(
            WorkloadKind::ALL
                .iter()
                .map(|&k| {
                    let input = WorkloadInput::vanilla(k);
                    Workload {
                        id: WorkloadId(0),
                        input,
                        mean_ms: model.predict_ms(&input),
                        memory_mb: input.memory_mb(),
                    }
                })
                .collect(),
        )
    }

    /// All workloads, ordered by id.
    pub fn workloads(&self) -> &[Workload] {
        &self.workloads
    }

    /// Look up by id.
    pub fn get(&self, id: WorkloadId) -> Option<&Workload> {
        self.workloads.get(id.0 as usize)
    }

    /// Number of workloads.
    pub fn len(&self) -> usize {
        self.workloads.len()
    }

    /// Always false (construction rejects empty pools).
    pub fn is_empty(&self) -> bool {
        self.workloads.is_empty()
    }

    /// ECDF of workload mean runtimes (paper Fig. 6's pool curve).
    pub fn duration_ecdf(&self) -> Ecdf {
        Ecdf::new(&self.workloads.iter().map(|w| w.mean_ms).collect::<Vec<_>>())
    }

    /// ECDF of workload memory footprints (paper Fig. 7's pool curve).
    pub fn memory_ecdf(&self) -> Ecdf {
        Ecdf::new(&self.workloads.iter().map(|w| w.memory_mb).collect::<Vec<_>>())
    }

    /// How many Workloads each benchmark contributed.
    pub fn counts_by_kind(&self) -> BTreeMap<WorkloadKind, usize> {
        let mut out = BTreeMap::new();
        for w in &self.workloads {
            *out.entry(w.kind()).or_insert(0) += 1;
        }
        out
    }

    /// Serialize to JSON (the pool registration artifact).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("pool serializes")
    }

    /// Deserialize from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn modelled() -> WorkloadPool {
        WorkloadPool::build_modelled(&CostModel::default_calibration())
    }

    #[test]
    fn pool_cardinality_near_paper() {
        // Target is 2291; integer-input dedup may collapse a few variants.
        let p = modelled();
        assert!((2_100..=2_291).contains(&p.len()), "pool cardinality = {}", p.len());
    }

    #[test]
    fn all_kinds_present() {
        let counts = modelled().counts_by_kind();
        for k in WorkloadKind::ALL {
            assert!(counts.contains_key(&k), "{k} missing from pool");
        }
        assert_eq!(counts[&WorkloadKind::CnnServing], 4);
    }

    #[test]
    fn pyaes_dominates_short_runtimes() {
        // Paper §4.4: under the current augmentation pyaes dominates the
        // pool, especially among short-running workloads.
        let p = modelled();
        let short: Vec<&Workload> = p.workloads().iter().filter(|w| w.mean_ms < 10.0).collect();
        assert!(!short.is_empty());
        let aes = short.iter().filter(|w| w.kind() == WorkloadKind::Pyaes).count();
        assert!(
            aes as f64 / short.len() as f64 > 0.5,
            "pyaes share of sub-10ms workloads = {}/{}",
            aes,
            short.len()
        );
    }

    #[test]
    fn lr_training_only_above_three_seconds() {
        let p = modelled();
        for w in p.workloads() {
            if w.kind() == WorkloadKind::LrTraining {
                assert!(w.mean_ms >= 2_900.0, "lr_training at {} ms", w.mean_ms);
            }
        }
    }

    #[test]
    fn pool_spans_trace_range() {
        let p = modelled();
        let e = p.duration_ecdf();
        let (lo, hi) = e.support();
        assert!(lo < 1.0, "pool min = {lo} ms");
        assert!(hi > 60_000.0, "pool max = {hi} ms");
    }

    #[test]
    fn pool_smoother_than_vanilla() {
        // The augmented pool must have far more distinct runtimes than the
        // 10-point vanilla suite (Fig. 6's smoothness argument).
        let model = CostModel::default_calibration();
        let pool = WorkloadPool::build_modelled(&model);
        let vanilla = WorkloadPool::vanilla(&model);
        assert_eq!(vanilla.len(), 10);
        assert!(pool.len() > 100 * vanilla.len());
    }

    #[test]
    fn ids_dense_and_ordered() {
        let p = modelled();
        for (i, w) in p.workloads().iter().enumerate() {
            assert_eq!(w.id, WorkloadId(i as u32));
            assert_eq!(p.get(w.id).unwrap().id, w.id);
        }
    }

    #[test]
    fn json_roundtrip() {
        let model = CostModel::default_calibration();
        let p = WorkloadPool::vanilla(&model);
        let back = WorkloadPool::from_json(&p.to_json()).unwrap();
        // Compare structurally with a float tolerance: JSON decimal printing
        // may perturb the last ulp of mean_ms.
        assert_eq!(p.len(), back.len());
        for (a, b) in p.workloads().iter().zip(back.workloads()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.input, b.input);
            assert!((a.mean_ms - b.mean_ms).abs() < 1e-9 * (1.0 + a.mean_ms));
            assert!((a.memory_mb - b.memory_mb).abs() < 1e-9 * (1.0 + a.memory_mb));
        }
        // A second round-trip is exactly stable.
        let again = WorkloadPool::from_json(&back.to_json()).unwrap();
        assert_eq!(back, again);
    }

    #[test]
    fn memory_within_bounds() {
        let p = modelled();
        for w in p.workloads() {
            assert!((16.0..=2_048.0).contains(&w.memory_mb), "{:?}: {}", w.input, w.memory_mb);
        }
    }

    #[test]
    fn extended_pool_adds_auxiliary_suite() {
        let model = CostModel::default_calibration();
        let base = WorkloadPool::build_modelled(&model);
        let ext = WorkloadPool::build_modelled_extended(&model);
        assert!(ext.len() > base.len() + 600, "{} vs {}", ext.len(), base.len());
        let counts = ext.counts_by_kind();
        for k in WorkloadKind::AUXILIARY {
            assert!(counts.get(&k).copied().unwrap_or(0) > 50, "{k} under-represented");
        }
        // The base FunctionBench composition is unchanged.
        let base_counts = base.counts_by_kind();
        for k in WorkloadKind::ALL {
            assert_eq!(base_counts.get(&k), counts.get(&k), "{k} count changed");
        }
        // Extended pool still spans the trace range and stays bounded.
        for w in ext.workloads() {
            assert!((16.0..=2_048.0).contains(&w.memory_mb));
            assert!(w.mean_ms > 0.0);
        }
    }

    #[test]
    fn reference_mixture_sane() {
        use super::reference::*;
        assert!(mixture_cdf(1.0) < 0.01);
        assert!(mixture_cdf(1_000.0) > 0.4 && mixture_cdf(1_000.0) < 0.75);
        assert!(mixture_cdf(300_000.0) > 0.99);
        // Quantiles stay inside the restriction and are monotone.
        let q1 = restricted_quantile(0.2, 10.0, 1_000.0);
        let q2 = restricted_quantile(0.8, 10.0, 1_000.0);
        assert!(q1 >= 10.0 && q2 <= 1_000.0 && q1 < q2);
    }
}

//! FunctionBench-equivalent workload substrate for FaaSRail.
//!
//! The paper builds its Workload pool from ten open-source FunctionBench
//! benchmarks (Table 1), augmented over many inputs into ~2300 distinct
//! Workloads whose warm execution times span the whole trace distribution
//! (§3.1.1). This crate reimplements that substrate natively:
//!
//! * [`registry`] — the ten benchmark kinds and their metadata;
//! * [`kernels`] — executable native kernels doing the same kind of work
//!   (HTML rendering, CNN inference, AES, matmul, …), deterministic and
//!   bounded-memory;
//! * [`input`] — `(function, input)` specifications and their work units;
//! * [`cost_model`] — analytic warm-execution-time model (calibratable);
//! * [`calibrate`] — measuring real warm times and refitting the model;
//! * [`pool`] — the augmented Workload pool (2291 entries at paper scale).

pub mod calibrate;
pub mod cost_model;
pub mod input;
pub mod kernels;
pub mod pool;
pub mod registry;

pub use cost_model::{CostModel, KindCost};
pub use input::WorkloadInput;
pub use pool::{Workload, WorkloadId, WorkloadPool};
pub use registry::{ResourceProfile, Suite, WorkloadKind};

//! The ten FunctionBench-derived workload kinds (paper Table 1).

use serde::{Deserialize, Serialize};
use std::fmt;

/// Which benchmarking suite a workload kind belongs to.
///
/// The paper builds its pool from FunctionBench alone and plans to
/// "augment and integrate more open-source benchmarking suites" (§3.3);
/// the auxiliary suite implements that plan with six further kernels
/// inspired by the vSwarm / SeBS catalogues.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Suite {
    /// The ten benchmarks of paper Table 1.
    FunctionBench,
    /// The six vSwarm/SeBS-inspired extension benchmarks.
    Auxiliary,
}

/// Dominant resource profile of a workload — the qualitative behaviour the
/// paper argues real workloads must contribute (CPU, memory, string/IO, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ResourceProfile {
    CpuBound,
    MemoryBound,
    StringProcessing,
    Serialization,
    MlInference,
    MlTraining,
}

/// The ten initial benchmarks adopted from FunctionBench (paper Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum WorkloadKind {
    /// HTML table rendering.
    Chameleon,
    /// JPEG-classification CNN forward pass.
    CnnServing,
    /// Image manipulation (grayscale, blur, threshold).
    ImageProcessing,
    /// JSON serialization & deserialization.
    JsonSerdes,
    /// Dense matrix multiplication.
    Matmul,
    /// Logistic-regression serving.
    LrServing,
    /// Logistic-regression training.
    LrTraining,
    /// AES-128-CTR encryption (pure software, pyaes-style).
    Pyaes,
    /// Word-generation RNN (GRU cell) forward pass.
    RnnServing,
    /// Gray-scale effect over a stream of video frames.
    VideoProcessing,
    // ---- auxiliary suite (vSwarm/SeBS-inspired; paper §3.3 extension) ----
    /// LZSS-style sliding-window compression.
    Compression,
    /// Breadth-first search over a synthetic graph.
    GraphBfs,
    /// PageRank power iteration.
    PageRank,
    /// Large-array sorting.
    SortData,
    /// Multi-pattern substring search over synthetic logs.
    TextSearch,
    /// Word-frequency counting (map-reduce classic).
    WordCount,
}

impl WorkloadKind {
    /// The ten FunctionBench kinds, in Table 1 order.
    pub const ALL: [WorkloadKind; 10] = [
        WorkloadKind::Chameleon,
        WorkloadKind::CnnServing,
        WorkloadKind::ImageProcessing,
        WorkloadKind::JsonSerdes,
        WorkloadKind::Matmul,
        WorkloadKind::LrServing,
        WorkloadKind::LrTraining,
        WorkloadKind::Pyaes,
        WorkloadKind::RnnServing,
        WorkloadKind::VideoProcessing,
    ];

    /// The auxiliary-suite kinds.
    pub const AUXILIARY: [WorkloadKind; 6] = [
        WorkloadKind::Compression,
        WorkloadKind::GraphBfs,
        WorkloadKind::PageRank,
        WorkloadKind::SortData,
        WorkloadKind::TextSearch,
        WorkloadKind::WordCount,
    ];

    /// Every kind across all suites.
    pub const ALL_SUITES: [WorkloadKind; 16] = [
        WorkloadKind::Chameleon,
        WorkloadKind::CnnServing,
        WorkloadKind::ImageProcessing,
        WorkloadKind::JsonSerdes,
        WorkloadKind::Matmul,
        WorkloadKind::LrServing,
        WorkloadKind::LrTraining,
        WorkloadKind::Pyaes,
        WorkloadKind::RnnServing,
        WorkloadKind::VideoProcessing,
        WorkloadKind::Compression,
        WorkloadKind::GraphBfs,
        WorkloadKind::PageRank,
        WorkloadKind::SortData,
        WorkloadKind::TextSearch,
        WorkloadKind::WordCount,
    ];

    /// Which suite this kind belongs to.
    pub fn suite(self) -> Suite {
        if Self::ALL.contains(&self) {
            Suite::FunctionBench
        } else {
            Suite::Auxiliary
        }
    }

    /// Benchmark name, as it appears in the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            WorkloadKind::Chameleon => "chameleon",
            WorkloadKind::CnnServing => "cnn_serving",
            WorkloadKind::ImageProcessing => "image_processing",
            WorkloadKind::JsonSerdes => "json_serdes",
            WorkloadKind::Matmul => "matmul",
            WorkloadKind::LrServing => "lr_serving",
            WorkloadKind::LrTraining => "lr_training",
            WorkloadKind::Pyaes => "pyaes",
            WorkloadKind::RnnServing => "rnn_serving",
            WorkloadKind::VideoProcessing => "video_processing",
            WorkloadKind::Compression => "compression",
            WorkloadKind::GraphBfs => "graph_bfs",
            WorkloadKind::PageRank => "pagerank",
            WorkloadKind::SortData => "sort_data",
            WorkloadKind::TextSearch => "text_search",
            WorkloadKind::WordCount => "word_count",
        }
    }

    /// One-line description (paper Table 1).
    pub fn description(self) -> &'static str {
        match self {
            WorkloadKind::Chameleon => "HTML table rendering",
            WorkloadKind::CnnServing => "JPEG classification CNN",
            WorkloadKind::ImageProcessing => "JPEG image manipulation",
            WorkloadKind::JsonSerdes => "JSON serialization & deserialization",
            WorkloadKind::Matmul => "Matrix multiplication",
            WorkloadKind::LrServing => "Logistic regression serving",
            WorkloadKind::LrTraining => "Logistic regression training",
            WorkloadKind::Pyaes => "AES encryption",
            WorkloadKind::RnnServing => "Word generation RNN",
            WorkloadKind::VideoProcessing => "Gray-scale effect application",
            WorkloadKind::Compression => "Sliding-window compression",
            WorkloadKind::GraphBfs => "Graph breadth-first search",
            WorkloadKind::PageRank => "PageRank power iteration",
            WorkloadKind::SortData => "Large-array sorting",
            WorkloadKind::TextSearch => "Multi-pattern log search",
            WorkloadKind::WordCount => "Word-frequency counting",
        }
    }

    /// Dominant resource profile.
    pub fn profile(self) -> ResourceProfile {
        match self {
            WorkloadKind::Chameleon => ResourceProfile::StringProcessing,
            WorkloadKind::CnnServing => ResourceProfile::MlInference,
            WorkloadKind::ImageProcessing => ResourceProfile::MemoryBound,
            WorkloadKind::JsonSerdes => ResourceProfile::Serialization,
            WorkloadKind::Matmul => ResourceProfile::CpuBound,
            WorkloadKind::LrServing => ResourceProfile::MlInference,
            WorkloadKind::LrTraining => ResourceProfile::MlTraining,
            WorkloadKind::Pyaes => ResourceProfile::CpuBound,
            WorkloadKind::RnnServing => ResourceProfile::MlInference,
            WorkloadKind::VideoProcessing => ResourceProfile::MemoryBound,
            WorkloadKind::Compression => ResourceProfile::CpuBound,
            WorkloadKind::GraphBfs => ResourceProfile::MemoryBound,
            WorkloadKind::PageRank => ResourceProfile::MemoryBound,
            WorkloadKind::SortData => ResourceProfile::MemoryBound,
            WorkloadKind::TextSearch => ResourceProfile::CpuBound,
            WorkloadKind::WordCount => ResourceProfile::StringProcessing,
        }
    }

    /// Parse a benchmark name (any suite).
    pub fn from_name(name: &str) -> Option<Self> {
        Self::ALL_SUITES.iter().copied().find(|k| k.name() == name)
    }
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_has_ten_unique_names() {
        assert_eq!(WorkloadKind::ALL.len(), 10);
        let mut names: Vec<&str> = WorkloadKind::ALL.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 10);
    }

    #[test]
    fn suites_partition_all_kinds() {
        assert_eq!(WorkloadKind::ALL_SUITES.len(), 16);
        let mut names: Vec<&str> = WorkloadKind::ALL_SUITES.iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 16);
        for k in WorkloadKind::ALL {
            assert_eq!(k.suite(), Suite::FunctionBench);
        }
        for k in WorkloadKind::AUXILIARY {
            assert_eq!(k.suite(), Suite::Auxiliary);
        }
    }

    #[test]
    fn name_roundtrip() {
        for k in WorkloadKind::ALL_SUITES {
            assert_eq!(WorkloadKind::from_name(k.name()), Some(k));
        }
        assert_eq!(WorkloadKind::from_name("nonesuch"), None);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(WorkloadKind::Pyaes.to_string(), "pyaes");
    }
}

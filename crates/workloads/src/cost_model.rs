//! Analytic execution-time model for the workload kernels.
//!
//! The shrink ray reasons about a Workload through its *average warm
//! execution time* (paper §3.1.1: each `(function, input)` pair is deployed
//! and timed). This model predicts that time from the kernel's work units:
//! `time ≈ overhead + ns_per_unit × work_units`. The default coefficients
//! are representative of a modern server core; [`crate::calibrate`] refits
//! them from real measurements on the target machine, mirroring the paper's
//! per-testbed registration step.

use crate::input::WorkloadInput;
use crate::registry::WorkloadKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Per-kind linear cost coefficients.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct KindCost {
    /// Fixed per-invocation overhead, microseconds (setup, data synthesis).
    pub overhead_us: f64,
    /// Marginal cost per work unit, nanoseconds.
    pub ns_per_unit: f64,
}

/// A full cost model: coefficients for every workload kind.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    costs: BTreeMap<WorkloadKind, KindCost>,
}

impl Default for CostModel {
    fn default() -> Self {
        Self::default_calibration()
    }
}

impl CostModel {
    /// Default coefficients (order-of-magnitude for one modern core).
    pub fn default_calibration() -> Self {
        use WorkloadKind::*;
        let mut costs = BTreeMap::new();
        let entries: [(WorkloadKind, f64); 16] = [
            (Chameleon, 120.0),     // per table cell (string formatting)
            (CnnServing, 1.2),      // per MAC
            (ImageProcessing, 1.0), // per pixel-op
            (JsonSerdes, 1_500.0),  // per record round-trip
            (Matmul, 1.0),          // per FMA
            (LrServing, 1.0),       // per feature multiply
            (LrTraining, 2.0),      // per feature multiply (fwd+bwd)
            (Pyaes, 12.0),          // per byte (software AES)
            (RnnServing, 1.2),      // per MAC
            (VideoProcessing, 1.0), // per pixel-op
            (Compression, 25.0),    // per input byte (match finding)
            (GraphBfs, 12.0),       // per edge (hash + random access)
            (PageRank, 10.0),       // per edge-iteration
            (SortData, 8.0),        // per key·log(key) comparison unit
            (TextSearch, 1.5),      // per byte·pattern scanned
            (WordCount, 15.0),      // per byte (split + hash)
        ];
        for (kind, ns_per_unit) in entries {
            costs.insert(kind, KindCost { overhead_us: 20.0, ns_per_unit });
        }
        CostModel { costs }
    }

    /// Coefficients for one kind.
    pub fn cost(&self, kind: WorkloadKind) -> KindCost {
        *self.costs.get(&kind).expect("every kind has coefficients")
    }

    /// Replace the coefficients for one kind (after calibration).
    pub fn set(&mut self, kind: WorkloadKind, cost: KindCost) {
        assert!(cost.overhead_us >= 0.0 && cost.ns_per_unit > 0.0, "non-physical coefficients");
        self.costs.insert(kind, cost);
    }

    /// Predicted warm execution time for an input, in milliseconds.
    ///
    /// ```
    /// use faasrail_workloads::{CostModel, WorkloadInput};
    /// let model = CostModel::default_calibration();
    /// let small = model.predict_ms(&WorkloadInput::Matmul { n: 64 });
    /// let large = model.predict_ms(&WorkloadInput::Matmul { n: 128 });
    /// assert!(large > small * 6.0); // cubic in n
    /// ```
    pub fn predict_ms(&self, input: &WorkloadInput) -> f64 {
        let c = self.cost(input.kind());
        (c.overhead_us + c.ns_per_unit * input.work_units() / 1_000.0) / 1_000.0
    }

    /// Work units needed for a target time — the inverse of
    /// [`Self::predict_ms`], used by the augmentation grid to pick inputs.
    /// Clamped below at one unit.
    pub fn units_for_ms(&self, kind: WorkloadKind, target_ms: f64) -> f64 {
        let c = self.cost(kind);
        (((target_ms * 1_000.0 - c.overhead_us) * 1_000.0) / c.ns_per_unit).max(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_kinds() {
        let m = CostModel::default_calibration();
        for k in WorkloadKind::ALL_SUITES {
            let c = m.cost(k);
            assert!(c.ns_per_unit > 0.0);
        }
    }

    #[test]
    fn predict_positive_and_monotone() {
        let m = CostModel::default_calibration();
        let t1 = m.predict_ms(&WorkloadInput::Matmul { n: 64 });
        let t2 = m.predict_ms(&WorkloadInput::Matmul { n: 128 });
        assert!(t1 > 0.0);
        assert!(t2 > t1 * 6.0, "cubic scaling: {t1} vs {t2}");
    }

    #[test]
    fn units_inversion_roundtrip() {
        let m = CostModel::default_calibration();
        for k in WorkloadKind::ALL_SUITES {
            for target in [0.5, 10.0, 1_000.0] {
                let units = m.units_for_ms(k, target);
                if units <= 1.0 {
                    continue; // target below overhead
                }
                let c = m.cost(k);
                let ms = (c.overhead_us + c.ns_per_unit * units / 1_000.0) / 1_000.0;
                assert!((ms / target - 1.0).abs() < 1e-9, "{k}: {ms} vs {target}");
            }
        }
    }

    #[test]
    fn set_replaces() {
        let mut m = CostModel::default_calibration();
        m.set(WorkloadKind::Pyaes, KindCost { overhead_us: 5.0, ns_per_unit: 100.0 });
        assert_eq!(m.cost(WorkloadKind::Pyaes).ns_per_unit, 100.0);
    }

    #[test]
    #[should_panic]
    fn set_rejects_zero_slope() {
        let mut m = CostModel::default_calibration();
        m.set(WorkloadKind::Pyaes, KindCost { overhead_us: 5.0, ns_per_unit: 0.0 });
    }

    #[test]
    fn serde_roundtrip() {
        let m = CostModel::default_calibration();
        let s = serde_json::to_string(&m).unwrap();
        let back: CostModel = serde_json::from_str(&s).unwrap();
        assert_eq!(m, back);
    }
}

//! Minimal, dependency-free HTTP/1.1 framing — exactly the subset the
//! gateway needs: request/status lines, headers, `Content-Length` body
//! framing, and keep-alive negotiation. Both sides are generic over
//! [`BufRead`]/[`Write`] so the framing is unit-testable against in-memory
//! buffers and reusable by the server and the client.

use std::io::{self, BufRead, Read, Write};

/// Cap on the total bytes of a request/status line plus headers.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;
/// Cap on a framed body.
pub const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// The trace-context propagation header: 1–16 lowercase hex digits
/// carrying the client-assigned per-invocation trace id (see
/// `faasrail_telemetry::format_trace_id`). Header name comparison is
/// case-insensitive like any other header.
pub const TRACE_HEADER: &str = "X-FaaSRail-Trace";

/// A parsed inbound HTTP request (server side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    pub method: String,
    pub path: String,
    /// Whether the connection should stay open after the response.
    pub keep_alive: bool,
    /// Trace id from an `X-FaaSRail-Trace` header; `None` when absent or
    /// unparseable (an opaque header must never fail a request).
    pub trace_id: Option<u64>,
    pub body: Vec<u8>,
}

/// A parsed inbound HTTP response (client side).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    pub status: u16,
    pub keep_alive: bool,
    /// Parsed `Retry-After` header (whole seconds), when the server sent
    /// one — a shedding gateway's hint to back off.
    pub retry_after: Option<u64>,
    /// The `Content-Type` header verbatim, when present — lets clients
    /// (and tests) distinguish `application/json` bodies from the
    /// Prometheus text format's versioned media type.
    pub content_type: Option<String>,
    pub body: Vec<u8>,
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

/// Read one CRLF-terminated line, enforcing the shared head-size budget.
/// Returns `None` on clean EOF before any byte.
fn read_line<R: BufRead>(r: &mut R, budget: &mut usize) -> io::Result<Option<String>> {
    let mut buf = Vec::new();
    let mut take = Read::take(&mut *r, *budget as u64 + 1);
    let n = take.read_until(b'\n', &mut buf)?;
    if n == 0 {
        return Ok(None);
    }
    if n > *budget {
        return Err(invalid("header section too large"));
    }
    *budget -= n;
    if buf.last() != Some(&b'\n') {
        return Err(invalid("line not newline-terminated"));
    }
    buf.pop();
    if buf.last() == Some(&b'\r') {
        buf.pop();
    }
    String::from_utf8(buf).map(Some).map_err(|_| invalid("non-UTF-8 header line"))
}

/// Parsed header-section summary shared by request and response paths.
struct HeadInfo {
    content_length: usize,
    keep_alive: bool,
    retry_after: Option<u64>,
    content_type: Option<String>,
    trace_id: Option<u64>,
}

/// Shared header-section parse. `keep_alive` starts from the HTTP-version
/// default and is overridden by a `Connection` header; a `Retry-After`
/// header (delta-seconds form only) is surfaced for client-side backoff.
fn read_headers<R: BufRead>(
    r: &mut R,
    budget: &mut usize,
    version_keep_alive: bool,
) -> io::Result<HeadInfo> {
    let mut info = HeadInfo {
        content_length: 0,
        keep_alive: version_keep_alive,
        retry_after: None,
        content_type: None,
        trace_id: None,
    };
    loop {
        let line = read_line(r, budget)?.ok_or_else(|| invalid("EOF inside headers"))?;
        if line.is_empty() {
            return Ok(info);
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(invalid(format!("malformed header line: {line}")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                info.content_length = value
                    .parse::<usize>()
                    .map_err(|_| invalid(format!("bad content-length: {value}")))?;
                if info.content_length > MAX_BODY_BYTES {
                    return Err(invalid("body too large"));
                }
            }
            "connection" => {
                let v = value.to_ascii_lowercase();
                if v.contains("close") {
                    info.keep_alive = false;
                } else if v.contains("keep-alive") {
                    info.keep_alive = true;
                }
            }
            // HTTP-date form is ignored (the gateway only emits seconds).
            "retry-after" => info.retry_after = value.parse::<u64>().ok(),
            "content-type" => info.content_type = Some(value.to_string()),
            // Malformed ids parse to None rather than erroring: tracing is
            // observability, never a reason to refuse a request.
            "x-faasrail-trace" => info.trace_id = faasrail_telemetry::parse_trace_id(value),
            _ => {}
        }
    }
}

fn read_body<R: BufRead>(r: &mut R, len: usize) -> io::Result<Vec<u8>> {
    let mut body = vec![0u8; len];
    r.read_exact(&mut body)?;
    Ok(body)
}

/// Parse one request off the connection. `Ok(None)` means the peer closed
/// the connection cleanly between requests (normal keep-alive shutdown).
pub fn read_request<R: BufRead>(r: &mut R) -> io::Result<Option<Request>> {
    let mut budget = MAX_HEAD_BYTES;
    let Some(line) = read_line(r, &mut budget)? else {
        return Ok(None);
    };
    let mut parts = line.split_ascii_whitespace();
    let (Some(method), Some(path), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return Err(invalid(format!("malformed request line: {line}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version: {version}")));
    }
    let version_keep_alive = version != "HTTP/1.0";
    let info = read_headers(r, &mut budget, version_keep_alive)?;
    let body = read_body(r, info.content_length)?;
    Ok(Some(Request {
        method: method.to_string(),
        path: path.to_string(),
        keep_alive: info.keep_alive,
        trace_id: info.trace_id,
        body,
    }))
}

/// Parse one response off the connection (client side).
pub fn read_response<R: BufRead>(r: &mut R) -> io::Result<Response> {
    let mut budget = MAX_HEAD_BYTES;
    let line = read_line(r, &mut budget)?
        .ok_or_else(|| io::Error::new(io::ErrorKind::UnexpectedEof, "EOF before status line"))?;
    let mut parts = line.split_ascii_whitespace();
    let (Some(version), Some(code)) = (parts.next(), parts.next()) else {
        return Err(invalid(format!("malformed status line: {line}")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(invalid(format!("unsupported version: {version}")));
    }
    let status = code.parse::<u16>().map_err(|_| invalid(format!("bad status code: {code}")))?;
    let version_keep_alive = version != "HTTP/1.0";
    let info = read_headers(r, &mut budget, version_keep_alive)?;
    let body = read_body(r, info.content_length)?;
    Ok(Response {
        status,
        keep_alive: info.keep_alive,
        retry_after: info.retry_after,
        content_type: info.content_type,
        body,
    })
}

/// Canonical reason phrases for the statuses the gateway emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Status",
    }
}

/// Serialize a response with `Content-Length` framing.
pub fn write_response<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_response_with(w, status, content_type, &[], body, keep_alive)
}

/// [`write_response`], with extra headers (e.g. `Retry-After` on a `429`).
pub fn write_response_with<W: Write>(
    w: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

/// Serialize a request with `Content-Length` framing (client side).
pub fn write_request<W: Write>(
    w: &mut W,
    method: &str,
    path: &str,
    host: &str,
    content_type: &str,
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    write_request_with(w, method, path, host, content_type, &[], body, keep_alive)
}

/// [`write_request`], with extra headers (e.g. `X-FaaSRail-Trace`).
#[allow(clippy::too_many_arguments)]
pub fn write_request_with<W: Write>(
    w: &mut W,
    method: &str,
    path: &str,
    host: &str,
    content_type: &str,
    extra_headers: &[(&str, &str)],
    body: &[u8],
    keep_alive: bool,
) -> io::Result<()> {
    let mut head = format!(
        "{method} {path} HTTP/1.1\r\nHost: {host}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: {}\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    );
    for (name, value) in extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    head.push_str("\r\n");
    w.write_all(head.as_bytes())?;
    w.write_all(body)?;
    w.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn parse_req(bytes: &[u8]) -> io::Result<Option<Request>> {
        read_request(&mut Cursor::new(bytes.to_vec()))
    }

    #[test]
    fn parses_post_with_body() {
        let raw = b"POST /invoke HTTP/1.1\r\nHost: x\r\nContent-Length: 5\r\n\r\nhello";
        let req = parse_req(raw).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/invoke");
        assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn parses_get_without_body_and_connection_close() {
        let raw = b"GET /healthz HTTP/1.1\r\nConnection: close\r\n\r\n";
        let req = parse_req(raw).unwrap().unwrap();
        assert_eq!(req.method, "GET");
        assert_eq!(req.body, b"");
        assert!(!req.keep_alive);
    }

    #[test]
    fn http10_defaults_to_close_unless_keep_alive() {
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        assert!(!parse_req(raw).unwrap().unwrap().keep_alive);
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        assert!(parse_req(raw).unwrap().unwrap().keep_alive);
    }

    #[test]
    fn clean_eof_is_none_partial_is_error() {
        assert!(parse_req(b"").unwrap().is_none(), "EOF before any byte");
        assert!(parse_req(b"POST /invoke HTTP/1.1\r\nContent-").is_err(), "EOF mid-headers");
        assert!(
            parse_req(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").is_err(),
            "EOF mid-body"
        );
    }

    #[test]
    fn rejects_malformed_inputs() {
        assert!(parse_req(b"NOT-HTTP\r\n\r\n").is_err());
        assert!(parse_req(b"GET / SPDY/3\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/1.1\r\nbadheader\r\n\r\n").is_err());
        assert!(parse_req(b"GET / HTTP/1.1\r\nContent-Length: lots\r\n\r\n").is_err());
    }

    #[test]
    fn enforces_head_budget() {
        let mut raw = b"GET / HTTP/1.1\r\n".to_vec();
        raw.extend(vec![b'a'; MAX_HEAD_BYTES + 10]);
        raw.extend(b"\r\n\r\n");
        assert!(parse_req(&raw).is_err());
    }

    #[test]
    fn response_roundtrip() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "application/json", b"{\"ok\":true}", true).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.keep_alive);
        assert_eq!(resp.content_type.as_deref(), Some("application/json"));
        assert_eq!(resp.body, b"{\"ok\":true}");
    }

    #[test]
    fn content_type_roundtrips_verbatim_including_parameters() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "text/plain; version=0.0.4", b"x 1\n", true).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.content_type.as_deref(), Some("text/plain; version=0.0.4"));
        // Absent header parses to None.
        let raw = b"HTTP/1.1 200 OK\r\nContent-Length: 0\r\n\r\n";
        let resp = read_response(&mut Cursor::new(raw.to_vec())).unwrap();
        assert_eq!(resp.content_type, None);
    }

    #[test]
    fn request_roundtrip() {
        let mut buf = Vec::new();
        write_request(&mut buf, "POST", "/invoke", "127.0.0.1:80", "application/json", b"{}", true)
            .unwrap();
        let req = read_request(&mut Cursor::new(buf)).unwrap().unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/invoke");
        assert_eq!(req.body, b"{}");
        assert!(req.keep_alive);
    }

    #[test]
    fn close_response_signals_no_reuse() {
        let mut buf = Vec::new();
        write_response(&mut buf, 500, "text/plain", b"injected", false).unwrap();
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 500);
        assert!(!resp.keep_alive);
        assert_eq!(resp.body, b"injected");
    }

    #[test]
    fn two_pipelined_requests_parse_in_sequence() {
        let mut raw = Vec::new();
        write_request(&mut raw, "POST", "/invoke", "h", "application/json", b"one", true).unwrap();
        write_request(&mut raw, "POST", "/invoke", "h", "application/json", b"two", false).unwrap();
        let mut cur = Cursor::new(raw);
        let a = read_request(&mut cur).unwrap().unwrap();
        let b = read_request(&mut cur).unwrap().unwrap();
        assert_eq!(a.body, b"one");
        assert_eq!(b.body, b"two");
        assert!(read_request(&mut cur).unwrap().is_none(), "then clean EOF");
    }

    #[test]
    fn retry_after_header_roundtrips() {
        let mut buf = Vec::new();
        write_response_with(&mut buf, 429, "text/plain", &[("Retry-After", "2")], b"shed", false)
            .unwrap();
        let head = String::from_utf8_lossy(&buf).to_string();
        assert!(head.contains("429 Too Many Requests"), "{head}");
        assert!(head.contains("Retry-After: 2\r\n"), "{head}");
        let resp = read_response(&mut Cursor::new(buf)).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(2));
        assert!(!resp.keep_alive);
        assert_eq!(resp.body, b"shed");
    }

    #[test]
    fn retry_after_absent_or_http_date_is_none() {
        let mut buf = Vec::new();
        write_response(&mut buf, 200, "text/plain", b"ok", true).unwrap();
        assert_eq!(read_response(&mut Cursor::new(buf)).unwrap().retry_after, None);
        // The HTTP-date form is tolerated but not interpreted.
        let raw = b"HTTP/1.1 503 x\r\nRetry-After: Wed, 21 Oct 2015 07:28:00 GMT\r\n\
                    Content-Length: 0\r\n\r\n";
        assert_eq!(read_response(&mut Cursor::new(raw.to_vec())).unwrap().retry_after, None);
    }

    #[test]
    fn trace_header_roundtrips_and_is_case_insensitive() {
        let mut buf = Vec::new();
        write_request_with(
            &mut buf,
            "POST",
            "/invoke",
            "h",
            "application/json",
            &[(TRACE_HEADER, "00000000deadbeef")],
            b"{}",
            true,
        )
        .unwrap();
        let head = String::from_utf8_lossy(&buf).to_string();
        assert!(head.contains("X-FaaSRail-Trace: 00000000deadbeef\r\n"), "{head}");
        let req = parse_req(&buf).unwrap().unwrap();
        assert_eq!(req.trace_id, Some(0xdead_beef));

        let raw = b"POST /invoke HTTP/1.1\r\nx-faasrail-trace: ff\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_req(raw).unwrap().unwrap().trace_id, Some(0xff));
    }

    #[test]
    fn absent_or_malformed_trace_header_is_none_not_an_error() {
        let raw = b"POST /invoke HTTP/1.1\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_req(raw).unwrap().unwrap().trace_id, None);
        // Garbage ids never fail the request — tracing is best-effort.
        let raw =
            b"POST /invoke HTTP/1.1\r\nX-FaaSRail-Trace: not-hex\r\nContent-Length: 0\r\n\r\n";
        assert_eq!(parse_req(raw).unwrap().unwrap().trace_id, None);
    }

    #[test]
    fn eof_before_status_line_is_unexpected_eof() {
        let err = read_response(&mut Cursor::new(Vec::new())).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);
    }
}

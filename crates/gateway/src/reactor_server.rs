//! The reactor-mode gateway server: the same external contract as
//! [`crate::Gateway`], served by epoll event loops instead of a thread per
//! connection.
//!
//! ## Architecture
//!
//! * **N event-loop shards** ([`ReactorGateway::bind_sharded`]) each own an
//!   epoll instance, a listening socket (`SO_REUSEPORT` when `N > 1`, so
//!   the kernel spreads accepts), a connection slab, a deadline wheel, and
//!   a completion mailbox. A shard never blocks on a socket: connections
//!   are registered once, edge-triggered, and drained to `WouldBlock`.
//! * **One shared handler pool** of `cfg.workers` threads executes backend
//!   invocations, which may block arbitrarily long (that is the [`Backend`]
//!   contract). The pool's bounded queue *is* the admission queue: a
//!   `POST /invoke` arriving with `cfg.queue_capacity` jobs already queued
//!   is shed with `429` + `Retry-After` and the connection closed — the
//!   same signal the threaded server gives when its accept queue is full.
//! * **Per-connection deadlines** ride the shard's timer wheel: an idle
//!   keep-alive connection is reaped after `cfg.read_timeout`, and a peer
//!   that has started a request but not finished sending it (slow loris)
//!   is reaped after `cfg.head_read_timeout` — without stalling anyone
//!   else, because no shard thread ever blocks on one socket.
//!
//! ## Contract parity with the threaded server
//!
//! Endpoints (`/invoke`, `/healthz`, `/stats`, `/metrics`), status codes,
//! fault-injection semantics, [`GatewayStats`] counters, and
//! [`ServerSpan`] stage semantics all match; the shared `tests/` suites run
//! against both constructions. Differences are intentional and invisible
//! on the wire: shedding happens at request dispatch instead of at accept
//! (both look like `429` + `Retry-After` + close to a client), and the
//! pool queue wait maps onto the span's `queue_wait` stage where the
//! threaded server put its accept-queue wait. Shed requests emit no span,
//! so trace joins still count them as orphans.

use crate::http;
use crate::server::{Fault, GatewayConfig, GatewayStats, StageMetrics};
use faasrail_loadgen::{Backend, InvocationRequest};
use faasrail_reactor::http1;
use faasrail_reactor::{
    bind_listeners, Interest, Listener, Poller, ReadBuf, TimerWheel, Waker, WriteBuf,
};
use faasrail_telemetry::{
    EventSink, NullSink, OutcomeClass, ServerFault, ServerSpan, TelemetryEvent,
};
use std::collections::VecDeque;
use std::io::{self, ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Event-loop tokens: connections use `slot | generation << 32`, so the
/// listener and waker live outside the 32-bit slot space.
const TOKEN_LISTENER: u64 = u64::MAX;
const TOKEN_WAKER: u64 = u64::MAX - 1;

const READ_CHUNK: usize = 16 * 1024;

fn conn_token(slot: usize, gen: u32) -> u64 {
    (slot as u64) | (u64::from(gen) << 32)
}

fn token_slot(token: u64) -> usize {
    (token & 0xffff_ffff) as usize
}

fn token_gen(token: u64) -> u32 {
    (token >> 32) as u32
}

fn micros_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Span fields accumulated before the final (handler-end, flushed) stamps.
/// The reactor's analog of the threaded server's `SpanDraft`.
#[derive(Debug, Clone)]
struct Draft {
    trace_id: u64,
    seq: u64,
    worker: u64,
    accepted_us: u64,
    dequeued_us: u64,
    handler_start_us: u64,
    queue_depth: u64,
    service_ms: f64,
    outcome: OutcomeClass,
    fault: Option<ServerFault>,
    cold_start: bool,
}

impl Draft {
    fn emit(
        self,
        stages: &StageMetrics,
        sink: &dyn EventSink,
        handler_end_us: u64,
        flushed_us: u64,
    ) {
        let span = ServerSpan {
            trace_id: self.trace_id,
            seq: self.seq,
            worker: self.worker,
            accepted_us: self.accepted_us,
            dequeued_us: self.dequeued_us,
            handler_start_us: self.handler_start_us,
            handler_end_us,
            flushed_us: flushed_us.max(handler_end_us),
            queue_depth: self.queue_depth,
            service_ms: self.service_ms,
            outcome: self.outcome,
            fault: self.fault,
            cold_start: self.cold_start,
        };
        stages.record(&span);
        sink.emit(&TelemetryEvent::ServerSpan(span));
    }
}

/// One `/invoke` awaiting a handler thread.
struct Job {
    shard: usize,
    token: u64,
    inv: InvocationRequest,
    draft: Draft,
    /// Injected-delay jobs carry pre-stamped dequeue/handler-start times so
    /// the parked delay lands in the service stage (where the threaded
    /// server's in-handler sleep puts it).
    preset_stamps: bool,
    keep: bool,
}

/// A finished invocation travelling back to its shard.
struct Completion {
    token: u64,
    keep: bool,
    /// Serialized 200 body (pooled; returned to [`BufPool`] after staging).
    body: Vec<u8>,
    draft: Draft,
    handler_end_us: u64,
}

/// Free-list of response-body buffers so steady-state completions reuse
/// allocations instead of growing fresh `Vec`s.
#[derive(Default)]
struct BufPool {
    free: Mutex<Vec<Vec<u8>>>,
}

impl BufPool {
    fn take(&self) -> Vec<u8> {
        self.free.lock().unwrap().pop().unwrap_or_default()
    }

    fn put(&self, mut buf: Vec<u8>) {
        buf.clear();
        let mut free = self.free.lock().unwrap();
        if free.len() < 256 {
            free.push(buf);
        }
    }
}

/// The bounded invoke queue feeding the handler pool. Its capacity is the
/// gateway's admission bound: `dispatch` refuses (sheds) beyond it.
struct Pool {
    queue: Mutex<VecDeque<Job>>,
    available: Condvar,
    capacity: usize,
    shutdown: AtomicBool,
}

impl Pool {
    fn new(capacity: usize) -> Pool {
        Pool {
            queue: Mutex::new(VecDeque::new()),
            available: Condvar::new(),
            capacity: capacity.max(1),
            shutdown: AtomicBool::new(false),
        }
    }

    /// Enqueue `job`, or hand it back if the admission queue is full.
    /// `forced` bypasses the bound (used to resume injected-delay jobs that
    /// were already admitted once).
    // Err carries the whole Job back so the shed path stays allocation-free.
    #[allow(clippy::result_large_err)]
    fn dispatch(&self, job: Job, forced: bool, stats: &GatewayStats) -> Result<(), Job> {
        let mut queue = self.queue.lock().unwrap();
        if !forced && queue.len() >= self.capacity {
            return Err(job);
        }
        queue.push_back(job);
        stats.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
        self.available.notify_one();
        Ok(())
    }

    /// Blocking pop; `None` once shut down and drained.
    fn pop(&self, stats: &GatewayStats) -> Option<Job> {
        let mut queue = self.queue.lock().unwrap();
        loop {
            if let Some(job) = queue.pop_front() {
                stats.queue_depth.store(queue.len() as u64, Ordering::Relaxed);
                return Some(job);
            }
            if self.shutdown.load(Ordering::SeqCst) {
                return None;
            }
            queue = self.available.wait(queue).unwrap();
        }
    }

    fn stop(&self) {
        self.shutdown.store(true, Ordering::SeqCst);
        self.available.notify_all();
    }
}

/// A shard's inbox of finished invocations, plus the eventfd that pulls the
/// shard out of `epoll_wait` when something lands.
///
/// The eventfd write is elided unless the shard is parked (or about to park)
/// in `epoll_wait` *and* no other deliverer has already woken it this cycle:
/// the shard drains the inbox on every loop iteration anyway, so a wake is
/// only load-bearing when it interrupts a blocking wait. At saturation this
/// collapses one `write(2)` per completion into at most one per batch.
struct Mailbox {
    completions: Mutex<Vec<Completion>>,
    waker: Waker,
    /// Shard is inside (or committed to entering) a blocking `epoll_wait`.
    parked: AtomicBool,
    /// A wake has been issued and not yet consumed by `drain`.
    notified: AtomicBool,
}

impl Mailbox {
    fn new() -> io::Result<Mailbox> {
        Ok(Mailbox {
            completions: Mutex::new(Vec::new()),
            waker: Waker::new()?,
            parked: AtomicBool::new(false),
            notified: AtomicBool::new(false),
        })
    }

    fn deliver(&self, completion: Completion) {
        self.completions.lock().unwrap().push(completion);
        // `parked` is stored (SeqCst) before the shard re-checks the inbox, so
        // either the shard sees this push and skips the blocking wait, or this
        // load sees `parked == true` and the wake goes through.
        if self.parked.load(Ordering::SeqCst) && !self.notified.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }

    /// Unconditional wake for shutdown paths — bypasses the parked elision.
    fn force_wake(&self) {
        self.notified.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    fn drain(&self, into: &mut Vec<Completion>) {
        // Always reset the eventfd level (a wake may have raced past the
        // `notified` hand-off); consuming a wake whose completion is already
        // in the vec is harmless, and a wake issued after this read survives
        // to the next loop iteration because the eventfd is level-triggered.
        self.waker.drain();
        self.notified.store(false, Ordering::SeqCst);
        into.append(&mut self.completions.lock().unwrap());
    }

    fn has_pending(&self) -> bool {
        !self.completions.lock().unwrap().is_empty()
    }
}

/// Everything shared by shards, handler threads, and the handle.
struct Shared {
    cfg: GatewayConfig,
    backend: Arc<dyn Backend>,
    stats: Arc<GatewayStats>,
    stages: Arc<StageMetrics>,
    sink: Arc<dyn EventSink>,
    pool: Pool,
    bodies: BufPool,
    mailboxes: Vec<Arc<Mailbox>>,
    epoch: Instant,
    shutdown: AtomicBool,
}

impl Shared {
    fn wake_all(&self) {
        for mailbox in &self.mailboxes {
            mailbox.force_wake();
        }
    }
}

/// A span waiting for its response bytes to reach the socket. Emitted once
/// the connection's flushed-byte counter passes `done_at`.
struct PendingSpan {
    draft: Draft,
    handler_end_us: u64,
    done_at: u64,
}

enum ConnState {
    /// Between requests (or mid-head): the parser drives.
    Ready,
    /// One `/invoke` is out at the handler pool; buffered pipelined
    /// requests wait so responses stay in order.
    Busy,
    /// Injected-latency fault: the request is parked until `until`, then
    /// force-dispatched.
    Delayed { until: Instant, job: Option<Box<Job>> },
    /// Injected stall: the socket is held open and silent until `until`,
    /// then closed without a response.
    Stalled { until: Instant, draft: Option<Box<Draft>> },
}

struct Conn {
    stream: TcpStream,
    token: u64,
    rbuf: ReadBuf,
    wbuf: WriteBuf,
    /// Bytes actually written to the socket (monotonic), compared against
    /// [`PendingSpan::done_at`] to stamp flush times.
    flushed_bytes: u64,
    pending_spans: VecDeque<PendingSpan>,
    state: ConnState,
    accepted_us: u64,
    served: u64,
    idle_since: Instant,
    /// When the (incomplete) request on hand started arriving — the
    /// slow-loris clock.
    head_since: Option<Instant>,
    /// Earliest armed wheel deadline, if any (wheel entries are lazy
    /// hints; the real deadline is re-checked when one fires).
    armed_until: Option<Instant>,
    read_closed: bool,
    close_after_flush: bool,
}

/// Arm `conn`'s wheel entry for `deadline` unless an earlier one is
/// already live. A free function over disjoint fields so callers can hold
/// a `&mut Conn` borrowed out of the shard's slab.
fn arm(wheel: &mut TimerWheel, conn: &mut Conn, deadline: Instant) {
    if conn.armed_until.is_none_or(|armed| armed > deadline) {
        wheel.insert(conn.token, deadline);
        conn.armed_until = Some(deadline);
    }
}

enum Parsed {
    /// Keep parsing (a complete request was consumed).
    Continue,
    /// Stop parsing for now (partial input, or the connection went busy).
    Stop,
    /// The connection must be torn down immediately.
    Close,
}

enum Route {
    Invoke,
    Healthz,
    Stats,
    Metrics,
    NotFound,
}

enum TimerAction {
    Nothing,
    Rearm(Instant),
    Close,
    /// Stall expired: emit the parked span, then close silently.
    FinishStall(Box<Draft>),
    /// Injected delay expired: the job re-enters the pool, bypassing the
    /// admission bound it already passed.
    DispatchDelayed(Box<Job>),
}

struct Shard {
    id: usize,
    poller: Poller,
    listener: Option<Listener>,
    mailbox: Arc<Mailbox>,
    shared: Arc<Shared>,
    conns: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    wheel: TimerWheel,
}

impl Shard {
    fn new(id: usize, listener: Listener, shared: Arc<Shared>) -> io::Result<Shard> {
        let poller = Poller::new()?;
        poller.add(listener.raw_fd(), Interest::READ, TOKEN_LISTENER)?;
        let mailbox = Arc::clone(&shared.mailboxes[id]);
        poller.add(mailbox.waker.fd(), Interest::READ, TOKEN_WAKER)?;
        let epoch = shared.epoch;
        Ok(Shard {
            id,
            poller,
            listener: Some(listener),
            mailbox,
            shared,
            conns: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            wheel: TimerWheel::new(epoch),
        })
    }

    fn live_conns(&self) -> usize {
        self.conns.iter().filter(|c| c.is_some()).count()
    }

    fn run(mut self) {
        let mut events = Vec::with_capacity(1024);
        let mut completions: Vec<Completion> = Vec::new();
        let mut fired: Vec<u64> = Vec::new();
        loop {
            let shutting_down = self.shared.shutdown.load(Ordering::SeqCst);
            // A coarse tick keeps the wheel honest; park indefinitely only
            // when no deadline can possibly be pending.
            let timeout = if shutting_down {
                Some(Duration::from_millis(5))
            } else if self.wheel.is_empty() {
                None
            } else {
                Some(Duration::from_millis(16))
            };
            events.clear();
            // Park protocol: publish intent to block, then re-check the inbox.
            // A deliverer either sees `parked == true` (its wake interrupts the
            // wait) or its push lands before the re-check (we skip blocking).
            self.mailbox.parked.store(true, Ordering::SeqCst);
            let timeout =
                if self.mailbox.has_pending() { Some(Duration::from_millis(0)) } else { timeout };
            let waited = self.poller.wait(timeout, &mut events);
            self.mailbox.parked.store(false, Ordering::SeqCst);
            if waited.is_err() {
                break; // EBADF etc. — unrecoverable for this shard
            }
            let mut accept_pass = false;
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => accept_pass = true,
                    TOKEN_WAKER => {} // drained with the mailbox below
                    token => self.on_conn_event(token, ev.readable(), ev.error()),
                }
            }
            completions.clear();
            self.mailbox.drain(&mut completions);
            for completion in completions.drain(..) {
                self.on_completion(completion);
            }
            if accept_pass {
                self.accept_ready();
            }
            fired.clear();
            self.wheel.advance(Instant::now(), &mut fired);
            for token in fired.drain(..) {
                self.on_timer(token);
            }
            if self.shared.shutdown.load(Ordering::SeqCst) {
                if let Some(l) = self.listener.take() {
                    let _ = self.poller.delete(l.raw_fd());
                }
                self.sweep_for_shutdown();
                if self.live_conns() == 0 {
                    break;
                }
            }
        }
    }

    // ---- accept ---------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            let accepted = match self.listener.as_ref() {
                Some(listener) => listener.accept(),
                None => return,
            };
            match accepted {
                Ok(Some(stream)) => self.install(stream),
                Ok(None) => return,
                Err(_) => return,
            }
        }
    }

    fn install(&mut self, stream: TcpStream) {
        if self.shared.shutdown.load(Ordering::SeqCst) {
            return; // late straggler during shutdown: drop before counting
        }
        self.shared.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
        stream.set_nodelay(true).ok();
        let slot = match self.free.pop() {
            Some(slot) => slot,
            None => {
                self.conns.push(None);
                self.gens.push(0);
                self.conns.len() - 1
            }
        };
        let gen = self.gens[slot];
        let token = conn_token(slot, gen);
        if self.poller.add(stream.as_raw_fd(), Interest::EDGE_RW, token).is_err() {
            self.shared.stats.connections_closed.fetch_add(1, Ordering::Relaxed);
            self.free.push(slot);
            return;
        }
        let now = Instant::now();
        let conn = Conn {
            stream,
            token,
            rbuf: ReadBuf::with_capacity(READ_CHUNK),
            wbuf: WriteBuf::with_capacity(READ_CHUNK),
            flushed_bytes: 0,
            pending_spans: VecDeque::new(),
            state: ConnState::Ready,
            accepted_us: micros_since(self.shared.epoch),
            served: 0,
            idle_since: now,
            head_since: None,
            armed_until: None,
            read_closed: false,
            close_after_flush: false,
        };
        self.shared.stats.connections_active.fetch_add(1, Ordering::Relaxed);
        self.conns[slot] = Some(conn);
        let read_timeout = self.shared.cfg.read_timeout;
        arm(
            &mut self.wheel,
            self.conns[slot].as_mut().expect("just installed"),
            now + read_timeout,
        );
        // Bytes may already be waiting (or the peer may already have
        // half-closed); treat installation as a readable edge.
        self.on_conn_event(token, true, false);
    }

    // ---- readiness ------------------------------------------------------

    fn conn_alive(&self, token: u64) -> bool {
        let slot = token_slot(token);
        slot < self.conns.len() && self.gens[slot] == token_gen(token) && self.conns[slot].is_some()
    }

    fn on_conn_event(&mut self, token: u64, readable: bool, error: bool) {
        if !self.conn_alive(token) {
            return; // stale event for a recycled slot
        }
        let slot = token_slot(token);
        if error {
            self.close_conn(slot);
            return;
        }
        if readable && !self.fill_read_buffer(slot) {
            self.close_conn(slot);
            return;
        }
        if !self.advance_conn(slot) {
            self.close_conn(slot);
            return;
        }
        // Always push staged bytes: a response produced on a read event
        // will never get its own writable edge (the socket never filled).
        if !self.try_flush(slot) {
            self.close_conn(slot);
        }
    }

    /// Drain the socket into the connection's read buffer. Returns `false`
    /// when the connection should be torn down (hard transport error).
    fn fill_read_buffer(&mut self, slot: usize) -> bool {
        let conn = self.conns[slot].as_mut().expect("checked alive");
        loop {
            match conn.rbuf.fill_from(&mut conn.stream, READ_CHUNK) {
                Ok(0) => {
                    conn.read_closed = true;
                    return true;
                }
                Ok(_) => continue,
                Err(e) if e.kind() == ErrorKind::WouldBlock => return true,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => return false,
            }
        }
    }

    /// Parse and route as many buffered requests as the connection's state
    /// allows. Returns `false` when the connection must close immediately.
    fn advance_conn(&mut self, slot: usize) -> bool {
        loop {
            {
                let conn = self.conns[slot].as_mut().expect("checked alive");
                if conn.close_after_flush || !matches!(conn.state, ConnState::Ready) {
                    return true;
                }
            }
            match self.parse_one(slot) {
                Parsed::Continue => continue,
                Parsed::Stop => return true,
                Parsed::Close => return false,
            }
        }
    }

    /// Try to parse and handle exactly one request off the read buffer.
    fn parse_one(&mut self, slot: usize) -> Parsed {
        let shared = Arc::clone(&self.shared);
        let stats = &shared.stats;
        let head;
        let route;
        let keep;
        let accepted_us;
        {
            let conn = self.conns[slot].as_mut().expect("checked alive");
            match http1::parse_request(conn.rbuf.filled(), http::MAX_HEAD_BYTES) {
                Ok(Some(h)) if h.content_length > http::MAX_BODY_BYTES => {
                    // Same refusal the threaded parser produces for a body
                    // beyond the shared cap: 400 and close.
                    stats.http_400.fetch_add(1, Ordering::Relaxed);
                    respond(conn, 400, "text/plain", b"bad request: body too large", false);
                    conn.close_after_flush = true;
                    return Parsed::Stop;
                }
                Ok(Some(h)) if conn.rbuf.len() < h.total_len() => {
                    // Complete head, incomplete body: same slow-loris
                    // budget as a dribbling head.
                    if conn.read_closed {
                        return Parsed::Close; // truncated mid-request
                    }
                    if conn.head_since.is_none() {
                        conn.head_since = Some(Instant::now());
                    }
                    let deadline =
                        conn.head_since.expect("just set") + shared.cfg.head_read_timeout;
                    arm(&mut self.wheel, conn, deadline);
                    return Parsed::Stop;
                }
                Ok(Some(h)) => head = h,
                Ok(None) => {
                    if conn.rbuf.is_empty() {
                        conn.head_since = None;
                        if conn.read_closed {
                            // Clean close between requests (after any
                            // staged response drains).
                            if conn.wbuf.is_empty() {
                                return Parsed::Close;
                            }
                            conn.close_after_flush = true;
                        }
                    } else if conn.read_closed {
                        // EOF mid-head: close silently, like the threaded
                        // server's read-error path.
                        return Parsed::Close;
                    } else {
                        if conn.head_since.is_none() {
                            conn.head_since = Some(Instant::now());
                        }
                        let deadline =
                            conn.head_since.expect("just set") + shared.cfg.head_read_timeout;
                        arm(&mut self.wheel, conn, deadline);
                    }
                    return Parsed::Stop;
                }
                Err(kind) => {
                    stats.http_400.fetch_add(1, Ordering::Relaxed);
                    let msg: &[u8] = match kind {
                        http1::ParseError::TooLarge => b"bad request: header section too large",
                        http1::ParseError::BadContentLength => b"bad request: bad content-length",
                        http1::ParseError::Malformed => b"bad request: malformed request head",
                    };
                    respond(conn, 400, "text/plain", msg, false);
                    conn.close_after_flush = true;
                    return Parsed::Stop;
                }
            }
            conn.head_since = None;
            conn.idle_since = Instant::now();
            conn.served += 1;
            stats.requests.fetch_add(1, Ordering::Relaxed);
            // Keep-alive follow-ups never waited for admission; their
            // accepted stamp collapses to the parse instant (mirrors the
            // threaded server).
            accepted_us =
                if conn.served == 1 { conn.accepted_us } else { micros_since(shared.epoch) };
            keep = head.keep_alive && !shared.shutdown.load(Ordering::Relaxed);
            let buf = conn.rbuf.filled();
            route = match (&buf[head.method.clone()], &buf[head.path.clone()]) {
                (b"POST", b"/invoke") => Route::Invoke,
                (b"GET", b"/healthz") => Route::Healthz,
                (b"GET", b"/stats") => Route::Stats,
                (b"GET", b"/metrics") => Route::Metrics,
                _ => Route::NotFound,
            };
        }
        match route {
            Route::Invoke => {
                self.handle_invoke(slot, &head, accepted_us, keep);
                return Parsed::Continue;
            }
            Route::Healthz => {
                let build = faasrail_telemetry::BuildInfo::current();
                let body = format!(
                    "{{\"status\":\"ok\",\"queue_depth\":{},\"shed\":{},\"version\":\"{}\",\"git_sha\":\"{}\"}}",
                    stats.queue_depth.load(Ordering::Relaxed),
                    stats.shed.load(Ordering::Relaxed),
                    build.version,
                    build.git_sha,
                );
                let conn = self.conns[slot].as_mut().expect("checked alive");
                respond(conn, 200, "application/json", body.as_bytes(), keep);
            }
            Route::Stats => {
                let conn = self.conns[slot].as_mut().expect("checked alive");
                stats.max_requests_per_connection.fetch_max(conn.served, Ordering::Relaxed);
                respond(conn, 200, "application/json", stats.to_json().as_bytes(), keep);
            }
            Route::Metrics => {
                let mut text = stats.to_prometheus();
                text.push_str(&shared.stages.to_prometheus());
                let conn = self.conns[slot].as_mut().expect("checked alive");
                stats.max_requests_per_connection.fetch_max(conn.served, Ordering::Relaxed);
                respond(
                    conn,
                    200,
                    faasrail_telemetry::prometheus::CONTENT_TYPE,
                    text.as_bytes(),
                    keep,
                );
            }
            Route::NotFound => {
                stats.http_404.fetch_add(1, Ordering::Relaxed);
                let conn = self.conns[slot].as_mut().expect("checked alive");
                respond(conn, 404, "text/plain", b"not found", keep);
            }
        }
        let conn = self.conns[slot].as_mut().expect("checked alive");
        conn.rbuf.consume(head.total_len());
        if !keep {
            conn.close_after_flush = true;
        }
        Parsed::Continue
    }

    /// Route one `POST /invoke`: fault decision, admission, dispatch.
    /// Consumes the request's bytes from the read buffer.
    fn handle_invoke(&mut self, slot: usize, head: &http1::ReqHead, accepted_us: u64, keep: bool) {
        let shared = Arc::clone(&self.shared);
        let stats = &shared.stats;
        let shard_id = self.id;
        let conn = self.conns[slot].as_mut().expect("checked alive");
        let n = stats.invocations.fetch_add(1, Ordering::Relaxed);
        let now_us = micros_since(shared.epoch);
        let total_len = head.total_len();

        let buf = conn.rbuf.filled();
        let header_trace = head
            .trace
            .clone()
            .and_then(|r| std::str::from_utf8(&buf[r]).ok())
            .and_then(faasrail_telemetry::parse_trace_id)
            .unwrap_or(0);
        let parsed = serde_json::from_slice::<InvocationRequest>(&buf[head.body_range()]);

        let mut draft = Draft {
            trace_id: header_trace,
            seq: n,
            worker: shard_id as u64,
            accepted_us,
            dequeued_us: now_us,
            handler_start_us: now_us,
            queue_depth: stats.queue_depth.load(Ordering::Relaxed),
            service_ms: 0.0,
            outcome: OutcomeClass::Ok,
            fault: None,
            cold_start: false,
        };

        let mut fault = shared.cfg.fault.decide(n);
        let mut preset_stamps = false;
        let mut delay_until = None;
        if let Fault::Delay = fault {
            // Injected straggler: park on the wheel, then serve normally.
            // Pre-stamp dequeue/handler-start so the delay lands in the
            // service stage, exactly where the threaded server's
            // in-handler sleep puts it.
            stats.faults_delayed.fetch_add(1, Ordering::Relaxed);
            draft.fault = Some(ServerFault::Delay);
            preset_stamps = true;
            delay_until = Some(Instant::now() + Duration::from_millis(shared.cfg.fault.latency_ms));
            fault = Fault::None;
        }

        match fault {
            Fault::Delay => unreachable!("rewritten to Fault::None above"),
            Fault::Drop => {
                stats.faults_dropped.fetch_add(1, Ordering::Relaxed);
                draft.fault = Some(ServerFault::Drop);
                // The client sees a broken connection: transport.
                draft.outcome = OutcomeClass::Transport;
                let now = micros_since(shared.epoch);
                draft.emit(&shared.stages, &*shared.sink, now, now);
                conn.rbuf.consume(total_len);
                conn.close_after_flush = true; // vanish without a response
                return;
            }
            Fault::Stall => {
                // Black hole: hold the socket open and silent, then close
                // without a response — the client's deadline, not its
                // retry logic, has to catch this.
                stats.faults_stalled.fetch_add(1, Ordering::Relaxed);
                draft.fault = Some(ServerFault::Stall);
                draft.outcome = OutcomeClass::Timeout;
                let until = Instant::now() + Duration::from_millis(shared.cfg.fault.stall_ms);
                conn.rbuf.consume(total_len);
                conn.state = ConnState::Stalled { until, draft: Some(Box::new(draft)) };
                arm(&mut self.wheel, conn, until);
                return;
            }
            Fault::Error => {
                stats.faults_errored.fetch_add(1, Ordering::Relaxed);
                draft.fault = Some(ServerFault::Error);
                draft.outcome = OutcomeClass::Transport;
                let handler_end = micros_since(shared.epoch);
                respond(conn, 500, "text/plain", b"injected fault", keep);
                conn.pending_spans.push_back(PendingSpan {
                    draft,
                    handler_end_us: handler_end,
                    done_at: conn.wbuf.bytes_staged(),
                });
                conn.rbuf.consume(total_len);
                if !keep {
                    conn.close_after_flush = true;
                }
                return;
            }
            Fault::None => {}
        }

        let inv = match parsed {
            Ok(inv) => inv,
            Err(e) => {
                stats.http_400.fetch_add(1, Ordering::Relaxed);
                // The body never became an invocation; from the client's
                // side this is a non-retryable transport-class failure.
                draft.outcome = OutcomeClass::Transport;
                let handler_end = micros_since(shared.epoch);
                let msg = format!("bad invocation request: {e}");
                respond(conn, 400, "text/plain", msg.as_bytes(), keep);
                conn.pending_spans.push_back(PendingSpan {
                    draft,
                    handler_end_us: handler_end,
                    done_at: conn.wbuf.bytes_staged(),
                });
                conn.rbuf.consume(total_len);
                if !keep {
                    conn.close_after_flush = true;
                }
                return;
            }
        };
        if draft.trace_id == 0 {
            draft.trace_id = inv.trace_id;
        }
        conn.rbuf.consume(total_len);

        let job = Job { shard: shard_id, token: conn.token, inv, draft, preset_stamps, keep };
        if let Some(until) = delay_until {
            conn.state = ConnState::Delayed { until, job: Some(Box::new(job)) };
            arm(&mut self.wheel, conn, until);
            return;
        }
        match shared.pool.dispatch(job, false, stats) {
            Ok(()) => conn.state = ConnState::Busy,
            Err(_refused) => {
                // Admission queue full: shed with the same 429 the
                // threaded server sends — and *no* span, so trace joins
                // see an orphan, exactly like a shed-at-accept.
                stats.shed.fetch_add(1, Ordering::Relaxed);
                respond_shed(conn);
                conn.close_after_flush = true;
            }
        }
    }

    // ---- completions ----------------------------------------------------

    fn on_completion(&mut self, completion: Completion) {
        let shared = Arc::clone(&self.shared);
        let token = completion.token;
        if !self.conn_alive(token) {
            // The connection died while the backend ran; the work still
            // deserves its span (nothing hit the wire: flush time = now).
            let now = micros_since(shared.epoch);
            completion.draft.emit(&shared.stages, &*shared.sink, completion.handler_end_us, now);
            shared.bodies.put(completion.body);
            return;
        }
        let slot = token_slot(token);
        {
            let conn = self.conns[slot].as_mut().expect("checked alive");
            conn.state = ConnState::Ready;
            conn.idle_since = Instant::now();
            respond(conn, 200, "application/json", &completion.body, completion.keep);
            conn.pending_spans.push_back(PendingSpan {
                draft: completion.draft,
                handler_end_us: completion.handler_end_us,
                done_at: conn.wbuf.bytes_staged(),
            });
            if !completion.keep {
                conn.close_after_flush = true;
            }
            shared.bodies.put(completion.body);
            arm(&mut self.wheel, conn, Instant::now() + shared.cfg.read_timeout);
        }
        // Pipelined follow-ups may already be buffered.
        if !self.advance_conn(slot) || !self.try_flush(slot) {
            self.close_conn(slot);
        }
    }

    // ---- timers ---------------------------------------------------------

    fn on_timer(&mut self, token: u64) {
        if !self.conn_alive(token) {
            return; // stale entry for a recycled slot
        }
        let slot = token_slot(token);
        let shared = Arc::clone(&self.shared);
        let now = Instant::now();
        let action = {
            let conn = self.conns[slot].as_mut().expect("checked alive");
            conn.armed_until = None;
            match &mut conn.state {
                ConnState::Stalled { until, draft } => {
                    if now >= *until {
                        TimerAction::FinishStall(draft.take().expect("stall draft emitted once"))
                    } else {
                        TimerAction::Rearm(*until)
                    }
                }
                ConnState::Delayed { until, job } => {
                    if now >= *until {
                        let job = job.take().expect("delay job dispatched once");
                        conn.state = ConnState::Busy;
                        TimerAction::DispatchDelayed(job)
                    } else {
                        TimerAction::Rearm(*until)
                    }
                }
                // No deadline while the backend runs; the idle timer is
                // re-armed when the completion lands.
                ConnState::Busy => TimerAction::Nothing,
                ConnState::Ready => {
                    let deadline = if conn.rbuf.is_empty() {
                        conn.idle_since + shared.cfg.read_timeout
                    } else {
                        conn.head_since.unwrap_or(conn.idle_since) + shared.cfg.head_read_timeout
                    };
                    if now >= deadline {
                        // Idle keep-alive expiry, or a reaped slow loris —
                        // the threaded server's read timeout also closes
                        // without a response.
                        TimerAction::Close
                    } else {
                        TimerAction::Rearm(deadline)
                    }
                }
            }
        };
        match action {
            TimerAction::Nothing => {}
            TimerAction::Rearm(deadline) => {
                let conn = self.conns[slot].as_mut().expect("checked alive");
                arm(&mut self.wheel, conn, deadline);
            }
            TimerAction::Close => self.close_conn(slot),
            TimerAction::FinishStall(draft) => {
                let now_us = micros_since(shared.epoch);
                draft.emit(&shared.stages, &*shared.sink, now_us, now_us);
                self.close_conn(slot);
            }
            TimerAction::DispatchDelayed(job) => {
                // Forced: the request passed admission when it arrived.
                if shared.pool.dispatch(*job, true, &shared.stats).is_err() {
                    unreachable!("forced dispatch cannot be refused");
                }
            }
        }
    }

    // ---- writes and teardown --------------------------------------------

    /// Push staged bytes at the socket; emit spans whose responses are now
    /// fully flushed. Returns `false` if the transport broke.
    fn try_flush(&mut self, slot: usize) -> bool {
        let shared = Arc::clone(&self.shared);
        let should_close = {
            let conn = self.conns[slot].as_mut().expect("checked alive");
            if !conn.wbuf.is_empty() {
                match conn.wbuf.flush_to(&mut conn.stream) {
                    Ok(n) => conn.flushed_bytes += n as u64,
                    Err(_) => return false,
                }
            }
            let now_us = micros_since(shared.epoch);
            while let Some(front) = conn.pending_spans.front() {
                if front.done_at > conn.flushed_bytes {
                    break;
                }
                let span = conn.pending_spans.pop_front().expect("checked front");
                span.draft.emit(&shared.stages, &*shared.sink, span.handler_end_us, now_us);
            }
            conn.close_after_flush && conn.wbuf.is_empty()
        };
        if should_close {
            self.close_conn(slot);
        }
        true
    }

    fn close_conn(&mut self, slot: usize) {
        let Some(conn) = self.conns[slot].take() else { return };
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
        let shared = &self.shared;
        let stats = &shared.stats;
        let _ = self.poller.delete(conn.stream.as_raw_fd());
        stats.connections_active.fetch_sub(1, Ordering::Relaxed);
        stats.connections_closed.fetch_add(1, Ordering::Relaxed);
        stats.max_requests_per_connection.fetch_max(conn.served, Ordering::Relaxed);
        // Responses that never fully reached the wire still get their
        // spans (flush stamped now), mirroring the threaded server's
        // emit-then-propagate-the-write-error ordering.
        let now_us = micros_since(shared.epoch);
        for span in conn.pending_spans {
            span.draft.emit(&shared.stages, &*shared.sink, span.handler_end_us, now_us);
        }
        if let ConnState::Stalled { draft: Some(draft), .. } = conn.state {
            draft.emit(&shared.stages, &*shared.sink, now_us, now_us);
        }
        // A ConnState::Delayed job dies with its connection un-invoked
        // (nothing ran, nothing answered): no span, like a shed. A Busy
        // connection's completion emits via the stale-token path.
    }

    /// On shutdown: flush what we can and close idle connections; busy or
    /// fault-parked ones drain on their own (bounded by the backend,
    /// `latency_ms`, or `stall_ms`).
    fn sweep_for_shutdown(&mut self) {
        for slot in 0..self.conns.len() {
            let idle =
                matches!(self.conns[slot].as_ref().map(|c| &c.state), Some(ConnState::Ready));
            // Flush failure already closed nothing (try_flush reports, we
            // close); a successful flush still closes the idle connection.
            if idle && (!self.try_flush(slot) || self.conns[slot].is_some()) {
                self.close_conn(slot);
            }
        }
    }
}

// ---- response encoding (no per-request allocation) ----------------------

fn respond(conn: &mut Conn, status: u16, content_type: &str, body: &[u8], keep: bool) {
    let _ = http1::write_response_head(
        &mut conn.wbuf,
        status,
        http::status_reason(status),
        content_type,
        body.len(),
        keep,
        &[],
    );
    let _ = conn.wbuf.write_all(body);
}

/// The wire-identical twin of the threaded server's `shed_connection`.
fn respond_shed(conn: &mut Conn) {
    let body: &[u8] = b"shedding load: admission queue full";
    let _ = http1::write_response_head(
        &mut conn.wbuf,
        429,
        http::status_reason(429),
        "text/plain",
        body.len(),
        false,
        &[("Retry-After", "1")],
    );
    let _ = conn.wbuf.write_all(body);
}

// ---- handler pool -------------------------------------------------------

fn handler_loop(shared: Arc<Shared>, worker: u64) {
    while let Some(mut job) = shared.pool.pop(&shared.stats) {
        let now = micros_since(shared.epoch);
        if !job.preset_stamps {
            job.draft.dequeued_us = now;
            job.draft.handler_start_us = now;
        }
        job.draft.worker = worker;
        let result = shared.backend.invoke(&job.inv);
        if result.ok {
            shared.stats.invocations_ok.fetch_add(1, Ordering::Relaxed);
        } else {
            shared.stats.invocations_failed.fetch_add(1, Ordering::Relaxed);
        }
        job.draft.service_ms = result.service_ms;
        job.draft.outcome = result.outcome();
        job.draft.cold_start = result.cold_start;
        let handler_end = micros_since(shared.epoch);
        let mut body = shared.bodies.take();
        if serde_json::to_writer(&mut body, &result).is_err() {
            body.clear();
            body.extend_from_slice(b"{\"ok\":false}");
        }
        shared.mailboxes[job.shard].deliver(Completion {
            token: job.token,
            keep: job.keep,
            body,
            draft: job.draft,
            handler_end_us: handler_end,
        });
    }
}

// ---- public surface -----------------------------------------------------

/// The reactor-mode gateway: same contract as [`crate::Gateway`], served by
/// epoll event-loop shards plus a bounded handler pool.
pub struct ReactorGateway {
    listeners: Vec<Listener>,
    addr: SocketAddr,
    shared: Arc<Shared>,
}

impl ReactorGateway {
    /// Bind a single-shard reactor gateway (the common case; equivalent to
    /// [`ReactorGateway::bind_sharded`] with one shard).
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        cfg: GatewayConfig,
    ) -> io::Result<ReactorGateway> {
        ReactorGateway::bind_sharded(addr, backend, cfg, 1)
    }

    /// Bind with `shards` event loops. With more than one shard the
    /// listeners share the port via `SO_REUSEPORT` (IPv4 only) and the
    /// kernel spreads incoming connections across them.
    pub fn bind_sharded(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        cfg: GatewayConfig,
        shards: usize,
    ) -> io::Result<ReactorGateway> {
        assert!(cfg.workers > 0, "need at least one handler worker");
        let shards = shards.max(1);
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| io::Error::new(ErrorKind::NotFound, "unresolvable bind address"))?;
        let (listeners, addr) = bind_listeners(addr, shards)?;
        let mut mailboxes = Vec::with_capacity(shards);
        for _ in 0..shards {
            mailboxes.push(Arc::new(Mailbox::new()?));
        }
        let shared = Arc::new(Shared {
            pool: Pool::new(cfg.queue_capacity),
            cfg,
            backend,
            stats: Arc::new(GatewayStats::default()),
            stages: Arc::new(StageMetrics::new()),
            sink: Arc::new(NullSink),
            bodies: BufPool::default(),
            mailboxes,
            epoch: Instant::now(),
            shutdown: AtomicBool::new(false),
        });
        Ok(ReactorGateway { listeners, addr, shared })
    }

    /// Install an [`EventSink`] receiving one [`ServerSpan`] per
    /// `POST /invoke` (default: [`NullSink`]).
    pub fn with_trace_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        Arc::get_mut(&mut self.shared)
            .expect("with_trace_sink must be called before spawn/run")
            .sink = sink;
        self
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters (live; safe to read while serving).
    pub fn stats(&self) -> Arc<GatewayStats> {
        Arc::clone(&self.shared.stats)
    }

    /// Per-stage residency histograms (live; safe to read while serving).
    pub fn stage_metrics(&self) -> Arc<StageMetrics> {
        Arc::clone(&self.shared.stages)
    }

    /// Serve until shut down, blocking the calling thread.
    pub fn run(self) {
        let shared = self.shared;
        let mut shard_threads = Vec::new();
        for (id, listener) in self.listeners.into_iter().enumerate() {
            let shard = Shard::new(id, listener, Arc::clone(&shared))
                .expect("epoll instance for reactor shard");
            shard_threads.push(std::thread::spawn(move || shard.run()));
        }
        let mut handler_threads = Vec::new();
        for worker in 0..shared.cfg.workers {
            let shared = Arc::clone(&shared);
            handler_threads.push(std::thread::spawn(move || handler_loop(shared, worker as u64)));
        }
        for t in shard_threads {
            let _ = t.join();
        }
        // Shards are gone; let the pool drain whatever is still queued,
        // then stop the handlers.
        shared.pool.stop();
        for t in handler_threads {
            let _ = t.join();
        }
        // Completions for connections that closed during shutdown still
        // carry spans — account for them before declaring the run over.
        let mut leftovers = Vec::new();
        for mailbox in &shared.mailboxes {
            mailbox.drain(&mut leftovers);
        }
        let now = micros_since(shared.epoch);
        for completion in leftovers {
            completion.draft.emit(&shared.stages, &*shared.sink, completion.handler_end_us, now);
        }
        shared.sink.flush();
    }

    /// Serve on a background thread; returns a handle for address, stats,
    /// and shutdown.
    pub fn spawn(self) -> ReactorHandle {
        let addr = self.addr;
        let shared = Arc::clone(&self.shared);
        let join = std::thread::spawn(move || self.run());
        ReactorHandle { addr, shared, join }
    }
}

/// Handle to a reactor gateway serving on a background thread. Mirrors
/// [`crate::GatewayHandle`].
pub struct ReactorHandle {
    addr: SocketAddr,
    shared: Arc<Shared>,
    join: std::thread::JoinHandle<()>,
}

impl ReactorHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &GatewayStats {
        &self.shared.stats
    }

    /// Stop accepting, drain in-flight work, and join the server threads.
    pub fn stop(self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.wake_all();
        let _ = self.join.join();
    }
}

//! FaaSRail's networked invocation gateway.
//!
//! The load generator's [`Backend`](faasrail_loadgen::Backend) abstraction
//! is synchronous and in-process; real serverless research setups put a
//! network between the generator and the platform under test. This crate
//! supplies both ends of that wire without adding any dependency beyond the
//! workspace's:
//!
//! * [`Gateway`] — an HTTP/1.1 server (bounded thread pool over
//!   `std::net::TcpListener`, keep-alive, `Content-Length` framing) that
//!   exposes any `Backend` at `POST /invoke`, plus `GET /healthz` and
//!   `GET /stats`;
//! * [`HttpBackend`] — a `Backend` implementation that ships invocations to
//!   such a gateway with connection pooling, per-request deadlines, and
//!   seeded capped-exponential retry ([`RetryPolicy`]) for transport
//!   failures and `5xx`s;
//! * [`FaultConfig`] — deterministic, seeded fault injection on the server
//!   side (dropped connections and injected `500`s) so retry behaviour is
//!   testable under controlled fault rates.
//!
//! Loopback replay through the pair is distribution-preserving: the
//! `tests/gateway_loopback.rs` integration test drives a full shrunk spec
//! over `127.0.0.1` and checks the invocation-duration distribution against
//! an in-process replay of the same spec (KS distance < 0.05).

pub mod backoff;
pub mod client;
pub mod http;
pub mod server;

pub use backoff::{mix_fraction, RetryPolicy, SplitMix64};
pub use client::{ClientStats, HttpBackend, HttpBackendConfig};
pub use server::{FaultConfig, Gateway, GatewayConfig, GatewayHandle, GatewayStats};

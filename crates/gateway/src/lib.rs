//! FaaSRail's networked invocation gateway.
//!
//! The load generator's [`Backend`](faasrail_loadgen::Backend) abstraction
//! is synchronous and in-process; real serverless research setups put a
//! network between the generator and the platform under test. This crate
//! supplies both ends of that wire without adding any dependency beyond the
//! workspace's:
//!
//! * [`Gateway`] — an HTTP/1.1 server (bounded thread pool over
//!   `std::net::TcpListener`, keep-alive, `Content-Length` framing) that
//!   exposes any `Backend` at `POST /invoke`, plus `GET /healthz` and
//!   `GET /stats`;
//! * [`HttpBackend`] — a `Backend` implementation that ships invocations to
//!   such a gateway with connection pooling, per-request deadlines, seeded
//!   capped-exponential retry ([`RetryPolicy`]) for transport failures,
//!   `429`s and `5xx`s, and an optional [`CircuitBreaker`] that fails fast
//!   (as `OutcomeClass::Shed`) while the upstream is unhealthy;
//! * [`FaultConfig`] — deterministic, seeded fault injection on the server
//!   side (dropped connections, injected `500`s, black-hole stalls, and
//!   straggler delays) so retry, deadline, and breaker behaviour are all
//!   testable under controlled fault rates;
//! * admission control — the server sheds connections with `429` +
//!   `Retry-After` when its bounded pending-work queue is full
//!   ([`GatewayConfig::queue_capacity`]), so overload is an explicit signal
//!   instead of a stalled OS accept backlog;
//! * [`ReactorGateway`] — the same server contract re-implemented on
//!   `faasrail-reactor`'s epoll event loop: N readiness-driven shards
//!   (`SO_REUSEPORT`) plus a bounded handler pool, with per-connection
//!   idle/slow-loris deadlines on a timer wheel and allocation-free HTTP
//!   parse/encode on the hot path;
//! * [`MuxHttpBackend`] — a multiplexed client `Backend`: one reactor
//!   thread drives a fixed pool of pipelined connections, so thousands of
//!   in-flight invocations need neither a thread nor a socket each.
//!
//! Loopback replay through the pair is distribution-preserving: the
//! `tests/gateway_loopback.rs` integration test drives a full shrunk spec
//! over `127.0.0.1` and checks the invocation-duration distribution against
//! an in-process replay of the same spec (KS distance < 0.05).

pub mod backoff;
pub mod breaker;
pub mod client;
pub mod http;
pub mod mux;
pub mod reactor_server;
pub mod server;

pub use backoff::{mix_fraction, RetryPolicy, SplitMix64};
pub use breaker::{BreakerConfig, CircuitBreaker};
pub use client::{ClientStats, HttpBackend, HttpBackendConfig};
pub use http::TRACE_HEADER;
pub use mux::{MuxConfig, MuxHttpBackend};
pub use reactor_server::{ReactorGateway, ReactorHandle};
pub use server::{FaultConfig, Gateway, GatewayConfig, GatewayHandle, GatewayStats, StageMetrics};

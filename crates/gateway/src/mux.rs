//! A multiplexed HTTP client backend: one reactor thread drives a fixed
//! pool of pipelined keep-alive connections.
//!
//! [`crate::HttpBackend`] binds one pooled connection per in-flight
//! invocation, so N concurrent invocations need N sockets and N blocked
//! worker threads. [`MuxHttpBackend`] decouples the two: worker threads
//! park on a completion slot while a single driver thread multiplexes all
//! requests over [`MuxConfig::connections`] sockets, pipelining up to
//! [`MuxConfig::pipeline_depth`] requests per connection (HTTP/1.1
//! responses arrive in request order, so a FIFO of in-flight slots per
//! connection is all the bookkeeping required).
//!
//! Classification matches [`crate::HttpBackend`] without its retry loop:
//! `200` parses the body, `429` is [`OutcomeClass::Shed`], any other
//! status or transport failure is [`OutcomeClass::Transport`], and a
//! request whose [`MuxConfig::request_timeout`] expires is
//! [`OutcomeClass::Timeout`] — which also poisons its connection (later
//! pipelined responses on that socket can no longer be trusted to line
//! up, so the rest of its FIFO fails as transport and the socket is
//! reconnected).
//!
//! [`OutcomeClass::Shed`]: faasrail_telemetry::OutcomeClass::Shed
//! [`OutcomeClass::Transport`]: faasrail_telemetry::OutcomeClass::Transport
//! [`OutcomeClass::Timeout`]: faasrail_telemetry::OutcomeClass::Timeout

use crate::client::ClientStats;
use crate::http;
use faasrail_loadgen::{Backend, InvocationRequest, InvocationResult};
use faasrail_reactor::http1;
use faasrail_reactor::{Interest, Poller, ReadBuf, Waker, WriteBuf};
use std::collections::VecDeque;
use std::io::{ErrorKind, Write};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::os::unix::io::AsRawFd;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Tuning for [`MuxHttpBackend`].
#[derive(Debug, Clone)]
pub struct MuxConfig {
    /// Fixed number of connections the driver multiplexes over.
    pub connections: usize,
    /// Maximum requests in flight (written, unanswered) per connection.
    pub pipeline_depth: usize,
    /// Budget for establishing one TCP connection.
    pub connect_timeout: Duration,
    /// Per-request deadline, submission to response.
    pub request_timeout: Duration,
}

impl Default for MuxConfig {
    fn default() -> Self {
        MuxConfig {
            connections: 8,
            pipeline_depth: 32,
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(30),
        }
    }
}

/// Rendezvous between a blocked worker thread and the driver.
struct Slot {
    done: Mutex<Option<InvocationResult>>,
    cv: Condvar,
}

impl Slot {
    fn new() -> Arc<Slot> {
        Arc::new(Slot { done: Mutex::new(None), cv: Condvar::new() })
    }

    fn complete(&self, result: InvocationResult) {
        let mut done = self.done.lock().unwrap();
        if done.is_none() {
            *done = Some(result);
            self.cv.notify_one();
        }
    }

    fn wait(&self, budget: Duration) -> InvocationResult {
        let mut done = self.done.lock().unwrap();
        let deadline = Instant::now() + budget;
        loop {
            if let Some(result) = done.take() {
                return result;
            }
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                // Defensive: the driver enforces the real deadline; this
                // only trips if the driver wedged or died.
                return InvocationResult::timeout("mux driver unresponsive");
            }
            let (guard, _timeout) = self.cv.wait_timeout(done, left).unwrap();
            done = guard;
        }
    }
}

/// One request waiting for a connection with pipeline room.
struct MuxJob {
    body: Vec<u8>,
    trace_hex: String,
    deadline: Instant,
    slot: Arc<Slot>,
}

/// One request written to a socket, awaiting its (in-order) response.
struct InFlight {
    deadline: Instant,
    slot: Arc<Slot>,
}

/// Submission queue shared between worker threads and the driver.
///
/// The eventfd wake is elided unless the driver is parked in `epoll_wait`
/// (`parked`) and nobody has woken it since its last drain (`notified`): the
/// driver drains `jobs` on every loop iteration regardless, so a wake only
/// matters when it interrupts a blocking wait.
struct Submit {
    jobs: Mutex<VecDeque<MuxJob>>,
    waker: Waker,
    shutdown: AtomicBool,
    parked: AtomicBool,
    notified: AtomicBool,
}

impl Submit {
    fn wake_if_parked(&self) {
        if self.parked.load(Ordering::SeqCst) && !self.notified.swap(true, Ordering::SeqCst) {
            self.waker.wake();
        }
    }

    fn force_wake(&self) {
        self.notified.store(true, Ordering::SeqCst);
        self.waker.wake();
    }
}

enum ConnSock {
    Idle,
    Live(TcpStream),
}

struct MuxConn {
    sock: ConnSock,
    rbuf: ReadBuf,
    wbuf: WriteBuf,
    inflight: VecDeque<InFlight>,
}

impl MuxConn {
    fn new() -> MuxConn {
        MuxConn {
            sock: ConnSock::Idle,
            rbuf: ReadBuf::with_capacity(16 * 1024),
            wbuf: WriteBuf::with_capacity(16 * 1024),
            inflight: VecDeque::new(),
        }
    }
}

const TOKEN_SUBMIT: u64 = u64::MAX;

struct Driver {
    addr: SocketAddr,
    host: String,
    cfg: MuxConfig,
    stats: Arc<ClientStats>,
    submit: Arc<Submit>,
    poller: Poller,
    conns: Vec<MuxConn>,
    /// Requests accepted but not yet written anywhere (all pipelines full
    /// or all sockets down).
    backlog: VecDeque<MuxJob>,
}

impl Driver {
    fn run(mut self) {
        let mut events = Vec::with_capacity(64);
        loop {
            let inflight_any =
                !self.backlog.is_empty() || self.conns.iter().any(|c| !c.inflight.is_empty());
            // Deadlines are enforced by polling at a coarse tick; parked
            // submission-only waits block indefinitely on the eventfd.
            let timeout = if inflight_any { Some(Duration::from_millis(10)) } else { None };
            events.clear();
            // Park protocol mirroring the gateway shard: publish intent to
            // block, then re-check the submission queue so a push that raced
            // past the elided wake is still picked up without sleeping.
            self.submit.parked.store(true, Ordering::SeqCst);
            let timeout = if self.submit.jobs.lock().unwrap().is_empty() {
                timeout
            } else {
                Some(Duration::from_millis(0))
            };
            let waited = self.poller.wait(timeout, &mut events);
            self.submit.parked.store(false, Ordering::SeqCst);
            if waited.is_err() {
                break;
            }
            for ev in &events {
                if ev.token != TOKEN_SUBMIT {
                    let idx = ev.token as usize;
                    if idx < self.conns.len() && !self.read_conn(idx) {
                        self.fail_conn(idx, "connection error");
                    }
                }
            }
            // Drained every iteration (wakes are only hints); reset the
            // eventfd level first so a wake racing this drain survives.
            self.submit.waker.drain();
            self.submit.notified.store(false, Ordering::SeqCst);
            {
                let mut jobs = self.submit.jobs.lock().unwrap();
                self.backlog.extend(jobs.drain(..));
            }
            self.expire_deadlines();
            self.assign_backlog();
            for idx in 0..self.conns.len() {
                if !self.flush_conn(idx) {
                    self.fail_conn(idx, "write error");
                }
            }
            if self.submit.shutdown.load(Ordering::SeqCst) {
                // Fail everything still outstanding and exit.
                while let Some(job) = self.backlog.pop_front() {
                    job.slot.complete(InvocationResult::transport("mux backend shut down"));
                    self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                }
                for idx in 0..self.conns.len() {
                    self.fail_conn(idx, "mux backend shut down");
                }
                break;
            }
        }
    }

    /// Move expired requests to `Timeout` and poison their connections.
    fn expire_deadlines(&mut self) {
        let now = Instant::now();
        while let Some(front) = self.backlog.front() {
            if front.deadline > now {
                break;
            }
            let job = self.backlog.pop_front().expect("checked front");
            self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
            job.slot.complete(InvocationResult::timeout("deadline exceeded before dispatch"));
        }
        for idx in 0..self.conns.len() {
            let expired = self.conns[idx].inflight.iter().any(|f| f.deadline <= now);
            if expired {
                self.timeout_conn(idx, now);
            }
        }
    }

    /// Establish (or re-establish) a socket for `idx`. Blocking connect —
    /// the driver briefly stalls, which is the price of a dependency-free
    /// connector; bounded by `connect_timeout`.
    fn ensure_connected(&mut self, idx: usize) -> bool {
        if matches!(self.conns[idx].sock, ConnSock::Live(_)) {
            return true;
        }
        match TcpStream::connect_timeout(&self.addr, self.cfg.connect_timeout) {
            Ok(stream) => {
                if stream.set_nonblocking(true).is_err() {
                    return false;
                }
                stream.set_nodelay(true).ok();
                if self.poller.add(stream.as_raw_fd(), Interest::EDGE_RW, idx as u64).is_err() {
                    return false;
                }
                self.stats.connects.fetch_add(1, Ordering::Relaxed);
                self.conns[idx].sock = ConnSock::Live(stream);
                true
            }
            Err(_) => false,
        }
    }

    /// Hand backlog jobs to the least-loaded connections with room.
    fn assign_backlog(&mut self) {
        while !self.backlog.is_empty() {
            let mut best: Option<(usize, usize)> = None;
            for idx in 0..self.conns.len() {
                let depth = self.conns[idx].inflight.len();
                if depth < self.cfg.pipeline_depth
                    && best.is_none_or(|(_, best_depth)| depth < best_depth)
                {
                    best = Some((idx, depth));
                }
            }
            let Some((idx, _)) = best else { return }; // every pipeline full
            let was_live = matches!(self.conns[idx].sock, ConnSock::Live(_));
            if !self.ensure_connected(idx) {
                // Upstream unreachable right now: fail fast, like a
                // connect error in the unpooled client.
                let job = self.backlog.pop_front().expect("checked non-empty");
                self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                job.slot.complete(InvocationResult::transport("connect failed"));
                continue;
            }
            let job = self.backlog.pop_front().expect("checked non-empty");
            // Same semantics as the pooled client: any request sent over an
            // already-established connection counts as a reuse, whether it
            // pipelines behind others or rides an idle keep-alive socket.
            if was_live {
                self.stats.reuses.fetch_add(1, Ordering::Relaxed);
            }
            let conn = &mut self.conns[idx];
            let mut extra: Vec<(&str, &str)> = Vec::new();
            if !job.trace_hex.is_empty() {
                extra.push((http::TRACE_HEADER, &job.trace_hex));
            }
            let _ = http1::write_request_head(
                &mut conn.wbuf,
                "POST",
                "/invoke",
                &self.host,
                "application/json",
                job.body.len(),
                true,
                &extra,
            );
            let _ = conn.wbuf.write_all(&job.body);
            conn.inflight.push_back(InFlight { deadline: job.deadline, slot: job.slot });
        }
    }

    /// Drain readable bytes and complete responses in FIFO order.
    /// Returns `false` when the connection must be failed.
    fn read_conn(&mut self, idx: usize) -> bool {
        let mut peer_closed = false;
        {
            let conn = &mut self.conns[idx];
            let ConnSock::Live(stream) = &mut conn.sock else { return true };
            loop {
                match conn.rbuf.fill_from(stream, 16 * 1024) {
                    Ok(0) => {
                        peer_closed = true;
                        break;
                    }
                    Ok(_) => continue,
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                    Err(_) => return false,
                }
            }
        }
        loop {
            let conn = &mut self.conns[idx];
            let head = match http1::parse_response(conn.rbuf.filled(), http::MAX_HEAD_BYTES) {
                Ok(Some(h)) if conn.rbuf.len() >= h.total_len() => h,
                Ok(_) => break,         // partial head or body
                Err(_) => return false, // garbled response stream
            };
            let Some(flight) = conn.inflight.pop_front() else {
                return false; // response with no matching request
            };
            let body = &conn.rbuf.filled()[head.body_range()];
            let result = classify(head.status, body);
            count(&self.stats, &result);
            flight.slot.complete(result);
            let keep = head.keep_alive;
            let total = head.total_len();
            conn.rbuf.consume(total);
            if !keep {
                // Server is hanging up after this response; anything else
                // pipelined behind it will never be answered here.
                return false;
            }
        }
        !peer_closed || self.conns[idx].inflight.is_empty()
    }

    fn flush_conn(&mut self, idx: usize) -> bool {
        let conn = &mut self.conns[idx];
        let ConnSock::Live(stream) = &mut conn.sock else { return true };
        if conn.wbuf.is_empty() {
            return true;
        }
        conn.wbuf.flush_to(stream).is_ok()
    }

    /// Tear a connection down, failing its whole in-flight FIFO as
    /// transport errors.
    fn fail_conn(&mut self, idx: usize, why: &str) {
        let conn = &mut self.conns[idx];
        if let ConnSock::Live(stream) = &conn.sock {
            let _ = self.poller.delete(stream.as_raw_fd());
        }
        conn.sock = ConnSock::Idle;
        let stale = conn.rbuf.len();
        conn.rbuf.consume(stale);
        while !conn.wbuf.is_empty() {
            let mut sink = std::io::sink();
            if conn.wbuf.flush_to(&mut sink).is_err() {
                break;
            }
        }
        while let Some(flight) = conn.inflight.pop_front() {
            self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
            flight.slot.complete(InvocationResult::transport(why));
        }
    }

    /// Deadline expiry on a pipelined connection: expired requests time
    /// out, the survivors fail as transport (their responses can no longer
    /// be matched once the socket is abandoned), and the socket drops.
    fn timeout_conn(&mut self, idx: usize, now: Instant) {
        let conn = &mut self.conns[idx];
        if let ConnSock::Live(stream) = &conn.sock {
            let _ = self.poller.delete(stream.as_raw_fd());
        }
        conn.sock = ConnSock::Idle;
        let stale = conn.rbuf.len();
        conn.rbuf.consume(stale);
        while !conn.wbuf.is_empty() {
            let mut sink = std::io::sink();
            if conn.wbuf.flush_to(&mut sink).is_err() {
                break;
            }
        }
        while let Some(flight) = conn.inflight.pop_front() {
            if flight.deadline <= now {
                self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                flight.slot.complete(InvocationResult::timeout("no response within deadline"));
            } else {
                self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                flight.slot.complete(InvocationResult::transport("connection poisoned by timeout"));
            }
        }
    }
}

/// Mirror of [`crate::HttpBackend`]'s status classification, minus retries.
fn classify(status: u16, body: &[u8]) -> InvocationResult {
    match status {
        200 => match serde_json::from_slice::<InvocationResult>(body) {
            Ok(result) => result,
            Err(e) => InvocationResult::transport(format!("unparseable 200 body: {e}")),
        },
        429 => InvocationResult::shed("gateway shedding load (429)"),
        s => InvocationResult::transport(format!("gateway returned {s}")),
    }
}

fn count(stats: &ClientStats, result: &InvocationResult) {
    use faasrail_telemetry::OutcomeClass;
    match result.outcome() {
        OutcomeClass::Ok => stats.ok.fetch_add(1, Ordering::Relaxed),
        OutcomeClass::AppError => stats.app_errors.fetch_add(1, Ordering::Relaxed),
        OutcomeClass::Timeout => stats.timeouts.fetch_add(1, Ordering::Relaxed),
        OutcomeClass::Transport => stats.transport_errors.fetch_add(1, Ordering::Relaxed),
        OutcomeClass::Shed => stats.shed.fetch_add(1, Ordering::Relaxed),
    };
}

/// A [`Backend`] that multiplexes invocations over a fixed connection pool
/// driven by one reactor thread. See the module docs for semantics.
pub struct MuxHttpBackend {
    submit: Arc<Submit>,
    stats: Arc<ClientStats>,
    request_timeout: Duration,
    driver: Option<std::thread::JoinHandle<()>>,
}

impl MuxHttpBackend {
    /// Connect a multiplexed backend to `addr` (e.g. `"127.0.0.1:8080"`).
    /// Sockets are established lazily on first use, so this cannot fail on
    /// an unreachable upstream — those failures surface per-invocation.
    pub fn new(addr: impl ToSocketAddrs, cfg: MuxConfig) -> std::io::Result<MuxHttpBackend> {
        let addr = addr
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(ErrorKind::NotFound, "unresolvable address"))?;
        let submit = Arc::new(Submit {
            jobs: Mutex::new(VecDeque::new()),
            waker: Waker::new()?,
            shutdown: AtomicBool::new(false),
            parked: AtomicBool::new(false),
            notified: AtomicBool::new(false),
        });
        let stats = Arc::new(ClientStats::default());
        let poller = Poller::new()?;
        poller.add(submit.waker.fd(), Interest::READ, TOKEN_SUBMIT)?;
        let driver = Driver {
            addr,
            host: addr.to_string(),
            cfg: cfg.clone(),
            stats: Arc::clone(&stats),
            submit: Arc::clone(&submit),
            poller,
            conns: (0..cfg.connections.max(1)).map(|_| MuxConn::new()).collect(),
            backlog: VecDeque::new(),
        };
        let handle = std::thread::spawn(move || driver.run());
        Ok(MuxHttpBackend {
            submit,
            stats,
            request_timeout: cfg.request_timeout,
            driver: Some(handle),
        })
    }

    /// Live client-side counters (shared shape with [`crate::HttpBackend`]).
    pub fn stats(&self) -> Arc<ClientStats> {
        Arc::clone(&self.stats)
    }

    /// One-line human summary of the counters.
    pub fn summary(&self) -> String {
        format!(
            "mux connects={} reuses={} ok={} app-error={} timeout={} transport={} shed={}",
            self.stats.connects.load(Ordering::Relaxed),
            self.stats.reuses.load(Ordering::Relaxed),
            self.stats.ok.load(Ordering::Relaxed),
            self.stats.app_errors.load(Ordering::Relaxed),
            self.stats.timeouts.load(Ordering::Relaxed),
            self.stats.transport_errors.load(Ordering::Relaxed),
            self.stats.shed.load(Ordering::Relaxed),
        )
    }
}

impl Backend for MuxHttpBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let body = match serde_json::to_vec(req) {
            Ok(b) => b,
            Err(e) => {
                self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                return InvocationResult::transport(format!("encode: {e}"));
            }
        };
        let trace_hex = if req.trace_id != 0 {
            faasrail_telemetry::format_trace_id(req.trace_id)
        } else {
            String::new()
        };
        let slot = Slot::new();
        let job = MuxJob {
            body,
            trace_hex,
            deadline: Instant::now() + self.request_timeout,
            slot: Arc::clone(&slot),
        };
        self.submit.jobs.lock().unwrap().push_back(job);
        self.submit.wake_if_parked();
        // The driver owns the real deadline; the grace term only guards
        // against a wedged driver thread.
        slot.wait(self.request_timeout + Duration::from_secs(5))
    }
}

impl Drop for MuxHttpBackend {
    fn drop(&mut self) {
        self.submit.shutdown.store(true, Ordering::SeqCst);
        self.submit.force_wake();
        if let Some(handle) = self.driver.take() {
            let _ = handle.join();
        }
    }
}

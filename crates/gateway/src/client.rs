//! `HttpBackend`: a [`Backend`] that replays invocations over the wire.
//!
//! Plugging this into the load generator turns an in-process replay into an
//! over-the-wire one against a [`crate::Gateway`] (or anything speaking the
//! same `POST /invoke` JSON protocol). Design points:
//!
//! * **connection pool** — keep-alive connections are parked in a
//!   `parking_lot`-guarded LIFO free-list and reused across invocations;
//!   a reused connection that fails before yielding a response is replaced
//!   by a fresh one without consuming a retry attempt (it was likely closed
//!   by the peer while idle);
//! * **deadline** — each invocation gets one overall deadline
//!   (`request_timeout`); socket timeouts are continuously re-armed to the
//!   remaining budget, and an exhausted budget classifies as
//!   [`OutcomeClass::Timeout`](faasrail_loadgen::OutcomeClass::Timeout);
//! * **retry** — connect failures, transport errors, `429` and `5xx`
//!   responses are retried under a seeded capped-exponential
//!   [`RetryPolicy`], with each backoff sleep clamped to the remaining
//!   deadline (a retry can never overshoot the invocation budget);
//!   application failures (`200` with `ok: false`) and other `4xx` are
//!   **not** retried — invocations are not assumed idempotent, and a `404`
//!   will not get better by resending;
//! * **circuit breaker** — an optional [`CircuitBreaker`] shared across
//!   worker threads trips on consecutive transport failures, timeouts, and
//!   `429`/`5xx` responses; while open, invocations fail fast as
//!   [`OutcomeClass::Shed`](faasrail_loadgen::OutcomeClass::Shed) without touching the network, and a `429` that
//!   survives the retry budget also classifies as shed (the upstream
//!   refused the work; nothing broke).

use crate::backoff::{RetryPolicy, SplitMix64};
use crate::breaker::{BreakerConfig, CircuitBreaker};
use crate::http;
use faasrail_loadgen::{Backend, InvocationRequest, InvocationResult};
use parking_lot::Mutex;
use std::io::{self, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Client configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HttpBackendConfig {
    /// Timeout for establishing one TCP connection (also bounded by the
    /// invocation's remaining deadline).
    pub connect_timeout: Duration,
    /// Overall per-invocation deadline across all attempts and backoff.
    pub request_timeout: Duration,
    /// Retry policy for retryable failures.
    pub retry: RetryPolicy,
    /// Max parked keep-alive connections; excess connections are closed on
    /// check-in rather than pooled.
    pub pool_capacity: usize,
    /// Circuit breaker (disabled by default: `failure_threshold: 0`).
    pub breaker: BreakerConfig,
}

impl Default for HttpBackendConfig {
    fn default() -> Self {
        HttpBackendConfig {
            connect_timeout: Duration::from_secs(1),
            request_timeout: Duration::from_secs(30),
            retry: RetryPolicy::default(),
            pool_capacity: 64,
            breaker: BreakerConfig::default(),
        }
    }
}

/// Client-side transport counters, updated lock-free.
#[derive(Debug, Default)]
pub struct ClientStats {
    /// Fresh TCP connections established.
    pub connects: AtomicU64,
    /// Invocation attempts served by a pooled connection.
    pub reuses: AtomicU64,
    /// Retry attempts (beyond each invocation's first).
    pub retries: AtomicU64,
    /// Invocations returning `ok: true`.
    pub ok: AtomicU64,
    /// Invocations returning an application failure (not retried).
    pub app_errors: AtomicU64,
    /// Invocations abandoned at the deadline.
    pub timeouts: AtomicU64,
    /// Invocations that exhausted retries or hit a non-retryable transport
    /// failure.
    pub transport_errors: AtomicU64,
    /// Invocations shed: fast-failed by an open circuit breaker, or `429`
    /// through the whole retry budget.
    pub shed: AtomicU64,
}

enum TryError {
    /// Worth another attempt (connect failure, broken exchange, `429`,
    /// 5xx). `shed` marks upstream overload refusals (`429`) so an
    /// exhausted retry budget classifies as [`OutcomeClass::Shed`](faasrail_loadgen::OutcomeClass::Shed) rather
    /// than transport; `retry_after` carries the server's backoff hint.
    Retryable { msg: String, shed: bool, retry_after: Option<u64> },
    /// Deadline exhausted mid-attempt.
    Timeout(String),
    /// Not worth retrying (e.g. a non-429 4xx).
    Fatal(String),
}

/// A [`Backend`] that ships each invocation to a gateway over HTTP/1.1.
pub struct HttpBackend {
    addr: SocketAddr,
    host: String,
    cfg: HttpBackendConfig,
    idle: Mutex<Vec<TcpStream>>,
    rng: Mutex<SplitMix64>,
    stats: ClientStats,
    breaker: CircuitBreaker,
    name: String,
}

impl HttpBackend {
    /// Resolve `target` (e.g. `"127.0.0.1:7471"`) and build a client. No
    /// connection is opened until the first invocation.
    pub fn connect(target: &str, cfg: HttpBackendConfig) -> io::Result<HttpBackend> {
        let addr = target.to_socket_addrs()?.next().ok_or_else(|| {
            io::Error::new(ErrorKind::NotFound, format!("unresolvable: {target}"))
        })?;
        Ok(HttpBackend {
            addr,
            host: target.to_string(),
            cfg,
            idle: Mutex::new(Vec::new()),
            rng: Mutex::new(SplitMix64::new(cfg.retry.jitter_seed)),
            stats: ClientStats::default(),
            breaker: CircuitBreaker::new(cfg.breaker),
            name: format!("http:{target}"),
        })
    }

    /// Transport counters.
    pub fn stats(&self) -> &ClientStats {
        &self.stats
    }

    /// The shared circuit breaker (for diagnostics and tests).
    pub fn breaker(&self) -> &CircuitBreaker {
        &self.breaker
    }

    /// One-line transport summary for run reports.
    pub fn transport_summary(&self) -> String {
        format!(
            "connects={} reuses={} retries={} ok={} app-error={} timeout={} transport={} \
             shed={} breaker-trips={}",
            self.stats.connects.load(Ordering::Relaxed),
            self.stats.reuses.load(Ordering::Relaxed),
            self.stats.retries.load(Ordering::Relaxed),
            self.stats.ok.load(Ordering::Relaxed),
            self.stats.app_errors.load(Ordering::Relaxed),
            self.stats.timeouts.load(Ordering::Relaxed),
            self.stats.transport_errors.load(Ordering::Relaxed),
            self.stats.shed.load(Ordering::Relaxed),
            self.breaker.trips.load(Ordering::Relaxed),
        )
    }

    fn checkout(&self) -> Option<TcpStream> {
        self.idle.lock().pop()
    }

    fn checkin(&self, stream: TcpStream) {
        let mut idle = self.idle.lock();
        if idle.len() < self.cfg.pool_capacity {
            idle.push(stream);
        }
    }

    fn open(&self, deadline: Instant) -> io::Result<TcpStream> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        let timeout = self.cfg.connect_timeout.min(remaining);
        if timeout < Duration::from_millis(1) {
            return Err(io::Error::new(ErrorKind::TimedOut, "no budget left to connect"));
        }
        let stream = TcpStream::connect_timeout(&self.addr, timeout)?;
        stream.set_nodelay(true).ok();
        self.stats.connects.fetch_add(1, Ordering::Relaxed);
        Ok(stream)
    }

    /// One request/response exchange on `stream`, with socket timeouts
    /// armed to the remaining deadline. A non-zero `trace_id` is propagated
    /// as `X-FaaSRail-Trace` so the gateway can tag its server-side span
    /// without parsing the body.
    fn exchange(
        &self,
        stream: &TcpStream,
        body: &[u8],
        trace_id: u64,
        deadline: Instant,
    ) -> io::Result<http::Response> {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining < Duration::from_millis(1) {
            return Err(io::Error::new(ErrorKind::TimedOut, "deadline exhausted"));
        }
        stream.set_write_timeout(Some(remaining))?;
        stream.set_read_timeout(Some(remaining))?;
        let hex = faasrail_telemetry::format_trace_id(trace_id);
        let mut extra: Vec<(&str, &str)> = Vec::new();
        if trace_id != 0 {
            extra.push((http::TRACE_HEADER, &hex));
        }
        http::write_request_with(
            &mut (&*stream),
            "POST",
            "/invoke",
            &self.host,
            "application/json",
            &extra,
            body,
            true,
        )?;
        http::read_response(&mut BufReader::new(stream))
    }
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(e.kind(), ErrorKind::TimedOut | ErrorKind::WouldBlock)
}

impl Backend for HttpBackend {
    fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
        let body = match serde_json::to_vec(req) {
            Ok(b) => b,
            Err(e) => {
                self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                return InvocationResult::transport(format!("encode: {e}"));
            }
        };
        if !self.breaker.allow() {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            return InvocationResult::shed("circuit breaker open: failing fast");
        }
        let deadline = Instant::now() + self.cfg.request_timeout;
        let attempts = self.cfg.retry.max_attempts.max(1);
        let mut last_err = String::new();
        let mut last_shed = false;
        let mut retry_after_hint: Option<u64> = None;

        for attempt in 0..attempts {
            if attempt > 0 {
                let mut delay = {
                    let mut rng = self.rng.lock();
                    self.cfg.retry.delay(attempt - 1, &mut rng)
                };
                if let Some(secs) = retry_after_hint.take() {
                    // Honor the server's `Retry-After` hint: back off at
                    // least that long (still subject to the deadline clamp
                    // below).
                    delay = delay.max(Duration::from_secs(secs));
                }
                let remaining = deadline.saturating_duration_since(Instant::now());
                if remaining <= delay {
                    // The backoff would overshoot the invocation budget:
                    // give up now instead of sleeping past the deadline and
                    // mislabeling the result a transport failure. A shed
                    // request stays shed (the server refused it and asked
                    // for more patience than the budget allows).
                    return if last_shed {
                        self.stats.shed.fetch_add(1, Ordering::Relaxed);
                        InvocationResult::shed(format!(
                            "deadline before retry {attempt}: {last_err}"
                        ))
                    } else {
                        self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                        InvocationResult::timeout(format!(
                            "deadline before retry {attempt}: {last_err}"
                        ))
                    };
                }
                std::thread::sleep(delay.min(remaining));
                self.stats.retries.fetch_add(1, Ordering::Relaxed);
            }

            match self.try_attempt(&body, req.trace_id, deadline) {
                Ok(result) => {
                    // Any parsed 200 — success or application failure —
                    // proves the transport path healthy.
                    self.breaker.on_success();
                    if result.ok {
                        self.stats.ok.fetch_add(1, Ordering::Relaxed);
                    } else {
                        self.stats.app_errors.fetch_add(1, Ordering::Relaxed);
                    }
                    return result;
                }
                Err(TryError::Timeout(msg)) => {
                    self.breaker.on_failure();
                    self.stats.timeouts.fetch_add(1, Ordering::Relaxed);
                    return InvocationResult::timeout(msg);
                }
                Err(TryError::Fatal(msg)) => {
                    // A non-429 4xx is a responsive server rejecting this
                    // request — not a health signal against the transport.
                    self.breaker.on_success();
                    self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
                    return InvocationResult::transport(msg);
                }
                Err(TryError::Retryable { msg, shed, retry_after }) => {
                    self.breaker.on_failure();
                    last_err = msg;
                    last_shed = shed;
                    retry_after_hint = retry_after;
                }
            }
        }
        if last_shed {
            self.stats.shed.fetch_add(1, Ordering::Relaxed);
            InvocationResult::shed(format!("shed after {attempts} attempts: {last_err}"))
        } else {
            self.stats.transport_errors.fetch_add(1, Ordering::Relaxed);
            InvocationResult::transport(format!("gave up after {attempts} attempts: {last_err}"))
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

impl HttpBackend {
    /// One attempt including response interpretation: `200` parses into an
    /// [`InvocationResult`], `429` is retryable-as-shed (honoring any
    /// `Retry-After`), `5xx` is retryable, other statuses are fatal.
    fn try_attempt(
        &self,
        body: &[u8],
        trace_id: u64,
        deadline: Instant,
    ) -> Result<InvocationResult, TryError> {
        let resp = self.try_once_at(body, trace_id, deadline)?;
        match resp.status {
            200 => serde_json::from_slice::<InvocationResult>(&resp.body).map_err(|e| {
                TryError::Retryable {
                    msg: format!("unparseable 200 body: {e}"),
                    shed: false,
                    retry_after: None,
                }
            }),
            429 => Err(TryError::Retryable {
                msg: format!("HTTP 429: {}", String::from_utf8_lossy(&resp.body)),
                shed: true,
                retry_after: resp.retry_after,
            }),
            s if (500..600).contains(&s) => Err(TryError::Retryable {
                msg: format!("HTTP {s}: {}", String::from_utf8_lossy(&resp.body)),
                shed: false,
                retry_after: resp.retry_after,
            }),
            s => Err(TryError::Fatal(format!("HTTP {s}: {}", String::from_utf8_lossy(&resp.body)))),
        }
    }

    fn try_once_at(
        &self,
        body: &[u8],
        trace_id: u64,
        deadline: Instant,
    ) -> Result<http::Response, TryError> {
        let mut pooled_fallback = true;
        loop {
            let (stream, reused) = match self.checkout() {
                Some(s) => {
                    self.stats.reuses.fetch_add(1, Ordering::Relaxed);
                    (s, true)
                }
                None => match self.open(deadline) {
                    Ok(s) => (s, false),
                    Err(e) if is_timeout(&e) => {
                        return Err(TryError::Timeout(format!("connect: {e}")))
                    }
                    Err(e) => {
                        return Err(TryError::Retryable {
                            msg: format!("connect: {e}"),
                            shed: false,
                            retry_after: None,
                        })
                    }
                },
            };
            match self.exchange(&stream, body, trace_id, deadline) {
                Ok(resp) => {
                    if resp.keep_alive {
                        self.checkin(stream);
                    }
                    return Ok(resp);
                }
                Err(e) if is_timeout(&e) => return Err(TryError::Timeout(e.to_string())),
                Err(e) => {
                    if reused && pooled_fallback {
                        pooled_fallback = false;
                        continue;
                    }
                    return Err(TryError::Retryable {
                        msg: e.to_string(),
                        shed: false,
                        retry_after: None,
                    });
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_loadgen::OutcomeClass;
    use faasrail_workloads::{WorkloadId, WorkloadInput};
    use std::net::TcpListener;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn request() -> InvocationRequest {
        InvocationRequest {
            workload: WorkloadId(7),
            input: WorkloadInput::Pyaes { bytes: 4096 },
            function_index: 0,
            scheduled_at_ms: 0,
            trace_id: 0,
        }
    }

    /// A canned server: answers each request on each connection with the
    /// next status from `script` (repeating the last entry forever). `200`
    /// carries a successful `InvocationResult`; everything else a plain
    /// body. Returns (address, served-request counter).
    fn canned_server(script: Vec<u16>) -> (String, Arc<AtomicUsize>) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&served);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(&stream);
                while let Ok(Some(_req)) = http::read_request(&mut reader) {
                    let n = counter.fetch_add(1, Ordering::SeqCst);
                    let status =
                        script.get(n).copied().or_else(|| script.last().copied()).unwrap_or(200);
                    let ok = if status == 200 {
                        serde_json::to_vec(&InvocationResult::success(2.5, false)).unwrap()
                    } else {
                        b"canned failure".to_vec()
                    };
                    if http::write_response(&mut (&stream), status, "application/json", &ok, true)
                        .is_err()
                    {
                        break;
                    }
                }
            }
        });
        (addr, served)
    }

    fn fast_cfg(attempts: u32) -> HttpBackendConfig {
        HttpBackendConfig {
            connect_timeout: Duration::from_millis(500),
            request_timeout: Duration::from_secs(5),
            retry: RetryPolicy {
                max_attempts: attempts,
                base: Duration::from_millis(1),
                cap: Duration::from_millis(5),
                jitter: 0.5,
                jitter_seed: 7,
            },
            pool_capacity: 4,
            breaker: BreakerConfig::default(),
        }
    }

    #[test]
    fn success_over_the_wire() {
        let (addr, served) = canned_server(vec![200]);
        let be = HttpBackend::connect(&addr, fast_cfg(3)).unwrap();
        let res = be.invoke(&request());
        assert!(res.ok);
        assert_eq!(res.service_ms, 2.5);
        assert_eq!(res.outcome(), OutcomeClass::Ok);
        assert_eq!(served.load(Ordering::SeqCst), 1);
        assert_eq!(be.stats().retries.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn trace_header_reaches_the_server_only_when_traced() {
        // A server that records the trace id of each parsed request.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let seen: Arc<Mutex<Vec<Option<u64>>>> = Arc::new(Mutex::new(Vec::new()));
        let log = Arc::clone(&seen);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(&stream);
                while let Ok(Some(req)) = http::read_request(&mut reader) {
                    log.lock().push(req.trace_id);
                    let body = serde_json::to_vec(&InvocationResult::success(1.0, false)).unwrap();
                    if http::write_response(&mut (&stream), 200, "application/json", &body, true)
                        .is_err()
                    {
                        break;
                    }
                }
            }
        });
        let be = HttpBackend::connect(&addr, fast_cfg(2)).unwrap();
        let traced = InvocationRequest { trace_id: 0xfeed_f00d, ..request() };
        assert!(be.invoke(&traced).ok);
        assert!(be.invoke(&request()).ok, "untraced request");
        assert_eq!(*seen.lock(), vec![Some(0xfeed_f00d), None]);
    }

    #[test]
    fn pooled_connection_is_reused() {
        let (addr, _served) = canned_server(vec![200]);
        let be = HttpBackend::connect(&addr, fast_cfg(3)).unwrap();
        assert!(be.invoke(&request()).ok);
        assert!(be.invoke(&request()).ok);
        assert_eq!(be.stats().connects.load(Ordering::Relaxed), 1, "second call reuses");
        assert_eq!(be.stats().reuses.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn app_failure_is_not_retried() {
        // A 200 response whose body says ok=false: an application-level
        // failure, which must not be retried (invocations are not assumed
        // idempotent).
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let served = Arc::new(AtomicUsize::new(0));
        let counter = Arc::clone(&served);
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(&stream);
                while let Ok(Some(_req)) = http::read_request(&mut reader) {
                    counter.fetch_add(1, Ordering::SeqCst);
                    let body =
                        serde_json::to_vec(&InvocationResult::app_error(1.0, "boom")).unwrap();
                    if http::write_response(&mut (&stream), 200, "application/json", &body, true)
                        .is_err()
                    {
                        break;
                    }
                }
            }
        });
        let be = HttpBackend::connect(&addr, fast_cfg(5)).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert_eq!(res.outcome(), OutcomeClass::AppError);
        assert_eq!(res.error.as_deref(), Some("boom"));
        assert_eq!(served.load(Ordering::SeqCst), 1, "app failures are final");
        assert_eq!(be.stats().retries.load(Ordering::Relaxed), 0);
        assert_eq!(be.stats().app_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn transient_5xx_is_retried_to_success() {
        let (addr, served) = canned_server(vec![500, 500, 200]);
        let be = HttpBackend::connect(&addr, fast_cfg(4)).unwrap();
        let res = be.invoke(&request());
        assert!(res.ok, "third attempt succeeds: {:?}", res.error);
        assert_eq!(served.load(Ordering::SeqCst), 3);
        assert_eq!(be.stats().retries.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn gives_up_after_attempt_budget() {
        let (addr, served) = canned_server(vec![500]);
        let be = HttpBackend::connect(&addr, fast_cfg(3)).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert_eq!(res.outcome(), OutcomeClass::Transport);
        assert!(res.error.as_deref().unwrap_or("").contains("gave up after 3 attempts"));
        assert_eq!(served.load(Ordering::SeqCst), 3, "exactly the attempt budget");
        assert_eq!(be.stats().transport_errors.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn fourxx_is_fatal_without_retry() {
        let (addr, served) = canned_server(vec![404]);
        let be = HttpBackend::connect(&addr, fast_cfg(5)).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert_eq!(res.outcome(), OutcomeClass::Transport);
        assert_eq!(served.load(Ordering::SeqCst), 1, "4xx is not retryable");
    }

    #[test]
    fn unreachable_target_classifies_as_transport() {
        // Bind then drop a listener so the port is (very likely) closed.
        let addr = {
            let l = TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap().to_string()
        };
        let be = HttpBackend::connect(&addr, fast_cfg(2)).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert!(matches!(res.outcome(), OutcomeClass::Transport | OutcomeClass::Timeout));
    }

    #[test]
    fn deadline_exhaustion_classifies_as_timeout() {
        // A server that accepts but never responds.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            let mut held = Vec::new();
            for stream in listener.incoming() {
                held.push(stream); // keep the socket open, never reply
            }
        });
        let cfg = HttpBackendConfig { request_timeout: Duration::from_millis(200), ..fast_cfg(3) };
        let be = HttpBackend::connect(&addr, cfg).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert_eq!(res.outcome(), OutcomeClass::Timeout);
        assert_eq!(be.stats().timeouts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exhausted_429s_classify_as_shed() {
        let (addr, served) = canned_server(vec![429]);
        let be = HttpBackend::connect(&addr, fast_cfg(3)).unwrap();
        let res = be.invoke(&request());
        assert!(!res.ok);
        assert_eq!(res.outcome(), OutcomeClass::Shed, "{:?}", res.error);
        assert!(res.error.as_deref().unwrap_or("").contains("shed after 3 attempts"));
        assert_eq!(served.load(Ordering::SeqCst), 3, "429 is retried before shedding");
        assert_eq!(be.stats().shed.load(Ordering::Relaxed), 1);
        assert_eq!(be.stats().transport_errors.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn breaker_trips_on_consecutive_failures_and_fails_fast() {
        let (addr, served) = canned_server(vec![500]);
        let cfg = HttpBackendConfig {
            retry: RetryPolicy { max_attempts: 1, ..fast_cfg(1).retry },
            breaker: BreakerConfig::tripping(2, Duration::from_secs(30)),
            ..fast_cfg(1)
        };
        let be = HttpBackend::connect(&addr, cfg).unwrap();
        assert_eq!(be.invoke(&request()).outcome(), OutcomeClass::Transport);
        assert_eq!(be.invoke(&request()).outcome(), OutcomeClass::Transport);
        assert!(be.breaker().is_open(), "two consecutive failures trip the breaker");

        let res = be.invoke(&request());
        assert_eq!(res.outcome(), OutcomeClass::Shed);
        assert!(res.error.as_deref().unwrap_or("").contains("circuit breaker open"));
        assert_eq!(served.load(Ordering::SeqCst), 2, "fast fail never touched the network");
        assert_eq!(be.stats().shed.load(Ordering::Relaxed), 1);
        assert_eq!(be.breaker().trips.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn breaker_recovers_through_a_half_open_probe() {
        let (addr, served) = canned_server(vec![500, 200]);
        let cfg = HttpBackendConfig {
            retry: RetryPolicy { max_attempts: 1, ..fast_cfg(1).retry },
            breaker: BreakerConfig::tripping(1, Duration::from_millis(50)),
            ..fast_cfg(1)
        };
        let be = HttpBackend::connect(&addr, cfg).unwrap();
        assert_eq!(be.invoke(&request()).outcome(), OutcomeClass::Transport);
        assert!(be.breaker().is_open());
        assert_eq!(be.invoke(&request()).outcome(), OutcomeClass::Shed);

        std::thread::sleep(Duration::from_millis(80));
        assert!(be.invoke(&request()).ok, "probe succeeds and closes the breaker");
        assert!(!be.breaker().is_open());
        assert!(be.invoke(&request()).ok);
        assert_eq!(served.load(Ordering::SeqCst), 3, "one 500, one probe, one normal");
        assert_eq!(be.breaker().trips.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn retry_backoff_never_overshoots_the_deadline() {
        let (addr, _served) = canned_server(vec![500]);
        let cfg = HttpBackendConfig {
            request_timeout: Duration::from_millis(150),
            retry: RetryPolicy {
                max_attempts: 5,
                base: Duration::from_millis(400),
                cap: Duration::from_millis(400),
                jitter: 0.0,
                jitter_seed: 7,
            },
            ..fast_cfg(5)
        };
        let be = HttpBackend::connect(&addr, cfg).unwrap();
        let start = Instant::now();
        let res = be.invoke(&request());
        let elapsed = start.elapsed();
        assert_eq!(res.outcome(), OutcomeClass::Timeout, "{:?}", res.error);
        assert!(
            elapsed < Duration::from_millis(350),
            "a 400 ms backoff must not be slept on a 150 ms budget: took {elapsed:?}"
        );
    }

    #[test]
    fn retry_after_hint_delays_the_next_attempt() {
        // First response: 429 with `Retry-After: 1`; then 200s. The second
        // attempt must wait out the hint, not just the millisecond backoff.
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        std::thread::spawn(move || {
            for stream in listener.incoming() {
                let Ok(stream) = stream else { break };
                let mut reader = BufReader::new(&stream);
                let mut first = true;
                while let Ok(Some(_req)) = http::read_request(&mut reader) {
                    let res = if first {
                        first = false;
                        http::write_response_with(
                            &mut (&stream),
                            429,
                            "text/plain",
                            &[("Retry-After", "1")],
                            b"busy",
                            true,
                        )
                    } else {
                        let body =
                            serde_json::to_vec(&InvocationResult::success(1.0, false)).unwrap();
                        http::write_response(&mut (&stream), 200, "application/json", &body, true)
                    };
                    if res.is_err() {
                        break;
                    }
                }
            }
        });
        let be = HttpBackend::connect(&addr, fast_cfg(3)).unwrap();
        let start = Instant::now();
        let res = be.invoke(&request());
        assert!(res.ok, "{:?}", res.error);
        assert!(
            start.elapsed() >= Duration::from_millis(950),
            "Retry-After hint ignored: retried after {:?}",
            start.elapsed()
        );
    }
}

//! Capped exponential backoff with deterministic seeded jitter.
//!
//! Retry schedules must be reproducible for the generator to be a research
//! instrument: two replays of the same spec under the same fault pattern
//! should retry at the same instants. All randomness therefore flows from a
//! seeded [`SplitMix64`] stream rather than a global entropy source.

use std::time::Duration;

/// SplitMix64: a tiny, high-quality, seedable PRNG (Steele et al., OOPSLA
/// '14). Dependency-free so the gateway adds no crates beyond the
/// workspace's.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// Seed the stream; the same seed always yields the same sequence.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` (53 mantissa bits).
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One uniform draw in `[0, 1)` at position `n` of the stream seeded by
/// `seed` — random access without carrying mutable state, used by the
/// server's fault injector so concurrent connections stay deterministic.
pub fn mix_fraction(seed: u64, n: u64) -> f64 {
    SplitMix64::new(seed ^ n.wrapping_mul(0xA076_1D64_78BD_642F)).next_f64()
}

/// Retry policy for transport-level failures: capped exponential backoff
/// with seeded jitter.
///
/// The pre-jitter delay before retry `i` (0-based) is
/// `min(cap, base · 2^i)`; jitter then randomizes the fraction `jitter` of
/// it, so the actual delay lies in `[(1 − jitter) · d, d)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts (the first try plus retries). `1` disables retry.
    pub max_attempts: u32,
    /// Backoff before the first retry; doubles each subsequent retry.
    pub base: Duration,
    /// Upper bound on any single backoff delay.
    pub cap: Duration,
    /// Fraction of each delay that is randomized, in `[0, 1]`. `0.0` gives
    /// the deterministic exponential schedule; `1.0` is "full jitter".
    pub jitter: f64,
    /// Seed for the jitter stream — same seed, same schedule.
    pub jitter_seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            base: Duration::from_millis(10),
            cap: Duration::from_secs(1),
            jitter: 0.5,
            jitter_seed: 0x5EED_FAA5,
        }
    }
}

impl RetryPolicy {
    /// The deterministic (pre-jitter) exponential delay before retry
    /// `retry` (0-based): `min(cap, base · 2^retry)`.
    pub fn exponential(&self, retry: u32) -> Duration {
        let exp = self.base.as_secs_f64() * 2f64.powi(retry.min(63) as i32);
        Duration::from_secs_f64(exp.min(self.cap.as_secs_f64()))
    }

    /// The jittered delay before retry `retry`, drawing from `rng`.
    pub fn delay(&self, retry: u32, rng: &mut SplitMix64) -> Duration {
        let exp = self.exponential(retry).as_secs_f64();
        let j = self.jitter.clamp(0.0, 1.0);
        Duration::from_secs_f64(exp * (1.0 - j) + exp * j * rng.next_f64())
    }

    /// The full backoff schedule (`max_attempts − 1` delays), deterministic
    /// under `jitter_seed`.
    pub fn schedule(&self) -> Vec<Duration> {
        let mut rng = SplitMix64::new(self.jitter_seed);
        (0..self.max_attempts.saturating_sub(1)).map(|i| self.delay(i, &mut rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy(jitter: f64) -> RetryPolicy {
        RetryPolicy {
            max_attempts: 6,
            base: Duration::from_millis(10),
            cap: Duration::from_millis(100),
            jitter,
            jitter_seed: 42,
        }
    }

    #[test]
    fn schedule_is_capped_exponential_without_jitter() {
        let p = policy(0.0);
        let expect: Vec<Duration> = [10, 20, 40, 80, 100] // capped at 100 ms
            .iter()
            .map(|&ms| Duration::from_millis(ms))
            .collect();
        assert_eq!(p.schedule(), expect);
    }

    #[test]
    fn schedule_length_is_attempts_minus_one() {
        assert_eq!(policy(0.5).schedule().len(), 5);
        let single = RetryPolicy { max_attempts: 1, ..policy(0.5) };
        assert!(single.schedule().is_empty(), "one attempt means no backoff");
        let zero = RetryPolicy { max_attempts: 0, ..policy(0.5) };
        assert!(zero.schedule().is_empty());
    }

    #[test]
    fn jitter_is_deterministic_under_seed() {
        let p = policy(0.5);
        assert_eq!(p.schedule(), p.schedule(), "same seed, same schedule");
        let other = RetryPolicy { jitter_seed: 43, ..p };
        assert_ne!(p.schedule(), other.schedule(), "different seed, different jitter");
    }

    #[test]
    fn jitter_stays_within_the_randomized_band() {
        let p = policy(0.5);
        for (i, d) in p.schedule().iter().enumerate() {
            let exp = p.exponential(i as u32);
            assert!(*d >= exp.mul_f64(0.5), "retry {i}: {d:?} below half of {exp:?}");
            assert!(*d <= exp, "retry {i}: {d:?} above {exp:?}");
        }
    }

    #[test]
    fn exponential_caps_and_never_overflows() {
        let p = policy(0.0);
        assert_eq!(p.exponential(0), Duration::from_millis(10));
        assert_eq!(p.exponential(3), Duration::from_millis(80));
        assert_eq!(p.exponential(4), Duration::from_millis(100), "capped");
        assert_eq!(p.exponential(1_000), Duration::from_millis(100), "huge retry index capped");
    }

    #[test]
    fn splitmix_is_deterministic_and_uniform_ish() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut r = SplitMix64::new(1234);
        let mean: f64 = (0..10_000).map(|_| r.next_f64()).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean of U(0,1) draws was {mean}");
    }

    #[test]
    fn mix_fraction_is_stable_and_spread() {
        assert_eq!(mix_fraction(9, 100), mix_fraction(9, 100));
        let below = (0..1_000).filter(|&n| mix_fraction(9, n) < 0.25).count();
        assert!((150..350).contains(&below), "~25% expected, got {below}/1000");
    }
}

//! Client-side circuit breaker for [`crate::HttpBackend`].
//!
//! Under sustained backend failure, retrying every invocation at full rate
//! turns a partial outage into a self-inflicted one: the load generator
//! piles retries onto a gateway that is already refusing work, and every
//! failed invocation still burns a full per-request deadline. The breaker
//! is the standard remedy (closed → open → half-open):
//!
//! * **closed** — requests flow; consecutive classified failures
//!   (transport errors, timeouts, `429`/5xx responses) are counted, and
//!   hitting the threshold trips the breaker;
//! * **open** — requests fail fast as [`OutcomeClass::Shed`] without
//!   touching the network, for a configured cool-down;
//! * **half-open** — after the cool-down, a limited number of probe
//!   requests go through; enough successes close the breaker, any failure
//!   re-opens it.
//!
//! Fast-failed requests are classified as shed, not transport, so replay
//! metrics distinguish "the client chose not to send" from "the network
//! broke" ([`OutcomeClass::Shed`] is exactly this distinction).
//!
//! [`OutcomeClass::Shed`]: faasrail_loadgen::OutcomeClass::Shed

use parking_lot::Mutex;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Breaker tuning. The default (`failure_threshold: 0`) disables the
/// breaker entirely: every request is allowed, nothing ever trips.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakerConfig {
    /// Consecutive classified failures that trip the breaker open.
    /// `0` disables the breaker.
    pub failure_threshold: u32,
    /// Cool-down while open: requests fail fast until it elapses.
    pub open_for: Duration,
    /// Successful probes required in half-open before closing again.
    pub half_open_probes: u32,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            failure_threshold: 0,
            open_for: Duration::from_secs(1),
            half_open_probes: 1,
        }
    }
}

impl BreakerConfig {
    /// An enabled breaker with the given trip threshold and cool-down.
    pub fn tripping(failure_threshold: u32, open_for: Duration) -> Self {
        BreakerConfig { failure_threshold, open_for, half_open_probes: 1 }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum State {
    Closed { consecutive_failures: u32 },
    Open { until: Instant },
    HalfOpen { successes: u32 },
}

/// The breaker itself: shared by all worker threads of one `HttpBackend`
/// (one backend = one upstream = one shared health verdict).
#[derive(Debug)]
pub struct CircuitBreaker {
    cfg: BreakerConfig,
    state: Mutex<State>,
    /// Times the breaker tripped open (closed/half-open → open).
    pub trips: AtomicU64,
    /// Requests refused while open (classified as shed by the caller).
    pub fast_fails: AtomicU64,
}

impl CircuitBreaker {
    pub fn new(cfg: BreakerConfig) -> Self {
        CircuitBreaker {
            cfg,
            state: Mutex::new(State::Closed { consecutive_failures: 0 }),
            trips: AtomicU64::new(0),
            fast_fails: AtomicU64::new(0),
        }
    }

    fn enabled(&self) -> bool {
        self.cfg.failure_threshold > 0
    }

    /// May a request be sent right now? `false` means fail fast (shed).
    /// An elapsed cool-down transitions open → half-open as a side effect.
    pub fn allow(&self) -> bool {
        self.allow_at(Instant::now())
    }

    fn allow_at(&self, now: Instant) -> bool {
        if !self.enabled() {
            return true;
        }
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } | State::HalfOpen { .. } => true,
            State::Open { until } => {
                if now >= until {
                    *state = State::HalfOpen { successes: 0 };
                    true
                } else {
                    self.fast_fails.fetch_add(1, Ordering::Relaxed);
                    false
                }
            }
        }
    }

    /// Record a successful invocation.
    pub fn on_success(&self) {
        if !self.enabled() {
            return;
        }
        let mut state = self.state.lock();
        match *state {
            State::Closed { .. } => *state = State::Closed { consecutive_failures: 0 },
            State::HalfOpen { successes } => {
                if successes + 1 >= self.cfg.half_open_probes {
                    *state = State::Closed { consecutive_failures: 0 };
                } else {
                    *state = State::HalfOpen { successes: successes + 1 };
                }
            }
            // A request that was in flight when the breaker tripped can
            // still succeed; it carries no information about recovery, so
            // the cool-down stands.
            State::Open { .. } => {}
        }
    }

    /// Record a classified failure (transport, timeout, `429`/5xx).
    pub fn on_failure(&self) {
        self.on_failure_at(Instant::now())
    }

    fn on_failure_at(&self, now: Instant) {
        if !self.enabled() {
            return;
        }
        let mut state = self.state.lock();
        match *state {
            State::Closed { consecutive_failures } => {
                let failures = consecutive_failures + 1;
                if failures >= self.cfg.failure_threshold {
                    *state = State::Open { until: now + self.cfg.open_for };
                    self.trips.fetch_add(1, Ordering::Relaxed);
                } else {
                    *state = State::Closed { consecutive_failures: failures };
                }
            }
            // Any half-open probe failure re-opens for a full cool-down.
            State::HalfOpen { .. } => {
                *state = State::Open { until: now + self.cfg.open_for };
                self.trips.fetch_add(1, Ordering::Relaxed);
            }
            // Stragglers failing while open don't extend the cool-down
            // (that would let a burst of in-flight failures hold the
            // breaker open indefinitely).
            State::Open { .. } => {}
        }
    }

    /// Whether the breaker is currently refusing requests.
    pub fn is_open(&self) -> bool {
        matches!(*self.state.lock(), State::Open { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, open_ms: u64) -> CircuitBreaker {
        CircuitBreaker::new(BreakerConfig::tripping(threshold, Duration::from_millis(open_ms)))
    }

    #[test]
    fn disabled_breaker_never_trips() {
        let b = CircuitBreaker::new(BreakerConfig::default());
        for _ in 0..1_000 {
            b.on_failure();
            assert!(b.allow());
        }
        assert!(!b.is_open());
        assert_eq!(b.trips.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn trips_after_consecutive_failures_and_fails_fast() {
        let now = Instant::now();
        let b = breaker(3, 10_000);
        b.on_failure_at(now);
        b.on_failure_at(now);
        assert!(b.allow_at(now), "below threshold: still closed");
        b.on_failure_at(now);
        assert!(b.is_open());
        assert_eq!(b.trips.load(Ordering::Relaxed), 1);
        assert!(!b.allow_at(now), "open: fail fast");
        assert!(!b.allow_at(now + Duration::from_secs(5)), "still cooling down");
        assert_eq!(b.fast_fails.load(Ordering::Relaxed), 2);
    }

    #[test]
    fn success_resets_the_consecutive_count() {
        let now = Instant::now();
        let b = breaker(3, 10_000);
        b.on_failure_at(now);
        b.on_failure_at(now);
        b.on_success();
        b.on_failure_at(now);
        b.on_failure_at(now);
        assert!(!b.is_open(), "non-consecutive failures must not trip");
    }

    #[test]
    fn half_open_probe_success_closes() {
        let now = Instant::now();
        let b = breaker(1, 100);
        b.on_failure_at(now);
        assert!(b.is_open());
        let after = now + Duration::from_millis(150);
        assert!(b.allow_at(after), "cool-down elapsed: probe allowed");
        b.on_success();
        assert!(!b.is_open());
        assert!(b.allow_at(after), "closed again");
        assert_eq!(b.trips.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn half_open_probe_failure_reopens() {
        let now = Instant::now();
        let b = breaker(1, 100);
        b.on_failure_at(now);
        let after = now + Duration::from_millis(150);
        assert!(b.allow_at(after));
        b.on_failure_at(after);
        assert!(b.is_open(), "failed probe re-opens");
        assert_eq!(b.trips.load(Ordering::Relaxed), 2);
        assert!(!b.allow_at(after + Duration::from_millis(50)), "fresh cool-down");
    }

    #[test]
    fn multiple_probes_required_when_configured() {
        let now = Instant::now();
        let b = CircuitBreaker::new(BreakerConfig {
            failure_threshold: 1,
            open_for: Duration::from_millis(100),
            half_open_probes: 2,
        });
        b.on_failure_at(now);
        let after = now + Duration::from_millis(150);
        assert!(b.allow_at(after));
        b.on_success();
        assert!(!b.is_open(), "half-open, not open");
        b.on_failure_at(after);
        assert!(b.is_open(), "one success is not enough to close at 2 probes");
    }

    #[test]
    fn straggler_failures_while_open_do_not_extend_cooldown() {
        let now = Instant::now();
        let b = breaker(1, 100);
        b.on_failure_at(now);
        // In-flight requests from before the trip keep failing.
        b.on_failure_at(now + Duration::from_millis(90));
        assert_eq!(b.trips.load(Ordering::Relaxed), 1, "no re-trip while open");
        assert!(b.allow_at(now + Duration::from_millis(150)), "original cool-down stands");
    }
}

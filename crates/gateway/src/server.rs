//! The gateway server: any [`Backend`] behind a real wire.
//!
//! A dependency-free HTTP/1.1 server over `std::net::TcpListener`:
//! thread-per-connection handling drawn from a **bounded** worker pool (a
//! full pool applies backpressure at `accept` instead of spawning without
//! limit), keep-alive connections, and `Content-Length` framing. Endpoints:
//!
//! * `POST /invoke` — a [`InvocationRequest`] JSON body; replies `200` with
//!   the backend's [`InvocationResult`] (application failures travel as
//!   `ok: false` bodies, not HTTP errors);
//! * `GET /healthz` — liveness probe, as JSON with live queue depth,
//!   shed total, and build provenance (version + git sha) so load
//!   balancers see overload — and operators see *what's deployed* —
//!   without scraping;
//! * `GET /stats` — aggregate and per-connection counters as JSON;
//! * `GET /metrics` — the same counters in Prometheus text format (0.0.4)
//!   plus per-stage residency histograms (queue wait / service / flush /
//!   total), scrapeable by standard monitoring tooling.
//!
//! A seeded [`FaultConfig`] can drop or 5xx a deterministic fraction of
//! invocations — the harness for exercising client-side retry under
//! controlled fault rates.
//!
//! **Distributed tracing.** Every `POST /invoke` emits a [`ServerSpan`]
//! (accepted → dequeued → handler → flushed, with the queue depth at
//! admission, worker id, and fault classification) into an optional
//! [`EventSink`] installed with [`Gateway::with_trace_sink`]. The span is
//! tagged with the client's trace id from the `X-FaaSRail-Trace` header
//! (falling back to the request body), so a client-side JSONL log and the
//! server-side one can be merged by `faasrail_telemetry::join_spans` into
//! an end-to-end decomposition. Shed connections never produce a span —
//! the gateway refused them before reading a request — which is exactly
//! what lets the join count them as orphans.

use crate::backoff::mix_fraction;
use crate::http;
use faasrail_loadgen::{Backend, InvocationRequest};
use faasrail_telemetry::{
    EventSink, LogHistogram, NullSink, OutcomeClass, PromText, ServerFault, ServerSpan,
    TelemetryEvent,
};
use parking_lot::Mutex;
use std::io::{self, BufReader, ErrorKind};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Seeded fault injection: each invocation draws a deterministic uniform
/// variate from (`seed`, invocation index) and the unit interval is carved
/// into consecutive fault bands — `drop_fraction` closes the connection
/// without replying, then `error_fraction` replies `500`, then
/// `stall_fraction` black-holes the connection (reads the request, holds
/// the socket open for `stall_ms`, closes without a byte of response —
/// exercising the client's deadline rather than its retry path), then
/// `latency_fraction` delays the response by `latency_ms` but answers
/// normally (a straggler, not a failure).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultConfig {
    /// Fraction of invocations whose connection is dropped mid-request.
    pub drop_fraction: f64,
    /// Fraction of invocations answered with an injected `500`.
    pub error_fraction: f64,
    /// Fraction of invocations black-holed: the connection stays open,
    /// silent, for `stall_ms`, then closes without a response.
    pub stall_fraction: f64,
    /// How long a stalled connection is held before closing, ms.
    pub stall_ms: u64,
    /// Fraction of invocations delayed by `latency_ms` before a normal
    /// response (injected stragglers).
    pub latency_fraction: f64,
    /// Injected straggler delay, ms.
    pub latency_ms: u64,
    /// Seed for the fault stream.
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            drop_fraction: 0.0,
            error_fraction: 0.0,
            stall_fraction: 0.0,
            stall_ms: 1_000,
            latency_fraction: 0.0,
            latency_ms: 100,
            seed: 1,
        }
    }
}

pub(crate) enum Fault {
    None,
    Drop,
    Error,
    Stall,
    Delay,
}

impl FaultConfig {
    pub(crate) fn decide(&self, invocation: u64) -> Fault {
        let total =
            self.drop_fraction + self.error_fraction + self.stall_fraction + self.latency_fraction;
        if total <= 0.0 {
            return Fault::None;
        }
        let u = mix_fraction(self.seed, invocation);
        let mut edge = self.drop_fraction;
        if u < edge {
            return Fault::Drop;
        }
        edge += self.error_fraction;
        if u < edge {
            return Fault::Error;
        }
        edge += self.stall_fraction;
        if u < edge {
            return Fault::Stall;
        }
        edge += self.latency_fraction;
        if u < edge {
            return Fault::Delay;
        }
        Fault::None
    }
}

/// Gateway server configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatewayConfig {
    /// Connection-handler threads. Each keep-alive connection occupies one
    /// worker for its lifetime, so size this at or above the expected
    /// client concurrency.
    pub workers: usize,
    /// Bound on connections accepted but not yet picked up by a worker
    /// (the admission-control queue). A connection arriving with the queue
    /// full is *shed*: answered `429 Too Many Requests` with `Retry-After`
    /// and closed, instead of letting accept backpressure stall the OS
    /// backlog and silently time peers out.
    pub queue_capacity: usize,
    /// Idle keep-alive timeout: a connection with no request for this long
    /// is closed (also bounds how long shutdown waits on idle peers).
    pub read_timeout: Duration,
    /// Budget for receiving one request *head* once its first byte has
    /// arrived. A peer dribbling a header byte at a time (slow loris) is
    /// reaped after this long without stalling other connections. Enforced
    /// by the reactor server; the threaded server's per-read `read_timeout`
    /// already bounds each socket read.
    pub head_read_timeout: Duration,
    /// Fault injection (off by default).
    pub fault: FaultConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            workers: 64,
            queue_capacity: 64,
            read_timeout: Duration::from_secs(30),
            head_read_timeout: Duration::from_secs(10),
            fault: FaultConfig::default(),
        }
    }
}

/// Aggregate and per-connection counters, updated lock-free.
#[derive(Debug, Default)]
pub struct GatewayStats {
    pub connections_accepted: AtomicU64,
    pub connections_active: AtomicU64,
    pub connections_closed: AtomicU64,
    /// All HTTP requests parsed (any endpoint).
    pub requests: AtomicU64,
    /// `POST /invoke` requests reaching the fault/backend stage.
    pub invocations: AtomicU64,
    pub invocations_ok: AtomicU64,
    pub invocations_failed: AtomicU64,
    /// Connections refused with `429` because the admission queue was full.
    pub shed: AtomicU64,
    /// Connections accepted but not yet picked up by a worker (gauge).
    pub queue_depth: AtomicU64,
    pub faults_dropped: AtomicU64,
    pub faults_errored: AtomicU64,
    pub faults_stalled: AtomicU64,
    pub faults_delayed: AtomicU64,
    pub http_400: AtomicU64,
    pub http_404: AtomicU64,
    /// Most requests any single connection has served (keep-alive depth).
    pub max_requests_per_connection: AtomicU64,
}

impl GatewayStats {
    /// Render the counters as a flat JSON object (stable key order).
    pub fn to_json(&self) -> String {
        let closed = self.connections_closed.load(Ordering::Relaxed);
        let requests = self.requests.load(Ordering::Relaxed);
        let mean_per_conn = if closed == 0 { 0.0 } else { requests as f64 / closed as f64 };
        format!(
            concat!(
                "{{\"connections_accepted\":{},\"connections_active\":{},",
                "\"connections_closed\":{},\"requests\":{},\"invocations\":{},",
                "\"invocations_ok\":{},\"invocations_failed\":{},",
                "\"shed\":{},\"queue_depth\":{},",
                "\"faults_dropped\":{},\"faults_errored\":{},",
                "\"faults_stalled\":{},\"faults_delayed\":{},",
                "\"http_400\":{},\"http_404\":{},",
                "\"max_requests_per_connection\":{},",
                "\"mean_requests_per_closed_connection\":{:.3}}}"
            ),
            self.connections_accepted.load(Ordering::Relaxed),
            self.connections_active.load(Ordering::Relaxed),
            closed,
            requests,
            self.invocations.load(Ordering::Relaxed),
            self.invocations_ok.load(Ordering::Relaxed),
            self.invocations_failed.load(Ordering::Relaxed),
            self.shed.load(Ordering::Relaxed),
            self.queue_depth.load(Ordering::Relaxed),
            self.faults_dropped.load(Ordering::Relaxed),
            self.faults_errored.load(Ordering::Relaxed),
            self.faults_stalled.load(Ordering::Relaxed),
            self.faults_delayed.load(Ordering::Relaxed),
            self.http_400.load(Ordering::Relaxed),
            self.http_404.load(Ordering::Relaxed),
            self.max_requests_per_connection.load(Ordering::Relaxed),
            mean_per_conn,
        )
    }

    /// Render the counters in Prometheus text format (0.0.4), for
    /// `GET /metrics`.
    pub fn to_prometheus(&self) -> String {
        let load = |a: &AtomicU64| a.load(Ordering::Relaxed);
        let mut p = PromText::new();
        p.counter(
            "faasrail_gateway_connections_accepted_total",
            "TCP connections accepted.",
            load(&self.connections_accepted),
        );
        p.counter(
            "faasrail_gateway_connections_closed_total",
            "Connections fully handled and closed.",
            load(&self.connections_closed),
        );
        p.gauge(
            "faasrail_gateway_connections_active",
            "Connections currently held by a handler worker.",
            load(&self.connections_active) as f64,
        );
        p.counter(
            "faasrail_gateway_requests_total",
            "HTTP requests parsed (any endpoint).",
            load(&self.requests),
        );
        p.counter(
            "faasrail_gateway_invocations_total",
            "POST /invoke requests reaching the fault/backend stage.",
            load(&self.invocations),
        );
        p.counter_vec(
            "faasrail_gateway_invocation_results_total",
            "Backend invocation outcomes.",
            "result",
            &[("ok", load(&self.invocations_ok)), ("failed", load(&self.invocations_failed))],
        );
        p.counter(
            "faasrail_gateway_shed_total",
            "Connections refused with 429 at admission.",
            load(&self.shed),
        );
        p.gauge(
            "faasrail_gateway_queue_depth",
            "Connections accepted but not yet picked up by a worker.",
            load(&self.queue_depth) as f64,
        );
        p.counter_vec(
            "faasrail_gateway_faults_injected_total",
            "Injected faults, by kind.",
            "kind",
            &[
                ("drop", load(&self.faults_dropped)),
                ("error", load(&self.faults_errored)),
                ("stall", load(&self.faults_stalled)),
                ("delay", load(&self.faults_delayed)),
            ],
        );
        p.counter_vec(
            "faasrail_gateway_http_errors_total",
            "Error responses, by status code.",
            "code",
            &[("400", load(&self.http_400)), ("404", load(&self.http_404))],
        );
        p.gauge(
            "faasrail_gateway_max_requests_per_connection",
            "Most requests any single connection has served.",
            load(&self.max_requests_per_connection) as f64,
        );
        p.finish()
    }
}

/// Per-stage server-side residency histograms, fed from every emitted
/// [`ServerSpan`] and rendered on `GET /metrics`. Coarse mutexes are fine
/// here: one `record` per invocation, far off the per-byte hot path.
pub struct StageMetrics {
    queue_wait: Mutex<LogHistogram>,
    service: Mutex<LogHistogram>,
    flush: Mutex<LogHistogram>,
    total: Mutex<LogHistogram>,
}

impl StageMetrics {
    pub(crate) fn new() -> StageMetrics {
        StageMetrics {
            queue_wait: Mutex::new(LogHistogram::latency_seconds()),
            service: Mutex::new(LogHistogram::latency_seconds()),
            flush: Mutex::new(LogHistogram::latency_seconds()),
            total: Mutex::new(LogHistogram::latency_seconds()),
        }
    }

    pub(crate) fn record(&self, span: &ServerSpan) {
        self.queue_wait.lock().record(span.queue_wait_s());
        self.service.lock().record(span.handler_s());
        self.flush.lock().record(span.flush_s());
        self.total.lock().record(span.total_s());
    }

    /// Render the four stage histograms in Prometheus text format.
    pub fn to_prometheus(&self) -> String {
        let mut p = PromText::new();
        p.histogram(
            "faasrail_gateway_stage_queue_wait_seconds",
            "Accept to worker dequeue (admission queue wait).",
            &self.queue_wait.lock(),
        );
        p.histogram(
            "faasrail_gateway_stage_service_seconds",
            "Handler start to handler end (backend execution).",
            &self.service.lock(),
        );
        p.histogram(
            "faasrail_gateway_stage_flush_seconds",
            "Handler end to response flushed.",
            &self.flush.lock(),
        );
        p.histogram(
            "faasrail_gateway_stage_total_seconds",
            "Accept to response flushed (total server residency).",
            &self.total.lock(),
        );
        p.finish()
    }
}

/// The gateway: a bound listener plus the backend it exposes.
pub struct Gateway {
    listener: TcpListener,
    addr: SocketAddr,
    backend: Arc<dyn Backend>,
    cfg: GatewayConfig,
    stats: Arc<GatewayStats>,
    stages: Arc<StageMetrics>,
    trace_sink: Arc<dyn EventSink>,
    epoch: Instant,
    shutdown: Arc<AtomicBool>,
}

/// One accepted connection in flight from the accept loop to a worker.
struct ConnMeta {
    stream: TcpStream,
    /// When the connection was accepted, µs from gateway start.
    accepted_us: u64,
    /// Pending connections ahead of this one at admission.
    depth: u64,
}

impl Gateway {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an ephemeral port) in front of
    /// `backend`.
    pub fn bind(
        addr: impl ToSocketAddrs,
        backend: Arc<dyn Backend>,
        cfg: GatewayConfig,
    ) -> io::Result<Gateway> {
        assert!(cfg.workers > 0, "need at least one connection worker");
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Gateway {
            listener,
            addr,
            backend,
            cfg,
            stats: Arc::new(GatewayStats::default()),
            stages: Arc::new(StageMetrics::new()),
            trace_sink: Arc::new(NullSink),
            epoch: Instant::now(),
            shutdown: Arc::new(AtomicBool::new(false)),
        })
    }

    /// Install an [`EventSink`] receiving one [`ServerSpan`] per
    /// `POST /invoke`. Defaults to [`NullSink`] (tracing off, zero cost).
    pub fn with_trace_sink(mut self, sink: Arc<dyn EventSink>) -> Self {
        self.trace_sink = sink;
        self
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Shared counters (live; safe to read while serving).
    pub fn stats(&self) -> Arc<GatewayStats> {
        Arc::clone(&self.stats)
    }

    /// Per-stage residency histograms (live; safe to read while serving).
    pub fn stage_metrics(&self) -> Arc<StageMetrics> {
        Arc::clone(&self.stages)
    }

    /// Serve until shut down, blocking the calling thread. Connections are
    /// fanned out to `cfg.workers` handler threads through a bounded queue
    /// of `cfg.queue_capacity`; when the queue is full the connection is
    /// shed with a `429` instead of stalling `accept` — overload surfaces
    /// to clients as an explicit, immediate signal rather than as peers
    /// silently timing out in the OS backlog.
    pub fn run(self) {
        let capacity = self.cfg.queue_capacity.max(1);
        let (tx, rx) = crossbeam::channel::bounded::<ConnMeta>(capacity);
        let epoch = self.epoch;
        std::thread::scope(|scope| {
            for worker in 0..self.cfg.workers {
                let rx = rx.clone();
                let backend = Arc::clone(&self.backend);
                let stats = Arc::clone(&self.stats);
                let stages = Arc::clone(&self.stages);
                let sink = Arc::clone(&self.trace_sink);
                let shutdown = Arc::clone(&self.shutdown);
                let cfg = self.cfg;
                scope.spawn(move || {
                    let ctx = WorkerCtx {
                        backend: &*backend,
                        stats: &stats,
                        stages: &stages,
                        sink: &*sink,
                        cfg: &cfg,
                        shutdown: &shutdown,
                        epoch,
                        worker: worker as u64,
                    };
                    while let Ok(conn) = rx.recv() {
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        stats.connections_active.fetch_add(1, Ordering::Relaxed);
                        let _ = handle_connection(conn, &ctx);
                        stats.connections_active.fetch_sub(1, Ordering::Relaxed);
                        stats.connections_closed.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
            drop(rx);

            loop {
                if self.shutdown.load(Ordering::SeqCst) {
                    break;
                }
                match self.listener.accept() {
                    Ok((stream, _peer)) => {
                        self.stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                        if self.shutdown.load(Ordering::SeqCst) {
                            break; // the shutdown wake-up connection itself
                        }
                        let depth = self.stats.queue_depth.fetch_add(1, Ordering::Relaxed);
                        let conn = ConnMeta { stream, accepted_us: micros_since(epoch), depth };
                        match tx.try_send(conn) {
                            Ok(()) => {}
                            Err(crossbeam::channel::TrySendError::Full(conn)) => {
                                self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                                self.stats.shed.fetch_add(1, Ordering::Relaxed);
                                shed_connection(conn.stream);
                            }
                            Err(crossbeam::channel::TrySendError::Disconnected(_)) => break,
                        }
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => continue,
                    Err(_) => {
                        if self.shutdown.load(Ordering::SeqCst) {
                            break;
                        }
                    }
                }
            }
            drop(tx); // workers drain queued connections, then exit
            self.trace_sink.flush();
        });
    }

    /// Serve on a background thread; returns a handle for address, stats,
    /// and shutdown.
    pub fn spawn(self) -> GatewayHandle {
        let addr = self.addr;
        let stats = Arc::clone(&self.stats);
        let shutdown = Arc::clone(&self.shutdown);
        let join = std::thread::spawn(move || self.run());
        GatewayHandle { addr, stats, shutdown, join }
    }
}

/// Handle to a gateway serving on a background thread.
pub struct GatewayHandle {
    addr: SocketAddr,
    stats: Arc<GatewayStats>,
    shutdown: Arc<AtomicBool>,
    join: std::thread::JoinHandle<()>,
}

impl GatewayHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Live counters.
    pub fn stats(&self) -> &GatewayStats {
        &self.stats
    }

    /// Stop accepting, drain, and join the server thread.
    ///
    /// Open keep-alive connections are closed as soon as they go idle (at
    /// the latest after `read_timeout`), so drop any client still holding
    /// pooled connections before calling this to avoid waiting out the
    /// timeout.
    pub fn stop(self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        let _ = self.join.join();
    }
}

/// Refuse a connection the admission queue has no room for: `429` with a
/// `Retry-After` hint, then close. Runs on the accept thread, so the write
/// gets a short timeout — a peer too slow to take a two-line response
/// isn't worth stalling admission for.
fn shed_connection(stream: TcpStream) {
    stream.set_nodelay(true).ok();
    stream.set_write_timeout(Some(Duration::from_millis(100))).ok();
    let _ = http::write_response_with(
        &mut (&stream),
        429,
        "text/plain",
        &[("Retry-After", "1")],
        b"shedding load: admission queue full",
        false,
    );
}

/// Everything a handler worker needs besides the connection itself.
struct WorkerCtx<'a> {
    backend: &'a dyn Backend,
    stats: &'a GatewayStats,
    stages: &'a StageMetrics,
    sink: &'a dyn EventSink,
    cfg: &'a GatewayConfig,
    shutdown: &'a AtomicBool,
    epoch: Instant,
    worker: u64,
}

fn micros_since(epoch: Instant) -> u64 {
    epoch.elapsed().as_micros() as u64
}

/// Mutable per-invocation span state, finalized and emitted on every exit
/// path of the `/invoke` arm (including the ones that `break` without a
/// response — a dropped connection still deserves a server-side record).
struct SpanDraft {
    trace_id: u64,
    seq: u64,
    accepted_us: u64,
    dequeued_us: u64,
    handler_start_us: u64,
    queue_depth: u64,
    service_ms: f64,
    outcome: OutcomeClass,
    fault: Option<ServerFault>,
    cold_start: bool,
}

impl SpanDraft {
    /// Stamp the handler-end and flush times and emit through the sink +
    /// stage histograms.
    fn finish(self, ctx: &WorkerCtx, handler_end_us: u64, flushed_us: u64) {
        let span = ServerSpan {
            trace_id: self.trace_id,
            seq: self.seq,
            worker: ctx.worker,
            accepted_us: self.accepted_us,
            dequeued_us: self.dequeued_us,
            handler_start_us: self.handler_start_us,
            handler_end_us,
            flushed_us: flushed_us.max(handler_end_us),
            queue_depth: self.queue_depth,
            service_ms: self.service_ms,
            outcome: self.outcome,
            fault: self.fault,
            cold_start: self.cold_start,
        };
        ctx.stages.record(&span);
        ctx.sink.emit(&TelemetryEvent::ServerSpan(span));
    }
}

/// Serve one connection until it closes (client close, idle timeout,
/// malformed request, injected drop, or shutdown).
fn handle_connection(conn: ConnMeta, ctx: &WorkerCtx) -> io::Result<()> {
    let stream = conn.stream;
    let stats = ctx.stats;
    let dequeued_us = micros_since(ctx.epoch);
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(ctx.cfg.read_timeout)).ok();
    let mut reader = BufReader::new(&stream);
    let mut served_here: u64 = 0;

    loop {
        let req = match http::read_request(&mut reader) {
            Ok(Some(r)) => r,
            Ok(None) => break, // clean close between requests
            Err(e) if e.kind() == ErrorKind::InvalidData => {
                stats.http_400.fetch_add(1, Ordering::Relaxed);
                let _ = http::write_response(
                    &mut (&stream),
                    400,
                    "text/plain",
                    format!("bad request: {e}").as_bytes(),
                    false,
                );
                break;
            }
            // Idle timeout, reset, or mid-request EOF: just close.
            Err(_) => break,
        };
        // Keep-alive requests after the first never waited in the admission
        // queue, and the worker was already blocked on the socket before the
        // client even sent them — so their accepted/dequeued stamps collapse
        // to the moment the head finished reading. Idle keep-alive gaps must
        // not masquerade as queue wait or read time: the client→server
        // transfer shows up in the join's `net_out` stage instead.
        let (accepted_us, req_dequeued_us, depth) = if served_here == 0 {
            (conn.accepted_us, dequeued_us, conn.depth)
        } else {
            let now = micros_since(ctx.epoch);
            (now, now, 0)
        };
        served_here += 1;
        stats.requests.fetch_add(1, Ordering::Relaxed);
        let keep = req.keep_alive && !ctx.shutdown.load(Ordering::Relaxed);

        match (req.method.as_str(), req.path.as_str()) {
            ("POST", "/invoke") => {
                let n = stats.invocations.fetch_add(1, Ordering::Relaxed);
                let mut draft = SpanDraft {
                    // Header id wins; fall back to the body's below once
                    // (and if) the body parses.
                    trace_id: req.trace_id.unwrap_or(0),
                    seq: n,
                    accepted_us,
                    dequeued_us: req_dequeued_us,
                    handler_start_us: micros_since(ctx.epoch),
                    queue_depth: depth,
                    service_ms: 0.0,
                    outcome: OutcomeClass::Ok,
                    fault: None,
                    cold_start: false,
                };
                let mut fault = ctx.cfg.fault.decide(n);
                if let Fault::Delay = fault {
                    // Injected straggler: delay, then serve normally. The
                    // sleep lands inside the handler stage, where a real
                    // straggler's time would.
                    stats.faults_delayed.fetch_add(1, Ordering::Relaxed);
                    draft.fault = Some(ServerFault::Delay);
                    std::thread::sleep(Duration::from_millis(ctx.cfg.fault.latency_ms));
                    fault = Fault::None;
                }
                match fault {
                    Fault::Delay => unreachable!("rewritten to Fault::None above"),
                    Fault::Drop => {
                        stats.faults_dropped.fetch_add(1, Ordering::Relaxed);
                        draft.fault = Some(ServerFault::Drop);
                        // The client sees a broken connection: transport.
                        draft.outcome = OutcomeClass::Transport;
                        let now = micros_since(ctx.epoch);
                        draft.finish(ctx, now, now);
                        break; // vanish without a response
                    }
                    Fault::Stall => {
                        // Black hole: hold the socket open and silent, then
                        // close without a response — the client's deadline,
                        // not its retry logic, has to catch this.
                        stats.faults_stalled.fetch_add(1, Ordering::Relaxed);
                        draft.fault = Some(ServerFault::Stall);
                        draft.outcome = OutcomeClass::Timeout;
                        std::thread::sleep(Duration::from_millis(ctx.cfg.fault.stall_ms));
                        let now = micros_since(ctx.epoch);
                        draft.finish(ctx, now, now);
                        break;
                    }
                    Fault::Error => {
                        stats.faults_errored.fetch_add(1, Ordering::Relaxed);
                        draft.fault = Some(ServerFault::Error);
                        draft.outcome = OutcomeClass::Transport;
                        let handler_end = micros_since(ctx.epoch);
                        let res = http::write_response(
                            &mut (&stream),
                            500,
                            "text/plain",
                            b"injected fault",
                            keep,
                        );
                        draft.finish(ctx, handler_end, micros_since(ctx.epoch));
                        res?;
                    }
                    Fault::None => match serde_json::from_slice::<InvocationRequest>(&req.body) {
                        Ok(inv) => {
                            if draft.trace_id == 0 {
                                draft.trace_id = inv.trace_id;
                            }
                            let result = ctx.backend.invoke(&inv);
                            if result.ok {
                                stats.invocations_ok.fetch_add(1, Ordering::Relaxed);
                            } else {
                                stats.invocations_failed.fetch_add(1, Ordering::Relaxed);
                            }
                            draft.service_ms = result.service_ms;
                            draft.outcome = result.outcome();
                            draft.cold_start = result.cold_start;
                            let handler_end = micros_since(ctx.epoch);
                            let body = serde_json::to_vec(&result)
                                .unwrap_or_else(|_| b"{\"ok\":false}".to_vec());
                            let res = http::write_response(
                                &mut (&stream),
                                200,
                                "application/json",
                                &body,
                                keep,
                            );
                            draft.finish(ctx, handler_end, micros_since(ctx.epoch));
                            res?;
                        }
                        Err(e) => {
                            stats.http_400.fetch_add(1, Ordering::Relaxed);
                            // The body never became an invocation; from the
                            // client's side this is a non-retryable
                            // transport-class failure.
                            draft.outcome = OutcomeClass::Transport;
                            let handler_end = micros_since(ctx.epoch);
                            let res = http::write_response(
                                &mut (&stream),
                                400,
                                "text/plain",
                                format!("bad invocation request: {e}").as_bytes(),
                                keep,
                            );
                            draft.finish(ctx, handler_end, micros_since(ctx.epoch));
                            res?;
                        }
                    },
                }
            }
            ("GET", "/healthz") => {
                let build = faasrail_telemetry::BuildInfo::current();
                let body = format!(
                    "{{\"status\":\"ok\",\"queue_depth\":{},\"shed\":{},\"version\":\"{}\",\"git_sha\":\"{}\"}}",
                    stats.queue_depth.load(Ordering::Relaxed),
                    stats.shed.load(Ordering::Relaxed),
                    build.version,
                    build.git_sha,
                );
                http::write_response(
                    &mut (&stream),
                    200,
                    "application/json",
                    body.as_bytes(),
                    keep,
                )?;
            }
            ("GET", "/stats") => {
                stats.max_requests_per_connection.fetch_max(served_here, Ordering::Relaxed);
                http::write_response(
                    &mut (&stream),
                    200,
                    "application/json",
                    stats.to_json().as_bytes(),
                    keep,
                )?;
            }
            ("GET", "/metrics") => {
                stats.max_requests_per_connection.fetch_max(served_here, Ordering::Relaxed);
                let mut text = stats.to_prometheus();
                text.push_str(&ctx.stages.to_prometheus());
                http::write_response(
                    &mut (&stream),
                    200,
                    faasrail_telemetry::prometheus::CONTENT_TYPE,
                    text.as_bytes(),
                    keep,
                )?;
            }
            _ => {
                stats.http_404.fetch_add(1, Ordering::Relaxed);
                http::write_response(&mut (&stream), 404, "text/plain", b"not found", keep)?;
            }
        }

        if !keep {
            break;
        }
    }
    stats.max_requests_per_connection.fetch_max(served_here, Ordering::Relaxed);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::client::{HttpBackend, HttpBackendConfig};
    use faasrail_loadgen::{InvocationResult, NoopBackend};
    use faasrail_telemetry::RingSink;
    use faasrail_workloads::{WorkloadId, WorkloadInput};
    use std::io::BufReader;

    fn test_cfg() -> GatewayConfig {
        GatewayConfig {
            workers: 4,
            queue_capacity: 4,
            read_timeout: Duration::from_millis(500),
            ..GatewayConfig::default()
        }
    }

    fn spawn_noop(cfg: GatewayConfig) -> GatewayHandle {
        Gateway::bind("127.0.0.1:0", Arc::new(NoopBackend), cfg).unwrap().spawn()
    }

    fn request_json() -> Vec<u8> {
        let req = InvocationRequest {
            workload: WorkloadId(7),
            input: WorkloadInput::Pyaes { bytes: 1024 },
            function_index: 3,
            scheduled_at_ms: 12,
            trace_id: 0,
        };
        serde_json::to_vec(&req).unwrap()
    }

    /// One raw request/response exchange on an existing connection.
    fn roundtrip(stream: &TcpStream, method: &str, path: &str, body: &[u8]) -> http::Response {
        http::write_request(&mut (&*stream), method, path, "test", "application/json", body, true)
            .unwrap();
        http::read_response(&mut BufReader::new(stream)).unwrap()
    }

    #[test]
    fn healthz_stats_and_404_share_a_keep_alive_connection() {
        let handle = spawn_noop(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();

        let resp = roundtrip(&stream, "GET", "/healthz", b"");
        assert_eq!(resp.status, 200);
        let health = String::from_utf8(resp.body).unwrap();
        assert!(health.contains("\"status\":\"ok\""), "{health}");
        assert!(health.contains("\"queue_depth\":0"), "{health}");
        assert!(health.contains("\"shed\":0"), "{health}");
        assert!(health.contains("\"version\":\""), "{health}");
        assert!(health.contains("\"git_sha\":\""), "{health}");
        assert!(resp.keep_alive);

        let resp = roundtrip(&stream, "GET", "/nope", b"");
        assert_eq!(resp.status, 404);

        let resp = roundtrip(&stream, "GET", "/stats", b"");
        assert_eq!(resp.status, 200);
        let json = String::from_utf8(resp.body).unwrap();
        assert!(json.contains("\"requests\":3"), "{json}");
        assert!(json.contains("\"http_404\":1"), "{json}");
        assert!(json.contains("\"connections_accepted\":1"), "{json}");

        drop(stream);
        handle.stop();
    }

    #[test]
    fn metrics_endpoint_serves_prometheus_text() {
        let handle = spawn_noop(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();

        let resp = roundtrip(&stream, "POST", "/invoke", &request_json());
        assert_eq!(resp.status, 200);

        let resp = roundtrip(&stream, "GET", "/metrics", b"");
        assert_eq!(resp.status, 200);
        assert_eq!(resp.content_type.as_deref(), Some("text/plain; version=0.0.4"));
        let text = String::from_utf8(resp.body).unwrap();
        assert!(text.contains("# TYPE faasrail_gateway_requests_total counter"), "{text}");
        assert!(
            text.contains("faasrail_gateway_invocation_results_total{result=\"ok\"} 1"),
            "{text}"
        );
        assert!(text.contains("faasrail_gateway_connections_active 1"), "{text}");

        // /stats stays JSON on the same connection.
        let resp = roundtrip(&stream, "GET", "/stats", b"");
        assert_eq!(resp.content_type.as_deref(), Some("application/json"));

        drop(stream);
        handle.stop();
    }

    #[test]
    fn invoke_executes_the_backend_over_the_wire() {
        let handle = spawn_noop(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&stream, "POST", "/invoke", &request_json());
        assert_eq!(resp.status, 200);
        let result: InvocationResult = serde_json::from_slice(&resp.body).unwrap();
        assert!(result.ok);
        assert_eq!(result.outcome(), OutcomeClass::Ok);
        drop(stream);
        let stats = handle.stats();
        assert_eq!(stats.invocations.load(Ordering::Relaxed), 1);
        assert_eq!(stats.invocations_ok.load(Ordering::Relaxed), 1);
        handle.stop();
    }

    #[test]
    fn malformed_invocation_body_is_400_not_a_crash() {
        let handle = spawn_noop(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&stream, "POST", "/invoke", b"{ not json");
        assert_eq!(resp.status, 400);
        // The connection survives a body-level 400.
        let resp = roundtrip(&stream, "GET", "/healthz", b"");
        assert_eq!(resp.status, 200);
        drop(stream);
        assert_eq!(handle.stats().http_400.load(Ordering::Relaxed), 1);
        handle.stop();
    }

    #[test]
    fn injected_500s_surface_to_the_client_as_retryable() {
        let cfg = GatewayConfig {
            fault: FaultConfig { error_fraction: 1.0, seed: 3, ..FaultConfig::default() },
            ..test_cfg()
        };
        let handle = spawn_noop(cfg);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let resp = roundtrip(&stream, "POST", "/invoke", &request_json());
        assert_eq!(resp.status, 500);
        drop(stream);
        assert_eq!(handle.stats().faults_errored.load(Ordering::Relaxed), 1);
        handle.stop();
    }

    #[test]
    fn end_to_end_with_http_backend_client() {
        let handle = spawn_noop(test_cfg());
        let client =
            HttpBackend::connect(&handle.addr().to_string(), HttpBackendConfig::default()).unwrap();
        let req = InvocationRequest {
            workload: WorkloadId(7),
            input: WorkloadInput::Pyaes { bytes: 1024 },
            function_index: 0,
            scheduled_at_ms: 0,
            trace_id: 0,
        };
        for _ in 0..5 {
            let r = faasrail_loadgen::Backend::invoke(&client, &req);
            assert!(r.ok, "{:?}", r.error);
        }
        drop(client); // release pooled connections before stopping the server
        let stats = handle.stats();
        assert_eq!(stats.invocations_ok.load(Ordering::Relaxed), 5);
        assert!(
            stats.connections_accepted.load(Ordering::Relaxed) <= 2,
            "keep-alive should confine 5 invocations to very few connections"
        );
        handle.stop();
    }

    #[test]
    fn fault_decide_is_deterministic_and_proportional() {
        let f = FaultConfig {
            drop_fraction: 0.1,
            error_fraction: 0.2,
            stall_fraction: 0.1,
            latency_fraction: 0.1,
            seed: 11,
            ..FaultConfig::default()
        };
        let classify = |n: u64| match f.decide(n) {
            Fault::Drop => 0u8,
            Fault::Error => 1,
            Fault::Stall => 2,
            Fault::Delay => 3,
            Fault::None => 4,
        };
        let first: Vec<u8> = (0..2_000).map(classify).collect();
        let second: Vec<u8> = (0..2_000).map(classify).collect();
        assert_eq!(first, second, "same seed, same fault pattern");
        let count = |c: u8| first.iter().filter(|&&x| x == c).count();
        let (drops, errors, stalls, delays) = (count(0), count(1), count(2), count(3));
        assert!((100..300).contains(&drops), "~10% drops expected, got {drops}/2000");
        assert!((250..550).contains(&errors), "~20% errors expected, got {errors}/2000");
        assert!((100..300).contains(&stalls), "~10% stalls expected, got {stalls}/2000");
        assert!((100..300).contains(&delays), "~10% delays expected, got {delays}/2000");
    }

    #[test]
    fn full_admission_queue_sheds_with_429_and_retry_after() {
        // One worker, queue of one. Connection A occupies the worker (its
        // keep-alive roundtrip proves a worker picked it up); B then sits in
        // the queue; C must be shed with a 429 at admission.
        let handle = spawn_noop(GatewayConfig { workers: 1, queue_capacity: 1, ..test_cfg() });
        let a = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(roundtrip(&a, "GET", "/healthz", b"").status, 200);

        let b = TcpStream::connect(handle.addr()).unwrap();
        // B is queued, not yet served; give the accept thread a moment to
        // enqueue it before driving C.
        std::thread::sleep(Duration::from_millis(50));

        let c = TcpStream::connect(handle.addr()).unwrap();
        let resp = http::read_response(&mut BufReader::new(&c)).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(resp.retry_after, Some(1));
        assert!(!resp.keep_alive);
        drop(c);
        assert_eq!(handle.stats().shed.load(Ordering::Relaxed), 1);

        // Freeing the worker lets the queued connection B get served — and
        // the health probe now reports the shed it witnessed.
        drop(a);
        let health = roundtrip(&b, "GET", "/healthz", b"");
        assert_eq!(health.status, 200);
        let health = String::from_utf8(health.body).unwrap();
        assert!(health.contains("\"shed\":1"), "{health}");
        let resp = roundtrip(&b, "GET", "/stats", b"");
        let json = String::from_utf8(resp.body).unwrap();
        assert!(json.contains("\"shed\":1"), "{json}");
        assert!(json.contains("\"queue_depth\":0"), "{json}");
        drop(b);
        handle.stop();
    }

    #[test]
    fn stall_fault_black_holes_the_connection() {
        let cfg = GatewayConfig {
            fault: FaultConfig {
                stall_fraction: 1.0,
                stall_ms: 50,
                seed: 5,
                ..FaultConfig::default()
            },
            ..test_cfg()
        };
        let handle = spawn_noop(cfg);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let start = std::time::Instant::now();
        http::write_request(
            &mut (&stream),
            "POST",
            "/invoke",
            "test",
            "application/json",
            &request_json(),
            true,
        )
        .unwrap();
        // No response ever arrives: the read ends in EOF after the stall.
        let err = http::read_response(&mut BufReader::new(&stream)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        assert!(start.elapsed() >= Duration::from_millis(45), "stall held the socket");
        drop(stream);
        assert_eq!(handle.stats().faults_stalled.load(Ordering::Relaxed), 1);
        handle.stop();
    }

    fn spawn_traced(cfg: GatewayConfig) -> (GatewayHandle, Arc<RingSink>) {
        let sink = Arc::new(RingSink::with_capacity(256));
        let handle = Gateway::bind("127.0.0.1:0", Arc::new(NoopBackend), cfg)
            .unwrap()
            .with_trace_sink(Arc::clone(&sink) as Arc<dyn EventSink>)
            .spawn();
        (handle, sink)
    }

    /// Spans are emitted just after the response is written, so a client
    /// that has read the response may still be a beat ahead of the sink.
    fn wait_for_spans(sink: &RingSink, n: usize) -> Vec<ServerSpan> {
        for _ in 0..200 {
            let spans: Vec<ServerSpan> = sink
                .events()
                .into_iter()
                .filter_map(|e| match e {
                    TelemetryEvent::ServerSpan(s) => Some(s),
                    _ => None,
                })
                .collect();
            if spans.len() >= n {
                return spans;
            }
            std::thread::sleep(Duration::from_millis(5));
        }
        panic!("never saw {n} server spans; events: {:?}", sink.events().len());
    }

    #[test]
    fn invoke_emits_a_server_span_tagged_from_the_trace_header() {
        let (handle, sink) = spawn_traced(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        http::write_request_with(
            &mut (&stream),
            "POST",
            "/invoke",
            "test",
            "application/json",
            &[(http::TRACE_HEADER, "deadbeef")],
            &request_json(),
            true,
        )
        .unwrap();
        let resp = http::read_response(&mut BufReader::new(&stream)).unwrap();
        assert_eq!(resp.status, 200);

        let spans = wait_for_spans(&sink, 1);
        let s = &spans[0];
        assert_eq!(s.trace_id, 0xdead_beef, "header id wins");
        assert_eq!(s.seq, 0);
        assert_eq!(s.outcome, OutcomeClass::Ok);
        assert_eq!(s.fault, None);
        assert!(
            s.accepted_us <= s.dequeued_us
                && s.dequeued_us <= s.handler_start_us
                && s.handler_start_us <= s.handler_end_us
                && s.handler_end_us <= s.flushed_us,
            "stages must be monotonic: {s:?}"
        );
        drop(stream);
        handle.stop();
    }

    #[test]
    fn body_trace_id_is_the_fallback_when_no_header_is_sent() {
        let (handle, sink) = spawn_traced(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let req = InvocationRequest {
            workload: WorkloadId(7),
            input: WorkloadInput::Pyaes { bytes: 1024 },
            function_index: 3,
            scheduled_at_ms: 12,
            trace_id: 0xf00d,
        };
        let resp = roundtrip(&stream, "POST", "/invoke", &serde_json::to_vec(&req).unwrap());
        assert_eq!(resp.status, 200);
        let spans = wait_for_spans(&sink, 1);
        assert_eq!(spans[0].trace_id, 0xf00d);
        drop(stream);
        handle.stop();
    }

    #[test]
    fn fault_spans_are_classified_drop_stall_error_delay() {
        // (fault config, expected fault, expected outcome, gets a response)
        let cases = [
            (
                FaultConfig { drop_fraction: 1.0, seed: 3, ..FaultConfig::default() },
                ServerFault::Drop,
                OutcomeClass::Transport,
                false,
            ),
            (
                FaultConfig {
                    stall_fraction: 1.0,
                    stall_ms: 20,
                    seed: 3,
                    ..FaultConfig::default()
                },
                ServerFault::Stall,
                OutcomeClass::Timeout,
                false,
            ),
            (
                FaultConfig { error_fraction: 1.0, seed: 3, ..FaultConfig::default() },
                ServerFault::Error,
                OutcomeClass::Transport,
                true,
            ),
            (
                FaultConfig {
                    latency_fraction: 1.0,
                    latency_ms: 10,
                    seed: 3,
                    ..FaultConfig::default()
                },
                ServerFault::Delay,
                OutcomeClass::Ok,
                true,
            ),
        ];
        for (fault, expect_fault, expect_outcome, responds) in cases {
            let (handle, sink) = spawn_traced(GatewayConfig { fault, ..test_cfg() });
            let stream = TcpStream::connect(handle.addr()).unwrap();
            http::write_request(
                &mut (&stream),
                "POST",
                "/invoke",
                "test",
                "application/json",
                &request_json(),
                true,
            )
            .unwrap();
            let read = http::read_response(&mut BufReader::new(&stream));
            assert_eq!(read.is_ok(), responds, "{expect_fault:?}: {read:?}");
            let spans = wait_for_spans(&sink, 1);
            assert_eq!(spans[0].fault, Some(expect_fault), "{spans:?}");
            assert_eq!(spans[0].outcome, expect_outcome, "{spans:?}");
            drop(stream);
            handle.stop();
        }
    }

    #[test]
    fn shed_connections_produce_no_server_span() {
        let (handle, sink) =
            spawn_traced(GatewayConfig { workers: 1, queue_capacity: 1, ..test_cfg() });
        let a = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(roundtrip(&a, "GET", "/healthz", b"").status, 200);
        let _b = TcpStream::connect(handle.addr()).unwrap();
        std::thread::sleep(Duration::from_millis(50));
        let c = TcpStream::connect(handle.addr()).unwrap();
        let resp = http::read_response(&mut BufReader::new(&c)).unwrap();
        assert_eq!(resp.status, 429);
        assert_eq!(handle.stats().shed.load(Ordering::Relaxed), 1);
        assert!(
            sink.events().is_empty(),
            "a shed connection must stay an orphan on the client side"
        );
        drop((a, c));
        handle.stop();
    }

    #[test]
    fn metrics_include_stage_histograms_after_an_invocation() {
        let (handle, _sink) = spawn_traced(test_cfg());
        let stream = TcpStream::connect(handle.addr()).unwrap();
        assert_eq!(roundtrip(&stream, "POST", "/invoke", &request_json()).status, 200);
        let resp = roundtrip(&stream, "GET", "/metrics", b"");
        let text = String::from_utf8(resp.body).unwrap();
        for stage in ["queue_wait", "service", "flush", "total"] {
            let name = format!("faasrail_gateway_stage_{stage}_seconds");
            assert!(text.contains(&format!("# TYPE {name} histogram")), "{name} missing");
            assert!(text.contains(&format!("{name}_count 1")), "{name} not recorded:\n{text}");
        }
        drop(stream);
        handle.stop();
    }

    #[test]
    fn latency_fault_delays_but_still_answers() {
        let cfg = GatewayConfig {
            fault: FaultConfig {
                latency_fraction: 1.0,
                latency_ms: 60,
                seed: 5,
                ..FaultConfig::default()
            },
            ..test_cfg()
        };
        let handle = spawn_noop(cfg);
        let stream = TcpStream::connect(handle.addr()).unwrap();
        let start = std::time::Instant::now();
        let resp = roundtrip(&stream, "POST", "/invoke", &request_json());
        assert_eq!(resp.status, 200, "a straggler is not a failure");
        assert!(start.elapsed() >= Duration::from_millis(55), "delay was injected");
        drop(stream);
        assert_eq!(handle.stats().faults_delayed.load(Ordering::Relaxed), 1);
        handle.stop();
    }
}

//! Minimal command-line argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed arguments: a subcommand plus `--key value` options and
/// optional bare positionals.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, Vec<String>>,
    flags: Vec<String>,
    positionals: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Grammar: `<command> [<subcommand>] (--key value | --flag | <positional>)*`.
    /// One bare word directly after the command merges into it (`fleet
    /// coordinate` → command `"fleet coordinate"`); later bare words are
    /// collected as positionals (`bench diff OLD NEW`) — commands that
    /// take none reject them via [`Args::no_positionals`]. A `--key`
    /// followed by another `--…` token or nothing is treated as a boolean
    /// flag; a repeated `--key value` accumulates (see [`Args::get_all`]).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut it = args.into_iter().peekable();
        let mut command = it.next().ok_or("missing command")?;
        if command.starts_with("--") {
            return Err(format!("expected a command, found option {command}"));
        }
        if let Some(sub) = it.peek() {
            if !sub.starts_with("--") {
                command = format!("{command} {}", it.next().expect("peeked"));
            }
        }
        let mut out = Args { command, ..Default::default() };
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                out.positionals.push(tok);
                continue;
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let val = it.next().expect("peeked");
                    out.options.entry(key.to_string()).or_default().push(val);
                }
                _ => out.flags.push(key.to_string()),
            }
        }
        Ok(out)
    }

    /// Bare positional arguments, in order.
    pub fn positionals(&self) -> &[String] {
        &self.positionals
    }

    /// Error unless exactly `n` positionals were given (for commands with
    /// a fixed positional grammar, e.g. `bench diff OLD NEW`).
    pub fn expect_positionals(&self, n: usize, what: &str) -> Result<&[String], String> {
        if self.positionals.len() != n {
            return Err(format!(
                "expected {n} positional argument(s) ({what}), got {}",
                self.positionals.len()
            ));
        }
        Ok(self.positionals())
    }

    /// Error if any positional was given (the default for option-only
    /// commands, so a stray word stays a usage error).
    pub fn no_positionals(&self) -> Result<(), String> {
        match self.positionals.first() {
            Some(stray) => Err(format!("unexpected positional argument {stray}")),
            None => Ok(()),
        }
    }

    /// String option. A repeated option resolves to its last value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).and_then(|v| v.last()).map(String::as_str)
    }

    /// Every value a repeated option was given, in order (empty slice if
    /// absent) — e.g. `report --events a.jsonl --events b.jsonl`.
    pub fn get_all(&self, key: &str) -> &[String] {
        self.options.get(key).map(Vec::as_slice).unwrap_or(&[])
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Required repeatable option: at least one value.
    pub fn require_all(&self, key: &str) -> Result<&[String], String> {
        let vals = self.get_all(key);
        if vals.is_empty() {
            return Err(format!("missing required option --{key}"));
        }
        Ok(vals)
    }

    /// Parsed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("invalid value for --{key}: {s}")),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn basic_parse() {
        let a = parse(&["shrink", "--minutes", "120", "--max-rps", "20", "--verbose"]).unwrap();
        assert_eq!(a.command, "shrink");
        assert_eq!(a.get("minutes"), Some("120"));
        assert_eq!(a.num::<f64>("max-rps", 0.0).unwrap(), 20.0);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["gen-trace"]).unwrap();
        assert_eq!(a.get_or("kind", "azure"), "azure");
        assert_eq!(a.num::<u64>("seed", 42).unwrap(), 42);
        assert!(a.require("out").is_err());
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--minutes", "1"]).is_err());
    }

    #[test]
    fn subcommand_merges_into_command() {
        let a = parse(&["fleet", "coordinate", "--agents", "2"]).unwrap();
        assert_eq!(a.command, "fleet coordinate");
        assert_eq!(a.get("agents"), Some("2"));
    }

    #[test]
    fn positionals_are_collected_and_gated() {
        let a = parse(&["cmd", "sub", "stray"]).unwrap();
        assert_eq!(a.command, "cmd sub");
        assert_eq!(a.positionals(), ["stray".to_string()]);
        assert!(a.no_positionals().is_err(), "option-only commands still reject strays");
        let a = parse(&["cmd", "--n", "1", "stray"]).unwrap();
        assert!(a.no_positionals().is_err());
        assert_eq!(a.get("n"), Some("1"));
    }

    #[test]
    fn bench_diff_positional_grammar() {
        let a = parse(&["bench", "diff", "old.json", "new.json", "--threshold", "0.1"]).unwrap();
        assert_eq!(a.command, "bench diff");
        let pos = a.expect_positionals(2, "OLD NEW").unwrap();
        assert_eq!(pos, ["old.json".to_string(), "new.json".to_string()]);
        assert_eq!(a.get("threshold"), Some("0.1"));
        assert!(a.expect_positionals(1, "X").is_err());
        assert!(parse(&["bench", "diff", "only.json"])
            .unwrap()
            .expect_positionals(2, "OLD NEW")
            .is_err());
    }

    #[test]
    fn repeated_option_accumulates() {
        let a = parse(&["report", "--events", "a.jsonl", "--events", "b.jsonl"]).unwrap();
        assert_eq!(a.get_all("events"), ["a.jsonl".to_string(), "b.jsonl".to_string()]);
        assert_eq!(a.get("events"), Some("b.jsonl"), "get() is the last value");
        assert_eq!(a.require_all("events").unwrap().len(), 2);
        assert!(a.get_all("server-events").is_empty());
        assert!(a.require_all("server-events").is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["cmd", "--measure"]).unwrap();
        assert!(a.flag("measure"));
    }

    #[test]
    fn invalid_number() {
        let a = parse(&["cmd", "--n", "abc"]).unwrap();
        assert!(a.num::<u32>("n", 1).is_err());
    }
}

//! Minimal command-line argument parsing (no external dependencies).

use std::collections::BTreeMap;

/// Parsed arguments: a subcommand plus `--key value` options.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Args {
    pub command: String,
    options: BTreeMap<String, String>,
    flags: Vec<String>,
}

impl Args {
    /// Parse from an iterator of arguments (excluding the program name).
    ///
    /// Grammar: `<command> (--key value | --flag)*`. A `--key` followed by
    /// another `--…` token or nothing is treated as a boolean flag.
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Result<Args, String> {
        let mut it = args.into_iter().peekable();
        let command = it.next().ok_or("missing command")?;
        if command.starts_with("--") {
            return Err(format!("expected a command, found option {command}"));
        }
        let mut out = Args { command, ..Default::default() };
        while let Some(tok) = it.next() {
            let Some(key) = tok.strip_prefix("--") else {
                return Err(format!("unexpected positional argument {tok}"));
            };
            match it.peek() {
                Some(next) if !next.starts_with("--") => {
                    let val = it.next().expect("peeked");
                    out.options.insert(key.to_string(), val);
                }
                _ => out.flags.push(key.to_string()),
            }
        }
        Ok(out)
    }

    /// String option.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.options.get(key).map(String::as_str)
    }

    /// String option with a default.
    pub fn get_or<'a>(&'a self, key: &str, default: &'a str) -> &'a str {
        self.get(key).unwrap_or(default)
    }

    /// Required string option.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key).ok_or_else(|| format!("missing required option --{key}"))
    }

    /// Parsed numeric option with a default.
    pub fn num<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(s) => s.parse().map_err(|_| format!("invalid value for --{key}: {s}")),
        }
    }

    /// Boolean flag presence.
    pub fn flag(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> Result<Args, String> {
        Args::parse(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn basic_parse() {
        let a = parse(&["shrink", "--minutes", "120", "--max-rps", "20", "--verbose"]).unwrap();
        assert_eq!(a.command, "shrink");
        assert_eq!(a.get("minutes"), Some("120"));
        assert_eq!(a.num::<f64>("max-rps", 0.0).unwrap(), 20.0);
        assert!(a.flag("verbose"));
        assert!(!a.flag("quiet"));
    }

    #[test]
    fn defaults_and_requirements() {
        let a = parse(&["gen-trace"]).unwrap();
        assert_eq!(a.get_or("kind", "azure"), "azure");
        assert_eq!(a.num::<u64>("seed", 42).unwrap(), 42);
        assert!(a.require("out").is_err());
    }

    #[test]
    fn rejects_missing_command() {
        assert!(parse(&[]).is_err());
        assert!(parse(&["--minutes", "1"]).is_err());
    }

    #[test]
    fn rejects_positional() {
        assert!(parse(&["cmd", "stray"]).is_err());
    }

    #[test]
    fn trailing_flag() {
        let a = parse(&["cmd", "--measure"]).unwrap();
        assert!(a.flag("measure"));
    }

    #[test]
    fn invalid_number() {
        let a = parse(&["cmd", "--n", "abc"]).unwrap();
        assert!(a.num::<u32>("n", 1).is_err());
    }
}

//! `faasrail` — the command-line interface to the shrink ray and the load
//! generator.
//!
//! ```text
//! faasrail gen-trace  --kind azure|huawei [--scale small|paper] [--seed N] --out trace.json
//! faasrail build-pool [--measure] --out pool.json
//! faasrail shrink     --trace t.json --pool p.json --minutes N --max-rps X
//!                     [--minute-range START] [--iat poisson|uniform|equidistant]
//!                     [--threshold 0.1] --out spec.json
//! faasrail requests   --spec spec.json [--seed N] --out reqs.json
//! faasrail smirnov    --trace t.json --pool p.json --invocations N --rate X
//!                     [--seed N] --out reqs.json
//! faasrail simulate   --requests r.json --pool p.json [--nodes N] [--cores N]
//!                     [--policy fixed-ttl|lru|greedy-dual|hybrid-histogram]
//!                     [--balancer round-robin|least-loaded|warm-first|hash]
//!                     [--crash-node N --crash-at-ms T] [--slow-node N --slow-factor X]
//! faasrail replay     --requests r.json --pool p.json [--compression X] [--workers N]
//!                     [--shard I/N]
//!                     [--target HOST:PORT [--timeout-ms N] [--attempts N]
//!                      [--breaker-threshold N] [--breaker-open-ms T]
//!                      [--mux CONNS [--mux-depth N]]]   # multiplexed pipelined client
//!                     [--live-metrics [--window-s N]] [--events spans.jsonl]
//!                     [--server-events server.jsonl]
//!                     [--metrics-out metrics.json] [--prom-out metrics.prom]
//! faasrail report     --events spans.jsonl [--events more.jsonl ...]
//!                     [--metrics metrics.json]
//!                     [--server-log server.jsonl] [--slowest N]
//!                     [--format markdown|json] [--out report.md]
//! faasrail fleet coordinate
//!                     --requests r.json --pool p.json [--addr 127.0.0.1:7571]
//!                     [--agents N] [--workers N] [--compression X]
//!                     [--target HOST:PORT] [--events merged.jsonl]
//!                     [--report-out fleet.json] [--progress-ms T]
//!                     [--start-delay-ms T] [--agent-timeout-s N] [--live]
//!                     [--lease-ms T] [--no-reshard] [--console ADDR]
//! faasrail fleet agent
//!                     --coordinator HOST:PORT [--name NAME]
//!                     [--timeout-ms N] [--attempts N]
//!                     [--max-rejoin-backoff-ms T] [--no-rejoin]
//! faasrail fleet top  --coordinator ADDR   # the coordinator's --console address
//!                     [--interval-ms T] [--iterations N]  # N=0: until the run ends
//! faasrail serve      [--addr 127.0.0.1:7471] [--backend warm-cache|in-process|noop]
//!                     [--reactor [--shards N]]    # epoll event-loop server
//!                     [--pool p.json] [--conn-workers N] [--queue-cap N]
//!                     [--read-timeout-s N] [--head-timeout-s N] [--trace-out server.jsonl]
//!                     [--drop-frac X] [--error-frac X]
//!                     [--stall-frac X] [--stall-ms T] [--latency-frac X]
//!                     [--latency-ms T] [--fault-seed N]
//! faasrail lab run    [--scale small|paper] [--seed N] [--pool p.json]
//!                     [--policies a,b,..] [--balancers a,b,..] [--seeds a,b,..]
//!                     [--parallel N] [--nodes N] [--cores N] [--memory-mb X]
//!                     [--jitter X] [--iat poisson|uniform|equidistant|bursty]
//!                     [--out report.json] [--md report.md]
//!                     [--bench-out bench.json] [--bench-name NAME]
//! faasrail bench saturate
//!                     [--target HOST:PORT]        # default: self-hosted loopback noop gateway
//!                     [--reactor [--shards N]]    # self-host the epoll server instead
//!                     [--mux CONNS [--mux-depth N]]   # multiplexed pipelined client
//!                     [--p99-ms 50] [--max-error-rate 0.001] [--max-lateness-ms 100]
//!                     [--start-rps 64] [--max-rps 65536] [--resolution-rps 16]
//!                     [--max-probes 24] [--duration-s 2] [--workers N] [--poisson]
//!                     [--seed N] [--timeout-ms 1000] [--pool p.json] [--workload-id N]
//!                     [--name NAME] [--out BENCH_gateway.json]
//! faasrail bench fixed
//!                     [--rps R --rps R ...]       # the measurement ladder (default: 200)
//!                     [--target HOST:PORT] [--reactor [--shards N]]
//!                     [--mux CONNS [--mux-depth N]]
//!                     [--duration-s 2] [--workers N] [--poisson]
//!                     [--seed N] [--timeout-ms 1000] [--pool p.json] [--workload-id N]
//!                     [--name NAME] [--out BENCH_gateway.json]
//! faasrail bench diff OLD.json NEW.json
//!                     [--threshold 0.10] [--advisory]   # advisory: report, never fail
//! faasrail calibrate  [--repeats N]
//! faasrail analyze    --trace t.json
//! faasrail compare    --a r1.json --b r2.json --pool p.json
//! faasrail evaluate   --trace t.json --requests r.json --pool p.json
//! faasrail export     --trace t.json --out-dir DIR   # real Azure CSV schema
//! ```
//!
//! IAT models accept `poisson`, `uniform`, `equidistant`, `bursty`, or
//! `bursty:<cv>` (the Cox-process extension).

mod args;

use args::Args;
use faasrail_core::{
    generate_requests, shrink, IatModel, MappingConfig, RequestTrace, ShrinkRayConfig,
    SmirnovConfig, TimeScaling,
};
use faasrail_faas_sim::{
    simulate, ClusterConfig, KeepAlivePolicy, LoadBalancer, NodeFault, SimOptions,
    WarmCacheBackend, WarmCacheConfig,
};
use faasrail_loadgen::{Pacing, ReplayConfig};
use faasrail_trace::azure::AzureTraceConfig;
use faasrail_trace::huawei::HuaweiTraceConfig;
use faasrail_trace::Trace;
use faasrail_workloads::calibrate::{quick_calibration, CalibrationOptions};
use faasrail_workloads::{CostModel, WorkloadKind, WorkloadPool};
use std::fs;
use std::process::ExitCode;

const USAGE: &str = "usage: faasrail <gen-trace|build-pool|shrink|requests|smirnov|simulate|replay|report|serve|fleet coordinate|fleet agent|fleet top|lab run|bench saturate|bench fixed|bench diff|calibrate|analyze|compare|evaluate|export> [options]
run with a bad option to see each command's requirements; see crate docs for the full grammar";

fn main() -> ExitCode {
    let args = match Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n{USAGE}");
            return ExitCode::FAILURE;
        }
    };
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn read_json<T: serde::de::DeserializeOwned>(path: &str) -> Result<T, String> {
    let s = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    serde_json::from_str(&s).map_err(|e| format!("parsing {path}: {e}"))
}

fn write_json<T: serde::Serialize>(path: &str, value: &T) -> Result<(), String> {
    let s = serde_json::to_string(value).map_err(|e| format!("serializing: {e}"))?;
    fs::write(path, s).map_err(|e| format!("writing {path}: {e}"))
}

fn read_events(path: &str) -> Result<Vec<faasrail_telemetry::TelemetryEvent>, String> {
    let file = fs::File::open(path).map_err(|e| format!("opening {path}: {e}"))?;
    faasrail_telemetry::parse_jsonl(std::io::BufReader::new(file))
        .map_err(|e| format!("{path}: {e}"))
}

/// One-line join summary shared by `replay --server-events` and
/// `report --server-log`.
fn join_summary(join: &faasrail_telemetry::SpanJoin) -> String {
    let [ok, app, timeout, transport, shed] = join.orphans_by_class;
    format!(
        "joined={} orphans={} (ok={ok} app-error={app} timeout={timeout} \
         transport={transport} shed={shed}) server-unmatched={} retries={} \
         clock-offset={:.0}us (+/-{:.0}us from {} pairs)",
        join.joined.len(),
        join.orphaned(),
        join.server_unmatched,
        join.extra_attempts,
        join.offset.offset_us,
        join.offset.error_us,
        join.offset.pairs,
    )
}

/// Markdown table of the `n` worst end-to-end traces, cross-tier when a
/// server log was joined, client-only otherwise.
fn slowest_table(
    events: &[faasrail_telemetry::TelemetryEvent],
    join: Option<&faasrail_telemetry::SpanJoin>,
    n: usize,
) -> String {
    use faasrail_telemetry::{format_trace_id, slowest_client_spans};
    let mut out = String::from("\n## Slowest traces\n\n");
    match join {
        Some(join) => {
            out.push_str(
                "| trace | outcome | response | lateness | client queue | net out | gateway \
                 | service | net back | attempts |\n|---|---|---|---|---|---|---|---|---|---|\n",
            );
            for j in join.slowest(n) {
                let s = &j.stages;
                out.push_str(&format!(
                    "| {} | {} | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms | {:.1} ms \
                     | {:.1} ms | {} |\n",
                    format_trace_id(j.client.trace_id),
                    j.client.outcome.name(),
                    s.response_s * 1e3,
                    s.lateness_s * 1e3,
                    s.client_queue_s * 1e3,
                    s.net_out_s * 1e3,
                    s.gateway_s * 1e3,
                    s.service_s * 1e3,
                    s.net_back_s * 1e3,
                    j.attempts,
                ));
            }
        }
        None => {
            out.push_str(
                "| trace | outcome | response | queue wait | service |\n|---|---|---|---|---|\n",
            );
            for s in slowest_client_spans(events, n) {
                out.push_str(&format!(
                    "| {} | {} | {:.1} ms | {:.1} ms | {:.1} ms |\n",
                    format_trace_id(s.trace_id),
                    s.outcome.name(),
                    s.response_s() * 1e3,
                    s.queue_wait_s() * 1e3,
                    s.service_ms,
                ));
            }
        }
    }
    out
}

fn run(args: &Args) -> Result<(), String> {
    // Only `bench diff OLD NEW` has a positional grammar; everywhere else
    // a bare word is a usage mistake, not input.
    if args.command != "bench diff" {
        args.no_positionals()?;
    }
    match args.command.as_str() {
        "gen-trace" => gen_trace(args),
        "build-pool" => build_pool(args),
        "shrink" => cmd_shrink(args),
        "requests" => cmd_requests(args),
        "smirnov" => cmd_smirnov(args),
        "simulate" => cmd_simulate(args),
        "replay" => cmd_replay(args),
        "report" => cmd_report(args),
        "serve" => cmd_serve(args),
        "fleet coordinate" => cmd_fleet_coordinate(args),
        "fleet agent" => cmd_fleet_agent(args),
        "fleet top" => cmd_fleet_top(args),
        "lab run" => cmd_lab_run(args),
        "bench saturate" => cmd_bench_run(args, true),
        "bench fixed" => cmd_bench_run(args, false),
        "bench diff" => cmd_bench_diff(args),
        "calibrate" => cmd_calibrate(args),
        "analyze" => cmd_analyze(args),
        "evaluate" => cmd_evaluate(args),
        "export" => cmd_export(args),
        "compare" => cmd_compare(args),
        other => Err(format!("unknown command {other}\n{USAGE}")),
    }
}

/// `faasrail evaluate --trace t.json --requests r.json --pool p.json` —
/// score a generated request trace against a production trace on the
/// paper's four critical statistical properties.
fn cmd_evaluate(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("trace")?)?;
    let requests: RequestTrace = read_json(args.require("requests")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let r = faasrail_core::evaluate(&trace, &requests, &pool);
    println!("property (i)   KS distinct-workload durations : {:.4}", r.ks_workload_durations);
    println!("property (ii)  |top-1% share error|           : {:.4}", r.top1_share_error);
    println!("               |top-10% share error|          : {:.4}", r.top10_share_error);
    println!("property (iii) KS invocation durations        : {:.4}", r.ks_invocation_durations);
    println!("property (iv)  load-shape MAE                 : {:.4}", r.load_shape_mae);
    println!("               burstiness ratio (gen/trace)   : {:.3}", r.burstiness_ratio);
    println!("worst distribution distance                   : {:.4}", r.worst_distance());
    Ok(())
}

/// `faasrail export --trace t.json --out-dir DIR` — write a trace in the
/// real Azure CSV schema (interop with other Azure-schema tools).
fn cmd_export(args: &Args) -> Result<(), String> {
    use faasrail_trace::writer;
    let trace: Trace = read_json(args.require("trace")?)?;
    let dir = std::path::Path::new(args.require("out-dir")?);
    fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    let write = |name: &str, f: &dyn Fn(&mut Vec<u8>) -> std::io::Result<()>| {
        let mut buf = Vec::new();
        f(&mut buf).map_err(|e| format!("{name}: {e}"))?;
        let path = dir.join(name);
        fs::write(&path, buf).map_err(|e| format!("writing {}: {e}", path.display()))
    };
    write("invocations_per_function.csv", &|b| writer::write_invocations(&trace, b))?;
    write("function_durations.csv", &|b| writer::write_durations(&trace, b))?;
    write("app_memory.csv", &|b| writer::write_memory(&trace, b))?;
    eprintln!(
        "exported {} functions / {} apps to {}",
        trace.functions.len(),
        trace.apps.len(),
        dir.display()
    );
    Ok(())
}

/// `faasrail analyze --trace t.json` — print the critical statistical
/// properties of a trace (the quantities FaaSRail preserves).
fn cmd_analyze(args: &Args) -> Result<(), String> {
    use faasrail_stats::timeseries::{fano_factor, peak};
    use faasrail_trace::summarize;
    let trace: Trace = read_json(args.require("trace")?)?;
    faasrail_trace::validate(&trace).map_err(|e| e.to_string())?;

    println!(
        "kind: {:?}; functions: {}; apps: {}",
        trace.kind,
        trace.functions.len(),
        trace.apps.len()
    );
    println!("invocations (selected day): {}", trace.total_invocations());

    let fe = summarize::functions_duration_ecdf(&trace);
    println!(
        "function durations ms: p10 {:.1}  p50 {:.1}  p90 {:.1}  p99 {:.1}  (sub-second: {:.1}%)",
        fe.quantile(0.10),
        fe.quantile(0.50),
        fe.quantile(0.90),
        fe.quantile(0.99),
        fe.eval(1_000.0) * 100.0
    );
    let we = summarize::invocations_duration_wecdf(&trace);
    println!("invocation durations: sub-second {:.1}%", we.eval(1_000.0) * 100.0);
    for frac in [0.01, 0.08, 0.20] {
        println!(
            "top {:>4.1}% of functions hold {:.1}% of invocations",
            frac * 100.0,
            summarize::top_share(&trace, frac) * 100.0
        );
    }
    let agg = trace.aggregate_minutes();
    let (peak_minute, peak_count) = peak(&agg).unwrap_or((0, 0));
    println!(
        "load: peak {} req/min at minute {}; per-minute Fano {:.1}",
        peak_count,
        peak_minute,
        fano_factor(&agg)
    );
    let breakdown = summarize::trigger_breakdown(&trace);
    let parts: Vec<String> =
        breakdown.iter().map(|(k, v)| format!("{k} {:.1}%", v * 100.0)).collect();
    println!("triggers by invocation share: {}", parts.join(", "));
    let sel = faasrail_core::dayselect::select_day(&trace, 0.8);
    println!(
        "day-sampling safety: CV(dur)<1 for {:.1}%, CV(inv)<1 for {:.1}% → single day safe: {}",
        sel.stable_duration_fraction * 100.0,
        sel.stable_invocations_fraction * 100.0,
        sel.single_day_safe
    );
    Ok(())
}

/// `faasrail compare --a r1.json --b r2.json --pool p.json` — how close are
/// two request traces, in the properties that matter?
fn cmd_compare(args: &Args) -> Result<(), String> {
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::{ks_distance_weighted, timeseries::normalize_peak};
    let a: RequestTrace = read_json(args.require("a")?)?;
    let b: RequestTrace = read_json(args.require("b")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;

    let wa = WeightedEcdf::new(a.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
    let wb = WeightedEcdf::new(b.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
    println!("requests: a={} b={}", a.len(), b.len());
    println!("KS(expected invocation durations) = {:.4}", ks_distance_weighted(&wa, &wb));

    // Load-shape comparison over the common duration.
    let minutes = a.duration_minutes.min(b.duration_minutes);
    if minutes > 0 {
        let na = normalize_peak(&a.per_minute_counts()[..minutes]);
        let nb = normalize_peak(&b.per_minute_counts()[..minutes]);
        let mae: f64 = na.iter().zip(&nb).map(|(x, y)| (x - y).abs()).sum::<f64>() / minutes as f64;
        println!("load-shape mean abs error over {minutes} common minutes = {mae:.4}");
    }

    let ca = a.counts_by_kind(&pool);
    let cb = b.counts_by_kind(&pool);
    println!("{:<18} {:>8} {:>8}", "benchmark", "a %", "b %");
    for kind in WorkloadKind::ALL {
        let fa = ca.get(&kind).copied().unwrap_or(0) as f64 / a.len().max(1) as f64;
        let fb = cb.get(&kind).copied().unwrap_or(0) as f64 / b.len().max(1) as f64;
        println!("{:<18} {:>7.2}% {:>7.2}%", kind.name(), fa * 100.0, fb * 100.0);
    }
    Ok(())
}

fn gen_trace(args: &Args) -> Result<(), String> {
    let seed = args.num("seed", 42u64)?;
    let scale = args.get_or("scale", "small");
    let trace = match args.get_or("kind", "azure") {
        "azure" => {
            let cfg = match scale {
                "paper" => AzureTraceConfig::paper_scale(seed),
                "small" => AzureTraceConfig::small(seed),
                s => return Err(format!("unknown scale {s}")),
            };
            faasrail_trace::azure::generate(&cfg)
        }
        "huawei" => {
            let cfg = match scale {
                "paper" => HuaweiTraceConfig::paper_scale(seed),
                "small" => HuaweiTraceConfig::small(seed),
                s => return Err(format!("unknown scale {s}")),
            };
            faasrail_trace::huawei::generate(&cfg)
        }
        k => return Err(format!("unknown trace kind {k}")),
    };
    let out = args.require("out")?;
    write_json(out, &trace)?;
    eprintln!(
        "wrote {out}: {} functions, {} invocations on the selected day",
        trace.functions.len(),
        trace.total_invocations()
    );
    Ok(())
}

fn build_pool(args: &Args) -> Result<(), String> {
    let model = if args.flag("measure") {
        eprintln!("measuring kernel warm times (quick calibration)...");
        quick_calibration(&CalibrationOptions::default())
    } else {
        CostModel::default_calibration()
    };
    let pool = WorkloadPool::build_modelled(&model);
    let out = args.require("out")?;
    write_json(out, &pool)?;
    eprintln!("wrote {out}: {} workloads from {} benchmarks", pool.len(), WorkloadKind::ALL.len());
    Ok(())
}

fn parse_iat(s: &str) -> Result<IatModel, String> {
    match s {
        "poisson" => Ok(IatModel::Poisson),
        "uniform" => Ok(IatModel::UniformRandom),
        "equidistant" => Ok(IatModel::Equidistant),
        "bursty" => Ok(IatModel::Bursty { cv: 1.5 }),
        _ => match s.strip_prefix("bursty:").map(str::parse::<f64>) {
            Some(Ok(cv)) if cv >= 0.0 => Ok(IatModel::Bursty { cv }),
            _ => {
                Err(format!("unknown iat model {s} (try poisson|uniform|equidistant|bursty[:cv])"))
            }
        },
    }
}

fn cmd_shrink(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("trace")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let minutes = args.num("minutes", 120usize)?;
    let max_rps = args.num("max-rps", 20.0f64)?;
    let mut cfg = ShrinkRayConfig::new(minutes, max_rps);
    if let Some(start) = args.get("minute-range") {
        let start = start.parse().map_err(|_| "invalid --minute-range")?;
        cfg.time_scaling = TimeScaling::MinuteRange { start, experiment_minutes: minutes };
    }
    cfg.iat = parse_iat(args.get_or("iat", "poisson"))?;
    cfg.mapping = MappingConfig {
        error_threshold: args.num("threshold", 0.10f64)?,
        ..MappingConfig::default()
    };
    let (spec, report) = shrink(&trace, &pool, &cfg).map_err(|e| e.to_string())?;
    let out = args.require("out")?;
    write_json(out, &spec)?;
    eprintln!(
        "wrote {out}: {} requests / {} minutes (peak {}/min); {} functions → {} Functions; \
         mapping weighted error {:.2}%; day-sampling safe: {}",
        spec.total_requests(),
        spec.duration_minutes,
        spec.peak_per_minute(),
        report.trace_functions,
        report.aggregated_functions,
        report.mapping.weighted_rel_error * 100.0,
        report.day.single_day_safe
    );
    Ok(())
}

fn cmd_requests(args: &Args) -> Result<(), String> {
    let spec = read_json(args.require("spec")?)?;
    let seed = args.num("seed", 42u64)?;
    let reqs = generate_requests(&spec, seed);
    let out = args.require("out")?;
    write_json(out, &reqs)?;
    eprintln!("wrote {out}: {} timestamped requests", reqs.len());
    Ok(())
}

fn cmd_smirnov(args: &Args) -> Result<(), String> {
    let trace: Trace = read_json(args.require("trace")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let cfg = SmirnovConfig {
        num_invocations: args.num("invocations", 120_408usize)?,
        rate_rps: args.num("rate", 20.0f64)?,
        iat: parse_iat(args.get_or("iat", "poisson"))?,
        mapping: MappingConfig::default(),
        seed: args.num("seed", 42u64)?,
    };
    let (reqs, report) = faasrail_core::smirnov::generate(&trace, &pool, &cfg);
    let out = args.require("out")?;
    write_json(out, &reqs)?;
    eprintln!(
        "wrote {out}: {} requests; {:.1}% mapped within threshold; per-kind: {:?}",
        reqs.len(),
        report.within_threshold_fraction * 100.0,
        report.counts_by_kind.iter().map(|(k, c)| (k.name(), *c)).collect::<Vec<_>>()
    );
    Ok(())
}

fn parse_policy(s: &str) -> Result<Box<dyn KeepAlivePolicy>, String> {
    Ok(faasrail_faas_sim::PolicyKind::parse(s)?.build())
}

fn parse_balancer(s: &str) -> Result<Box<dyn LoadBalancer>, String> {
    Ok(faasrail_faas_sim::BalancerKind::parse(s)?.build())
}

fn cmd_simulate(args: &Args) -> Result<(), String> {
    let reqs: RequestTrace = read_json(args.require("requests")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let cluster = ClusterConfig {
        nodes: args.num("nodes", 4usize)?,
        cores_per_node: args.num("cores", 16usize)?,
        ..Default::default()
    };
    let mut policy = parse_policy(args.get_or("policy", "fixed-ttl"))?;
    let mut balancer = parse_balancer(args.get_or("balancer", "warm-first"))?;
    let mut node_faults = Vec::new();
    if let Some(node) = args.get("crash-node") {
        let node = node.parse().map_err(|_| "invalid --crash-node")?;
        let at: u64 = args.num("crash-at-ms", 0u64)?;
        node_faults.push(NodeFault { node, crash_at_ms: Some(at), ..Default::default() });
    }
    if let Some(node) = args.get("slow-node") {
        let node = node.parse().map_err(|_| "invalid --slow-node")?;
        let factor: f64 = args.num("slow-factor", 2.0f64)?;
        node_faults.push(NodeFault { node, slow_factor: factor, ..Default::default() });
    }
    let m = simulate(
        &reqs,
        &pool,
        &cluster,
        balancer.as_mut(),
        policy.as_mut(),
        &SimOptions { service_jitter_sigma: args.num("jitter", 0.0f64)?, seed: 0, node_faults },
    );
    println!(
        "policy={} balancer={} completions={} cold={:.2}% p50={:.1}ms p99={:.1}ms \
         util={:.1}% idle_mem={:.0}MiB starved={} killed={} sandboxes_lost={}",
        m.policy,
        m.balancer,
        m.completions,
        m.cold_start_fraction() * 100.0,
        m.response.quantile(0.5) * 1_000.0,
        m.response.quantile(0.99) * 1_000.0,
        m.utilization() * 100.0,
        m.mean_idle_memory_mb(),
        m.starved,
        m.killed,
        m.sandboxes_lost
    );
    Ok(())
}

/// `faasrail lab run` — the parallel experiment runner: build a
/// full-fidelity one-day schedule model from a synthetic Azure trace, then
/// sweep a (policy × balancer × seed) grid of simulations over it, one
/// cell per worker. Arrivals are expanded lazily per cell, so even the
/// paper-scale day (49.7K functions, ~908M invocations) never exists as a
/// materialized request trace.
fn cmd_lab_run(args: &Args) -> Result<(), String> {
    use faasrail_faas_sim::{BalancerKind, PolicyKind};
    use faasrail_lab::{run_lab, BenchRecord, LabConfig};

    let scale_env = std::env::var("FAASRAIL_SCALE").ok();
    let scale = args.get("scale").or(scale_env.as_deref()).unwrap_or("small");
    let seed = args.num("seed", 42u64)?;
    let trace_cfg = match scale {
        "paper" => AzureTraceConfig::paper_scale(seed),
        "small" => AzureTraceConfig::small(seed),
        s => return Err(format!("unknown scale {s} (expected small or paper)")),
    };

    let pool = match args.get("pool") {
        Some(path) => read_json(path)?,
        None => WorkloadPool::build_modelled(&CostModel::default_calibration()),
    };

    // Trace → schedule model; the trace itself is dropped before any cell
    // runs, so peak memory is the model plus per-cell simulator state.
    let iat = parse_iat(args.get_or("iat", "poisson"))?;
    let model = {
        let trace = faasrail_trace::azure::generate(&trace_cfg);
        eprintln!(
            "lab: {} trace has {} functions, {} invocations on day {}",
            scale,
            trace.functions.len(),
            trace.total_invocations(),
            trace_cfg.selected_day,
        );
        faasrail_core::ScheduleModel::from_trace_day(&trace, &pool, &MappingConfig::default(), iat)
            .map_err(|e| format!("building schedule model: {e}"))?
    };

    let parse_names = |key: &str, default: &str| -> Vec<String> {
        args.get_or(key, default).split(',').map(str::trim).map(str::to_string).collect()
    };
    let mut policies = Vec::new();
    for name in parse_names("policies", "fixed-ttl,hybrid-histogram") {
        policies.push(PolicyKind::parse(&name)?);
    }
    let mut balancers = Vec::new();
    for name in parse_names("balancers", "warm-first") {
        balancers.push(BalancerKind::parse(&name)?);
    }
    let mut seeds = Vec::new();
    for s in parse_names("seeds", "42") {
        seeds.push(s.parse::<u64>().map_err(|_| format!("invalid seed {s}"))?);
    }

    // Scale-appropriate virtual cluster. The paper-scale day averages
    // ~10.5K rps of multi-second invocations (~28K cores of mean demand),
    // so it gets ~64K virtual cores — roomy enough that queues track the
    // diurnal peaks instead of growing without bound; the small day
    // (~23 rps) still wants a couple hundred cores for the same reason.
    // Few fat nodes rather than many thin ones: the per-arrival balancer
    // view is O(nodes), so node count is the lab's main throughput knob.
    let (def_nodes, def_cores, def_mem) = match scale {
        "paper" => (8usize, 8_192usize, 4_194_304.0f64),
        _ => (8, 32, 65_536.0),
    };
    let cfg = LabConfig {
        scale: scale.to_string(),
        policies,
        balancers,
        seeds,
        cluster: ClusterConfig {
            nodes: args.num("nodes", def_nodes)?,
            cores_per_node: args.num("cores", def_cores)?,
            memory_mb_per_node: args.num("memory-mb", def_mem)?,
            ..Default::default()
        },
        parallel: args.num("parallel", 0usize)?,
        service_jitter_sigma: args.num("jitter", 0.0f64)?,
    };

    let n_cells = cfg.cells().len();
    eprintln!(
        "lab: {} cells ({} policies x {} balancers x {} seeds) on {} nodes x {} cores; \
         {} scheduled arrivals/cell",
        n_cells,
        cfg.policies.len(),
        cfg.balancers.len(),
        cfg.seeds.len(),
        cfg.cluster.nodes,
        cfg.cluster.cores_per_node,
        model.entries.iter().map(|e| e.total()).sum::<u64>(),
    );
    let (report, stats) = run_lab(&model, &pool, &cfg);

    eprintln!(
        "lab: done — {} cells, {} arrivals, {} events in {:.1}s ({:.2}M events/s, {} workers)",
        stats.cells,
        stats.arrivals,
        stats.events,
        stats.wall_ms as f64 / 1_000.0,
        stats.events_per_sec() / 1e6,
        stats.workers,
    );
    for r in &report.aggregates {
        eprintln!(
            "lab: {}/{}: cold-start rate {:.4}, idle mem {:.0} MiB, p99 {:.1} ms, starved {}",
            r.policy,
            r.balancer,
            r.mean_cold_start_rate,
            r.mean_idle_memory_mb,
            r.mean_p99_response_ms,
            r.total_starved,
        );
    }

    if let Some(out) = args.get("out") {
        let s = serde_json::to_string_pretty(&report).map_err(|e| format!("serializing: {e}"))?;
        fs::write(out, s).map_err(|e| format!("writing {out}: {e}"))?;
        eprintln!("lab: wrote report {out}");
    }
    if let Some(md) = args.get("md") {
        fs::write(md, report.to_markdown()).map_err(|e| format!("writing {md}: {e}"))?;
        eprintln!("lab: wrote markdown {md}");
    }
    if let Some(bench) = args.get("bench-out") {
        // Re-emitted through the shared trajectory schema so the sim and
        // gateway BENCH files diff with the same `bench diff` gate.
        let rec = BenchRecord::from_stats(args.get_or("bench-name", "lab"), scale, &stats);
        let report = faasrail_bench::harness::sim_report(&rec);
        fs::write(bench, report.to_json()).map_err(|e| format!("writing {bench}: {e}"))?;
        eprintln!("lab: wrote bench report {bench} ({})", report.schema);
    }
    Ok(())
}

/// `faasrail bench saturate|fixed` — the online-tier benchmark harness.
///
/// Runs open-loop fixed-rate rungs (coordinated-omission-correct: pacer
/// lateness is measured, bounded, and disqualifying) against a gateway
/// over real TCP, and writes the result through the shared
/// `faasrail-bench/v1` trajectory schema. With no `--target`, a loopback
/// noop-backend gateway is self-hosted so the command measures the
/// gateway + client stack in isolation, reproducibly.
fn cmd_bench_run(args: &Args, saturate: bool) -> Result<(), String> {
    use faasrail_bench::harness::{
        run_fixed_rate, saturation_search, AcceptCriteria, BenchReport, BenchWorkload,
        FixedRateSpec, SearchConfig,
    };
    use faasrail_gateway::{
        BreakerConfig, Gateway, GatewayConfig, HttpBackend, HttpBackendConfig, MuxConfig,
        MuxHttpBackend, ReactorGateway, RetryPolicy,
    };
    use faasrail_loadgen::{ArrivalProcess, Backend, InvocationRequest, InvocationResult};
    use faasrail_workloads::WorkloadId;
    use std::sync::Arc;

    // The harness is generic over `Backend`; both transports (per-request
    // pooled, multiplexed) route through one enum so the closure below has
    // a single concrete type.
    enum BenchBackend {
        Http(HttpBackend),
        Mux(MuxHttpBackend),
    }
    impl Backend for BenchBackend {
        fn invoke(&self, req: &InvocationRequest) -> InvocationResult {
            match self {
                BenchBackend::Http(b) => b.invoke(req),
                BenchBackend::Mux(b) => b.invoke(req),
            }
        }
    }
    enum LocalHandle {
        Threaded(faasrail_gateway::GatewayHandle),
        Reactor(faasrail_gateway::ReactorHandle),
    }
    impl LocalHandle {
        fn stop(self) {
            match self {
                LocalHandle::Threaded(h) => h.stop(),
                LocalHandle::Reactor(h) => h.stop(),
            }
        }
    }

    let duration_s = args.num("duration-s", 2.0f64)?;
    let workers = args.num("workers", 8usize)?;
    let seed = args.num("seed", 42u64)?;
    let timeout_ms = args.num("timeout-ms", 1_000u64)?;
    let process =
        if args.flag("poisson") { ArrivalProcess::Poisson } else { ArrivalProcess::Uniform };
    let workload = WorkloadId(args.num("workload-id", 7u32)?);
    let pool: WorkloadPool = match args.get("pool") {
        Some(p) => read_json(p)?,
        None => WorkloadPool::vanilla(&CostModel::default_calibration()),
    };
    if pool.get(workload).is_none() {
        return Err(format!("workload id {} not in the pool", workload.0));
    }

    // Target: an external gateway, or a self-hosted loopback gateway with
    // the noop backend (stopped on exit) so the bench is one command.
    // `--reactor [--shards N]` self-hosts the epoll server instead of the
    // thread-per-connection one.
    let reactor = args.flag("reactor");
    let shards = args.num("shards", 1usize)?;
    let (target, target_desc, local) = match args.get("target") {
        Some(t) => (t.to_string(), t.to_string(), None),
        None if reactor => {
            let handle = ReactorGateway::bind_sharded(
                "127.0.0.1:0",
                Arc::new(faasrail_loadgen::NoopBackend),
                GatewayConfig::default(),
                shards,
            )
            .map_err(|e| format!("binding loopback reactor gateway: {e}"))?
            .spawn();
            let addr = handle.addr().to_string();
            eprintln!(
                "bench: self-hosted loopback reactor gateway (noop backend, {shards} shard(s)) \
                 at {addr}"
            );
            (
                addr.clone(),
                format!("{addr}/noop (self-hosted, reactor x{shards})"),
                Some(LocalHandle::Reactor(handle)),
            )
        }
        None => {
            let handle = Gateway::bind(
                "127.0.0.1:0",
                Arc::new(faasrail_loadgen::NoopBackend),
                GatewayConfig::default(),
            )
            .map_err(|e| format!("binding loopback gateway: {e}"))?
            .spawn();
            let addr = handle.addr().to_string();
            eprintln!("bench: self-hosted loopback gateway (noop backend) at {addr}");
            (
                addr.clone(),
                format!("{addr}/noop (self-hosted)"),
                Some(LocalHandle::Threaded(handle)),
            )
        }
    };

    // Client transport: `--mux N` drives a multiplexed fixed pool of N
    // pipelined connections from one reactor thread; default is the pooled
    // one-request-per-connection-at-a-time client. One attempt, no
    // breaker: a saturation probe must *see* every failure, not paper over
    // it with retries or fail fast around it (the mux client never
    // retries by construction).
    let backend = match args.get("mux") {
        Some(n) => {
            let connections: usize =
                n.parse().map_err(|_| format!("invalid value for --mux: {n}"))?;
            let mux_cfg = MuxConfig {
                connections,
                pipeline_depth: args.num("mux-depth", 32usize)?,
                request_timeout: std::time::Duration::from_millis(timeout_ms),
                ..MuxConfig::default()
            };
            eprintln!(
                "bench: multiplexed client ({} connections, pipeline depth {})",
                mux_cfg.connections, mux_cfg.pipeline_depth
            );
            BenchBackend::Mux(
                MuxHttpBackend::new(&target, mux_cfg)
                    .map_err(|e| format!("resolving {target}: {e}"))?,
            )
        }
        None => {
            let http_cfg = HttpBackendConfig {
                request_timeout: std::time::Duration::from_millis(timeout_ms),
                retry: RetryPolicy { max_attempts: 1, ..RetryPolicy::default() },
                breaker: BreakerConfig::tripping(0, std::time::Duration::from_millis(1_000)),
                ..HttpBackendConfig::default()
            };
            BenchBackend::Http(
                HttpBackend::connect(&target, http_cfg)
                    .map_err(|e| format!("resolving {target}: {e}"))?,
            )
        }
    };

    let spec = |rps: f64| FixedRateSpec { rps, duration_s, workers, process, seed, workload };
    let arrivals = if args.flag("poisson") { "poisson" } else { "uniform" };
    let workload_spec = BenchWorkload {
        arrivals: arrivals.to_string(),
        duration_s,
        workers: workers as u64,
        seed,
        target: target_desc,
    };
    let default_name = if saturate { "gateway-saturate" } else { "gateway-fixed" };
    let mut report = BenchReport::new(args.get_or("name", default_name), "gateway", workload_spec);

    if saturate {
        let criteria = AcceptCriteria {
            p99_ms: args.num("p99-ms", 50.0f64)?,
            max_error_rate: args.num("max-error-rate", 0.001f64)?,
            max_lateness_p99_ms: args.num("max-lateness-ms", 100.0f64)?,
        };
        let search = SearchConfig {
            start_rps: args.num("start-rps", 64.0f64)?,
            max_rps: args.num("max-rps", 65_536.0f64)?,
            resolution_rps: args.num("resolution-rps", 16.0f64)?,
            max_probes: args.num("max-probes", 24usize)?,
        };
        eprintln!(
            "bench: saturation search start={} max={} (p99<={}ms err<={} lateness-p99<={}ms), \
             {}s per probe, {} workers, {} arrivals",
            search.start_rps,
            search.max_rps,
            criteria.p99_ms,
            criteria.max_error_rate,
            criteria.max_lateness_p99_ms,
            duration_s,
            workers,
            arrivals,
        );
        let (summary, runs) = saturation_search(
            |rps| {
                eprintln!("bench: probing {rps:.0} rps...");
                run_fixed_rate(&backend, &pool, &spec(rps))
            },
            &criteria,
            &search,
        );
        eprintln!(
            "bench: max sustained {:.0} rps after {} probes",
            summary.max_sustained_rps, summary.probes
        );
        report.runs = runs;
        report.saturation = Some(summary);
    } else {
        let mut rates: Vec<f64> = Vec::new();
        for r in args.get_all("rps") {
            rates.push(r.parse().map_err(|_| format!("invalid value for --rps: {r}"))?);
        }
        if rates.is_empty() {
            rates.push(200.0);
        }
        for rps in rates {
            eprintln!("bench: fixed-rate rung {rps:.0} rps for {duration_s}s...");
            report.runs.push(run_fixed_rate(&backend, &pool, &spec(rps)));
        }
    }

    if let Some(handle) = local {
        handle.stop();
    }
    let out = args.get_or("out", "BENCH_gateway.json");
    fs::write(out, report.to_json()).map_err(|e| format!("writing {out}: {e}"))?;
    eprintln!("bench: wrote {out}");
    print!("{}", report.to_markdown());
    Ok(())
}

/// `faasrail bench diff OLD NEW` — the perf-trajectory regression gate:
/// markdown delta table on stdout, nonzero exit when any shared metric
/// regresses past `--threshold` (unless `--advisory`).
fn cmd_bench_diff(args: &Args) -> Result<(), String> {
    use faasrail_bench::harness::{diff_reports, BenchReport};
    let pos = args.expect_positionals(2, "OLD.json NEW.json")?;
    let read = |path: &str| -> Result<BenchReport, String> {
        let s = fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
        BenchReport::from_json(&s).map_err(|e| format!("{path}: {e}"))
    };
    let old = read(&pos[0])?;
    let new = read(&pos[1])?;
    let threshold = args.num("threshold", 0.10f64)?;
    let diff = diff_reports(&old, &new)?;
    println!(
        "# bench diff: {} ({}) → {} ({})\n",
        old.name,
        old.env.build.short_sha(),
        new.name,
        new.env.build.short_sha(),
    );
    print!("{}", diff.to_markdown(threshold));
    let regressions = diff.regressions(threshold);
    if !regressions.is_empty() && !args.flag("advisory") {
        return Err(format!(
            "{} metric(s) regressed past the {:.0}% threshold",
            regressions.len(),
            threshold * 100.0
        ));
    }
    Ok(())
}

fn cmd_replay(args: &Args) -> Result<(), String> {
    use faasrail_loadgen::{replay_observed, ReplayInstruments};
    use faasrail_telemetry::{spawn_progress_printer, EventSink, JsonlSink, NullSink, Recorder};
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let mut reqs: RequestTrace = read_json(args.require("requests")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let compression = args.num("compression", 1.0f64)?;
    let workers = args.num("workers", 8usize)?;
    let cfg = ReplayConfig { pacing: Pacing::RealTime { compression }, workers };

    // `--shard I/N`: replay only this shard of the schedule (the same
    // deterministic partitioner fleet mode uses, so N manual replayers
    // exactly cover the schedule with no overlap).
    if let Some(spec) = args.get("shard") {
        let shard = faasrail_loadgen::ShardSpec::parse(spec)?;
        let full = reqs.requests.len();
        reqs = shard.filter(&reqs);
        eprintln!("replay: shard {shard} holds {} of {} requests", reqs.len(), full);
    }

    // Observability: optional JSONL event log, optional live windowed
    // metrics (one shard per worker plus one for the pacer).
    let sink: Box<dyn EventSink> = match args.get("events") {
        Some(path) => {
            Box::new(JsonlSink::create(path).map_err(|e| format!("creating {path}: {e}"))?)
        }
        None => Box::new(NullSink),
    };
    let live = args.flag("live-metrics");
    let recorder =
        (live || args.get("prom-out").is_some()).then(|| Arc::new(Recorder::new(workers + 1)));
    let stop = Arc::new(AtomicBool::new(false));
    let window_s = args.num("window-s", 5u64)?.max(1);
    let printer = live.then(|| {
        spawn_progress_printer(
            Arc::clone(recorder.as_ref().expect("live metrics imply a recorder")),
            std::time::Duration::from_secs(window_s),
            Arc::clone(&stop),
        )
    });
    let inst = ReplayInstruments { sink: sink.as_ref(), recorder: recorder.as_deref(), pace: None };

    eprintln!(
        "replay: {} requests / {}-minute schedule; pacing=realtime compression={}x workers={} \
         events={} live-metrics={}",
        reqs.len(),
        reqs.duration_minutes,
        compression,
        workers,
        args.get_or("events", "off"),
        if live { "on" } else { "off" },
    );

    let m = if let Some(target) = args.get("target") {
        use faasrail_gateway::{
            BreakerConfig, HttpBackend, HttpBackendConfig, MuxConfig, MuxHttpBackend, RetryPolicy,
        };
        let timeout_ms = args.num("timeout-ms", 30_000u64)?;
        let attempts = args.num("attempts", 4u32)?;
        if let Some(n) = args.get("mux") {
            // Multiplexed transport: one reactor thread drives a fixed pool
            // of pipelined connections; no retries, no breaker (every
            // failure surfaces in the outcome breakdown).
            let connections: usize =
                n.parse().map_err(|_| format!("invalid value for --mux: {n}"))?;
            let mux_cfg = MuxConfig {
                connections,
                pipeline_depth: args.num("mux-depth", 32usize)?,
                request_timeout: std::time::Duration::from_millis(timeout_ms),
                ..MuxConfig::default()
            };
            let depth = mux_cfg.pipeline_depth;
            let backend = MuxHttpBackend::new(target, mux_cfg)
                .map_err(|e| format!("resolving {target}: {e}"))?;
            eprintln!(
                "replay: target={target} timeout-ms={timeout_ms} mux={connections} \
                 mux-depth={depth}"
            );
            let m = replay_observed(&reqs, &pool, &backend, &cfg, &stop, &inst);
            eprintln!("transport: {}", backend.summary());
            m
        } else {
            let breaker_threshold = args.num("breaker-threshold", 0u32)?;
            let breaker_open_ms = args.num("breaker-open-ms", 1_000u64)?;
            let http_cfg = HttpBackendConfig {
                request_timeout: std::time::Duration::from_millis(timeout_ms),
                retry: RetryPolicy { max_attempts: attempts, ..RetryPolicy::default() },
                breaker: BreakerConfig::tripping(
                    breaker_threshold,
                    std::time::Duration::from_millis(breaker_open_ms),
                ),
                ..HttpBackendConfig::default()
            };
            let backend = HttpBackend::connect(target, http_cfg)
                .map_err(|e| format!("resolving {target}: {e}"))?;
            eprintln!(
                "replay: target={target} timeout-ms={timeout_ms} attempts={attempts} \
                 breaker-threshold={breaker_threshold} breaker-open-ms={breaker_open_ms}"
            );
            let m = replay_observed(&reqs, &pool, &backend, &cfg, &stop, &inst);
            eprintln!("transport: {}", backend.transport_summary());
            m
        }
    } else {
        let backend = WarmCacheBackend::new(pool.clone(), WarmCacheConfig::default());
        eprintln!("replay: backend=warm-cache (in-process)");
        replay_observed(&reqs, &pool, &backend, &cfg, &stop, &inst)
    };
    stop.store(true, Ordering::Relaxed);
    if let Some(handle) = printer {
        let _ = handle.join();
    }
    sink.flush();

    // Cross-tier join: merge our own span log with the gateway's
    // (`faasrail serve --trace-out`) right after the run.
    if let Some(server_path) = args.get("server-events") {
        let client_path = args
            .get("events")
            .ok_or("--server-events needs --events (the client span log to join against)")?;
        let client_events = read_events(client_path)?;
        let server_events = read_events(server_path)?;
        let join = faasrail_telemetry::join_spans(&client_events, &server_events);
        eprintln!("trace join: {}", join_summary(&join));
    }

    if let Some(path) = args.get("metrics-out") {
        write_json(path, &m)?;
        eprintln!("wrote {path}");
    }
    if let Some(path) = args.get("prom-out") {
        let snap = recorder.as_ref().expect("prom-out implies a recorder").snapshot();
        fs::write(path, snap.to_prometheus("faasrail_replay"))
            .map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}");
    }
    println!(
        "issued={} completed={} errors={} cold={} p50={:.1}ms p99={:.1}ms lateness_p99={:.2}ms",
        m.issued,
        m.completed,
        m.errors,
        m.cold_starts,
        m.response_quantile_ms(0.5),
        m.response_quantile_ms(0.99),
        m.lateness.quantile(0.99) * 1_000.0
    );
    println!("outcomes: {}", m.outcome_breakdown());
    Ok(())
}

/// `faasrail report --events spans.jsonl [--metrics metrics.json]
/// [--server-log server.jsonl] [--slowest N]` — digest a JSONL telemetry
/// log into a run report (markdown or JSON), optionally cross-checking the
/// log against the replay's final `RunMetrics` so silent event loss is
/// caught instead of papered over. `--events` repeats: multiple client
/// logs (one per fleet agent) merge into one stream — headers and trailers
/// combine, spans dedupe by trace id and order by timestamp. With
/// `--server-log`, the gateway's span log (`faasrail serve --trace-out`)
/// is joined by trace id into a cross-tier six-stage decomposition;
/// `--slowest N` appends the N worst end-to-end traces.
fn cmd_report(args: &Args) -> Result<(), String> {
    use faasrail_telemetry::{merge_event_logs, RunReport, SpanJoin};

    let paths = args.require_all("events")?;
    let events = if paths.len() == 1 {
        read_events(&paths[0])?
    } else {
        let logs = paths.iter().map(|p| read_events(p)).collect::<Result<Vec<_>, _>>()?;
        let spans_in: usize = logs.iter().map(Vec::len).sum();
        let merged = merge_event_logs(&logs);
        eprintln!(
            "merged {} event logs: {} events in, {} out (duplicate trace ids folded)",
            logs.len(),
            spans_in,
            merged.len()
        );
        merged
    };
    let (report, join): (RunReport, Option<SpanJoin>) = match args.get("server-log") {
        Some(server_path) => {
            let server_events = read_events(server_path)?;
            let (report, join) = RunReport::with_server_events(&events, &server_events);
            eprintln!("trace join: {}", join_summary(&join));
            (report, Some(join))
        }
        None => (RunReport::from_events(&events), None),
    };

    if let Some(mpath) = args.get("metrics") {
        let m: faasrail_loadgen::RunMetrics = read_json(mpath)?;
        let checks = [
            ("issued", report.issued, m.issued),
            ("completed", report.completed, m.completed),
            ("app_errors", report.app_errors, m.app_errors),
            ("timeouts", report.timeouts, m.timeouts),
            ("transport_errors", report.transport_errors, m.transport_errors),
            ("shed", report.shed, m.shed),
            ("cold_starts", report.cold_starts, m.cold_starts),
        ];
        let mismatches: Vec<String> = checks
            .iter()
            .filter(|(_, from_log, from_metrics)| from_log != from_metrics)
            .map(|(name, from_log, from_metrics)| {
                format!("{name}: event log {from_log} vs metrics {from_metrics}")
            })
            .collect();
        if !mismatches.is_empty() {
            return Err(format!("event log disagrees with {mpath}: {}", mismatches.join("; ")));
        }
        eprintln!("event log agrees with {mpath} on every outcome counter");
    }

    let slowest = args.get("slowest").map(|_| args.num("slowest", 10usize)).transpose()?;
    let rendered = match args.get_or("format", "markdown") {
        "markdown" | "md" => {
            let mut md = report.to_markdown();
            if let Some(n) = slowest {
                md.push_str(&slowest_table(&events, join.as_ref(), n));
            }
            md
        }
        "json" => {
            // JSON stays machine-parseable; the trace dump goes to stderr.
            if let Some(n) = slowest {
                eprint!("{}", slowest_table(&events, join.as_ref(), n));
            }
            serde_json::to_string_pretty(&report).map_err(|e| format!("serializing report: {e}"))?
        }
        f => return Err(format!("unknown format {f} (try markdown|json)")),
    };
    match args.get("out") {
        Some(out) => {
            fs::write(out, rendered).map_err(|e| format!("writing {out}: {e}"))?;
            eprintln!("wrote {out}");
        }
        None => print!("{rendered}"),
    }
    Ok(())
}

/// `faasrail serve` — expose a backend over HTTP for networked replay
/// (`faasrail replay --target`). Blocks until killed.
fn cmd_serve(args: &Args) -> Result<(), String> {
    use faasrail_gateway::{FaultConfig, Gateway, GatewayConfig, ReactorGateway};
    use std::sync::Arc;
    let cfg = GatewayConfig {
        workers: args.num("conn-workers", 64usize)?,
        queue_capacity: args.num("queue-cap", 64usize)?,
        read_timeout: std::time::Duration::from_secs(args.num("read-timeout-s", 30u64)?),
        head_read_timeout: std::time::Duration::from_secs(args.num("head-timeout-s", 10u64)?),
        fault: FaultConfig {
            drop_fraction: args.num("drop-frac", 0.0f64)?,
            error_fraction: args.num("error-frac", 0.0f64)?,
            stall_fraction: args.num("stall-frac", 0.0f64)?,
            stall_ms: args.num("stall-ms", 1_000u64)?,
            latency_fraction: args.num("latency-frac", 0.0f64)?,
            latency_ms: args.num("latency-ms", 100u64)?,
            seed: args.num("fault-seed", 1u64)?,
        },
    };
    let backend: Arc<dyn faasrail_loadgen::Backend> = match args.get_or("backend", "warm-cache") {
        "warm-cache" => {
            let pool: WorkloadPool = read_json(args.require("pool")?)?;
            Arc::new(WarmCacheBackend::new(pool, WarmCacheConfig::default()))
        }
        "in-process" => Arc::new(faasrail_loadgen::InProcessBackend),
        "noop" => Arc::new(faasrail_loadgen::NoopBackend),
        b => return Err(format!("unknown backend {b} (try warm-cache|in-process|noop)")),
    };
    let name = backend.name().to_string();
    let cfg_banner = format!(
        "conn-workers={} queue-cap={} read-timeout-s={}",
        cfg.workers,
        cfg.queue_capacity,
        cfg.read_timeout.as_secs()
    );
    let f = &cfg.fault;
    let fault_banner = format!(
        "faults: drop={} error={} stall={}@{}ms latency={}@{}ms seed={}",
        f.drop_fraction,
        f.error_fraction,
        f.stall_fraction,
        f.stall_ms,
        f.latency_fraction,
        f.latency_ms,
        f.seed
    );
    let addr = args.get_or("addr", "127.0.0.1:7471");
    let trace_sink: Option<Arc<dyn faasrail_telemetry::EventSink>> = match args.get("trace-out") {
        Some(path) => {
            // Autoflush so the span log stays parseable even if the server
            // is killed rather than shut down (the usual way a serve run
            // ends).
            let sink = faasrail_telemetry::JsonlSink::create_autoflush(path)
                .map_err(|e| format!("creating {path}: {e}"))?;
            eprintln!("serve: tracing server spans to {path}");
            Some(Arc::new(sink))
        }
        None => None,
    };
    if args.flag("reactor") {
        let shards = args.num("shards", 1usize)?;
        let mut gateway = ReactorGateway::bind_sharded(addr, backend, cfg, shards)
            .map_err(|e| format!("binding reactor gateway: {e}"))?;
        if let Some(sink) = trace_sink {
            gateway = gateway.with_trace_sink(sink);
        }
        eprintln!(
            "serve: backend={name} at http://{} ({cfg_banner} reactor shards={shards})",
            gateway.local_addr()
        );
        eprintln!("serve: {fault_banner}");
        eprintln!(
            "serve: endpoints POST /invoke, GET /healthz, GET /stats, GET /metrics; ctrl-c to stop"
        );
        gateway.run();
        return Ok(());
    }
    let mut gateway =
        Gateway::bind(addr, backend, cfg).map_err(|e| format!("binding gateway: {e}"))?;
    if let Some(sink) = trace_sink {
        gateway = gateway.with_trace_sink(sink);
    }
    eprintln!("serve: backend={name} at http://{} ({cfg_banner})", gateway.local_addr());
    eprintln!("serve: {fault_banner}");
    eprintln!(
        "serve: endpoints POST /invoke, GET /healthz, GET /stats, GET /metrics; ctrl-c to stop"
    );
    gateway.run();
    Ok(())
}

/// `faasrail fleet coordinate` — drive N agent processes through one
/// sharded, start-synchronized replay and merge their results into a
/// fleet report. Blocks until every shard is done or lost.
fn cmd_fleet_coordinate(args: &Args) -> Result<(), String> {
    use faasrail_fleet::{Coordinator, FleetConfig};
    use std::sync::atomic::AtomicBool;

    let reqs: RequestTrace = read_json(args.require("requests")?)?;
    let pool: WorkloadPool = read_json(args.require("pool")?)?;
    let events_out = args.get("events");
    let cfg = FleetConfig {
        agents: args.num("agents", 2usize)?,
        workers: args.num("workers", 4usize)?,
        pacing: Pacing::RealTime { compression: args.num("compression", 1.0f64)? },
        capture_events: events_out.is_some(),
        progress_every_ms: args.num("progress-ms", 1_000u64)?,
        start_delay_ms: args.num("start-delay-ms", 500u64)?,
        target: args.get("target").map(str::to_string),
        probes: args.num("probes", 7u32)?,
        live: args.flag("live"),
        agent_timeout: std::time::Duration::from_secs(args.num("agent-timeout-s", 30u64)?),
        lease_ms: args.num("lease-ms", 5_000u64)?,
        reshard: !args.flag("no-reshard"),
        console: args.get("console").map(str::to_string),
    };
    let coordinator =
        Coordinator::bind(args.get_or("addr", "127.0.0.1:7571")).map_err(|e| e.to_string())?;
    if let Some(console) = &cfg.console {
        eprintln!(
            "fleet: ops console at http://{console} — \
             /state /metrics /healthz /dashboard (fleet top --coordinator {console})"
        );
    }
    eprintln!(
        "fleet: coordinating {} agents at {} — {} requests / {}-minute schedule, target={}",
        cfg.agents,
        coordinator.local_addr().map_err(|e| e.to_string())?,
        reqs.len(),
        reqs.duration_minutes,
        cfg.target.as_deref().unwrap_or("in-process"),
    );
    let report = coordinator
        .run(&reqs, &pool, &cfg, &AtomicBool::new(false))
        .map_err(|e| format!("fleet run: {e}"))?;

    if let Some(path) = events_out {
        let mut out = String::new();
        for event in &report.events {
            out.push_str(&serde_json::to_string(event).map_err(|e| format!("serializing: {e}"))?);
            out.push('\n');
        }
        fs::write(path, out).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("wrote {path}: {} merged events", report.events.len());
    }
    if let Some(path) = args.get("report-out") {
        write_json(path, &report)?;
        eprintln!("wrote {path}");
    }
    for a in &report.agents {
        eprintln!(
            "fleet: shard {} ({}) assigned={} granted={} status={}{} max-lag={}ms \
             clock-offset={:.0}us(+/-{:.0}us)",
            a.shard,
            a.name,
            a.assigned,
            a.granted,
            a.status,
            if a.rejoined { " (rejoined)" } else { "" },
            a.max_lag_ms,
            a.clock.offset_us,
            a.clock.error_us,
        );
    }
    if !report.reassignments.is_empty() {
        eprintln!(
            "fleet: {} reassignment grant(s) issued — {}",
            report.reassignments.len(),
            report
                .reassignments
                .iter()
                .map(|r| format!(
                    "{}→{} ({} reqs, {})",
                    r.from_shard, r.to_shard, r.requests, r.reason
                ))
                .collect::<Vec<_>>()
                .join(", "),
        );
    }
    for reason in &report.abort_reasons {
        eprintln!("fleet: abort reason: {reason}");
    }
    if report.max_lag_ms > 0 {
        eprintln!("fleet: worst offered-vs-achieved pacing lag {}ms", report.max_lag_ms);
    }
    let m = &report.metrics;
    println!(
        "fleet: shards={} offered={} issued={} completed={} errors={} aborted={} \
         cold={} p50={:.1}ms p99={:.1}ms",
        report.shards,
        report.offered,
        m.issued,
        m.completed,
        m.errors,
        report.aborted_invocations,
        m.cold_starts,
        m.response_quantile_ms(0.5),
        m.response_quantile_ms(0.99),
    );
    println!("outcomes: {}", m.outcome_breakdown());
    if report.aborted_invocations > 0 {
        return Err(format!(
            "{} of {} offered invocations never ran (lost agents or abort)",
            report.aborted_invocations, report.offered
        ));
    }
    Ok(())
}

/// `faasrail fleet agent --coordinator HOST:PORT` — serve one shard. The
/// assignment (trace, pool, pacing, target) arrives over the wire; this
/// process needs no local files.
fn cmd_fleet_agent(args: &Args) -> Result<(), String> {
    use faasrail_fleet::{run_agent_with, AgentConfig};
    use std::sync::Arc;

    let addr = args.require("coordinator")?.to_string();
    let cfg = AgentConfig {
        name: args.get_or("name", "").to_string(),
        rejoin: !args.flag("no-rejoin"),
        max_rejoin_backoff: std::time::Duration::from_millis(
            args.num("max-rejoin-backoff-ms", 5_000u64)?,
        ),
        ..AgentConfig::default()
    };
    let timeout_ms = args.num("timeout-ms", 30_000u64)?;
    let attempts = args.num("attempts", 4u32)?;
    eprintln!("fleet agent: dialing coordinator at {addr}");
    let run = run_agent_with(addr.as_str(), &cfg, |assignment| {
        Ok(match &assignment.target {
            Some(target) => {
                use faasrail_gateway::{HttpBackend, HttpBackendConfig, RetryPolicy};
                let http_cfg = HttpBackendConfig {
                    request_timeout: std::time::Duration::from_millis(timeout_ms),
                    retry: RetryPolicy { max_attempts: attempts, ..RetryPolicy::default() },
                    ..HttpBackendConfig::default()
                };
                let backend = HttpBackend::connect(target, http_cfg)
                    .map_err(|e| std::io::Error::other(format!("resolving {target}: {e}")))?;
                eprintln!("fleet agent: replaying against {target}");
                Arc::new(backend) as Arc<dyn faasrail_loadgen::Backend>
            }
            None => {
                eprintln!("fleet agent: in-process warm-cache backend");
                Arc::new(WarmCacheBackend::new(assignment.pool.clone(), WarmCacheConfig::default()))
            }
        })
    })
    .map_err(|e| format!("agent run: {e}"))?;

    match run {
        Some(r) => {
            println!(
                "fleet agent: shard {} done — issued={} completed={} errors={} aborted={} \
                 grants-taken={} rejoins={}",
                r.shard,
                r.metrics.issued,
                r.metrics.completed,
                r.metrics.errors,
                r.metrics.aborted,
                r.granted,
                r.rejoined,
            );
            Ok(())
        }
        None => Err("coordinator aborted the run before start".into()),
    }
}

/// `faasrail fleet top --coordinator ADDR` — live terminal view of a
/// running fleet, rendered from the coordinator's `/state` endpoint (the
/// address given to `fleet coordinate --console`). Redraws every
/// `--interval-ms` until the console stops answering (run over) or
/// `--iterations` frames have been drawn (`0` = no limit).
fn cmd_fleet_top(args: &Args) -> Result<(), String> {
    use faasrail_fleet::{fetch_state, render_top};

    let addr = args.require("coordinator")?.to_string();
    let interval = std::time::Duration::from_millis(args.num("interval-ms", 1_000u64)?);
    let iterations = args.num("iterations", 0u64)?;
    let mut drawn = 0u64;
    let mut misses = 0u32;
    loop {
        match fetch_state(&addr, 0) {
            Ok(view) => {
                misses = 0;
                drawn += 1;
                // Clear screen + home, then one full frame: a plain redraw
                // keeps this usable under `watch`, pipes, and dumb terminals.
                print!("\x1b[2J\x1b[H{}", render_top(&view));
                use std::io::Write;
                std::io::stdout().flush().map_err(|e| e.to_string())?;
            }
            Err(e) => {
                misses += 1;
                if drawn == 0 && misses >= 3 {
                    return Err(format!("fleet top: no console at {addr}: {e}"));
                }
                if misses >= 3 {
                    eprintln!("fleet top: console at {addr} stopped answering ({e}) — run over");
                    return Ok(());
                }
            }
        }
        if iterations > 0 && drawn >= iterations {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn cmd_calibrate(args: &Args) -> Result<(), String> {
    let opts = CalibrationOptions { warmups: 2, repeats: args.num("repeats", 5u32)? };
    eprintln!("running quick calibration ({} repeats per point)...", opts.repeats);
    let model = quick_calibration(&opts);
    for kind in WorkloadKind::ALL {
        let c = model.cost(kind);
        println!(
            "{:<18} overhead={:>9.1}us  ns_per_unit={:>10.3}",
            kind.name(),
            c.overhead_us,
            c.ns_per_unit
        );
    }
    if let Some(out) = args.get("out") {
        write_json(out, &model)?;
        eprintln!("wrote {out}");
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_iat_all_forms() {
        assert_eq!(parse_iat("poisson").unwrap(), IatModel::Poisson);
        assert_eq!(parse_iat("uniform").unwrap(), IatModel::UniformRandom);
        assert_eq!(parse_iat("equidistant").unwrap(), IatModel::Equidistant);
        assert_eq!(parse_iat("bursty").unwrap(), IatModel::Bursty { cv: 1.5 });
        assert_eq!(parse_iat("bursty:2.5").unwrap(), IatModel::Bursty { cv: 2.5 });
        assert!(parse_iat("bursty:-1").is_err());
        assert!(parse_iat("gaussian").is_err());
    }

    #[test]
    fn parse_policy_names() {
        for name in ["fixed-ttl", "lru", "greedy-dual", "hybrid-histogram"] {
            assert!(parse_policy(name).is_ok(), "{name}");
        }
        assert!(parse_policy("mru").is_err());
    }

    #[test]
    fn parse_balancer_names() {
        for name in ["round-robin", "least-loaded", "warm-first", "hash"] {
            assert!(parse_balancer(name).is_ok(), "{name}");
        }
        assert!(parse_balancer("random").is_err());
    }

    #[test]
    fn json_io_roundtrip() {
        let dir = std::env::temp_dir().join("faasrail-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("spec.json");
        let path = path.to_str().unwrap();
        let value = vec![1u64, 2, 3];
        write_json(path, &value).unwrap();
        let back: Vec<u64> = read_json(path).unwrap();
        assert_eq!(value, back);
        assert!(read_json::<Vec<u64>>("/nonexistent/x.json").is_err());
    }
}

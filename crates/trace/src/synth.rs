//! Shared synthesis machinery for the synthetic trace generators.
//!
//! The released production traces cannot be redistributed here, so the
//! generators in [`crate::azure`] and [`crate::huawei`] synthesize traces
//! that reproduce the *statistics* FaaSRail consumes. This module holds the
//! building blocks both generators share: the diurnal load template, the
//! per-function invocation-pattern synthesizers (steady / periodic / bursty /
//! rare), and the cross-day roll-up noise model.

use crate::model::{DayStats, MinuteSeries, MINUTES_PER_DAY};
use faasrail_stats::sampler::{Exponential, Poisson, Sampler};
use faasrail_stats::special::normal_inv_cdf;
use faasrail_stats::timeseries::{apportion_weights, moving_average};
use rand::Rng;

/// Draw one standard-normal variate by inverse transform.
fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u = rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12);
    normal_inv_cdf(u)
}

/// A day-long relative load template: positive weights, one per minute.
///
/// Two harmonics (daily + half-daily) over a base level plus smoothed noise
/// reproduce the gentle diurnal wave of the Azure trace's aggregate load
/// (paper Fig. 8: relative load meanders between ~0.6 and 1.0 over the day).
pub fn diurnal_template<R: Rng + ?Sized>(rng: &mut R, base: f64, amplitude: f64) -> Vec<f64> {
    let phase1 = rng.gen::<f64>() * std::f64::consts::TAU;
    let phase2 = rng.gen::<f64>() * std::f64::consts::TAU;
    let raw_noise: Vec<f64> =
        (0..MINUTES_PER_DAY).map(|_| std_normal(rng) * amplitude * 0.6).collect();
    let noise = moving_average(&raw_noise, 90);
    (0..MINUTES_PER_DAY)
        .map(|m| {
            let t = m as f64 / MINUTES_PER_DAY as f64 * std::f64::consts::TAU;
            let v = base
                + amplitude * (t + phase1).sin()
                + amplitude * 0.35 * (2.0 * t + phase2).sin()
                + noise[m];
            v.max(base * 0.1)
        })
        .collect()
}

/// Cumulative distribution over minutes derived from a template
/// (for multinomial placement of rare functions' few events).
pub fn template_cdf(template: &[f64]) -> Vec<f64> {
    let total: f64 = template.iter().sum();
    assert!(total > 0.0, "template must have positive mass");
    let mut acc = 0.0;
    let mut cdf = Vec::with_capacity(template.len());
    for &w in template {
        acc += w / total;
        cdf.push(acc);
    }
    *cdf.last_mut().expect("non-empty") = 1.0;
    cdf
}

/// Scatter `total` events over minutes according to a template CDF
/// (rare functions: a handful of invocations at load-weighted minutes).
pub fn rare_series<R: Rng + ?Sized>(rng: &mut R, cdf: &[f64], total: u64) -> MinuteSeries {
    let mut counts = vec![0u64; MINUTES_PER_DAY];
    for _ in 0..total {
        let u = rng.gen::<f64>();
        let m = cdf.partition_point(|&c| c < u).min(MINUTES_PER_DAY - 1);
        counts[m] += 1;
    }
    MinuteSeries::from_dense(&counts)
}

/// Per-minute Poisson arrivals with rate proportional to the template
/// (steady functions tracking the diurnal wave).
pub fn steady_series<R: Rng + ?Sized>(rng: &mut R, template: &[f64], total: u64) -> MinuteSeries {
    let sum: f64 = template.iter().sum();
    let mut counts = vec![0u64; MINUTES_PER_DAY];
    for (m, &w) in template.iter().enumerate() {
        let lambda = total as f64 * w / sum;
        if lambda <= 0.0 {
            continue;
        }
        counts[m] = Poisson::new(lambda).sample(rng);
    }
    MinuteSeries::from_dense(&counts)
}

/// Cron-like periodic spikes: one spike every `period` minutes starting at a
/// random phase, with the day's `total` apportioned exactly over the spikes.
pub fn periodic_series<R: Rng + ?Sized>(rng: &mut R, period: u16, total: u64) -> MinuteSeries {
    assert!(period >= 1 && (period as usize) <= MINUTES_PER_DAY);
    let phase = rng.gen_range(0..period);
    let spikes: Vec<u16> = (phase..MINUTES_PER_DAY as u16).step_by(period as usize).collect();
    let per_spike = apportion_weights(&vec![1.0; spikes.len()], total);
    let mut counts = vec![0u64; MINUTES_PER_DAY];
    for (&m, &c) in spikes.iter().zip(&per_spike) {
        counts[m as usize] = c;
    }
    MinuteSeries::from_dense(&counts)
}

/// On/off bursts: a few short windows of intense activity separated by
/// idle time — the sub-minute spike pattern the traces report.
pub fn bursty_series<R: Rng + ?Sized>(rng: &mut R, total: u64) -> MinuteSeries {
    let num_bursts = 1 + rng.gen_range(0..6usize);
    // Burst weights: exponential draws normalized (Dirichlet-like).
    let weight_sampler = Exponential::new(1.0);
    let weights: Vec<f64> = (0..num_bursts).map(|_| weight_sampler.sample(rng) + 0.05).collect();
    let burst_totals = apportion_weights(&weights, total);

    let len_sampler = Exponential::from_mean(4.0);
    let mut counts = vec![0u64; MINUTES_PER_DAY];
    for &bt in &burst_totals {
        if bt == 0 {
            continue;
        }
        let len = (1.0 + len_sampler.sample(rng)).floor().min(60.0) as usize;
        let start = rng.gen_range(0..MINUTES_PER_DAY.saturating_sub(len).max(1));
        // Spread the burst's events uniformly over its window.
        let per_minute = apportion_weights(&vec![1.0; len], bt);
        for (off, &c) in per_minute.iter().enumerate() {
            counts[start + off] += c;
        }
    }
    MinuteSeries::from_dense(&counts)
}

/// Weekly factor: weekends carry less load (two out of every seven days).
pub fn weekend_factor(day: usize) -> f64 {
    if day % 7 >= 5 {
        0.75
    } else {
        1.0
    }
}

/// Cross-day roll-ups for one function.
///
/// `volatile` functions model the high-CV tail of paper Fig. 3 (~10 % of
/// Azure functions); stable ones barely vary across days, which is the
/// property that makes single-day sampling statistically safe.
pub fn daily_rollups<R: Rng + ?Sized>(
    rng: &mut R,
    base_duration_ms: f64,
    selected_day_count: u64,
    num_days: usize,
    selected_day: usize,
    volatile: bool,
) -> Vec<DayStats> {
    assert!(selected_day < num_days);
    let (sigma_dur, sigma_cnt) = if volatile { (1.2, 1.5) } else { (0.05, 0.15) };
    (0..num_days)
        .map(|d| {
            if d == selected_day {
                DayStats { avg_duration_ms: base_duration_ms, invocations: selected_day_count }
            } else {
                let dur = base_duration_ms * (std_normal(rng) * sigma_dur).exp();
                let cnt = selected_day_count as f64
                    * weekend_factor(d)
                    * (std_normal(rng) * sigma_cnt).exp();
                DayStats { avg_duration_ms: dur.max(0.1), invocations: cnt.round().max(0.0) as u64 }
            }
        })
        .collect()
}

/// Zipf–Mandelbrot popularity weights for ranks `1..=n`: `(r + q)^{-s}`.
///
/// The shift `q` flattens the head so the single most popular function does
/// not swallow an unrealistic share of the traffic, while the tail keeps the
/// published skew (top 8 % of functions ≈ 99 % of invocations for Azure).
pub fn zipf_mandelbrot_weights(n: usize, s: f64, q: f64) -> Vec<f64> {
    assert!(n > 0 && s > 0.0 && q >= 0.0);
    (1..=n).map(|r| (r as f64 + q).powf(-s)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::seeded_rng;

    #[test]
    fn template_positive_and_wavy() {
        let mut rng = seeded_rng(1);
        let t = diurnal_template(&mut rng, 1.0, 0.25);
        assert_eq!(t.len(), MINUTES_PER_DAY);
        assert!(t.iter().all(|&v| v > 0.0));
        let max = t.iter().cloned().fold(f64::MIN, f64::max);
        let min = t.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min > 1.2, "template should vary (max={max}, min={min})");
        assert!(max / min < 10.0, "template should not be spiky");
    }

    #[test]
    fn template_cdf_monotone_ends_at_one() {
        let mut rng = seeded_rng(2);
        let t = diurnal_template(&mut rng, 1.0, 0.25);
        let cdf = template_cdf(&t);
        assert!(cdf.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*cdf.last().unwrap(), 1.0);
    }

    #[test]
    fn rare_series_exact_total() {
        let mut rng = seeded_rng(3);
        let t = diurnal_template(&mut rng, 1.0, 0.25);
        let cdf = template_cdf(&t);
        let s = rare_series(&mut rng, &cdf, 7);
        assert_eq!(s.total(), 7);
    }

    #[test]
    fn steady_series_tracks_total() {
        let mut rng = seeded_rng(4);
        let t = diurnal_template(&mut rng, 1.0, 0.25);
        let s = steady_series(&mut rng, &t, 100_000);
        let total = s.total() as f64;
        assert!((total / 100_000.0 - 1.0).abs() < 0.02, "total = {total}");
        // A steady-popular function is active nearly every minute.
        assert!(s.active_minutes() > 1400);
    }

    #[test]
    fn periodic_series_spacing_and_total() {
        let mut rng = seeded_rng(5);
        let s = periodic_series(&mut rng, 60, 240);
        assert_eq!(s.total(), 240);
        assert_eq!(s.active_minutes(), 24);
        let minutes: Vec<u16> = s.entries().iter().map(|&(m, _)| m).collect();
        for w in minutes.windows(2) {
            assert_eq!(w[1] - w[0], 60);
        }
    }

    #[test]
    fn bursty_series_concentrated() {
        let mut rng = seeded_rng(6);
        let s = bursty_series(&mut rng, 10_000);
        assert_eq!(s.total(), 10_000);
        // Bursts cover at most 6 windows x 60 minutes.
        assert!(s.active_minutes() <= 360, "active = {}", s.active_minutes());
    }

    #[test]
    fn rollups_selected_day_exact() {
        let mut rng = seeded_rng(7);
        let days = daily_rollups(&mut rng, 123.0, 456, 14, 0, false);
        assert_eq!(days.len(), 14);
        assert_eq!(days[0].avg_duration_ms, 123.0);
        assert_eq!(days[0].invocations, 456);
        // Stable functions stay near the base across days.
        for d in &days {
            assert!(d.avg_duration_ms > 80.0 && d.avg_duration_ms < 200.0);
        }
    }

    #[test]
    fn rollups_volatile_vary_more() {
        let mut rng = seeded_rng(8);
        let stable = daily_rollups(&mut rng, 100.0, 1000, 14, 0, false);
        let volatile = daily_rollups(&mut rng, 100.0, 1000, 14, 0, true);
        let spread = |days: &[DayStats]| {
            let durs: Vec<f64> = days.iter().map(|d| d.avg_duration_ms).collect();
            let max = durs.iter().cloned().fold(f64::MIN, f64::max);
            let min = durs.iter().cloned().fold(f64::MAX, f64::min);
            max / min
        };
        assert!(spread(&volatile) > spread(&stable));
    }

    #[test]
    fn weekend_factor_pattern() {
        assert_eq!(weekend_factor(0), 1.0);
        assert_eq!(weekend_factor(4), 1.0);
        assert_eq!(weekend_factor(5), 0.75);
        assert_eq!(weekend_factor(6), 0.75);
        assert_eq!(weekend_factor(7), 1.0);
    }

    #[test]
    fn zipf_mandelbrot_monotone_decreasing() {
        let w = zipf_mandelbrot_weights(100, 1.5, 5.0);
        assert_eq!(w.len(), 100);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }
}

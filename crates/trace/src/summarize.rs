//! Trace-level statistical summaries — the quantities every paper figure is
//! drawn from.

use crate::model::Trace;
use faasrail_stats::ecdf::{Ecdf, WeightedEcdf};
use std::collections::BTreeMap;

/// ECDF of distinct functions' average execution durations (paper Figs. 1a, 6).
///
/// Counts every function once, regardless of invocation volume, matching the
/// per-workload CDFs of the paper. Functions are included whether or not
/// they were invoked on the selected day (the Azure duration file covers all
/// functions observed that day).
pub fn functions_duration_ecdf(trace: &Trace) -> Ecdf {
    Ecdf::new(&trace.functions.iter().map(|f| f.avg_duration_ms).collect::<Vec<_>>())
}

/// Invocation-weighted ECDF of execution durations (paper Figs. 1b, 9, 11):
/// each function's average duration weighted by its selected-day invocations.
pub fn invocations_duration_wecdf(trace: &Trace) -> WeightedEcdf {
    WeightedEcdf::new(
        trace
            .functions
            .iter()
            .filter(|f| f.total_invocations() > 0)
            .map(|f| (f.avg_duration_ms, f.total_invocations() as f64)),
    )
}

/// ECDF of per-app allocated memory (paper Fig. 7).
pub fn app_memory_ecdf(trace: &Trace) -> Ecdf {
    Ecdf::new(&trace.apps.iter().map(|a| a.memory_mb).collect::<Vec<_>>())
}

/// Invocation share per trigger kind (the Azure trace's Trigger column).
pub fn trigger_breakdown(trace: &Trace) -> BTreeMap<&'static str, f64> {
    let mut counts: BTreeMap<&'static str, u64> = BTreeMap::new();
    let mut total = 0u64;
    for f in &trace.functions {
        let t = f.total_invocations();
        *counts.entry(f.trigger.name()).or_insert(0) += t;
        total += t;
    }
    counts.into_iter().map(|(k, v)| (k, v as f64 / total.max(1) as f64)).collect()
}

/// Popularity curve (paper Figs. 1c, 10): for each prefix of functions
/// sorted by descending invocation count, `(fraction_of_functions,
/// cumulative_fraction_of_invocations)`.
///
/// Only functions invoked on the selected day participate (a function with
/// zero invocations has no popularity).
pub fn popularity_curve(trace: &Trace) -> Vec<(f64, f64)> {
    let mut totals: Vec<u64> =
        trace.functions.iter().map(|f| f.total_invocations()).filter(|&t| t > 0).collect();
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = totals.iter().sum();
    if grand == 0 {
        return Vec::new();
    }
    let n = totals.len() as f64;
    let mut acc = 0u64;
    totals
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            acc += t;
            ((i + 1) as f64 / n, acc as f64 / grand as f64)
        })
        .collect()
}

/// Share of total invocations held by the most popular `frac` of functions
/// (e.g. `top_share(trace, 0.08)` ≈ 0.99 for Azure).
pub fn top_share(trace: &Trace, frac: f64) -> f64 {
    assert!((0.0..=1.0).contains(&frac));
    let curve = popularity_curve(trace);
    if curve.is_empty() {
        return 0.0;
    }
    curve
        .iter()
        .take_while(|&&(f, _)| f <= frac)
        .last()
        .map(|&(_, share)| share)
        .unwrap_or(curve[0].1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::TraceFunction;
    use crate::model::{App, AppId, FunctionId, MinuteSeries, TraceKind, TriggerKind};

    fn mk(durations_and_counts: &[(f64, u32)]) -> Trace {
        let functions = durations_and_counts
            .iter()
            .enumerate()
            .map(|(i, &(d, c))| TraceFunction {
                id: FunctionId(i as u32),
                app: AppId(0),
                trigger: TriggerKind::default(),
                avg_duration_ms: d,
                minutes: if c > 0 {
                    MinuteSeries::new(vec![(0, c)])
                } else {
                    MinuteSeries::default()
                },
                daily: vec![],
            })
            .collect();
        Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions,
            apps: vec![App { id: AppId(0), memory_mb: 100.0 }],
        }
    }

    #[test]
    fn function_vs_invocation_cdfs() {
        // Two functions: fast one invoked 99 times, slow one once.
        let t = mk(&[(10.0, 99), (1000.0, 1)]);
        let fe = functions_duration_ecdf(&t);
        assert_eq!(fe.eval(10.0), 0.5);
        let we = invocations_duration_wecdf(&t);
        assert_eq!(we.eval(10.0), 0.99);
    }

    #[test]
    fn popularity_curve_shape() {
        let t = mk(&[(1.0, 80), (1.0, 15), (1.0, 5)]);
        let curve = popularity_curve(&t);
        assert_eq!(curve.len(), 3);
        assert!((curve[0].0 - 1.0 / 3.0).abs() < 1e-12);
        assert!((curve[0].1 - 0.80).abs() < 1e-12);
        assert!((curve[2].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_excludes_idle_functions() {
        let t = mk(&[(1.0, 10), (1.0, 0)]);
        assert_eq!(popularity_curve(&t).len(), 1);
    }

    #[test]
    fn top_share_monotone() {
        let t = mk(&[(1.0, 70), (1.0, 20), (1.0, 9), (1.0, 1)]);
        assert!(top_share(&t, 0.25) >= 0.69);
        assert!(top_share(&t, 0.5) >= top_share(&t, 0.25));
        assert!((top_share(&t, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn memory_ecdf() {
        let t = mk(&[(1.0, 1)]);
        let e = app_memory_ecdf(&t);
        assert_eq!(e.eval(100.0), 1.0);
        assert_eq!(e.eval(99.0), 0.0);
    }
}

//! Loaders for the *real* released trace files.
//!
//! The synthetic generators in this crate stand in for the actual datasets,
//! but a user who has downloaded the Azure Functions 2019 release can load
//! it directly with [`load_azure_day`] and run the identical pipeline. The
//! expected schemas follow the `AzurePublicDataset` repository:
//!
//! * invocations: `HashOwner,HashApp,HashFunction,Trigger,1,2,…,1440`
//! * durations: `HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum,…`
//! * memory: `HashOwner,HashApp,SampleCount,AverageAllocatedMb,…`
//!
//! Functions are joined on `(HashOwner, HashApp, HashFunction)`; functions
//! lacking either an invocation row or a duration row are dropped, matching
//! the paper's preprocessing.

use crate::model::{
    App, AppId, DayStats, FunctionId, MinuteSeries, Trace, TraceFunction, TraceKind, TriggerKind,
    MINUTES_PER_DAY,
};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;

/// Errors arising while parsing trace CSV files.
#[derive(Debug)]
pub enum LoadError {
    Io(std::io::Error),
    /// `(line_number, message)`
    Malformed(usize, String),
}

impl fmt::Display for LoadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LoadError::Io(e) => write!(f, "I/O error: {e}"),
            LoadError::Malformed(line, msg) => write!(f, "line {line}: {msg}"),
        }
    }
}

impl std::error::Error for LoadError {}

impl From<std::io::Error> for LoadError {
    fn from(e: std::io::Error) -> Self {
        LoadError::Io(e)
    }
}

/// Split one CSV record. Handles double-quoted fields (the Azure files do
/// not use them, but defensive parsing is cheap).
fn split_csv(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes && chars.peek() == Some(&'"') => {
                cur.push('"');
                chars.next();
            }
            '"' => in_quotes = !in_quotes,
            ',' if !in_quotes => fields.push(std::mem::take(&mut cur)),
            _ => cur.push(c),
        }
    }
    fields.push(cur);
    fields
}

/// Key joining the three Azure files.
type FnKey = (String, String, String);

struct InvocationRow {
    key: FnKey,
    trigger: TriggerKind,
    minutes: MinuteSeries,
}

/// Parse the invocations-per-minute file.
fn parse_invocations<R: BufRead>(reader: R) -> Result<Vec<InvocationRow>, LoadError> {
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue; // header
        }
        let fields = split_csv(&line);
        if fields.len() < 4 + MINUTES_PER_DAY {
            return Err(LoadError::Malformed(
                lineno + 1,
                format!("expected {} fields, found {}", 4 + MINUTES_PER_DAY, fields.len()),
            ));
        }
        let mut counts = vec![0u64; MINUTES_PER_DAY];
        for (m, field) in fields[4..4 + MINUTES_PER_DAY].iter().enumerate() {
            counts[m] = field
                .trim()
                .parse::<u64>()
                .map_err(|e| LoadError::Malformed(lineno + 1, format!("minute {}: {e}", m + 1)))?;
        }
        rows.push(InvocationRow {
            key: (fields[0].clone(), fields[1].clone(), fields[2].clone()),
            trigger: TriggerKind::parse(&fields[3]),
            minutes: MinuteSeries::from_dense(&counts),
        });
    }
    Ok(rows)
}

struct DurationRow {
    key: FnKey,
    average_ms: f64,
}

/// Parse the function-durations file (only the `Average` column is used,
/// mirroring the paper).
fn parse_durations<R: BufRead>(reader: R) -> Result<Vec<DurationRow>, LoadError> {
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(&line);
        if fields.len() < 4 {
            return Err(LoadError::Malformed(lineno + 1, "expected at least 4 fields".into()));
        }
        let average_ms = fields[3]
            .trim()
            .parse::<f64>()
            .map_err(|e| LoadError::Malformed(lineno + 1, format!("Average: {e}")))?;
        rows.push(DurationRow {
            key: (fields[0].clone(), fields[1].clone(), fields[2].clone()),
            average_ms,
        });
    }
    Ok(rows)
}

struct MemoryRow {
    owner: String,
    app: String,
    allocated_mb: f64,
}

/// Parse the app-memory file (only `AverageAllocatedMb` is used).
fn parse_memory<R: BufRead>(reader: R) -> Result<Vec<MemoryRow>, LoadError> {
    let mut rows = Vec::new();
    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        if lineno == 0 || line.trim().is_empty() {
            continue;
        }
        let fields = split_csv(&line);
        if fields.len() < 4 {
            return Err(LoadError::Malformed(lineno + 1, "expected at least 4 fields".into()));
        }
        let allocated_mb = fields[3]
            .trim()
            .parse::<f64>()
            .map_err(|e| LoadError::Malformed(lineno + 1, format!("AverageAllocatedMb: {e}")))?;
        rows.push(MemoryRow { owner: fields[0].clone(), app: fields[1].clone(), allocated_mb });
    }
    Ok(rows)
}

/// Load one day of a real Azure-format trace from the three CSV readers.
///
/// Functions present in both the invocation and the duration file are kept;
/// apps without a memory row default to 170 MiB (the trace median).
pub fn load_azure_day<R1: BufRead, R2: BufRead, R3: BufRead>(
    invocations: R1,
    durations: R2,
    memory: R3,
) -> Result<Trace, LoadError> {
    let inv_rows = parse_invocations(invocations)?;
    let dur_rows = parse_durations(durations)?;
    let mem_rows = parse_memory(memory)?;

    let durations_by_key: HashMap<FnKey, f64> =
        dur_rows.into_iter().map(|r| (r.key, r.average_ms)).collect();
    let memory_by_app: HashMap<(String, String), f64> =
        mem_rows.into_iter().map(|r| ((r.owner, r.app), r.allocated_mb)).collect();

    let mut app_ids: HashMap<(String, String), AppId> = HashMap::new();
    let mut apps: Vec<App> = Vec::new();
    let mut functions = Vec::new();
    for row in inv_rows {
        let Some(&avg) = durations_by_key.get(&row.key) else {
            continue; // no duration info for this function
        };
        let app_key = (row.key.0.clone(), row.key.1.clone());
        let app_id = *app_ids.entry(app_key.clone()).or_insert_with(|| {
            let id = AppId(apps.len() as u32);
            apps.push(App { id, memory_mb: memory_by_app.get(&app_key).copied().unwrap_or(170.0) });
            id
        });
        let total = row.minutes.total();
        functions.push(TraceFunction {
            id: FunctionId(functions.len() as u32),
            app: app_id,
            trigger: row.trigger,
            avg_duration_ms: avg,
            minutes: row.minutes,
            daily: vec![DayStats { avg_duration_ms: avg, invocations: total }],
        });
    }

    Ok(Trace { kind: TraceKind::Azure, selected_day: 0, num_days: 1, functions, apps })
}

/// Load several days of a real Azure-format trace.
///
/// `days` supplies one `(invocations, durations)` reader pair per day, in
/// day order; `memory` covers the whole window (the released dataset has
/// one memory file per day too — pass day 1's). The returned trace
/// materializes the per-minute series of `selected_day` and fills every
/// function's `daily` roll-ups across the window, enabling the Fig.-3 CV
/// analysis on real data. Functions must appear in *every* day to be kept
/// (matching the paper's cross-day analysis population).
pub fn load_azure_days<R1: BufRead, R2: BufRead, R3: BufRead>(
    days: Vec<(R1, R2)>,
    memory: R3,
    selected_day: usize,
) -> Result<Trace, LoadError> {
    assert!(!days.is_empty(), "need at least one day");
    assert!(selected_day < days.len(), "selected day out of range");
    let num_days = days.len();

    let mem_rows = parse_memory(memory)?;
    let memory_by_app: HashMap<(String, String), f64> =
        mem_rows.into_iter().map(|r| ((r.owner, r.app), r.allocated_mb)).collect();

    // Per day: key → (minutes, avg duration, trigger).
    type DayEntry = (MinuteSeries, f64, TriggerKind);
    let mut per_day: Vec<HashMap<FnKey, DayEntry>> = Vec::with_capacity(num_days);
    for (inv_reader, dur_reader) in days {
        let inv_rows = parse_invocations(inv_reader)?;
        let dur_rows = parse_durations(dur_reader)?;
        let durations_by_key: HashMap<FnKey, f64> =
            dur_rows.into_iter().map(|r| (r.key, r.average_ms)).collect();
        let mut day_map = HashMap::new();
        for row in inv_rows {
            if let Some(&avg) = durations_by_key.get(&row.key) {
                day_map.insert(row.key, (row.minutes, avg, row.trigger));
            }
        }
        per_day.push(day_map);
    }

    // Functions present on every day, in a deterministic order.
    let mut keys: Vec<FnKey> =
        per_day[0].keys().filter(|k| per_day.iter().all(|d| d.contains_key(*k))).cloned().collect();
    keys.sort();

    let mut app_ids: HashMap<(String, String), AppId> = HashMap::new();
    let mut apps: Vec<App> = Vec::new();
    let mut functions = Vec::new();
    for key in keys {
        let app_key = (key.0.clone(), key.1.clone());
        let app_id = *app_ids.entry(app_key.clone()).or_insert_with(|| {
            let id = AppId(apps.len() as u32);
            apps.push(App { id, memory_mb: memory_by_app.get(&app_key).copied().unwrap_or(170.0) });
            id
        });
        let daily: Vec<DayStats> = per_day
            .iter()
            .map(|d| {
                let (minutes, avg, _) = &d[&key];
                DayStats { avg_duration_ms: *avg, invocations: minutes.total() }
            })
            .collect();
        let (minutes, avg, trigger) = per_day[selected_day][&key].clone();
        functions.push(TraceFunction {
            id: FunctionId(functions.len() as u32),
            app: app_id,
            trigger,
            avg_duration_ms: avg,
            minutes,
            daily,
        });
    }

    Ok(Trace { kind: TraceKind::Azure, selected_day, num_days, functions, apps })
}

/// Load a day of a Huawei-2023-format trace.
///
/// The Huawei release transposes the Azure layout: in
/// `requests_minute.csv` each **row** is a minute and each **column** a
/// function (`time,f1,f2,…`), and `function_delay.csv` has the same shape
/// with per-minute average execution delays in ms. A function's average
/// duration is the request-weighted mean of its per-minute delays; functions
/// that are never invoked or never report a delay are dropped (the paper's
/// "104 distinct ones during its first day" is exactly this filter).
pub fn load_huawei_day<R1: BufRead, R2: BufRead>(
    requests_minute: R1,
    function_delay: R2,
) -> Result<Trace, LoadError> {
    // Parse a transposed matrix: (function names, per-function minute vectors).
    fn parse_transposed<R: BufRead>(
        reader: R,
        what: &str,
    ) -> Result<(Vec<String>, Vec<Vec<f64>>), LoadError> {
        let mut lines = reader.lines().enumerate();
        let (_, header) =
            lines.next().ok_or_else(|| LoadError::Malformed(1, format!("{what}: empty file")))?;
        let header = header?;
        let names: Vec<String> =
            split_csv(&header).into_iter().skip(1).map(|s| s.trim().to_string()).collect();
        if names.is_empty() {
            return Err(LoadError::Malformed(1, format!("{what}: no function columns")));
        }
        let mut columns: Vec<Vec<f64>> = vec![Vec::new(); names.len()];
        for (lineno, line) in lines {
            let line = line?;
            if line.trim().is_empty() {
                continue;
            }
            let fields = split_csv(&line);
            if fields.len() != names.len() + 1 {
                return Err(LoadError::Malformed(
                    lineno + 1,
                    format!("{what}: expected {} fields, found {}", names.len() + 1, fields.len()),
                ));
            }
            if columns[0].len() >= MINUTES_PER_DAY {
                return Err(LoadError::Malformed(
                    lineno + 1,
                    format!("{what}: more than {MINUTES_PER_DAY} minutes"),
                ));
            }
            for (col, field) in fields[1..].iter().enumerate() {
                let v: f64 = field.trim().parse().map_err(|e| {
                    LoadError::Malformed(lineno + 1, format!("{what} column {col}: {e}"))
                })?;
                columns[col].push(v);
            }
        }
        Ok((names, columns))
    }

    let (req_names, req_cols) = parse_transposed(requests_minute, "requests_minute")?;
    let (delay_names, delay_cols) = parse_transposed(function_delay, "function_delay")?;
    let delay_by_name: HashMap<&str, &Vec<f64>> =
        delay_names.iter().map(String::as_str).zip(delay_cols.iter()).collect();

    let mut functions = Vec::new();
    let mut apps = Vec::new();
    for (name, counts) in req_names.iter().zip(&req_cols) {
        let Some(delays) = delay_by_name.get(name.as_str()) else {
            continue;
        };
        // Request-weighted mean delay over minutes with both signals.
        let mut weighted = 0.0;
        let mut weight = 0.0;
        for (c, d) in counts.iter().zip(delays.iter()) {
            if *c > 0.0 && *d > 0.0 {
                weighted += d * c;
                weight += c;
            }
        }
        if weight == 0.0 {
            continue; // never invoked with a reported delay
        }
        let dense: Vec<u64> = counts.iter().map(|&c| c.max(0.0) as u64).collect();
        let minutes = MinuteSeries::from_dense(&dense);
        let total = minutes.total();
        let id = FunctionId(functions.len() as u32);
        apps.push(App { id: AppId(id.0), memory_mb: 128.0 });
        functions.push(TraceFunction {
            id,
            app: AppId(id.0),
            trigger: TriggerKind::Event,
            avg_duration_ms: weighted / weight,
            minutes,
            daily: vec![DayStats { avg_duration_ms: weighted / weight, invocations: total }],
        });
    }

    Ok(Trace { kind: TraceKind::HuaweiPrivate, selected_day: 0, num_days: 1, functions, apps })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn minutes_header() -> String {
        let cols: Vec<String> = (1..=MINUTES_PER_DAY).map(|m| m.to_string()).collect();
        format!("HashOwner,HashApp,HashFunction,Trigger,{}", cols.join(","))
    }

    fn minutes_row(owner: &str, app: &str, func: &str, m0: u64, m1439: u64) -> String {
        let mut cols = vec!["0".to_string(); MINUTES_PER_DAY];
        cols[0] = m0.to_string();
        cols[MINUTES_PER_DAY - 1] = m1439.to_string();
        format!("{owner},{app},{func},http,{}", cols.join(","))
    }

    #[test]
    fn load_joined_day() {
        let inv = format!(
            "{}\n{}\n{}\n",
            minutes_header(),
            minutes_row("o1", "a1", "f1", 5, 3),
            minutes_row("o1", "a1", "f2", 1, 0),
        );
        let dur = "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum\n\
                   o1,a1,f1,250.5,8,10,900\n\
                   o1,a1,f2,1000,1,1000,1000\n\
                   o9,a9,f9,42,1,42,42\n";
        let mem = "HashOwner,HashApp,SampleCount,AverageAllocatedMb\no1,a1,100,256\n";
        let t = load_azure_day(inv.as_bytes(), dur.as_bytes(), mem.as_bytes()).unwrap();
        assert_eq!(t.functions.len(), 2);
        assert_eq!(t.apps.len(), 1);
        assert_eq!(t.functions[0].avg_duration_ms, 250.5);
        assert_eq!(t.functions[0].total_invocations(), 8);
        assert_eq!(t.functions[0].minutes.get(0), 5);
        assert_eq!(t.functions[0].minutes.get(1439), 3);
        assert_eq!(t.app(t.functions[0].app).unwrap().memory_mb, 256.0);
    }

    #[test]
    fn function_without_duration_dropped() {
        let inv = format!("{}\n{}\n", minutes_header(), minutes_row("o1", "a1", "f1", 1, 0));
        let dur = "header\n";
        let mem = "header\n";
        let t = load_azure_day(inv.as_bytes(), dur.as_bytes(), mem.as_bytes()).unwrap();
        assert!(t.functions.is_empty());
    }

    #[test]
    fn missing_memory_defaults() {
        let inv = format!("{}\n{}\n", minutes_header(), minutes_row("o1", "a1", "f1", 1, 0));
        let dur = "header\no1,a1,f1,100,1,100,100\n";
        let mem = "header\n";
        let t = load_azure_day(inv.as_bytes(), dur.as_bytes(), mem.as_bytes()).unwrap();
        assert_eq!(t.apps[0].memory_mb, 170.0);
    }

    #[test]
    fn malformed_minute_field_errors() {
        let inv = format!("{}\n{}\n", minutes_header(), minutes_row("o1", "a1", "f1", 1, 0))
            .replace(",http,1,", ",http,xyz,");
        let dur = "header\no1,a1,f1,100,1,100,100\n";
        let err = load_azure_day(inv.as_bytes(), dur.as_bytes(), "h\n".as_bytes());
        assert!(matches!(err, Err(LoadError::Malformed(2, _))), "{err:?}");
    }

    #[test]
    fn short_row_errors() {
        let inv = format!("{}\no1,a1,f1,http,1,2,3\n", minutes_header());
        let err = load_azure_day(inv.as_bytes(), "h\n".as_bytes(), "h\n".as_bytes());
        assert!(matches!(err, Err(LoadError::Malformed(2, _))));
    }

    #[test]
    fn multi_day_loader_builds_rollups() {
        let day = |m0: u64, avg: f64| {
            (
                format!("{}\n{}\n", minutes_header(), minutes_row("o1", "a1", "f1", m0, 1)),
                format!("h,h,h,Average\no1,a1,f1,{avg}\n"),
            )
        };
        let (i1, d1) = day(5, 100.0);
        let (i2, d2) = day(9, 120.0);
        let (i3, d3) = day(2, 80.0);
        let mem = "h,h,s,AverageAllocatedMb\no1,a1,10,256\n";
        let t = load_azure_days(
            vec![
                (i1.as_bytes(), d1.as_bytes()),
                (i2.as_bytes(), d2.as_bytes()),
                (i3.as_bytes(), d3.as_bytes()),
            ],
            mem.as_bytes(),
            1,
        )
        .unwrap();
        assert_eq!(t.num_days, 3);
        assert_eq!(t.selected_day, 1);
        assert_eq!(t.functions.len(), 1);
        let f = &t.functions[0];
        // Selected day (day 2): avg 120, invocations 10.
        assert_eq!(f.avg_duration_ms, 120.0);
        assert_eq!(f.total_invocations(), 10);
        assert_eq!(f.daily.len(), 3);
        assert_eq!(f.daily[0].avg_duration_ms, 100.0);
        assert_eq!(f.daily[0].invocations, 6);
        assert_eq!(f.daily[2].invocations, 3);
        crate::validate(&t).expect("valid multi-day trace");
    }

    #[test]
    fn multi_day_loader_drops_partial_functions() {
        // f2 exists only on day 1 → dropped from the cross-day population.
        let i1 = format!(
            "{}\n{}\n{}\n",
            minutes_header(),
            minutes_row("o1", "a1", "f1", 1, 0),
            minutes_row("o1", "a1", "f2", 1, 0)
        );
        let d1 = "h,h,h,Average\no1,a1,f1,50\no1,a1,f2,60\n";
        let i2 = format!("{}\n{}\n", minutes_header(), minutes_row("o1", "a1", "f1", 2, 0));
        let d2 = "h,h,h,Average\no1,a1,f1,55\n";
        let t = load_azure_days(
            vec![(i1.as_bytes(), d1.as_bytes()), (i2.as_bytes(), d2.as_bytes())],
            "h\n".as_bytes(),
            0,
        )
        .unwrap();
        assert_eq!(t.functions.len(), 1);
        assert_eq!(t.functions[0].daily.len(), 2);
    }

    #[test]
    fn huawei_loader_transposed_schema() {
        // 4 minutes, 3 functions; f2 never has a delay → dropped.
        let reqs = "time,f0,f1,f2\n0,10,0,5\n1,0,2,5\n2,10,0,5\n3,0,0,5\n";
        let delays = "time,f0,f1,f2\n0,4.0,0,0\n1,0,250.5,0\n2,6.0,0,0\n3,0,0,0\n";
        let t = load_huawei_day(reqs.as_bytes(), delays.as_bytes()).unwrap();
        assert_eq!(t.kind, TraceKind::HuaweiPrivate);
        assert_eq!(t.functions.len(), 2);
        // f0: request-weighted mean of 4ms (10 reqs) and 6ms (10 reqs) = 5ms.
        assert!((t.functions[0].avg_duration_ms - 5.0).abs() < 1e-9);
        assert_eq!(t.functions[0].total_invocations(), 20);
        assert_eq!(t.functions[0].minutes.get(0), 10);
        // f1: single active minute.
        assert!((t.functions[1].avg_duration_ms - 250.5).abs() < 1e-9);
        assert_eq!(t.functions[1].total_invocations(), 2);
        crate::validate(&t).expect("valid huawei trace");
    }

    #[test]
    fn huawei_loader_rejects_ragged_rows() {
        let reqs = "time,f0,f1\n0,1,2\n1,3\n";
        let delays = "time,f0,f1\n0,1,1\n";
        let err = load_huawei_day(reqs.as_bytes(), delays.as_bytes());
        assert!(matches!(err, Err(LoadError::Malformed(3, _))), "{err:?}");
    }

    #[test]
    fn huawei_loader_feeds_pipeline_types() {
        // A Huawei-format trace picks the finer aggregation resolution.
        let reqs = "time,f0\n0,100\n";
        let delays = "time,f0\n0,3.4\n";
        let t = load_huawei_day(reqs.as_bytes(), delays.as_bytes()).unwrap();
        assert_eq!(t.kind, TraceKind::HuaweiPrivate);
        assert!((t.functions[0].avg_duration_ms - 3.4).abs() < 1e-9);
    }

    #[test]
    fn split_csv_quotes() {
        assert_eq!(split_csv(r#"a,"b,c",d"#), vec!["a", "b,c", "d"]);
        assert_eq!(split_csv(r#""he said ""hi""",x"#), vec![r#"he said "hi""#, "x"]);
        assert_eq!(split_csv(""), vec![""]);
    }
}

//! Writer for the real Azure trace CSV schema.
//!
//! The mirror of [`crate::loader`]: any [`Trace`] — synthetic or loaded —
//! can be exported in the `AzurePublicDataset` file formats, so FaaSRail's
//! synthetic traces interoperate with every other tool that consumes the
//! Azure schema (and the loader/writer pair can be round-trip tested).

use crate::model::{Trace, MINUTES_PER_DAY};
use std::collections::BTreeMap;
use std::io::{self, Write};

/// Write the invocations-per-function-per-minute file.
pub fn write_invocations<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    write!(out, "HashOwner,HashApp,HashFunction,Trigger")?;
    for m in 1..=MINUTES_PER_DAY {
        write!(out, ",{m}")?;
    }
    writeln!(out)?;
    for f in &trace.functions {
        write!(out, "owner,app{:05},func{:05},{}", f.app.0, f.id.0, f.trigger.name())?;
        let dense = f.minutes.dense();
        for c in &dense {
            write!(out, ",{c}")?;
        }
        writeln!(out)?;
    }
    Ok(())
}

/// Write the function-durations file (Average/Count/Minimum/Maximum; the
/// percentile columns are filled with the average, as FaaSRail only consumes
/// the average).
pub fn write_durations<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    writeln!(out, "HashOwner,HashApp,HashFunction,Average,Count,Minimum,Maximum")?;
    for f in &trace.functions {
        writeln!(
            out,
            "owner,app{:05},func{:05},{},{},{},{}",
            f.app.0,
            f.id.0,
            f.avg_duration_ms,
            f.total_invocations(),
            f.avg_duration_ms,
            f.avg_duration_ms
        )?;
    }
    Ok(())
}

/// Write the app-memory file.
pub fn write_memory<W: Write>(trace: &Trace, mut out: W) -> io::Result<()> {
    writeln!(out, "HashOwner,HashApp,SampleCount,AverageAllocatedMb")?;
    // Only apps actually referenced by functions (the real file covers
    // sampled apps).
    let mut referenced: BTreeMap<u32, f64> = BTreeMap::new();
    for f in &trace.functions {
        if let Some(app) = trace.app(f.app) {
            referenced.insert(app.id.0, app.memory_mb);
        }
    }
    for (id, mem) in referenced {
        writeln!(out, "owner,app{id:05},100,{mem}")?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::{generate, AzureTraceConfig};
    use crate::loader::load_azure_day;

    #[test]
    fn writer_loader_roundtrip_preserves_everything_faasrail_uses() {
        let mut cfg = AzureTraceConfig::small(5);
        cfg.num_functions = 50;
        cfg.daily_invocations = 20_000;
        let original = generate(&cfg);

        let mut inv = Vec::new();
        let mut dur = Vec::new();
        let mut mem = Vec::new();
        write_invocations(&original, &mut inv).unwrap();
        write_durations(&original, &mut dur).unwrap();
        write_memory(&original, &mut mem).unwrap();

        let loaded = load_azure_day(inv.as_slice(), dur.as_slice(), mem.as_slice()).expect("load");
        assert_eq!(loaded.functions.len(), original.functions.len());
        assert_eq!(loaded.total_invocations(), original.total_invocations());
        // Functions may be renumbered; compare by sorted (duration, total,
        // per-minute) signatures.
        type Signature = Vec<(u64, u64, Vec<(u16, u32)>)>;
        let signature = |t: &Trace| {
            let mut v: Signature = t
                .functions
                .iter()
                .map(|f| {
                    (
                        (f.avg_duration_ms * 1_000.0) as u64,
                        f.total_invocations(),
                        f.minutes.entries().to_vec(),
                    )
                })
                .collect();
            v.sort();
            v
        };
        assert_eq!(signature(&original), signature(&loaded));
        // Memory survives for every referenced app.
        for f in &loaded.functions {
            let m = loaded.app(f.app).unwrap().memory_mb;
            assert!(m > 0.0);
        }
        crate::validate(&loaded).expect("round-tripped trace is valid");
        // Trigger kinds survive the round trip (multiset comparison).
        let triggers = |t: &Trace| {
            let mut v: Vec<&str> = t.functions.iter().map(|f| f.trigger.name()).collect();
            v.sort_unstable();
            v
        };
        assert_eq!(triggers(&original), triggers(&loaded));
    }

    #[test]
    fn header_shapes() {
        let mut cfg = AzureTraceConfig::small(6);
        cfg.num_functions = 3;
        cfg.daily_invocations = 100;
        let t = generate(&cfg);
        let mut inv = Vec::new();
        write_invocations(&t, &mut inv).unwrap();
        let s = String::from_utf8(inv).unwrap();
        let header = s.lines().next().unwrap();
        assert!(header.starts_with("HashOwner,HashApp,HashFunction,Trigger,1,2,"));
        assert!(header.ends_with(",1440"));
        assert_eq!(s.lines().count(), 4); // header + 3 functions
    }
}

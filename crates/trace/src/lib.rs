//! Production FaaS trace substrate for FaaSRail.
//!
//! The FaaSRail methodology consumes production workload traces — Azure
//! Functions 2019 and the Huawei private trace. Those datasets cannot ship
//! with this repository, so this crate provides:
//!
//! * a [`model::Trace`] data model mirroring the information the released
//!   traces expose (per-function average warm execution time, per-minute
//!   invocation counts, per-day roll-ups, per-app memory);
//! * seeded synthetic generators ([`azure`], [`huawei`]) that reproduce the
//!   published statistical profiles of both traces — every marginal the
//!   FaaSRail pipeline and evaluation depend on;
//! * a loader ([`loader`]) for the *real* Azure CSV schema (single- and
//!   multi-day), so users holding the actual dataset can run the identical
//!   pipeline on it, and a writer ([`writer`]) exporting any trace back to
//!   that schema for interop with other Azure-schema tools;
//! * summaries ([`summarize`]) and invariant checks ([`validate`]).

pub mod azure;
pub mod huawei;
pub mod loader;
pub mod model;
pub mod summarize;
pub mod synth;
pub mod validate;
pub mod writer;

pub use model::{
    App, AppId, DayStats, FunctionId, MinuteSeries, Trace, TraceFunction, TraceKind,
    MINUTES_PER_DAY,
};
pub use validate::{validate, ValidationError};

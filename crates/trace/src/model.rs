//! The production-trace data model.
//!
//! Mirrors the information content of the released Azure Functions and
//! Huawei traces that FaaSRail consumes: per-function average warm execution
//! times, per-minute invocation counts over a day, per-day roll-ups across
//! the whole trace window, and per-application memory.

use serde::{Deserialize, Serialize};

/// Minutes in a trace day (both released traces report 1440-minute days).
pub const MINUTES_PER_DAY: usize = 1440;

/// Identifier of a function within a trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct FunctionId(pub u32);

/// Identifier of an application (group of functions sharing memory accounting).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AppId(pub u32);

/// What fires a function — the Azure trace's `Trigger` column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum TriggerKind {
    /// HTTP request (the most common trigger).
    #[default]
    Http,
    /// Cron/timer schedule.
    Timer,
    /// Queue message.
    Queue,
    /// Pub/sub or platform event.
    Event,
    /// Blob/storage change.
    Storage,
    /// Everything else ("others" in the released trace).
    Others,
}

impl TriggerKind {
    /// Parse the released trace's trigger strings (lenient).
    pub fn parse(s: &str) -> TriggerKind {
        match s.trim().to_ascii_lowercase().as_str() {
            "http" => TriggerKind::Http,
            "timer" => TriggerKind::Timer,
            "queue" => TriggerKind::Queue,
            "event" => TriggerKind::Event,
            "storage" => TriggerKind::Storage,
            _ => TriggerKind::Others,
        }
    }

    /// The trace-file spelling.
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::Http => "http",
            TriggerKind::Timer => "timer",
            TriggerKind::Queue => "queue",
            TriggerKind::Event => "event",
            TriggerKind::Storage => "storage",
            TriggerKind::Others => "others",
        }
    }
}

/// Sparse per-minute invocation counts for one function over one day.
///
/// Entries are `(minute, count)` with `minute < 1440`, strictly ascending,
/// and `count > 0`. Most trace functions are idle most minutes (90 % of
/// Azure functions are invoked at most once per minute), so the sparse form
/// keeps a full-scale trace in hundreds of MB instead of several GB.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct MinuteSeries {
    entries: Vec<(u16, u32)>,
}

impl MinuteSeries {
    /// Build from `(minute, count)` entries; zero counts are dropped.
    ///
    /// # Panics
    /// Panics if any minute is out of range, or minutes are not strictly
    /// ascending.
    pub fn new(entries: Vec<(u16, u32)>) -> Self {
        let entries: Vec<(u16, u32)> = entries.into_iter().filter(|&(_, c)| c > 0).collect();
        for w in entries.windows(2) {
            assert!(w[0].0 < w[1].0, "minutes must be strictly ascending");
        }
        if let Some(&(m, _)) = entries.last() {
            assert!((m as usize) < MINUTES_PER_DAY, "minute {m} out of range");
        }
        MinuteSeries { entries }
    }

    /// Build from a dense 1440-length (or shorter) count array.
    pub fn from_dense(counts: &[u64]) -> Self {
        assert!(counts.len() <= MINUTES_PER_DAY, "more than {MINUTES_PER_DAY} minutes");
        MinuteSeries {
            entries: counts
                .iter()
                .enumerate()
                .filter(|&(_, &c)| c > 0)
                .map(|(m, &c)| (m as u16, u32::try_from(c).expect("per-minute count fits u32")))
                .collect(),
        }
    }

    /// The sparse `(minute, count)` entries.
    pub fn entries(&self) -> &[(u16, u32)] {
        &self.entries
    }

    /// Count at a specific minute.
    pub fn get(&self, minute: u16) -> u32 {
        match self.entries.binary_search_by_key(&minute, |&(m, _)| m) {
            Ok(i) => self.entries[i].1,
            Err(_) => 0,
        }
    }

    /// Total invocations over the day.
    pub fn total(&self) -> u64 {
        self.entries.iter().map(|&(_, c)| c as u64).sum()
    }

    /// Number of minutes with at least one invocation.
    pub fn active_minutes(&self) -> usize {
        self.entries.len()
    }

    /// Expand to a dense 1440-length array.
    pub fn dense(&self) -> Vec<u64> {
        let mut out = vec![0u64; MINUTES_PER_DAY];
        for &(m, c) in &self.entries {
            out[m as usize] = c as u64;
        }
        out
    }

    /// True if the function is never invoked this day.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

/// Per-day roll-up for one function (used by the CV analysis, paper Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DayStats {
    /// Average warm execution time that day, in milliseconds.
    pub avg_duration_ms: f64,
    /// Total invocations that day.
    pub invocations: u64,
}

/// One trace function.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceFunction {
    pub id: FunctionId,
    pub app: AppId,
    /// What fires this function (defaults to HTTP when not reported).
    #[serde(default)]
    pub trigger: TriggerKind,
    /// Average warm execution time on the *selected* day, in milliseconds.
    pub avg_duration_ms: f64,
    /// Per-minute invocations on the selected day.
    pub minutes: MinuteSeries,
    /// Roll-ups for every day of the trace window (index 0 = day 1).
    pub daily: Vec<DayStats>,
}

impl TraceFunction {
    /// Total invocations on the selected day.
    pub fn total_invocations(&self) -> u64 {
        self.minutes.total()
    }
}

/// One application: a group of functions with joint memory accounting,
/// matching how the Azure trace reports allocated memory per app.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct App {
    pub id: AppId,
    /// Average allocated memory, MiB.
    pub memory_mb: f64,
}

/// Which production platform a trace models — determines sensible defaults
/// (e.g. the duration-aggregation resolution).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceKind {
    /// Azure Functions 2019-style trace.
    Azure,
    /// Huawei private (internal) trace.
    HuaweiPrivate,
    /// Loaded from user-provided files or custom-generated.
    Custom,
}

/// A full trace: functions, apps, and window metadata.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    pub kind: TraceKind,
    /// Which day (0-based) of the window `TraceFunction::minutes` refers to.
    pub selected_day: usize,
    /// Number of days in the trace window.
    pub num_days: usize,
    pub functions: Vec<TraceFunction>,
    pub apps: Vec<App>,
}

impl Trace {
    /// Total invocations on the selected day across all functions.
    pub fn total_invocations(&self) -> u64 {
        self.functions.iter().map(|f| f.total_invocations()).sum()
    }

    /// Aggregate per-minute invocation counts across all functions
    /// (the "load over time" series of paper Figs. 1d and 8).
    pub fn aggregate_minutes(&self) -> Vec<u64> {
        let mut out = vec![0u64; MINUTES_PER_DAY];
        for f in &self.functions {
            for &(m, c) in f.minutes.entries() {
                out[m as usize] += c as u64;
            }
        }
        out
    }

    /// Look up an app by id (apps are stored sorted by id).
    pub fn app(&self, id: AppId) -> Option<&App> {
        self.apps.binary_search_by_key(&id, |a| a.id).ok().map(|i| &self.apps[i])
    }

    /// Functions with at least one invocation on the selected day.
    pub fn active_functions(&self) -> impl Iterator<Item = &TraceFunction> {
        self.functions.iter().filter(|f| !f.minutes.is_empty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trigger_parse_roundtrip() {
        for t in [
            TriggerKind::Http,
            TriggerKind::Timer,
            TriggerKind::Queue,
            TriggerKind::Event,
            TriggerKind::Storage,
            TriggerKind::Others,
        ] {
            assert_eq!(TriggerKind::parse(t.name()), t);
        }
        assert_eq!(TriggerKind::parse("HTTP"), TriggerKind::Http);
        assert_eq!(TriggerKind::parse("orchestration"), TriggerKind::Others);
        assert_eq!(TriggerKind::default(), TriggerKind::Http);
    }

    #[test]
    fn minute_series_sparse_roundtrip() {
        let mut dense = vec![0u64; MINUTES_PER_DAY];
        dense[0] = 5;
        dense[100] = 1;
        dense[1439] = 42;
        let s = MinuteSeries::from_dense(&dense);
        assert_eq!(s.active_minutes(), 3);
        assert_eq!(s.total(), 48);
        assert_eq!(s.get(100), 1);
        assert_eq!(s.get(101), 0);
        assert_eq!(s.dense(), dense);
    }

    #[test]
    fn minute_series_drops_zeros() {
        let s = MinuteSeries::new(vec![(1, 0), (2, 3)]);
        assert_eq!(s.active_minutes(), 1);
        assert_eq!(s.total(), 3);
    }

    #[test]
    #[should_panic]
    fn minute_series_rejects_unsorted() {
        MinuteSeries::new(vec![(5, 1), (2, 1)]);
    }

    #[test]
    #[should_panic]
    fn minute_series_rejects_out_of_range() {
        MinuteSeries::new(vec![(1440, 1)]);
    }

    #[test]
    fn trace_aggregate_minutes() {
        let f = |id: u32, minute: u16, count: u32| TraceFunction {
            id: FunctionId(id),
            app: AppId(0),
            trigger: TriggerKind::default(),
            avg_duration_ms: 100.0,
            minutes: MinuteSeries::new(vec![(minute, count)]),
            daily: vec![],
        };
        let t = Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions: vec![f(0, 10, 5), f(1, 10, 2), f(2, 20, 1)],
            apps: vec![App { id: AppId(0), memory_mb: 128.0 }],
        };
        let agg = t.aggregate_minutes();
        assert_eq!(agg[10], 7);
        assert_eq!(agg[20], 1);
        assert_eq!(t.total_invocations(), 8);
        assert_eq!(t.app(AppId(0)).unwrap().memory_mb, 128.0);
        assert!(t.app(AppId(9)).is_none());
    }
}

//! Synthetic Huawei-private-like trace generator.
//!
//! The Huawei internal trace ("How Does It Function?", SoCC '23) has a much
//! more acute profile than Azure's, which the paper summarizes as:
//!
//! * only ~200 functions (104 with execution times on day 1), monitored for
//!   141 days;
//! * far higher invocation counts (~4.27 B over the window, ~30 M/day);
//! * functions run much faster (sub-10 ms medians) and more frequently;
//! * request rates are bursty even at sub-minute granularity.

use crate::model::{App, AppId, FunctionId, Trace, TraceFunction, TraceKind, TriggerKind};
use crate::synth;
use faasrail_stats::sampler::{LogNormal, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_stats::timeseries::apportion_weights;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic Huawei-private-like trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HuaweiTraceConfig {
    pub seed: u64,
    /// Number of distinct functions (paper: 200, with 104 reporting
    /// execution times on day 1).
    pub num_functions: usize,
    pub num_days: usize,
    pub selected_day: usize,
    /// Invocations on the selected day (~4.27 B / 141 days ≈ 30 M).
    pub daily_invocations: u64,
    pub popularity_exponent: f64,
    pub popularity_shift: f64,
    pub volatile_fraction: f64,
}

impl HuaweiTraceConfig {
    /// Full paper-scale configuration.
    pub fn paper_scale(seed: u64) -> Self {
        HuaweiTraceConfig {
            seed,
            num_functions: 200,
            num_days: 141,
            selected_day: 0,
            daily_invocations: 30_000_000,
            popularity_exponent: 1.2,
            popularity_shift: 2.0,
            volatile_fraction: 0.15,
        }
    }

    /// Reduced invocation volume for fast tests; same function count (the
    /// Huawei trace is already tiny in that dimension).
    pub fn small(seed: u64) -> Self {
        HuaweiTraceConfig { daily_invocations: 1_000_000, num_days: 14, ..Self::paper_scale(seed) }
    }
}

/// Generate a synthetic Huawei-private-like trace.
pub fn generate(cfg: &HuaweiTraceConfig) -> Trace {
    assert!(cfg.num_functions > 0);
    assert!(cfg.num_days > 0 && cfg.selected_day < cfg.num_days);
    let mut rng = seeded_rng(cfg.seed);
    let n = cfg.num_functions;

    let weights = synth::zipf_mandelbrot_weights(n, cfg.popularity_exponent, cfg.popularity_shift);
    let planned_totals = apportion_weights(&weights, cfg.daily_invocations);

    // Durations: internal functions are very fast. Two-component mixture —
    // a dominant sub-10 ms component plus a moderate tail — clamped to 2 s
    // and quantized to 0.1 ms like published sub-ms reporting. Popularity
    // rank is coupled to speed: the busiest internal functions are also the
    // fastest (the trace's "run much faster and more frequently").
    let fast = LogNormal::from_median_p90(3.0, 30.0);
    let tail = LogNormal::from_median_p90(80.0, 600.0);
    let durations: Vec<f64> = (0..n)
        .map(|rank| {
            let u = if n == 1 { 0.0 } else { rank as f64 / (n - 1) as f64 };
            let p_fast = 0.95 - 0.35 * u;
            let d = if rng.gen::<f64>() < p_fast {
                fast.sample(&mut rng)
            } else {
                tail.sample(&mut rng)
            };
            (d.clamp(0.1, 2_000.0) * 10.0).round() / 10.0
        })
        .collect();

    // One internal "app" per function: the Huawei trace has no app grouping.
    let apps: Vec<App> = (0..n)
        .map(|i| App {
            id: AppId(i as u32),
            memory_mb: LogNormal::from_median_p90(128.0, 512.0)
                .sample(&mut rng)
                .clamp(32.0, 2_048.0),
        })
        .collect();

    let template = synth::diurnal_template(&mut rng, 1.0, 0.3);
    let cdf = synth::template_cdf(&template);

    let mut functions = Vec::with_capacity(n);
    for (rank, (&total, &dur)) in planned_totals.iter().zip(&durations).enumerate() {
        // Heavier burst mix than Azure: the Huawei trace is bursty even at
        // sub-minute scale.
        let minutes = if total < 50 {
            synth::rare_series(&mut rng, &cdf, total)
        } else if rng.gen::<f64>() < 0.5 {
            synth::steady_series(&mut rng, &template, total)
        } else {
            synth::bursty_series(&mut rng, total)
        };
        let realized_total = minutes.total();
        let volatile = rng.gen::<f64>() < cfg.volatile_fraction;
        let daily = synth::daily_rollups(
            &mut rng,
            dur,
            realized_total,
            cfg.num_days,
            cfg.selected_day,
            volatile,
        );
        functions.push(TraceFunction {
            id: FunctionId(rank as u32),
            app: AppId(rank as u32),
            // Internal platform functions: mostly event/queue driven.
            trigger: if rng.gen::<f64>() < 0.6 { TriggerKind::Event } else { TriggerKind::Queue },
            avg_duration_ms: dur,
            minutes,
            daily,
        });
    }

    Trace {
        kind: TraceKind::HuaweiPrivate,
        selected_day: cfg.selected_day,
        num_days: cfg.num_days,
        functions,
        apps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::timeseries::fano_factor;

    fn small_trace() -> Trace {
        generate(&HuaweiTraceConfig::small(42))
    }

    #[test]
    fn determinism() {
        assert_eq!(generate(&HuaweiTraceConfig::small(3)), generate(&HuaweiTraceConfig::small(3)));
    }

    #[test]
    fn shape_counts() {
        let t = small_trace();
        assert_eq!(t.functions.len(), 200);
        assert_eq!(t.num_days, 14);
        assert_eq!(t.kind, TraceKind::HuaweiPrivate);
    }

    #[test]
    fn durations_much_faster_than_azure() {
        let t = small_trace();
        let mut durs: Vec<f64> = t.functions.iter().map(|f| f.avg_duration_ms).collect();
        durs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = durs[durs.len() / 2];
        assert!(median < 50.0, "median duration = {median} ms");
        assert!(durs[0] >= 0.1);
        assert!(*durs.last().unwrap() <= 2_000.0);
    }

    #[test]
    fn weighted_durations_fast() {
        let t = small_trace();
        let w = WeightedEcdf::new(
            t.functions
                .iter()
                .filter(|f| f.total_invocations() > 0)
                .map(|f| (f.avg_duration_ms, f.total_invocations() as f64)),
        );
        // The bulk of invocations complete within 100 ms.
        assert!(w.eval(100.0) > 0.6, "P(inv < 100ms) = {}", w.eval(100.0));
    }

    #[test]
    fn total_close_to_target() {
        let t = small_trace();
        let total = t.total_invocations() as f64;
        assert!((total / 1_000_000.0 - 1.0).abs() < 0.02, "total = {total}");
    }

    #[test]
    fn bursty_aggregate() {
        // The Huawei trace is bursty: the aggregate per-minute series should
        // be over-dispersed relative to Poisson.
        let t = small_trace();
        let agg = t.aggregate_minutes();
        let f = fano_factor(&agg);
        assert!(f > 5.0, "aggregate Fano factor = {f}");
    }

    #[test]
    fn distinct_durations_are_around_a_hundred() {
        // Paper: day 1 of the Huawei trace reports 104 distinct execution
        // times for 200 functions. Quantization to 0.1 ms over the narrow
        // fast range should collapse the 200 functions similarly.
        let t = small_trace();
        let mut keys: Vec<u64> =
            t.functions.iter().map(|f| (f.avg_duration_ms * 10.0).round() as u64).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!((60..=190).contains(&keys.len()), "distinct duration count = {}", keys.len());
    }
}

//! Synthetic Azure-Functions-like trace generator.
//!
//! Reproduces the statistical profile of the Azure Functions 2019 trace
//! ("Serverless in the Wild", ATC '20) that the FaaSRail paper builds on:
//!
//! * ~50 % of *functions* run for less than 1 s; durations span 2–4 orders
//!   of magnitude (1 ms … minutes);
//! * popularity is extremely skewed: the top ~8 % of functions receive
//!   ~99 % of all invocations;
//! * popular functions skew short, so ~80 % of *invocations* run < 1 s;
//! * per-function request rates are bursty, with steady / periodic (cron) /
//!   bursty / rare patterns, and the aggregate load follows a gentle
//!   diurnal wave;
//! * per-app allocated memory is log-normal-ish over 10 MiB – 4 GiB;
//! * across the 14-day window, ~90 % of functions have day-to-day CVs of
//!   execution time and invocation count below 1 (paper Fig. 3).

use crate::model::{
    App, AppId, DayStats, FunctionId, Trace, TraceFunction, TraceKind, TriggerKind,
};
use crate::synth;
use faasrail_stats::sampler::{LogNormal, Sampler, Zipf};
use faasrail_stats::seeded_rng;
use faasrail_stats::timeseries::apportion_weights;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Configuration for the synthetic Azure-like trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AzureTraceConfig {
    /// Seed for all randomness in the generator.
    pub seed: u64,
    /// Number of distinct functions.
    pub num_functions: usize,
    /// Days in the trace window.
    pub num_days: usize,
    /// Which day the per-minute series are materialized for (0-based).
    pub selected_day: usize,
    /// Total invocations on the selected day (approximate to within Poisson
    /// noise of the per-pattern synthesis).
    pub daily_invocations: u64,
    /// Zipf–Mandelbrot popularity exponent.
    pub popularity_exponent: f64,
    /// Zipf–Mandelbrot head-flattening shift.
    pub popularity_shift: f64,
    /// Apps per function (Azure: ~17 K apps over ~45 K functions).
    pub apps_per_function: f64,
    /// Fraction of functions with volatile cross-day behaviour (CV > 1 tail).
    pub volatile_fraction: f64,
}

impl AzureTraceConfig {
    /// Full paper-scale trace: ~49.7 K functions, ~908 M invocations on the
    /// selected day, 14 days. Generation takes a few seconds in release mode.
    pub fn paper_scale(seed: u64) -> Self {
        AzureTraceConfig {
            seed,
            num_functions: 49_728,
            num_days: 14,
            selected_day: 0,
            daily_invocations: 908_000_000,
            popularity_exponent: 1.5,
            popularity_shift: 5.0,
            apps_per_function: 17.0 / 45.0,
            volatile_fraction: 0.10,
        }
    }

    /// A reduced-scale trace suitable for unit tests and laptop experiments;
    /// preserves all distributional shapes at ~2 K functions.
    pub fn small(seed: u64) -> Self {
        AzureTraceConfig {
            num_functions: 2_000,
            daily_invocations: 2_000_000,
            ..Self::paper_scale(seed)
        }
    }

    /// Custom scale with the paper-calibrated shape parameters.
    pub fn scaled(seed: u64, num_functions: usize, daily_invocations: u64) -> Self {
        AzureTraceConfig { num_functions, daily_invocations, ..Self::paper_scale(seed) }
    }
}

/// Duration mixture component parameters, rank-coupled: popular functions
/// draw predominantly from the short component, unpopular ones spread out.
struct DurationModel {
    short: LogNormal,
    medium: LogNormal,
    long: LogNormal,
}

impl DurationModel {
    fn azure() -> Self {
        DurationModel {
            short: LogNormal::from_median_p90(300.0, 1_200.0),
            medium: LogNormal::from_median_p90(1_500.0, 5_000.0),
            long: LogNormal::from_median_p90(15_000.0, 60_000.0),
        }
    }

    /// Draw a duration for normalized popularity rank `u` in `[0, 1]`
    /// (0 = most popular).
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R, u: f64) -> f64 {
        let p_short = 0.85 - 0.60 * u;
        let p_long = 0.02 + 0.28 * u;
        let x = rng.gen::<f64>();
        let d = if x < p_short {
            self.short.sample(rng)
        } else if x < 1.0 - p_long {
            self.medium.sample(rng)
        } else {
            self.long.sample(rng)
        };
        d.clamp(1.0, 300_000.0)
    }
}

/// Generate a synthetic Azure-like trace.
///
/// ```
/// use faasrail_trace::azure::{generate, AzureTraceConfig};
/// let trace = generate(&AzureTraceConfig::scaled(42, 200, 50_000));
/// assert_eq!(trace.functions.len(), 200);
/// assert!(faasrail_trace::validate(&trace).is_ok());
/// // Same seed, same trace — the determinism the pipeline relies on.
/// assert_eq!(trace, generate(&AzureTraceConfig::scaled(42, 200, 50_000)));
/// ```
pub fn generate(cfg: &AzureTraceConfig) -> Trace {
    assert!(cfg.num_functions > 0, "need at least one function");
    assert!(cfg.num_days > 0 && cfg.selected_day < cfg.num_days);
    let mut rng = seeded_rng(cfg.seed);
    let n = cfg.num_functions;

    // --- Popularity: Zipf–Mandelbrot weights by rank, apportioned exactly.
    let weights = synth::zipf_mandelbrot_weights(n, cfg.popularity_exponent, cfg.popularity_shift);
    let planned_totals = apportion_weights(&weights, cfg.daily_invocations);

    // --- Durations: rank-coupled mixture, rounded to integer ms like the
    // real trace (this is also what the aggregation step keys on).
    let duration_model = DurationModel::azure();
    let durations: Vec<f64> = (0..n)
        .map(|r| {
            let u = if n == 1 { 0.0 } else { r as f64 / (n - 1) as f64 };
            duration_model.sample(&mut rng, u).round().max(1.0)
        })
        .collect();

    // --- Apps and memory.
    let num_apps = ((n as f64 * cfg.apps_per_function).ceil() as usize).max(1);
    let memory_model = LogNormal::from_median_p90(170.0, 1_000.0);
    let apps: Vec<App> = (0..num_apps)
        .map(|i| App {
            id: AppId(i as u32),
            memory_mb: memory_model.sample(&mut rng).clamp(10.0, 4_096.0),
        })
        .collect();
    // Function→app assignment: skewed app sizes (big apps hold many functions).
    let app_picker = Zipf::new(num_apps as u64, 1.0);

    // --- Per-minute series.
    let template = synth::diurnal_template(&mut rng, 1.0, 0.22);
    let cdf = synth::template_cdf(&template);

    let mut functions = Vec::with_capacity(n);
    for (rank, (&total, &dur)) in planned_totals.iter().zip(&durations).enumerate() {
        // Trigger correlates with the invocation pattern: periodic series
        // are timers, steady ones HTTP/queue traffic, bursts events.
        let (minutes, trigger) = if total < 50 {
            let t = if rng.gen::<f64>() < 0.5 { TriggerKind::Storage } else { TriggerKind::Others };
            (synth::rare_series(&mut rng, &cdf, total), t)
        } else if total >= 7_200 {
            // Hot functions: steady Poisson arrivals along the diurnal wave.
            (synth::steady_series(&mut rng, &template, total), TriggerKind::Http)
        } else {
            match rng.gen_range(0..10u32) {
                0..=3 => {
                    let t =
                        if rng.gen::<f64>() < 0.7 { TriggerKind::Http } else { TriggerKind::Queue };
                    (synth::steady_series(&mut rng, &template, total), t)
                }
                4..=6 => {
                    const PERIODS: [u16; 7] = [2, 5, 10, 15, 30, 60, 120];
                    let period = PERIODS[rng.gen_range(0..PERIODS.len())];
                    (synth::periodic_series(&mut rng, period, total), TriggerKind::Timer)
                }
                _ => (synth::bursty_series(&mut rng, total), TriggerKind::Event),
            }
        };
        let realized_total = minutes.total();
        let volatile = rng.gen::<f64>() < cfg.volatile_fraction;
        let daily = synth::daily_rollups(
            &mut rng,
            dur,
            realized_total,
            cfg.num_days,
            cfg.selected_day,
            volatile,
        );
        functions.push(TraceFunction {
            id: FunctionId(rank as u32),
            app: AppId((app_picker.sample(&mut rng) - 1) as u32),
            trigger,
            avg_duration_ms: dur,
            minutes,
            daily,
        });
    }

    Trace {
        kind: TraceKind::Azure,
        selected_day: cfg.selected_day,
        num_days: cfg.num_days,
        functions,
        apps,
    }
}

/// Convenience: per-day statistics consistency check used by tests.
pub fn day_stats_consistent(f: &TraceFunction, selected_day: usize) -> bool {
    matches!(
        f.daily.get(selected_day),
        Some(DayStats { avg_duration_ms, invocations })
            if *avg_duration_ms == f.avg_duration_ms && *invocations == f.minutes.total()
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::MINUTES_PER_DAY;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::Summary;

    fn small_trace() -> Trace {
        generate(&AzureTraceConfig::small(42))
    }

    #[test]
    fn determinism() {
        let a = generate(&AzureTraceConfig::small(7));
        let b = generate(&AzureTraceConfig::small(7));
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&AzureTraceConfig::small(7));
        let b = generate(&AzureTraceConfig::small(8));
        assert_ne!(a, b);
    }

    #[test]
    fn function_count_and_days() {
        let t = small_trace();
        assert_eq!(t.functions.len(), 2_000);
        assert_eq!(t.num_days, 14);
        assert!(t.functions.iter().all(|f| f.daily.len() == 14));
    }

    #[test]
    fn total_invocations_close_to_target() {
        let t = small_trace();
        let total = t.total_invocations() as f64;
        assert!((total / 2_000_000.0 - 1.0).abs() < 0.02, "total = {total}");
    }

    #[test]
    fn selected_day_rollup_consistent() {
        let t = small_trace();
        assert!(t.functions.iter().all(|f| day_stats_consistent(f, t.selected_day)));
    }

    #[test]
    fn durations_span_orders_of_magnitude() {
        let t = small_trace();
        let durs: Vec<f64> = t.functions.iter().map(|f| f.avg_duration_ms).collect();
        let s = Summary::from_slice(&durs);
        assert!(s.min() <= 20.0, "min duration = {}", s.min());
        assert!(s.max() >= 50_000.0, "max duration = {}", s.max());
    }

    #[test]
    fn half_of_functions_subsecond() {
        // Paper: ~50 % of functions run < 1 s. Allow a generous band.
        let t = small_trace();
        let sub = t.functions.iter().filter(|f| f.avg_duration_ms < 1_000.0).count();
        let frac = sub as f64 / t.functions.len() as f64;
        assert!((0.40..=0.68).contains(&frac), "sub-second function fraction = {frac}");
    }

    #[test]
    fn invocations_skew_shorter_than_functions() {
        // Paper: ~80 % of *invocations* run < 1 s, vs ~50 % of functions.
        let t = small_trace();
        let weighted = WeightedEcdf::new(
            t.functions.iter().map(|f| (f.avg_duration_ms, f.total_invocations() as f64)),
        );
        let frac_inv = weighted.eval(1_000.0);
        assert!(frac_inv > 0.70, "sub-second invocation fraction = {frac_inv}");
        let frac_fun = t.functions.iter().filter(|f| f.avg_duration_ms < 1_000.0).count() as f64
            / t.functions.len() as f64;
        assert!(
            frac_inv > frac_fun + 0.1,
            "invocation CDF should sit left of function CDF ({frac_inv} vs {frac_fun})"
        );
    }

    #[test]
    fn popularity_skewed() {
        // Top 8 % of functions should hold the overwhelming share of
        // invocations (paper: 99 % at full scale; the small trace flattens
        // the skew somewhat).
        let t = small_trace();
        let mut totals: Vec<u64> = t.functions.iter().map(|f| f.total_invocations()).collect();
        totals.sort_unstable_by(|a, b| b.cmp(a));
        let top = totals.len() * 8 / 100;
        let share = totals[..top].iter().sum::<u64>() as f64 / totals.iter().sum::<u64>() as f64;
        assert!(share > 0.80, "top-8% share = {share}");
    }

    #[test]
    fn ninety_percent_rarely_invoked() {
        // Paper: ~90 % of functions are invoked once per minute or less.
        let t = small_trace();
        let rare =
            t.functions.iter().filter(|f| f.total_invocations() <= MINUTES_PER_DAY as u64).count();
        let frac = rare as f64 / t.functions.len() as f64;
        assert!(frac > 0.75, "rare-function fraction = {frac}");
    }

    #[test]
    fn aggregate_load_diurnal_not_flat() {
        let t = small_trace();
        let agg = t.aggregate_minutes();
        let peak = agg.iter().copied().max().unwrap() as f64;
        let trough = agg.iter().copied().min().unwrap() as f64;
        assert!(peak / trough.max(1.0) > 1.2, "aggregate load should vary over the day");
    }

    #[test]
    fn cross_day_cv_mostly_below_one() {
        // Paper Fig. 3: ~90 % of functions have CVs < 1 for both daily
        // execution time and daily invocation counts.
        let t = small_trace();
        let mut dur_low = 0usize;
        let mut cnt_low = 0usize;
        let mut counted = 0usize;
        for f in &t.functions {
            if f.total_invocations() == 0 {
                continue;
            }
            counted += 1;
            let durs: Vec<f64> = f.daily.iter().map(|d| d.avg_duration_ms).collect();
            let cnts: Vec<f64> = f.daily.iter().map(|d| d.invocations as f64).collect();
            if Summary::from_slice(&durs).cv() < 1.0 {
                dur_low += 1;
            }
            if Summary::from_slice(&cnts).cv() < 1.0 {
                cnt_low += 1;
            }
        }
        let frac_dur = dur_low as f64 / counted as f64;
        let frac_cnt = cnt_low as f64 / counted as f64;
        assert!(frac_dur > 0.80, "CV(duration)<1 fraction = {frac_dur}");
        assert!(frac_cnt > 0.80, "CV(count)<1 fraction = {frac_cnt}");
    }

    #[test]
    fn memory_in_published_range() {
        let t = small_trace();
        assert!(!t.apps.is_empty());
        assert!(t.apps.iter().all(|a| (10.0..=4_096.0).contains(&a.memory_mb)));
        let med = {
            let mut m: Vec<f64> = t.apps.iter().map(|a| a.memory_mb).collect();
            m.sort_by(|a, b| a.partial_cmp(b).unwrap());
            m[m.len() / 2]
        };
        assert!((100.0..400.0).contains(&med), "median app memory = {med}");
    }

    #[test]
    fn every_function_app_exists() {
        let t = small_trace();
        for f in &t.functions {
            assert!(t.app(f.app).is_some(), "dangling app id {:?}", f.app);
        }
    }

    #[test]
    fn duration_aggregation_collapses_functions() {
        // Rounding to integer ms must produce substantially fewer distinct
        // durations than functions — the premise of the aggregation step.
        let t = small_trace();
        let mut keys: Vec<u64> = t.functions.iter().map(|f| f.avg_duration_ms as u64).collect();
        keys.sort_unstable();
        keys.dedup();
        assert!(
            keys.len() < t.functions.len() * 9 / 10,
            "distinct durations {} vs functions {}",
            keys.len(),
            t.functions.len()
        );
    }
}

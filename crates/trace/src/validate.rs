//! Structural invariant checks over a [`Trace`].
//!
//! Traces arrive from three sources (synthetic generators, real CSV files,
//! user code); the shrink ray assumes these invariants, so every entry point
//! can cheaply verify them first.

use crate::model::Trace;
use std::collections::HashSet;
use std::fmt;

/// A violated trace invariant.
#[derive(Debug, Clone, PartialEq)]
pub enum ValidationError {
    /// Two functions share an id.
    DuplicateFunctionId(u32),
    /// A function references an app not present in `trace.apps`.
    DanglingApp { function: u32, app: u32 },
    /// A function's `daily` roll-up length differs from `num_days`.
    DailyLengthMismatch { function: u32, got: usize, want: usize },
    /// The selected day's roll-up disagrees with the materialized minutes.
    SelectedDayInconsistent { function: u32 },
    /// Non-positive or non-finite average duration.
    BadDuration { function: u32, value_ms: f64 },
    /// Non-positive or non-finite app memory.
    BadMemory { app: u32, value_mb: f64 },
    /// `selected_day` out of range.
    SelectedDayOutOfRange { selected: usize, num_days: usize },
}

impl fmt::Display for ValidationError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidationError::DuplicateFunctionId(id) => write!(f, "duplicate function id {id}"),
            ValidationError::DanglingApp { function, app } => {
                write!(f, "function {function} references missing app {app}")
            }
            ValidationError::DailyLengthMismatch { function, got, want } => {
                write!(f, "function {function}: {got} daily roll-ups, trace has {want} days")
            }
            ValidationError::SelectedDayInconsistent { function } => {
                write!(f, "function {function}: selected-day roll-up disagrees with minutes")
            }
            ValidationError::BadDuration { function, value_ms } => {
                write!(f, "function {function}: bad duration {value_ms} ms")
            }
            ValidationError::BadMemory { app, value_mb } => {
                write!(f, "app {app}: bad memory {value_mb} MiB")
            }
            ValidationError::SelectedDayOutOfRange { selected, num_days } => {
                write!(f, "selected day {selected} out of range for {num_days} days")
            }
        }
    }
}

impl std::error::Error for ValidationError {}

/// Check all invariants, returning the first violation found.
pub fn validate(trace: &Trace) -> Result<(), ValidationError> {
    if trace.selected_day >= trace.num_days {
        return Err(ValidationError::SelectedDayOutOfRange {
            selected: trace.selected_day,
            num_days: trace.num_days,
        });
    }
    for a in &trace.apps {
        if !(a.memory_mb.is_finite() && a.memory_mb > 0.0) {
            return Err(ValidationError::BadMemory { app: a.id.0, value_mb: a.memory_mb });
        }
    }
    let mut seen = HashSet::with_capacity(trace.functions.len());
    for f in &trace.functions {
        if !seen.insert(f.id) {
            return Err(ValidationError::DuplicateFunctionId(f.id.0));
        }
        if trace.app(f.app).is_none() {
            return Err(ValidationError::DanglingApp { function: f.id.0, app: f.app.0 });
        }
        if !(f.avg_duration_ms.is_finite() && f.avg_duration_ms > 0.0) {
            return Err(ValidationError::BadDuration {
                function: f.id.0,
                value_ms: f.avg_duration_ms,
            });
        }
        if !f.daily.is_empty() {
            if f.daily.len() != trace.num_days {
                return Err(ValidationError::DailyLengthMismatch {
                    function: f.id.0,
                    got: f.daily.len(),
                    want: trace.num_days,
                });
            }
            let day = &f.daily[trace.selected_day];
            if day.invocations != f.minutes.total() || day.avg_duration_ms != f.avg_duration_ms {
                return Err(ValidationError::SelectedDayInconsistent { function: f.id.0 });
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::azure::{generate, AzureTraceConfig};
    use crate::huawei;
    use crate::model::{App, AppId, DayStats, FunctionId, MinuteSeries, TraceFunction, TraceKind};

    #[test]
    fn synthetic_traces_validate() {
        let t = generate(&AzureTraceConfig::small(1));
        assert_eq!(validate(&t), Ok(()));
        let h = huawei::generate(&huawei::HuaweiTraceConfig::small(1));
        assert_eq!(validate(&h), Ok(()));
    }

    fn base_trace() -> Trace {
        Trace {
            kind: TraceKind::Custom,
            selected_day: 0,
            num_days: 1,
            functions: vec![TraceFunction {
                id: FunctionId(0),
                app: AppId(0),
                trigger: crate::model::TriggerKind::default(),
                avg_duration_ms: 100.0,
                minutes: MinuteSeries::new(vec![(0, 2)]),
                daily: vec![DayStats { avg_duration_ms: 100.0, invocations: 2 }],
            }],
            apps: vec![App { id: AppId(0), memory_mb: 128.0 }],
        }
    }

    #[test]
    fn base_is_valid() {
        assert_eq!(validate(&base_trace()), Ok(()));
    }

    #[test]
    fn detects_duplicate_ids() {
        let mut t = base_trace();
        let dup = t.functions[0].clone();
        t.functions.push(dup);
        assert_eq!(validate(&t), Err(ValidationError::DuplicateFunctionId(0)));
    }

    #[test]
    fn detects_dangling_app() {
        let mut t = base_trace();
        t.functions[0].app = AppId(9);
        assert!(matches!(validate(&t), Err(ValidationError::DanglingApp { .. })));
    }

    #[test]
    fn detects_day_mismatch() {
        let mut t = base_trace();
        t.functions[0].daily[0].invocations = 99;
        assert!(matches!(validate(&t), Err(ValidationError::SelectedDayInconsistent { .. })));
    }

    #[test]
    fn detects_bad_duration() {
        let mut t = base_trace();
        t.functions[0].avg_duration_ms = 0.0;
        assert!(matches!(validate(&t), Err(ValidationError::BadDuration { .. })));
    }

    #[test]
    fn detects_selected_day_oob() {
        let mut t = base_trace();
        t.selected_day = 5;
        assert!(matches!(validate(&t), Err(ValidationError::SelectedDayOutOfRange { .. })));
    }

    #[test]
    fn empty_daily_is_allowed() {
        let mut t = base_trace();
        t.functions[0].daily.clear();
        assert_eq!(validate(&t), Ok(()));
    }
}

//! Baseline 2: random trace sampling with proportional downscaling.
//!
//! The second common practice (paper §2.3.1): uniformly sample a small
//! subset of trace functions, map each to the duration-closest vanilla
//! benchmark, proportionally reduce the invocation counts to the target
//! volume, and compress the day onto the experiment window. As Fig. 1
//! shows, the result keeps *some* skew but misses the runtime distribution
//! and produces sparse, spike-dominated load.

use faasrail_core::{Request, RequestTrace};
use faasrail_stats::seeded_rng;
use faasrail_trace::{Trace, MINUTES_PER_DAY};
use faasrail_workloads::{WorkloadId, WorkloadPool};
use rand::seq::SliceRandom;
use rand::Rng;

/// Configuration for the random-sampling baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RandomSamplingConfig {
    /// How many trace functions to sample.
    pub sample_functions: usize,
    /// Target total request volume.
    pub target_invocations: u64,
    /// Experiment duration, minutes (the day is linearly compressed).
    pub duration_minutes: usize,
    pub seed: u64,
}

impl RandomSamplingConfig {
    /// The paper's Fig. 1 configuration: 2 h / 144 K invocations.
    pub fn paper_fig1(seed: u64) -> Self {
        RandomSamplingConfig {
            sample_functions: 200,
            target_invocations: 144_000,
            duration_minutes: 120,
            seed,
        }
    }
}

/// Generate the baseline request trace by random sampling.
///
/// Each sampled function is mapped to the pool workload with the closest
/// mean runtime (no threshold, no balancing — the naïve mapping the paper
/// contrasts with). Counts are scaled by a global factor with stochastic
/// rounding; minutes are compressed linearly onto the experiment window
/// with uniform placement inside the target minute.
pub fn generate(trace: &Trace, pool: &WorkloadPool, cfg: &RandomSamplingConfig) -> RequestTrace {
    assert!(cfg.sample_functions > 0 && cfg.duration_minutes > 0);
    let mut rng = seeded_rng(cfg.seed);

    // Sample functions uniformly (the defining flaw: the skewed head is
    // almost surely missed).
    let mut indices: Vec<usize> = (0..trace.functions.len()).collect();
    indices.shuffle(&mut rng);
    indices.truncate(cfg.sample_functions.min(trace.functions.len()));

    let sampled_total: u64 = indices.iter().map(|&i| trace.functions[i].total_invocations()).sum();
    let factor =
        if sampled_total == 0 { 0.0 } else { cfg.target_invocations as f64 / sampled_total as f64 };

    // Nearest-workload mapping.
    let mut by_ms: Vec<(f64, WorkloadId)> =
        pool.workloads().iter().map(|w| (w.mean_ms, w.id)).collect();
    by_ms.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite"));
    let nearest = |d: f64| -> WorkloadId {
        let pos = by_ms.partition_point(|&(ms, _)| ms < d);
        match (pos.checked_sub(1).and_then(|i| by_ms.get(i)), by_ms.get(pos)) {
            (Some(a), Some(b)) => {
                if (a.0 - d).abs() <= (b.0 - d).abs() {
                    a.1
                } else {
                    b.1
                }
            }
            (Some(a), None) => a.1,
            (None, Some(b)) => b.1,
            (None, None) => unreachable!("pool non-empty"),
        }
    };

    let compress = cfg.duration_minutes as f64 / MINUTES_PER_DAY as f64;
    let mut requests = Vec::new();
    for &i in &indices {
        let f = &trace.functions[i];
        let workload = nearest(f.avg_duration_ms);
        for &(minute, count) in f.minutes.entries() {
            // Stochastic rounding of the scaled count.
            let scaled = count as f64 * factor;
            let mut n = scaled.floor() as u64;
            if rng.gen::<f64>() < scaled.fract() {
                n += 1;
            }
            let target_minute = (minute as f64 * compress) as u64;
            for _ in 0..n {
                let off = rng.gen_range(0..60_000u64);
                requests.push(Request {
                    at_ms: target_minute * 60_000 + off,
                    workload,
                    function_index: f.id.0,
                });
            }
        }
    }
    requests.sort_by_key(|r| (r.at_ms, r.function_index));
    RequestTrace { duration_minutes: cfg.duration_minutes, requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::ks_distance_weighted;
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};
    use faasrail_trace::summarize::invocations_duration_wecdf;
    use faasrail_workloads::CostModel;

    fn setup() -> (Trace, WorkloadPool) {
        (
            gen_azure(&AzureTraceConfig::small(50)),
            WorkloadPool::vanilla(&CostModel::default_calibration()),
        )
    }

    #[test]
    fn volume_near_target() {
        let (trace, pool) = setup();
        let cfg = RandomSamplingConfig {
            sample_functions: 300,
            target_invocations: 50_000,
            duration_minutes: 120,
            seed: 4,
        };
        let t = generate(&trace, &pool, &cfg);
        assert!((t.len() as f64 / 50_000.0 - 1.0).abs() < 0.05, "generated {} requests", t.len());
    }

    #[test]
    fn runtime_distribution_violated() {
        // The paper's point (Fig. 1b): nearest-vanilla mapping of a uniform
        // sample does NOT reproduce the trace's invocation-duration CDF.
        let (trace, pool) = setup();
        let cfg = RandomSamplingConfig {
            sample_functions: 200,
            target_invocations: 40_000,
            duration_minutes: 120,
            seed: 5,
        };
        let t = generate(&trace, &pool, &cfg);
        let target = invocations_duration_wecdf(&trace);
        let got = WeightedEcdf::new(t.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
        let ks = ks_distance_weighted(&target, &got);
        assert!(ks > 0.15, "baseline unexpectedly accurate: KS = {ks}");
    }

    #[test]
    fn deterministic() {
        let (trace, pool) = setup();
        let cfg = RandomSamplingConfig::paper_fig1(6);
        assert_eq!(generate(&trace, &pool, &cfg), generate(&trace, &pool, &cfg));
    }

    #[test]
    fn respects_duration_window() {
        let (trace, pool) = setup();
        let cfg = RandomSamplingConfig {
            sample_functions: 100,
            target_invocations: 10_000,
            duration_minutes: 30,
            seed: 7,
        };
        let t = generate(&trace, &pool, &cfg);
        let end = 30 * 60_000;
        assert!(t.requests.iter().all(|r| r.at_ms < end));
    }
}

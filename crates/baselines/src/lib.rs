//! Prior-work FaaS load-generation baselines (paper §2.3.1, Fig. 1).
//!
//! FaaSRail's motivation rests on showing that the common practices violate
//! one or more of the traces' critical statistical properties. This crate
//! implements those practices faithfully so the motivation figures can be
//! regenerated and so researchers can compare against them:
//!
//! * [`poisson_emulation`] — constant-rate Poisson arrivals over vanilla
//!   FunctionBench, uniform function choice;
//! * [`random_sampling`] — uniform trace sampling + nearest-workload
//!   mapping + proportional downscaling;
//! * [`busy_loops`] — fabricated spin functions following the runtime CDF;
//! * [`skew_synthetic`] — the hand-crafted 98/2 popularity split;
//! * [`invitro_sampling`] — In-Vitro-style stratified representative
//!   sampling (the strongest prior approach, paper §5).

pub mod busy_loops;
pub mod invitro_sampling;
pub mod poisson_emulation;
pub mod random_sampling;
pub mod skew_synthetic;

pub use busy_loops::{fabricate, BusyLoopFunction};
pub use invitro_sampling::{InVitroConfig, InVitroSample};
pub use poisson_emulation::PoissonEmulationConfig;
pub use random_sampling::RandomSamplingConfig;
pub use skew_synthetic::SkewSyntheticConfig;

//! Baseline 5: In-Vitro-style *representative* trace sampling.
//!
//! Ustiugov et al.'s In-Vitro (WORDS '23, paper §5) improves on random
//! sampling by picking the most representative subset of trace functions —
//! here approximated by stratified sampling over (duration × rate) buckets —
//! and replaying a user-defined minute window. The paper's two remaining
//! criticisms still apply, and both are visible in this implementation:
//! the generated load drives synthetic busy loops rather than real
//! workloads, and the window discards the rest of the day's trends.

use faasrail_core::{Request, RequestTrace};
use faasrail_stats::seeded_rng;
use faasrail_trace::{Trace, MINUTES_PER_DAY};
use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeMap;

/// Configuration for the In-Vitro-style baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InVitroConfig {
    /// Target number of sampled functions.
    pub sample_functions: usize,
    /// Target request volume within the window.
    pub target_invocations: u64,
    /// First trace minute of the replayed window.
    pub window_start: usize,
    /// Window length = experiment duration, minutes.
    pub window_minutes: usize,
    pub seed: u64,
}

/// Stratum key: (log10 duration bucket, log10 daily-invocation bucket).
fn stratum(duration_ms: f64, daily_invocations: u64) -> (i32, i32) {
    (
        duration_ms.max(0.1).log10().floor() as i32,
        (daily_invocations.max(1) as f64).log10().floor() as i32,
    )
}

/// The sampled function subset (exposed for analysis) plus its requests.
#[derive(Debug, Clone, PartialEq)]
pub struct InVitroSample {
    /// Indices into `trace.functions`.
    pub functions: Vec<usize>,
    pub requests: RequestTrace,
}

/// Generate an In-Vitro-style load summary.
///
/// Functions are stratified by order-of-magnitude duration and invocation
/// rate, sampled proportionally per stratum (at least one per non-empty
/// stratum), and their window invocations scaled to the target volume.
/// The output carries trace function indices — In-Vitro drives *synthetic*
/// functions (busy loops fabricated from the duration), not a workload pool,
/// so `Request::workload` is a placeholder `WorkloadId(function_index)`.
pub fn generate(trace: &Trace, cfg: &InVitroConfig) -> InVitroSample {
    assert!(cfg.sample_functions > 0 && cfg.window_minutes > 0);
    assert!(
        cfg.window_start + cfg.window_minutes <= MINUTES_PER_DAY,
        "window exceeds the trace day"
    );
    let mut rng = seeded_rng(cfg.seed);

    // Stratify active functions.
    let mut strata: BTreeMap<(i32, i32), Vec<usize>> = BTreeMap::new();
    for (i, f) in trace.functions.iter().enumerate() {
        let total = f.total_invocations();
        if total == 0 {
            continue;
        }
        strata.entry(stratum(f.avg_duration_ms, total)).or_default().push(i);
    }
    let active_total: usize = strata.values().map(Vec::len).sum();
    let frac = cfg.sample_functions as f64 / active_total.max(1) as f64;

    // Proportional allocation, at least one representative per stratum.
    let mut sampled: Vec<usize> = Vec::new();
    for members in strata.values_mut() {
        let take = ((members.len() as f64 * frac).round() as usize).clamp(1, members.len());
        members.shuffle(&mut rng);
        sampled.extend(members.iter().take(take));
    }
    sampled.sort_unstable();

    // Scale the window's invocations to the target volume.
    let window = cfg.window_start..cfg.window_start + cfg.window_minutes;
    let window_total: u64 = sampled
        .iter()
        .map(|&i| {
            trace.functions[i]
                .minutes
                .entries()
                .iter()
                .filter(|&&(m, _)| window.contains(&(m as usize)))
                .map(|&(_, c)| c as u64)
                .sum::<u64>()
        })
        .sum();
    let factor =
        if window_total == 0 { 0.0 } else { cfg.target_invocations as f64 / window_total as f64 };

    let mut requests = Vec::new();
    for &i in &sampled {
        let f = &trace.functions[i];
        for &(minute, count) in f.minutes.entries() {
            if !window.contains(&(minute as usize)) {
                continue;
            }
            let scaled = count as f64 * factor;
            let mut n = scaled.floor() as u64;
            if rng.gen::<f64>() < scaled.fract() {
                n += 1;
            }
            let exp_minute = (minute as usize - cfg.window_start) as u64;
            for _ in 0..n {
                requests.push(Request {
                    at_ms: exp_minute * 60_000 + rng.gen_range(0..60_000),
                    workload: faasrail_workloads::WorkloadId(f.id.0),
                    function_index: f.id.0,
                });
            }
        }
    }
    requests.sort_by_key(|r| (r.at_ms, r.function_index));
    InVitroSample {
        functions: sampled,
        requests: RequestTrace { duration_minutes: cfg.window_minutes, requests },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::WeightedEcdf;
    use faasrail_stats::ks_distance_weighted;
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};
    use faasrail_trace::summarize::invocations_duration_wecdf;

    fn cfg(seed: u64) -> InVitroConfig {
        InVitroConfig {
            sample_functions: 200,
            target_invocations: 40_000,
            window_start: 600,
            window_minutes: 120,
            seed,
        }
    }

    fn weighted_durations(trace: &Trace, sample: &InVitroSample) -> WeightedEcdf {
        WeightedEcdf::new(
            sample
                .requests
                .requests
                .iter()
                .map(|r| (trace.functions[r.function_index as usize].avg_duration_ms, 1.0)),
        )
    }

    #[test]
    fn covers_all_strata() {
        let trace = gen_azure(&AzureTraceConfig::small(70));
        let sample = generate(&trace, &cfg(1));
        // Every order-of-magnitude duration bucket with members is present.
        let mut trace_buckets: Vec<i32> = trace
            .functions
            .iter()
            .filter(|f| f.total_invocations() > 0)
            .map(|f| f.avg_duration_ms.log10().floor() as i32)
            .collect();
        trace_buckets.sort_unstable();
        trace_buckets.dedup();
        let mut sample_buckets: Vec<i32> = sample
            .functions
            .iter()
            .map(|&i| trace.functions[i].avg_duration_ms.log10().floor() as i32)
            .collect();
        sample_buckets.sort_unstable();
        sample_buckets.dedup();
        assert_eq!(trace_buckets, sample_buckets);
    }

    #[test]
    fn more_representative_than_uniform_sampling() {
        // The whole point of In-Vitro: stratified beats uniform on the
        // invocation-duration distribution.
        let trace = gen_azure(&AzureTraceConfig::small(71));
        let target = invocations_duration_wecdf(&trace);

        let invitro = generate(&trace, &cfg(2));
        let ks_invitro = ks_distance_weighted(&target, &weighted_durations(&trace, &invitro));

        // Uniform baseline at the same scale, via the random-sampling
        // generator's function choice (trace durations, not pool mapping).
        let uniform = {
            use rand::seq::SliceRandom;
            let mut rng = faasrail_stats::seeded_rng(2);
            let mut idx: Vec<usize> = (0..trace.functions.len()).collect();
            idx.shuffle(&mut rng);
            idx.truncate(200);
            WeightedEcdf::new(idx.iter().filter_map(|&i| {
                let f = &trace.functions[i];
                (f.total_invocations() > 0)
                    .then(|| (f.avg_duration_ms, f.total_invocations() as f64))
            }))
        };
        let ks_uniform = ks_distance_weighted(&target, &uniform);
        assert!(
            ks_invitro < ks_uniform,
            "stratified KS {ks_invitro:.3} should beat uniform KS {ks_uniform:.3}"
        );
    }

    #[test]
    fn window_respected_and_deterministic() {
        let trace = gen_azure(&AzureTraceConfig::small(72));
        let a = generate(&trace, &cfg(3));
        let b = generate(&trace, &cfg(3));
        assert_eq!(a, b);
        assert!(a.requests.requests.iter().all(|r| r.at_ms < 120 * 60_000));
    }

    #[test]
    fn volume_near_target() {
        let trace = gen_azure(&AzureTraceConfig::small(73));
        let sample = generate(&trace, &cfg(4));
        let n = sample.requests.len() as f64;
        assert!((n / 40_000.0 - 1.0).abs() < 0.1, "volume = {n}");
    }
}

//! Baseline 1: plain-Poisson emulation over vanilla FunctionBench.
//!
//! The most common practice in the literature (paper §2.3.1, Fig. 1): draw
//! request arrivals from a single constant-rate Poisson process and pick the
//! target function uniformly among the ~10 vanilla benchmark configurations.
//! Bursty at second scale — but flat over the experiment, with uniform
//! popularity and a 10-point runtime distribution.

use faasrail_core::{Request, RequestTrace};
use faasrail_stats::sampler::{Exponential, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_workloads::WorkloadPool;
use rand::Rng;

/// Configuration for the plain-Poisson baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PoissonEmulationConfig {
    /// Constant arrival rate, requests/second.
    pub rate_rps: f64,
    /// Experiment duration, minutes.
    pub duration_minutes: usize,
    pub seed: u64,
}

impl PoissonEmulationConfig {
    /// The paper's Fig. 1 configuration: 2 hours at 20 rps ≈ 144 K requests.
    pub fn paper_fig1(seed: u64) -> Self {
        PoissonEmulationConfig { rate_rps: 20.0, duration_minutes: 120, seed }
    }
}

/// Generate the baseline request trace over the given (typically vanilla)
/// pool.
pub fn generate(pool: &WorkloadPool, cfg: &PoissonEmulationConfig) -> RequestTrace {
    assert!(cfg.rate_rps > 0.0 && cfg.duration_minutes > 0);
    let mut rng = seeded_rng(cfg.seed);
    let gap = Exponential::from_mean(1_000.0 / cfg.rate_rps);
    let end_ms = cfg.duration_minutes as u64 * 60_000;
    let mut requests = Vec::new();
    let mut t = gap.sample(&mut rng);
    while (t as u64) < end_ms {
        let w = pool.workloads()[rng.gen_range(0..pool.len())].id;
        requests.push(Request { at_ms: t as u64, workload: w, function_index: w.0 });
        t += gap.sample(&mut rng);
    }
    RequestTrace { duration_minutes: cfg.duration_minutes, requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::timeseries::fano_factor;
    use faasrail_workloads::CostModel;

    fn vanilla() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    #[test]
    fn volume_matches_rate() {
        let cfg = PoissonEmulationConfig { rate_rps: 50.0, duration_minutes: 10, seed: 1 };
        let t = generate(&vanilla(), &cfg);
        let expect = 50.0 * 600.0;
        assert!((t.len() as f64 / expect - 1.0).abs() < 0.05, "{}", t.len());
    }

    #[test]
    fn load_is_flat_over_minutes() {
        // The paper's criticism: no diurnal variation. Per-minute counts
        // should be statistically flat (Poisson ⇒ Fano ≈ 1 relative to the
        // per-minute mean).
        let cfg = PoissonEmulationConfig { rate_rps: 20.0, duration_minutes: 60, seed: 2 };
        let t = generate(&vanilla(), &cfg);
        let f = fano_factor(&t.per_minute_counts());
        assert!(f < 3.0, "per-minute Fano = {f} — should be flat");
    }

    #[test]
    fn popularity_is_uniform() {
        // Each of the 10 workloads draws ≈10 % of the requests — violating
        // the trace's skew (Fig. 1c).
        let cfg = PoissonEmulationConfig::paper_fig1(3);
        let pool = vanilla();
        let t = generate(&pool, &cfg);
        let counts = t.counts_by_kind(&pool);
        let total: u64 = counts.values().sum();
        for (k, c) in counts {
            let share = c as f64 / total as f64;
            assert!((share - 0.1).abs() < 0.02, "{k}: share {share}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = PoissonEmulationConfig { rate_rps: 5.0, duration_minutes: 5, seed: 9 };
        assert_eq!(generate(&vanilla(), &cfg), generate(&vanilla(), &cfg));
    }
}

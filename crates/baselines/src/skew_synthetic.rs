//! Baseline 4: hand-crafted popularity skew (Hermod-style).
//!
//! Some works isolate only the popularity skew: "directing 98 % of the
//! requests to a single function while uniformly distributing the rest 2 %
//! to a limited number of functions" (paper §2.3.1). Rates are constant,
//! runtimes are whatever the chosen functions happen to have.

use faasrail_core::{Request, RequestTrace};
use faasrail_stats::sampler::{Exponential, Sampler};
use faasrail_stats::seeded_rng;
use faasrail_workloads::WorkloadPool;
use rand::Rng;

/// Configuration for the skew-synthetic baseline.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SkewSyntheticConfig {
    /// Share of requests sent to the single hot function (e.g. 0.98).
    pub hot_share: f64,
    /// How many cold functions share the remainder uniformly.
    pub cold_functions: usize,
    pub rate_rps: f64,
    pub duration_minutes: usize,
    pub seed: u64,
}

impl SkewSyntheticConfig {
    /// The 98 / 2 split from the literature.
    pub fn hermod_style(seed: u64) -> Self {
        SkewSyntheticConfig {
            hot_share: 0.98,
            cold_functions: 9,
            rate_rps: 20.0,
            duration_minutes: 60,
            seed,
        }
    }
}

/// Generate the skewed request trace over the first `1 + cold_functions`
/// workloads of the pool (workload 0 is the hot one).
pub fn generate(pool: &WorkloadPool, cfg: &SkewSyntheticConfig) -> RequestTrace {
    assert!((0.0..=1.0).contains(&cfg.hot_share));
    assert!(cfg.cold_functions < pool.len(), "pool too small");
    assert!(cfg.rate_rps > 0.0 && cfg.duration_minutes > 0);
    let mut rng = seeded_rng(cfg.seed);
    let gap = Exponential::from_mean(1_000.0 / cfg.rate_rps);
    let end_ms = cfg.duration_minutes as u64 * 60_000;
    let mut requests = Vec::new();
    let mut t = gap.sample(&mut rng);
    while (t as u64) < end_ms {
        let idx = if rng.gen::<f64>() < cfg.hot_share {
            0
        } else {
            1 + rng.gen_range(0..cfg.cold_functions)
        };
        let w = pool.workloads()[idx].id;
        requests.push(Request { at_ms: t as u64, workload: w, function_index: w.0 });
        t += gap.sample(&mut rng);
    }
    RequestTrace { duration_minutes: cfg.duration_minutes, requests }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_workloads::CostModel;

    fn vanilla() -> WorkloadPool {
        WorkloadPool::vanilla(&CostModel::default_calibration())
    }

    #[test]
    fn hot_function_dominates() {
        let cfg = SkewSyntheticConfig::hermod_style(1);
        let pool = vanilla();
        let t = generate(&pool, &cfg);
        let hot = t.requests.iter().filter(|r| r.function_index == 0).count();
        let share = hot as f64 / t.len() as f64;
        assert!((share - 0.98).abs() < 0.01, "hot share = {share}");
    }

    #[test]
    fn cold_functions_roughly_uniform() {
        let cfg = SkewSyntheticConfig {
            hot_share: 0.5,
            cold_functions: 5,
            rate_rps: 100.0,
            duration_minutes: 30,
            seed: 2,
        };
        let pool = vanilla();
        let t = generate(&pool, &cfg);
        let mut counts = [0u64; 6];
        for r in &t.requests {
            counts[r.function_index as usize] += 1;
        }
        let cold_total: u64 = counts[1..].iter().sum();
        for &c in &counts[1..] {
            let share = c as f64 / cold_total as f64;
            assert!((share - 0.2).abs() < 0.03, "cold share = {share}");
        }
    }

    #[test]
    fn deterministic() {
        let cfg = SkewSyntheticConfig::hermod_style(3);
        assert_eq!(generate(&vanilla(), &cfg), generate(&vanilla(), &cfg));
    }
}

//! Baseline 3: synthetic busy-loop functions.
//!
//! Several works (paper §2.3.1, "Busy loops") fabricate pseudo-functions —
//! calibrated busy loops — whose durations are drawn from the trace's
//! distribution. The runtime CDF is matched well (that's the approach's
//! selling point), but no real computation, memory pattern, or I/O exists
//! behind it — which is exactly the gap FaaSRail closes.

use faasrail_stats::seeded_rng;
use faasrail_trace::summarize::functions_duration_ecdf;
use faasrail_trace::Trace;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// A fabricated pseudo-function: it spins for `duration_ms`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BusyLoopFunction {
    pub id: u32,
    pub duration_ms: f64,
}

impl BusyLoopFunction {
    /// Actually spin for the configured duration; returns loop iterations
    /// (so the spin cannot be optimized away).
    pub fn execute(&self) -> u64 {
        let deadline = Instant::now() + Duration::from_secs_f64(self.duration_ms / 1_000.0);
        let mut iters = 0u64;
        while Instant::now() < deadline {
            std::hint::spin_loop();
            iters += 1;
        }
        iters
    }
}

/// Fabricate `count` busy-loop functions whose durations follow the trace's
/// per-function duration distribution (inverse transform over its ECDF).
pub fn fabricate(trace: &Trace, count: usize, seed: u64) -> Vec<BusyLoopFunction> {
    assert!(count > 0);
    let ecdf = functions_duration_ecdf(trace);
    let mut rng = seeded_rng(seed);
    (0..count)
        .map(|i| BusyLoopFunction {
            id: i as u32,
            duration_ms: ecdf.inverse_interp(rng.gen::<f64>()),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use faasrail_stats::ecdf::Ecdf;
    use faasrail_stats::ks_distance;
    use faasrail_trace::azure::{generate as gen_azure, AzureTraceConfig};

    #[test]
    fn durations_follow_trace_distribution() {
        let trace = gen_azure(&AzureTraceConfig::small(60));
        let funcs = fabricate(&trace, 3_000, 1);
        let got = Ecdf::new(&funcs.iter().map(|f| f.duration_ms).collect::<Vec<_>>());
        let want = faasrail_trace::summarize::functions_duration_ecdf(&trace);
        let ks = ks_distance(&want, &got);
        assert!(ks < 0.05, "KS = {ks} — busy loops do match runtime CDFs");
    }

    #[test]
    fn execute_spins_for_roughly_the_duration() {
        let f = BusyLoopFunction { id: 0, duration_ms: 10.0 };
        let start = Instant::now();
        let iters = f.execute();
        let elapsed = start.elapsed().as_secs_f64() * 1_000.0;
        assert!(iters > 0);
        assert!((10.0..100.0).contains(&elapsed), "spun for {elapsed} ms");
    }

    #[test]
    fn deterministic() {
        let trace = gen_azure(&AzureTraceConfig::small(61));
        assert_eq!(fabricate(&trace, 100, 5), fabricate(&trace, 100, 5));
    }
}

//! FaaSRail's observability substrate.
//!
//! FaaSRail's whole claim is *representativeness* — that the replayed load
//! matches the downscaled trace minute by minute — so the measurement layer
//! is part of the methodology, not an afterthought. This crate provides
//! that layer for every runtime component:
//!
//! * [`InvocationSpan`] — a lightweight, allocation-conscious record of one
//!   request's lifecycle (scheduled → dispatched → queued → executing →
//!   completed/failed), with per-stage timestamps, [`OutcomeClass`], and
//!   the cold-start flag. Spans travel as [`TelemetryEvent`]s through a
//!   pluggable [`EventSink`]: a null sink for zero overhead, a bounded
//!   in-memory [`RingSink`] for tests and live inspection, and a buffered
//!   [`JsonlSink`] writer for post-hoc analysis;
//! * [`Recorder`] — a sharded, lock-light live-metrics recorder that
//!   workers update on the hot path; periodic [`Snapshot`] deltas yield
//!   per-window issued/completed/errors-by-class, response quantiles, and
//!   offered-vs-achieved RPS for a once-per-interval progress line;
//! * [`PromText`] — a Prometheus text-format (0.0.4) encoder for counters,
//!   gauges, and [`LogHistogram`](faasrail_stats::LogHistogram)s, so any
//!   run can be scraped by standard tooling (`GET /metrics` on the
//!   gateway);
//! * [`RunReport`] — consumes a JSONL event log and reconstructs the
//!   latency decomposition (pacer lateness vs queue wait vs service vs
//!   network overhead) and the per-minute offered/achieved series the
//!   paper's fidelity argument rests on, rendered as JSON or Markdown;
//! * [`ServerSpan`] + [`join_spans`] — distributed tracing across the
//!   client/gateway boundary: the replayer stamps every request with a
//!   trace id (propagated in the `X-FaaSRail-Trace` header), the gateway
//!   records its own accept→dequeue→handler→flush span per request, and
//!   the join pass merges the two JSONL logs by trace id — estimating the
//!   inter-tier clock offset from exchange midpoints — into a six-stage
//!   cross-tier decomposition (pacer lateness / client queue / network
//!   out / gateway queue / service / network back) with orphaned spans
//!   classified, not dropped.
//!
//! The crate sits directly above `faasrail-stats`; the load generator, the
//! gateway, and the simulator all emit into it, which is what makes one
//! event log comparable across in-process, over-the-wire, and simulated
//! runs.

pub mod build;
pub mod join;
pub mod prometheus;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod span;

/// Re-exported so downstream crates (the gateway's per-stage `/metrics`
/// histograms) don't need a direct `faasrail-stats` dependency.
pub use build::BuildInfo;
pub use faasrail_stats::LogHistogram;
pub use join::{
    join_spans, offset_from_probes, ClockOffset, CrossTierStages, JoinedSpan, SpanJoin,
};
pub use prometheus::{escape_label_value, PromText};
pub use recorder::{spawn_progress_printer, DeltaWindow, Recorder, Snapshot};
pub use report::{
    merge_event_logs, parse_jsonl, slowest_client_spans, CrossTierDecomposition, CrossTierReport,
    LatencyDecomposition, LatencyStat, RunReport,
};
pub use sink::{EventSink, JsonlSink, NullSink, RingSink};
pub use span::{
    derive_trace_id, format_trace_id, parse_trace_id, InvocationSpan, OutcomeClass, ReassignSpan,
    RunInfo, RunSummary, ServerFault, ServerSpan, TelemetryEvent,
};

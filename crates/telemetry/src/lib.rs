//! FaaSRail's observability substrate.
//!
//! FaaSRail's whole claim is *representativeness* — that the replayed load
//! matches the downscaled trace minute by minute — so the measurement layer
//! is part of the methodology, not an afterthought. This crate provides
//! that layer for every runtime component:
//!
//! * [`InvocationSpan`] — a lightweight, allocation-conscious record of one
//!   request's lifecycle (scheduled → dispatched → queued → executing →
//!   completed/failed), with per-stage timestamps, [`OutcomeClass`], and
//!   the cold-start flag. Spans travel as [`TelemetryEvent`]s through a
//!   pluggable [`EventSink`]: a null sink for zero overhead, a bounded
//!   in-memory [`RingSink`] for tests and live inspection, and a buffered
//!   [`JsonlSink`] writer for post-hoc analysis;
//! * [`Recorder`] — a sharded, lock-light live-metrics recorder that
//!   workers update on the hot path; periodic [`Snapshot`] deltas yield
//!   per-window issued/completed/errors-by-class, response quantiles, and
//!   offered-vs-achieved RPS for a once-per-interval progress line;
//! * [`PromText`] — a Prometheus text-format (0.0.4) encoder for counters,
//!   gauges, and [`LogHistogram`](faasrail_stats::LogHistogram)s, so any
//!   run can be scraped by standard tooling (`GET /metrics` on the
//!   gateway);
//! * [`RunReport`] — consumes a JSONL event log and reconstructs the
//!   latency decomposition (pacer lateness vs queue wait vs service vs
//!   network overhead) and the per-minute offered/achieved series the
//!   paper's fidelity argument rests on, rendered as JSON or Markdown.
//!
//! The crate sits directly above `faasrail-stats`; the load generator, the
//! gateway, and the simulator all emit into it, which is what makes one
//! event log comparable across in-process, over-the-wire, and simulated
//! runs.

pub mod prometheus;
pub mod recorder;
pub mod report;
pub mod sink;
pub mod span;

pub use prometheus::PromText;
pub use recorder::{spawn_progress_printer, Recorder, Snapshot};
pub use report::{parse_jsonl, LatencyDecomposition, LatencyStat, RunReport};
pub use sink::{EventSink, JsonlSink, NullSink, RingSink};
pub use span::{InvocationSpan, OutcomeClass, RunInfo, RunSummary, TelemetryEvent};

//! Prometheus text exposition format (version 0.0.4) encoder.
//!
//! A tiny hand-rolled encoder — the format is line-oriented and simple
//! enough that pulling in a client library would cost more than it saves.
//! Each metric family is written as `# HELP` and `# TYPE` comment lines
//! followed by one sample line per (labelled) series.
//! [`LogHistogram`](faasrail_stats::LogHistogram)s are rendered as native
//! Prometheus histograms with cumulative `le` buckets; only non-empty
//! buckets get a line (plus the mandatory `+Inf`), so the output stays
//! compact even for a 5%-resolution latency recorder with hundreds of
//! buckets. `_sum` is approximated from bucket midpoints (and exact
//! min/max for under/overflow), which is the precision the histogram
//! itself offers.

use std::fmt::Write;

use faasrail_stats::LogHistogram;

/// Incremental builder for a Prometheus text-format (0.0.4) payload.
///
/// ```
/// use faasrail_telemetry::PromText;
/// let mut p = PromText::new();
/// p.counter("faasrail_requests_total", "Total requests.", 42);
/// p.gauge("faasrail_queue_depth", "Requests waiting.", 3.0);
/// let body = p.finish();
/// assert!(body.starts_with("# HELP faasrail_requests_total"));
/// ```
#[derive(Debug, Default)]
pub struct PromText {
    buf: String,
}

/// The `Content-Type` a server must send with this payload.
pub const CONTENT_TYPE: &str = "text/plain; version=0.0.4";

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escape a label *value* per the text-format grammar: inside the double
/// quotes, backslash, double-quote, and line-feed must be written as `\\`,
/// `\"`, and `\n`. Label values are the one place arbitrary user strings
/// (agent names, error reasons) reach the exposition, so this is load-
/// bearing for scrape correctness, not cosmetics.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(c),
        }
    }
    out
}

fn valid_metric_name(name: &str) -> bool {
    !name.is_empty()
        && name.chars().enumerate().all(|(i, c)| {
            c.is_ascii_alphabetic() || c == '_' || c == ':' || (i > 0 && c.is_ascii_digit())
        })
}

impl PromText {
    pub fn new() -> Self {
        PromText::default()
    }

    fn header(&mut self, name: &str, help: &str, kind: &str) {
        debug_assert!(valid_metric_name(name), "invalid metric name {name:?}");
        let _ = writeln!(self.buf, "# HELP {name} {}", escape_help(help));
        let _ = writeln!(self.buf, "# TYPE {name} {kind}");
    }

    /// A single monotonically increasing counter.
    pub fn counter(&mut self, name: &str, help: &str, value: u64) {
        self.header(name, help, "counter");
        let _ = writeln!(self.buf, "{name} {value}");
    }

    /// A counter family with one label dimension; every listed series is
    /// emitted, including zero-valued ones, so scrapes always expose the
    /// full class partition. Label values are escaped per the grammar.
    pub fn counter_vec(&mut self, name: &str, help: &str, label: &str, series: &[(&str, u64)]) {
        self.header(name, help, "counter");
        for (value, count) in series {
            let value = escape_label_value(value);
            let _ = writeln!(self.buf, "{name}{{{label}=\"{value}\"}} {count}");
        }
    }

    /// A single gauge.
    pub fn gauge(&mut self, name: &str, help: &str, value: f64) {
        self.header(name, help, "gauge");
        let _ = writeln!(self.buf, "{name} {value}");
    }

    /// A gauge family with one label dimension (escaped like
    /// [`PromText::counter_vec`]).
    pub fn gauge_vec(&mut self, name: &str, help: &str, label: &str, series: &[(&str, f64)]) {
        self.header(name, help, "gauge");
        for (value, v) in series {
            let value = escape_label_value(value);
            let _ = writeln!(self.buf, "{name}{{{label}=\"{value}\"}} {v}");
        }
    }

    /// A [`LogHistogram`] as a native Prometheus histogram: cumulative
    /// `<name>_bucket{le="..."}` lines for each non-empty bucket, the
    /// mandatory `le="+Inf"` bucket, and approximate `_sum` / exact
    /// `_count`.
    pub fn histogram(&mut self, name: &str, help: &str, hist: &LogHistogram) {
        self.header(name, help, "histogram");
        let mut cumulative = 0u64;
        let mut sum = 0.0f64;
        if hist.underflow() > 0 {
            cumulative += hist.underflow();
            // Everything below the first bucket edge sits at the exact min.
            sum += hist.underflow() as f64 * hist.min();
            let le = hist.bucket_lo(0);
            let _ = writeln!(self.buf, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        for (i, &c) in hist.counts().iter().enumerate() {
            if c == 0 {
                continue;
            }
            cumulative += c;
            sum += c as f64 * hist.bucket_mid(i);
            let le = hist.bucket_lo(i + 1);
            let _ = writeln!(self.buf, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        if hist.overflow() > 0 {
            sum += hist.overflow() as f64 * hist.max();
        }
        let total = hist.total();
        let _ = writeln!(self.buf, "{name}_bucket{{le=\"+Inf\"}} {total}");
        if total == 0 {
            sum = 0.0; // avoid -0.0 / NaN artefacts on empty histograms
        }
        let _ = writeln!(self.buf, "{name}_sum {sum}");
        let _ = writeln!(self.buf, "{name}_count {total}");
    }

    pub fn as_str(&self) -> &str {
        &self.buf
    }

    /// Consume the builder, returning the payload.
    pub fn finish(self) -> String {
        self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_families() {
        let mut p = PromText::new();
        p.counter("x_total", "Things.", 7);
        p.gauge("depth", "Waiting.", 2.5);
        let out = p.finish();
        assert!(out.contains("# HELP x_total Things.\n# TYPE x_total counter\nx_total 7\n"));
        assert!(out.contains("# TYPE depth gauge\ndepth 2.5\n"));
    }

    #[test]
    fn counter_vec_emits_every_series() {
        let mut p = PromText::new();
        p.counter_vec("e_total", "Errors.", "class", &[("timeout", 3), ("shed", 0)]);
        let out = p.finish();
        assert!(out.contains("e_total{class=\"timeout\"} 3\n"), "{out}");
        assert!(out.contains("e_total{class=\"shed\"} 0\n"), "{out}");
    }

    #[test]
    fn label_values_are_escaped() {
        let mut p = PromText::new();
        p.counter_vec(
            "e_total",
            "Errors.",
            "agent",
            &[("quo\"te", 1), ("back\\slash", 2), ("new\nline", 3)],
        );
        p.gauge_vec("lag_ms", "Lag.", "agent", &[("quo\"te", 4.5)]);
        let out = p.finish();
        assert!(out.contains("e_total{agent=\"quo\\\"te\"} 1\n"), "{out}");
        assert!(out.contains("e_total{agent=\"back\\\\slash\"} 2\n"), "{out}");
        assert!(out.contains("e_total{agent=\"new\\nline\"} 3\n"), "{out}");
        assert!(out.contains("lag_ms{agent=\"quo\\\"te\"} 4.5\n"), "{out}");
        // The raw line-feed must never reach the payload mid-line.
        for line in out.lines() {
            assert!(!line.ends_with("new"), "unescaped newline split a sample line: {out}");
        }
    }

    #[test]
    fn escape_label_value_grammar() {
        assert_eq!(escape_label_value("plain"), "plain");
        assert_eq!(escape_label_value("a\\b"), "a\\\\b");
        assert_eq!(escape_label_value("a\"b"), "a\\\"b");
        assert_eq!(escape_label_value("a\nb"), "a\\nb");
        assert_eq!(escape_label_value("\\\"\n"), "\\\\\\\"\\n");
    }

    #[test]
    fn help_text_is_escaped() {
        let mut p = PromText::new();
        p.counter("a", "line\nbreak \\ slash", 1);
        let out = p.finish();
        assert!(out.contains("# HELP a line\\nbreak \\\\ slash\n"), "{out}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_end_with_inf() {
        let mut h = LogHistogram::new(1.0, 100.0, 2.0);
        h.record(0.5); // underflow
        h.record(1.5);
        h.record(1.6);
        h.record(50.0);
        h.record(1000.0); // overflow
        let mut p = PromText::new();
        p.histogram("lat_seconds", "Latency.", &h);
        let out = p.finish();

        let mut last = 0u64;
        let mut inf_seen = false;
        for line in out.lines().filter(|l| l.contains("_bucket")) {
            let count: u64 = line.rsplit(' ').next().unwrap().parse().unwrap();
            assert!(count >= last, "buckets must be cumulative: {out}");
            last = count;
            if line.contains("le=\"+Inf\"") {
                inf_seen = true;
                assert_eq!(count, h.total());
            }
        }
        assert!(inf_seen, "{out}");
        assert!(out.contains("lat_seconds_count 5"), "{out}");
        // _sum approximation: min*1 + mid-buckets + max*1 stays in range.
        let sum_line = out.lines().find(|l| l.starts_with("lat_seconds_sum")).unwrap();
        let sum: f64 = sum_line.rsplit(' ').next().unwrap().parse().unwrap();
        assert!(sum > 1000.0 && sum < 1200.0, "{sum_line}");
    }

    #[test]
    fn empty_histogram_is_still_valid() {
        let h = LogHistogram::latency_seconds();
        let mut p = PromText::new();
        p.histogram("empty_seconds", "Nothing.", &h);
        let out = p.finish();
        assert!(out.contains("empty_seconds_bucket{le=\"+Inf\"} 0\n"), "{out}");
        assert!(out.contains("empty_seconds_sum 0\n"), "{out}");
        assert!(out.contains("empty_seconds_count 0\n"), "{out}");
    }

    #[test]
    fn metric_name_validation() {
        assert!(valid_metric_name("faasrail_requests_total"));
        assert!(valid_metric_name("a:b_c1"));
        assert!(!valid_metric_name(""));
        assert!(!valid_metric_name("1abc"));
        assert!(!valid_metric_name("has space"));
        assert!(!valid_metric_name("dash-ed"));
    }
}

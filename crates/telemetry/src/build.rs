//! Build provenance: which commit, compiler, and crate version produced
//! an artifact.
//!
//! The values are baked in at compile time by the crate's build script
//! (`build.rs` reads `.git/HEAD` directly and asks `$RUSTC --version`),
//! so [`BuildInfo::current`] is allocation-only — no subprocess, no
//! filesystem access at runtime. Every durable artifact the system
//! writes (run reports, fleet reports, bench reports) and the gateway's
//! `/healthz` carry a `BuildInfo`, which is what makes a perf trajectory
//! across commits trustworthy: a `BENCH_*.json` that doesn't say which
//! sha produced it is an anecdote, not a measurement.

use serde::{Deserialize, Serialize};

/// Compile-time build provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BuildInfo {
    /// Crate version (`CARGO_PKG_VERSION` of the telemetry crate, which
    /// is the shared workspace version).
    pub version: String,
    /// Full git commit sha at build time, or `"unknown"` outside a git
    /// checkout.
    pub git_sha: String,
    /// `rustc --version` string of the compiler that built the binary.
    pub rustc: String,
    /// Whether debug assertions were enabled (perf numbers from a debug
    /// build are not comparable to release numbers).
    pub debug: bool,
}

impl BuildInfo {
    /// The build info of the running binary.
    pub fn current() -> BuildInfo {
        BuildInfo {
            version: env!("CARGO_PKG_VERSION").to_string(),
            git_sha: env!("FAASRAIL_GIT_SHA").to_string(),
            rustc: env!("FAASRAIL_RUSTC_VERSION").to_string(),
            debug: cfg!(debug_assertions),
        }
    }

    /// Abbreviated sha for human-facing output (12 chars, like git log).
    pub fn short_sha(&self) -> &str {
        let n = self.git_sha.len().min(12);
        &self.git_sha[..n]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn current_is_populated_and_round_trips() {
        let b = BuildInfo::current();
        assert!(!b.version.is_empty());
        assert!(!b.git_sha.is_empty());
        assert!(!b.rustc.is_empty());
        let json = serde_json::to_string(&b).unwrap();
        let back: BuildInfo = serde_json::from_str(&json).unwrap();
        assert_eq!(b, back);
    }

    #[test]
    fn short_sha_truncates_but_never_panics() {
        let mut b = BuildInfo::current();
        b.git_sha = "abc".to_string();
        assert_eq!(b.short_sha(), "abc");
        b.git_sha = "0123456789abcdef0123456789abcdef01234567".to_string();
        assert_eq!(b.short_sha(), "0123456789ab");
    }
}

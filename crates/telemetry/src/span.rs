//! Per-invocation event spans: the unit of FaaSRail observability.
//!
//! A span records the lifecycle of one request — scheduled → dispatched →
//! (queued | breaker-shed) → executing → completed/failed — as a handful of
//! run-relative microsecond timestamps plus the outcome classification. All
//! derived quantities (pacer lateness, queue wait, network overhead,
//! end-to-end response) are methods, not stored fields, so the hot-path
//! record stays small and allocation-free on success.

use serde::{Deserialize, Serialize};

/// Derive a per-invocation trace id from a run id and a dispatch sequence
/// number (SplitMix64 finalizer over both), so ids are unique within a run
/// and collision-resistant across concurrent runs without coordination.
/// Never returns 0 — a zero trace id means "absent" (pre-tracing logs and
/// requests arriving without an `X-FaaSRail-Trace` header).
pub fn derive_trace_id(run_id: u64, seq: u64) -> u64 {
    let mut z = run_id ^ seq.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    if z == 0 {
        1
    } else {
        z
    }
}

/// Render a trace id in the wire format of the `X-FaaSRail-Trace` header:
/// 16 lowercase hex digits, zero-padded.
pub fn format_trace_id(id: u64) -> String {
    format!("{id:016x}")
}

/// Parse the `X-FaaSRail-Trace` header value (1–16 hex digits). Returns
/// `None` for anything malformed — an unparseable header is treated as
/// absent rather than failing the request.
pub fn parse_trace_id(s: &str) -> Option<u64> {
    let s = s.trim();
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// Classification of a failed (or successful) invocation, for per-class
/// accounting in run metrics and telemetry. Over a network path the
/// failure classes behave very differently — an application error already
/// consumed backend resources, a timeout may still be executing, and a
/// transport error may never have reached application code — so replay
/// summaries report them separately.
///
/// This is the canonical definition; `faasrail-loadgen` re-exports it so
/// backends keep using `faasrail_loadgen::OutcomeClass`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum OutcomeClass {
    /// Served successfully.
    #[default]
    Ok,
    /// The backend executed the request and reported failure. Not
    /// retryable: retrying would re-run (non-idempotent) application code.
    AppError,
    /// The per-request deadline expired before a response arrived.
    Timeout,
    /// Connect/read/write failure, or an error response from a gateway in
    /// front of the backend; the request may never have reached
    /// application code.
    Transport,
    /// Rejected by overload protection before reaching application code: a
    /// gateway shedding load (`429 Too Many Requests`) or the client-side
    /// circuit breaker failing fast while open. Distinct from
    /// [`OutcomeClass::Transport`] because the system under test made a
    /// deliberate, healthy decision to refuse work — a load generator that
    /// lumps shed requests in with broken sockets misreports overload
    /// behaviour as infrastructure failure.
    Shed,
}

impl OutcomeClass {
    /// Every class, in partition order.
    pub const ALL: [OutcomeClass; 5] = [
        OutcomeClass::Ok,
        OutcomeClass::AppError,
        OutcomeClass::Timeout,
        OutcomeClass::Transport,
        OutcomeClass::Shed,
    ];

    /// Stable lower-case name (metric label value).
    pub fn name(self) -> &'static str {
        match self {
            OutcomeClass::Ok => "ok",
            OutcomeClass::AppError => "app_error",
            OutcomeClass::Timeout => "timeout",
            OutcomeClass::Transport => "transport",
            OutcomeClass::Shed => "shed",
        }
    }

    /// Index into a `[u64; 4]` per-error-class counter array
    /// (`[app_error, timeout, transport, shed]`); `None` for [`Self::Ok`].
    pub fn error_index(self) -> Option<usize> {
        match self {
            OutcomeClass::Ok => None,
            OutcomeClass::AppError => Some(0),
            OutcomeClass::Timeout => Some(1),
            OutcomeClass::Transport => Some(2),
            OutcomeClass::Shed => Some(3),
        }
    }
}

/// The lifecycle of one invocation, timestamped in microseconds relative to
/// the run start (wall clock for the replayer, virtual time for the
/// simulator).
///
/// Stage semantics: the request was *scheduled* to fire at `target_us`
/// (trace time over compression), actually *dispatched* at `dispatched_us`,
/// sat in the worker queue until `picked_up_us`, and finished at
/// `completed_us`. The backend-reported pure execution time is
/// `service_ms`; everything between pickup and completion beyond it is
/// client/network overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationSpan {
    /// Per-invocation trace id, propagated to networked backends via the
    /// `X-FaaSRail-Trace` header so client and server spans can be joined
    /// post-hoc. `0` in logs written before tracing existed.
    #[serde(default)]
    pub trace_id: u64,
    /// Dispatch sequence number within the run (0-based).
    pub seq: u64,
    /// Raw pool id of the workload executed.
    pub workload: u64,
    /// Originating (aggregated) Function index.
    pub function_index: u32,
    /// Scheduled fire time, trace milliseconds (per-minute bucketing key).
    pub scheduled_ms: u64,
    /// Scheduled fire instant, µs from run start (trace time ÷ compression
    /// under real-time pacing; equals `dispatched_us` when unpaced).
    pub target_us: u64,
    /// Actual dispatch instant, µs from run start.
    pub dispatched_us: u64,
    /// Worker pickup instant (end of queue wait), µs from run start.
    pub picked_up_us: u64,
    /// Completion instant, µs from run start.
    pub completed_us: u64,
    /// Backend-reported pure service (execution) time, milliseconds.
    pub service_ms: f64,
    /// Outcome classification.
    pub outcome: OutcomeClass,
    /// Whether a sandbox had to be cold-started.
    pub cold_start: bool,
    /// Failure detail, absent on success (kept out of the hot path: only
    /// failed invocations pay the allocation).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl InvocationSpan {
    /// Pacer lateness: actual minus scheduled dispatch, seconds.
    pub fn lateness_s(&self) -> f64 {
        self.dispatched_us.saturating_sub(self.target_us) as f64 / 1e6
    }

    /// Queue wait between dispatch and worker pickup, seconds.
    pub fn queue_wait_s(&self) -> f64 {
        self.picked_up_us.saturating_sub(self.dispatched_us) as f64 / 1e6
    }

    /// Backend-reported pure service time, seconds.
    pub fn service_s(&self) -> f64 {
        self.service_ms / 1e3
    }

    /// Client/network overhead: pickup → completion time not accounted for
    /// by the backend's service time, seconds (clamped at zero).
    pub fn overhead_s(&self) -> f64 {
        (self.completed_us.saturating_sub(self.picked_up_us) as f64 / 1e6 - self.service_s())
            .max(0.0)
    }

    /// End-to-end response time (dispatch → completion), seconds.
    pub fn response_s(&self) -> f64 {
        self.completed_us.saturating_sub(self.dispatched_us) as f64 / 1e6
    }

    /// The scheduled experiment minute this span counts against.
    pub fn scheduled_minute(&self) -> usize {
        (self.scheduled_ms / 60_000) as usize
    }
}

/// The fault a gateway injected into a request, recorded on the server
/// span so fault-induced outcomes are distinguishable from organic ones
/// when logs are analysed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum ServerFault {
    /// Connection dropped without a response (client sees a transport
    /// error).
    Drop,
    /// Synthetic `500` returned without invoking the backend.
    Error,
    /// Response withheld until past any sane client deadline (client sees
    /// a timeout).
    Stall,
    /// Extra latency injected before the backend ran; the response itself
    /// is genuine.
    Delay,
}

impl ServerFault {
    /// Stable lower-case name (metric label value).
    pub fn name(self) -> &'static str {
        match self {
            ServerFault::Drop => "drop",
            ServerFault::Error => "error",
            ServerFault::Stall => "stall",
            ServerFault::Delay => "delay",
        }
    }
}

/// The server-side lifecycle of one gateway request, timestamped in
/// microseconds relative to the *gateway's* start instant — a different
/// clock from [`InvocationSpan`]'s run-relative timestamps. The span-join
/// pass (`crate::join`) estimates the offset between the two clocks from
/// matched pairs; nothing here assumes synchronised time.
///
/// Stage semantics: the connection was *accepted* at `accepted_us` with
/// `queue_depth` connections already pending, *dequeued* by worker
/// `worker` at `dequeued_us`, the request head finished parsing and the
/// handler ran over `handler_start_us..handler_end_us`, and the response
/// bytes were flushed to the socket at `flushed_us`. For keep-alive
/// connections the accept/dequeue instants of requests after the first
/// are the instant the next request head arrived (there is no queue wait
/// to attribute).
///
/// Shed connections produce *no* server span: the gateway rejects them
/// before reading the request, so there is no trace id to record — they
/// surface as orphaned client spans instead, which the join pass counts
/// explicitly.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ServerSpan {
    /// Trace id from the `X-FaaSRail-Trace` header (or request body);
    /// `0` if the client sent none.
    #[serde(default)]
    pub trace_id: u64,
    /// Server-side request sequence number (admission order, 0-based).
    pub seq: u64,
    /// Worker thread id (0-based) that served the request.
    pub worker: u64,
    /// Connection accepted (or request head arrived, for keep-alive
    /// requests after the first), µs from gateway start.
    pub accepted_us: u64,
    /// Worker dequeued the connection, µs from gateway start.
    pub dequeued_us: u64,
    /// Request head parsed, handler invoked, µs from gateway start.
    pub handler_start_us: u64,
    /// Handler returned, µs from gateway start.
    pub handler_end_us: u64,
    /// Response bytes flushed to the socket, µs from gateway start.
    pub flushed_us: u64,
    /// Pending-connection queue depth observed at admission.
    pub queue_depth: u64,
    /// Backend-reported pure service time, milliseconds (0 when the
    /// backend never ran).
    pub service_ms: f64,
    /// Outcome as the *server* classified it (what the client observes
    /// can differ — e.g. a stalled response times out client-side).
    pub outcome: OutcomeClass,
    /// Injected fault, if this request drew one.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub fault: Option<ServerFault>,
    /// Whether the backend reported a cold start.
    pub cold_start: bool,
}

impl ServerSpan {
    /// Accept → worker dequeue (gateway queue wait), seconds.
    pub fn queue_wait_s(&self) -> f64 {
        self.dequeued_us.saturating_sub(self.accepted_us) as f64 / 1e6
    }

    /// Dequeue → handler start (request head read + parse), seconds.
    pub fn read_s(&self) -> f64 {
        self.handler_start_us.saturating_sub(self.dequeued_us) as f64 / 1e6
    }

    /// Handler start → handler end (backend execution incl. injected
    /// delay), seconds.
    pub fn handler_s(&self) -> f64 {
        self.handler_end_us.saturating_sub(self.handler_start_us) as f64 / 1e6
    }

    /// Handler end → response flushed, seconds.
    pub fn flush_s(&self) -> f64 {
        self.flushed_us.saturating_sub(self.handler_end_us) as f64 / 1e6
    }

    /// Accept → response flushed (total server residency), seconds.
    pub fn total_s(&self) -> f64 {
        self.flushed_us.saturating_sub(self.accepted_us) as f64 / 1e6
    }
}

/// Run-level configuration echoed at the head of an event stream so the
/// log is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunInfo {
    /// Requests in the schedule.
    pub requests: u64,
    /// Scheduled experiment duration, minutes.
    pub duration_minutes: u64,
    /// Replay worker threads.
    pub workers: u64,
    /// Pacing mode (`"realtime"`, `"unpaced"`, `"closed-loop"`, or
    /// `"simulated"` for virtual-time runs).
    pub pacing: String,
    /// Time compression under real-time pacing (1.0 otherwise).
    pub compression: f64,
}

/// Run-level totals emitted at the tail of an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub issued: u64,
    pub completed: u64,
    pub errors: u64,
    pub aborted: bool,
    /// Wall-clock (or virtual) run duration, microseconds.
    pub wall_us: u64,
}

/// A fleet control-plane reassignment: the coordinator moved part of a
/// lost agent's remaining schedule to a survivor mid-run. Emitted into
/// merged fleet event streams so a report reader can see exactly when and
/// why offered load changed hands.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReassignSpan {
    /// When the coordinator issued the grant, µs from run start (merged
    /// epoch).
    pub at_us: u64,
    /// Shard that owned the work before it was lost.
    pub from_shard: u32,
    /// Shard that picked the work up.
    pub to_shard: u32,
    /// Grant id (unique per reassignment within a run; `0` is reserved
    /// for an agent's original assignment).
    pub work: u64,
    /// Invocations transferred by this grant.
    pub requests: u64,
    /// Why the source agent was declared dead (`"crash"`, `"stall"`, or
    /// an abort reason).
    pub reason: String,
}

/// One telemetry event. Serialized as JSONL with an `event` tag, so logs
/// are grep-able and stream-parseable line by line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum TelemetryEvent {
    RunStart(RunInfo),
    Invocation(InvocationSpan),
    /// Server-side gateway span (only present in server trace logs).
    ServerSpan(ServerSpan),
    /// Fleet reassignment (only present in merged fleet logs).
    Reassign(ReassignSpan),
    RunEnd(RunSummary),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> InvocationSpan {
        InvocationSpan {
            trace_id: derive_trace_id(42, 3),
            seq: 3,
            workload: 7,
            function_index: 2,
            scheduled_ms: 61_000,
            target_us: 100_000,
            dispatched_us: 101_500,
            picked_up_us: 111_500,
            completed_us: 161_500,
            service_ms: 30.0,
            outcome: OutcomeClass::Ok,
            cold_start: true,
            error: None,
        }
    }

    #[test]
    fn derived_stages_decompose_the_response() {
        let s = span();
        assert!((s.lateness_s() - 0.0015).abs() < 1e-9);
        assert!((s.queue_wait_s() - 0.010).abs() < 1e-9);
        assert!((s.service_s() - 0.030).abs() < 1e-9);
        assert!((s.overhead_s() - 0.020).abs() < 1e-9);
        assert!((s.response_s() - 0.060).abs() < 1e-9);
        // queue wait + service + overhead == response (for completed spans).
        assert!((s.queue_wait_s() + s.service_s() + s.overhead_s() - s.response_s()).abs() < 1e-9);
        assert_eq!(s.scheduled_minute(), 1);
    }

    #[test]
    fn overhead_clamps_at_zero() {
        let mut s = span();
        s.service_ms = 500.0; // backend claims more than the wall interval
        assert_eq!(s.overhead_s(), 0.0);
    }

    #[test]
    fn events_roundtrip_as_tagged_jsonl() {
        let events = vec![
            TelemetryEvent::RunStart(RunInfo {
                requests: 10,
                duration_minutes: 1,
                workers: 2,
                pacing: "unpaced".to_string(),
                compression: 1.0,
            }),
            TelemetryEvent::Invocation(span()),
            TelemetryEvent::RunEnd(RunSummary {
                issued: 10,
                completed: 9,
                errors: 1,
                aborted: false,
                wall_us: 1_000_000,
            }),
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            assert!(line.contains("\"event\""), "{line}");
            let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(*e, back);
        }
        let line = serde_json::to_string(&events[1]).unwrap();
        assert!(line.contains("\"event\":\"invocation\""), "{line}");
    }

    #[test]
    fn error_string_is_skipped_on_success() {
        let line = serde_json::to_string(&TelemetryEvent::Invocation(span())).unwrap();
        assert!(!line.contains("\"error\""), "{line}");
    }

    #[test]
    fn trace_ids_are_nonzero_unique_and_roundtrip_the_wire_format() {
        let mut seen = std::collections::HashSet::new();
        for run in [0u64, 1, 0xDEAD_BEEF] {
            for seq in 0..1000u64 {
                let id = derive_trace_id(run, seq);
                assert_ne!(id, 0);
                assert!(seen.insert(id), "collision at run={run} seq={seq}");
                let wire = format_trace_id(id);
                assert_eq!(wire.len(), 16);
                assert_eq!(parse_trace_id(&wire), Some(id));
            }
        }
    }

    #[test]
    fn trace_id_parser_rejects_garbage() {
        assert_eq!(parse_trace_id(""), None);
        assert_eq!(parse_trace_id("zzzz"), None);
        assert_eq!(parse_trace_id("0123456789abcdef0"), None); // 17 digits
        assert_eq!(parse_trace_id(" 1f "), Some(0x1f));
        assert_eq!(parse_trace_id("0"), Some(0));
    }

    fn server_span() -> ServerSpan {
        ServerSpan {
            trace_id: 7,
            seq: 0,
            worker: 2,
            accepted_us: 1_000,
            dequeued_us: 3_000,
            handler_start_us: 3_500,
            handler_end_us: 33_500,
            flushed_us: 34_000,
            queue_depth: 5,
            service_ms: 30.0,
            outcome: OutcomeClass::Ok,
            fault: None,
            cold_start: false,
        }
    }

    #[test]
    fn server_span_stages_decompose_total_residency() {
        let s = server_span();
        assert!((s.queue_wait_s() - 0.002).abs() < 1e-9);
        assert!((s.read_s() - 0.0005).abs() < 1e-9);
        assert!((s.handler_s() - 0.030).abs() < 1e-9);
        assert!((s.flush_s() - 0.0005).abs() < 1e-9);
        assert!((s.total_s() - 0.033).abs() < 1e-9);
        assert!(
            (s.queue_wait_s() + s.read_s() + s.handler_s() + s.flush_s() - s.total_s()).abs()
                < 1e-9
        );
    }

    #[test]
    fn server_span_event_roundtrips_and_skips_absent_fault() {
        let e = TelemetryEvent::ServerSpan(server_span());
        let line = serde_json::to_string(&e).unwrap();
        assert!(line.contains("\"event\":\"server_span\""), "{line}");
        assert!(!line.contains("\"fault\""), "{line}");
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(e, back);

        let mut faulted = server_span();
        faulted.fault = Some(ServerFault::Stall);
        faulted.outcome = OutcomeClass::Timeout;
        let line = serde_json::to_string(&TelemetryEvent::ServerSpan(faulted.clone())).unwrap();
        assert!(line.contains("\"fault\":\"stall\""), "{line}");
        let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
        assert_eq!(back, TelemetryEvent::ServerSpan(faulted));
    }

    #[test]
    fn outcome_class_names_and_indices() {
        assert_eq!(OutcomeClass::ALL.len(), 5);
        assert_eq!(OutcomeClass::Ok.error_index(), None);
        assert_eq!(OutcomeClass::AppError.error_index(), Some(0));
        assert_eq!(OutcomeClass::Shed.error_index(), Some(3));
        let names: Vec<&str> = OutcomeClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["ok", "app_error", "timeout", "transport", "shed"]);
    }
}

//! Per-invocation event spans: the unit of FaaSRail observability.
//!
//! A span records the lifecycle of one request — scheduled → dispatched →
//! (queued | breaker-shed) → executing → completed/failed — as a handful of
//! run-relative microsecond timestamps plus the outcome classification. All
//! derived quantities (pacer lateness, queue wait, network overhead,
//! end-to-end response) are methods, not stored fields, so the hot-path
//! record stays small and allocation-free on success.

use serde::{Deserialize, Serialize};

/// Classification of a failed (or successful) invocation, for per-class
/// accounting in run metrics and telemetry. Over a network path the
/// failure classes behave very differently — an application error already
/// consumed backend resources, a timeout may still be executing, and a
/// transport error may never have reached application code — so replay
/// summaries report them separately.
///
/// This is the canonical definition; `faasrail-loadgen` re-exports it so
/// backends keep using `faasrail_loadgen::OutcomeClass`.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub enum OutcomeClass {
    /// Served successfully.
    #[default]
    Ok,
    /// The backend executed the request and reported failure. Not
    /// retryable: retrying would re-run (non-idempotent) application code.
    AppError,
    /// The per-request deadline expired before a response arrived.
    Timeout,
    /// Connect/read/write failure, or an error response from a gateway in
    /// front of the backend; the request may never have reached
    /// application code.
    Transport,
    /// Rejected by overload protection before reaching application code: a
    /// gateway shedding load (`429 Too Many Requests`) or the client-side
    /// circuit breaker failing fast while open. Distinct from
    /// [`OutcomeClass::Transport`] because the system under test made a
    /// deliberate, healthy decision to refuse work — a load generator that
    /// lumps shed requests in with broken sockets misreports overload
    /// behaviour as infrastructure failure.
    Shed,
}

impl OutcomeClass {
    /// Every class, in partition order.
    pub const ALL: [OutcomeClass; 5] = [
        OutcomeClass::Ok,
        OutcomeClass::AppError,
        OutcomeClass::Timeout,
        OutcomeClass::Transport,
        OutcomeClass::Shed,
    ];

    /// Stable lower-case name (metric label value).
    pub fn name(self) -> &'static str {
        match self {
            OutcomeClass::Ok => "ok",
            OutcomeClass::AppError => "app_error",
            OutcomeClass::Timeout => "timeout",
            OutcomeClass::Transport => "transport",
            OutcomeClass::Shed => "shed",
        }
    }

    /// Index into a `[u64; 4]` per-error-class counter array
    /// (`[app_error, timeout, transport, shed]`); `None` for [`Self::Ok`].
    pub fn error_index(self) -> Option<usize> {
        match self {
            OutcomeClass::Ok => None,
            OutcomeClass::AppError => Some(0),
            OutcomeClass::Timeout => Some(1),
            OutcomeClass::Transport => Some(2),
            OutcomeClass::Shed => Some(3),
        }
    }
}

/// The lifecycle of one invocation, timestamped in microseconds relative to
/// the run start (wall clock for the replayer, virtual time for the
/// simulator).
///
/// Stage semantics: the request was *scheduled* to fire at `target_us`
/// (trace time over compression), actually *dispatched* at `dispatched_us`,
/// sat in the worker queue until `picked_up_us`, and finished at
/// `completed_us`. The backend-reported pure execution time is
/// `service_ms`; everything between pickup and completion beyond it is
/// client/network overhead.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InvocationSpan {
    /// Dispatch sequence number within the run (0-based).
    pub seq: u64,
    /// Raw pool id of the workload executed.
    pub workload: u64,
    /// Originating (aggregated) Function index.
    pub function_index: u32,
    /// Scheduled fire time, trace milliseconds (per-minute bucketing key).
    pub scheduled_ms: u64,
    /// Scheduled fire instant, µs from run start (trace time ÷ compression
    /// under real-time pacing; equals `dispatched_us` when unpaced).
    pub target_us: u64,
    /// Actual dispatch instant, µs from run start.
    pub dispatched_us: u64,
    /// Worker pickup instant (end of queue wait), µs from run start.
    pub picked_up_us: u64,
    /// Completion instant, µs from run start.
    pub completed_us: u64,
    /// Backend-reported pure service (execution) time, milliseconds.
    pub service_ms: f64,
    /// Outcome classification.
    pub outcome: OutcomeClass,
    /// Whether a sandbox had to be cold-started.
    pub cold_start: bool,
    /// Failure detail, absent on success (kept out of the hot path: only
    /// failed invocations pay the allocation).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub error: Option<String>,
}

impl InvocationSpan {
    /// Pacer lateness: actual minus scheduled dispatch, seconds.
    pub fn lateness_s(&self) -> f64 {
        self.dispatched_us.saturating_sub(self.target_us) as f64 / 1e6
    }

    /// Queue wait between dispatch and worker pickup, seconds.
    pub fn queue_wait_s(&self) -> f64 {
        self.picked_up_us.saturating_sub(self.dispatched_us) as f64 / 1e6
    }

    /// Backend-reported pure service time, seconds.
    pub fn service_s(&self) -> f64 {
        self.service_ms / 1e3
    }

    /// Client/network overhead: pickup → completion time not accounted for
    /// by the backend's service time, seconds (clamped at zero).
    pub fn overhead_s(&self) -> f64 {
        (self.completed_us.saturating_sub(self.picked_up_us) as f64 / 1e6 - self.service_s())
            .max(0.0)
    }

    /// End-to-end response time (dispatch → completion), seconds.
    pub fn response_s(&self) -> f64 {
        self.completed_us.saturating_sub(self.dispatched_us) as f64 / 1e6
    }

    /// The scheduled experiment minute this span counts against.
    pub fn scheduled_minute(&self) -> usize {
        (self.scheduled_ms / 60_000) as usize
    }
}

/// Run-level configuration echoed at the head of an event stream so the
/// log is self-describing.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RunInfo {
    /// Requests in the schedule.
    pub requests: u64,
    /// Scheduled experiment duration, minutes.
    pub duration_minutes: u64,
    /// Replay worker threads.
    pub workers: u64,
    /// Pacing mode (`"realtime"`, `"unpaced"`, `"closed-loop"`, or
    /// `"simulated"` for virtual-time runs).
    pub pacing: String,
    /// Time compression under real-time pacing (1.0 otherwise).
    pub compression: f64,
}

/// Run-level totals emitted at the tail of an event stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunSummary {
    pub issued: u64,
    pub completed: u64,
    pub errors: u64,
    pub aborted: bool,
    /// Wall-clock (or virtual) run duration, microseconds.
    pub wall_us: u64,
}

/// One telemetry event. Serialized as JSONL with an `event` tag, so logs
/// are grep-able and stream-parseable line by line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "event", rename_all = "snake_case")]
pub enum TelemetryEvent {
    RunStart(RunInfo),
    Invocation(InvocationSpan),
    RunEnd(RunSummary),
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span() -> InvocationSpan {
        InvocationSpan {
            seq: 3,
            workload: 7,
            function_index: 2,
            scheduled_ms: 61_000,
            target_us: 100_000,
            dispatched_us: 101_500,
            picked_up_us: 111_500,
            completed_us: 161_500,
            service_ms: 30.0,
            outcome: OutcomeClass::Ok,
            cold_start: true,
            error: None,
        }
    }

    #[test]
    fn derived_stages_decompose_the_response() {
        let s = span();
        assert!((s.lateness_s() - 0.0015).abs() < 1e-9);
        assert!((s.queue_wait_s() - 0.010).abs() < 1e-9);
        assert!((s.service_s() - 0.030).abs() < 1e-9);
        assert!((s.overhead_s() - 0.020).abs() < 1e-9);
        assert!((s.response_s() - 0.060).abs() < 1e-9);
        // queue wait + service + overhead == response (for completed spans).
        assert!((s.queue_wait_s() + s.service_s() + s.overhead_s() - s.response_s()).abs() < 1e-9);
        assert_eq!(s.scheduled_minute(), 1);
    }

    #[test]
    fn overhead_clamps_at_zero() {
        let mut s = span();
        s.service_ms = 500.0; // backend claims more than the wall interval
        assert_eq!(s.overhead_s(), 0.0);
    }

    #[test]
    fn events_roundtrip_as_tagged_jsonl() {
        let events = vec![
            TelemetryEvent::RunStart(RunInfo {
                requests: 10,
                duration_minutes: 1,
                workers: 2,
                pacing: "unpaced".to_string(),
                compression: 1.0,
            }),
            TelemetryEvent::Invocation(span()),
            TelemetryEvent::RunEnd(RunSummary {
                issued: 10,
                completed: 9,
                errors: 1,
                aborted: false,
                wall_us: 1_000_000,
            }),
        ];
        for e in &events {
            let line = serde_json::to_string(e).unwrap();
            assert!(line.contains("\"event\""), "{line}");
            let back: TelemetryEvent = serde_json::from_str(&line).unwrap();
            assert_eq!(*e, back);
        }
        let line = serde_json::to_string(&events[1]).unwrap();
        assert!(line.contains("\"event\":\"invocation\""), "{line}");
    }

    #[test]
    fn error_string_is_skipped_on_success() {
        let line = serde_json::to_string(&TelemetryEvent::Invocation(span())).unwrap();
        assert!(!line.contains("\"error\""), "{line}");
    }

    #[test]
    fn outcome_class_names_and_indices() {
        assert_eq!(OutcomeClass::ALL.len(), 5);
        assert_eq!(OutcomeClass::Ok.error_index(), None);
        assert_eq!(OutcomeClass::AppError.error_index(), Some(0));
        assert_eq!(OutcomeClass::Shed.error_index(), Some(3));
        let names: Vec<&str> = OutcomeClass::ALL.iter().map(|c| c.name()).collect();
        assert_eq!(names, ["ok", "app_error", "timeout", "transport", "shed"]);
    }
}

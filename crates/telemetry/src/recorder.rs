//! Sharded, lock-light live metrics.
//!
//! Replay workers update a [`Recorder`] on the hot path: each worker owns a
//! cache-padded shard guarded by an uncontended [`parking_lot::Mutex`], so
//! recording costs one uncontended lock acquisition and never blocks
//! another worker. A monitor thread periodically merges the shards into a
//! cumulative [`Snapshot`]; subtracting consecutive snapshots yields exact
//! per-window counts and a windowed latency histogram (via
//! [`LogHistogram::delta`]), from which the once-per-interval progress line
//! reports offered vs achieved RPS, error rate, and response quantiles.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use crossbeam::utils::CachePadded;
use faasrail_stats::LogHistogram;
use parking_lot::Mutex;

use crate::prometheus::PromText;
use crate::span::OutcomeClass;

/// One shard's counters. `errors` is indexed by
/// [`OutcomeClass::error_index`]: `[app_error, timeout, transport, shed]`.
struct Counters {
    issued: u64,
    completed: u64,
    errors: [u64; 4],
    cold_starts: u64,
    response: LogHistogram,
}

impl Counters {
    fn new() -> Self {
        Counters {
            issued: 0,
            completed: 0,
            errors: [0; 4],
            cold_starts: 0,
            response: LogHistogram::latency_seconds(),
        }
    }
}

/// Live metrics recorder shared between replay workers and a monitor.
///
/// Create with one shard per writer thread (workers plus the pacer) and
/// pass each writer its own shard index; indices are reduced modulo the
/// shard count, so an out-of-range index degrades to sharing rather than
/// panicking.
pub struct Recorder {
    shards: Box<[CachePadded<Mutex<Counters>>]>,
}

impl Recorder {
    /// # Panics
    /// Panics if `shards == 0`.
    pub fn new(shards: usize) -> Self {
        assert!(shards > 0, "Recorder requires at least one shard");
        Recorder {
            shards: (0..shards).map(|_| CachePadded::new(Mutex::new(Counters::new()))).collect(),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Count one dispatched request (pacer side).
    pub fn record_issued(&self, shard: usize) {
        self.shards[shard % self.shards.len()].lock().issued += 1;
    }

    /// Count one finished request (worker side). `response_s` is recorded
    /// into the windowed histogram regardless of outcome, matching
    /// `RunMetrics`.
    pub fn record_outcome(
        &self,
        shard: usize,
        outcome: OutcomeClass,
        response_s: f64,
        cold_start: bool,
    ) {
        let mut c = self.shards[shard % self.shards.len()].lock();
        c.response.record(response_s);
        if cold_start {
            c.cold_starts += 1;
        }
        match outcome.error_index() {
            None => c.completed += 1,
            Some(i) => c.errors[i] += 1,
        }
    }

    /// Merge all shards into a cumulative snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let mut out = Snapshot::default();
        for shard in self.shards.iter() {
            let c = shard.lock();
            out.issued += c.issued;
            out.completed += c.completed;
            for (a, b) in out.errors.iter_mut().zip(&c.errors) {
                *a += b;
            }
            out.cold_starts += c.cold_starts;
            out.response.merge(&c.response);
        }
        out
    }
}

/// A point-in-time merge of all recorder shards. Cumulative; subtract two
/// with [`Snapshot::delta`] to get the window in between. Serializable so
/// fleet agents can stream windowed snapshots to a coordinator, and
/// mergeable ([`Snapshot::merge`]) so the coordinator can fold any number
/// of agent snapshots — in any arrival order — into one fleet-wide view.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Snapshot {
    pub issued: u64,
    pub completed: u64,
    /// `[app_error, timeout, transport, shed]`.
    pub errors: [u64; 4],
    pub cold_starts: u64,
    pub response: LogHistogram,
}

impl Default for Snapshot {
    fn default() -> Self {
        Snapshot {
            issued: 0,
            completed: 0,
            errors: [0; 4],
            cold_starts: 0,
            response: LogHistogram::latency_seconds(),
        }
    }
}

impl Snapshot {
    /// Everything recorded after `earlier` was captured.
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut errors = [0u64; 4];
        for (i, e) in errors.iter_mut().enumerate() {
            *e = self.errors[i].saturating_sub(earlier.errors[i]);
        }
        Snapshot {
            issued: self.issued.saturating_sub(earlier.issued),
            completed: self.completed.saturating_sub(earlier.completed),
            errors,
            cold_starts: self.cold_starts.saturating_sub(earlier.cold_starts),
            response: self.response.delta(&earlier.response),
        }
    }

    /// Fold another snapshot into this one (counter-wise addition,
    /// histogram bucket merge). Pure integer accumulation, so merging is
    /// commutative and associative: a fleet coordinator aggregating agent
    /// snapshots gets the same result whatever order agents report in.
    pub fn merge(&mut self, other: &Snapshot) {
        self.issued += other.issued;
        self.completed += other.completed;
        for (a, b) in self.errors.iter_mut().zip(&other.errors) {
            *a += b;
        }
        self.cold_starts += other.cold_starts;
        self.response.merge(&other.response);
    }

    pub fn errors_total(&self) -> u64 {
        self.errors.iter().sum()
    }

    /// Errors over finished requests; `0.0` when nothing finished.
    pub fn error_rate(&self) -> f64 {
        let finished = self.completed + self.errors_total();
        if finished == 0 {
            0.0
        } else {
            self.errors_total() as f64 / finished as f64
        }
    }

    /// Response quantile in milliseconds; `NaN` when nothing recorded.
    pub fn response_quantile_ms(&self, q: f64) -> f64 {
        if self.response.total() == 0 {
            f64::NAN
        } else {
            self.response.quantile(q) * 1e3
        }
    }

    /// One-line progress report for a window of `window_secs`, e.g.
    /// `t=120s offered 49.8 rps | achieved 49.1 rps | err 1.4% | p50/p95/p99 12/88/240 ms`.
    pub fn progress_line(&self, window_secs: f64, elapsed_secs: f64) -> String {
        let rate = |n: u64| {
            if window_secs > 0.0 {
                n as f64 / window_secs
            } else {
                0.0
            }
        };
        let mut line = String::with_capacity(96);
        let _ = write!(
            line,
            "t={:.0}s offered {:.1} rps | achieved {:.1} rps | err {:.1}%",
            elapsed_secs,
            rate(self.issued),
            rate(self.completed + self.errors_total()),
            self.error_rate() * 100.0,
        );
        if self.response.total() > 0 {
            let _ = write!(
                line,
                " | p50/p95/p99 {:.0}/{:.0}/{:.0} ms",
                self.response_quantile_ms(0.50),
                self.response_quantile_ms(0.95),
                self.response_quantile_ms(0.99),
            );
        } else {
            line.push_str(" | p50/p95/p99 -/-/- ms");
        }
        line
    }

    /// Encode the snapshot as Prometheus text-format metrics under
    /// `<prefix>_…`.
    pub fn to_prometheus(&self, prefix: &str) -> String {
        let mut p = PromText::new();
        p.counter(
            &format!("{prefix}_issued_total"),
            "Requests dispatched (offered load).",
            self.issued,
        );
        p.counter(
            &format!("{prefix}_completed_total"),
            "Requests finished successfully.",
            self.completed,
        );
        let labeled = [
            ("app_error", self.errors[0]),
            ("timeout", self.errors[1]),
            ("transport", self.errors[2]),
            ("shed", self.errors[3]),
        ];
        p.counter_vec(
            &format!("{prefix}_errors_total"),
            "Requests finished unsuccessfully, by outcome class.",
            "class",
            &labeled,
        );
        p.counter(
            &format!("{prefix}_cold_starts_total"),
            "Invocations that required a sandbox cold start.",
            self.cold_starts,
        );
        p.histogram(
            &format!("{prefix}_response_seconds"),
            "End-to-end response time (dispatch to completion).",
            &self.response,
        );
        p.finish()
    }
}

/// Turns a stream of *cumulative* snapshots into consecutive windowed
/// deltas. This is the single windowing implementation shared by the
/// stderr progress line ([`spawn_progress_printer`]), the fleet console's
/// `/state` history, and `fleet top` — all three feed successive cumulative
/// snapshots through [`DeltaWindow::advance`] and therefore can never
/// disagree about what a window contains.
///
/// Invariant: because each window is `current.delta(&previous)` against the
/// previous *cumulative* snapshot, the counter-wise sum (histogram-merge)
/// of every window emitted since construction reconstructs the latest
/// cumulative snapshot exactly.
#[derive(Debug, Clone, Default)]
pub struct DeltaWindow {
    prev: Snapshot,
}

impl DeltaWindow {
    /// Start from an empty baseline: the first `advance` returns the whole
    /// cumulative snapshot as one window.
    pub fn new() -> Self {
        DeltaWindow::default()
    }

    /// Start from an existing cumulative baseline (e.g. a printer attached
    /// mid-run that should not replay history as one giant window).
    pub fn starting_at(baseline: Snapshot) -> Self {
        DeltaWindow { prev: baseline }
    }

    /// Feed the next cumulative snapshot; returns everything recorded since
    /// the previous call (or since the baseline, on the first call).
    pub fn advance(&mut self, cumulative: &Snapshot) -> Snapshot {
        let window = cumulative.delta(&self.prev);
        self.prev = cumulative.clone();
        window
    }

    /// The cumulative snapshot most recently fed through `advance`.
    pub fn cumulative(&self) -> &Snapshot {
        &self.prev
    }
}

/// Spawn a monitor thread printing a [`Snapshot::progress_line`] to stderr
/// every `interval` until `stop` becomes true. Join the handle after
/// setting `stop` to cut the final partial window short.
pub fn spawn_progress_printer(
    recorder: Arc<Recorder>,
    interval: Duration,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    thread::spawn(move || {
        let start = Instant::now();
        let mut windows = DeltaWindow::starting_at(recorder.snapshot());
        let mut prev_at = start;
        while !stop.load(Ordering::Relaxed) {
            // Sleep in small slices so a stop request is honoured promptly.
            let wake = Instant::now() + interval;
            while Instant::now() < wake {
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                thread::sleep(Duration::from_millis(20).min(interval));
            }
            let now = Instant::now();
            let window = windows.advance(&recorder.snapshot());
            eprintln!(
                "{}",
                window.progress_line(
                    now.duration_since(prev_at).as_secs_f64(),
                    now.duration_since(start).as_secs_f64(),
                )
            );
            prev_at = now;
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_merges_all_shards() {
        let r = Recorder::new(3);
        r.record_issued(0);
        r.record_issued(1);
        r.record_issued(2);
        r.record_outcome(0, OutcomeClass::Ok, 0.010, true);
        r.record_outcome(1, OutcomeClass::Timeout, 1.0, false);
        r.record_outcome(2, OutcomeClass::Shed, 0.001, false);
        let s = r.snapshot();
        assert_eq!(s.issued, 3);
        assert_eq!(s.completed, 1);
        assert_eq!(s.errors, [0, 1, 0, 1]);
        assert_eq!(s.cold_starts, 1);
        assert_eq!(s.response.total(), 3);
        assert_eq!(s.errors_total(), 2);
        assert!((s.error_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_range_shard_wraps_instead_of_panicking() {
        let r = Recorder::new(2);
        r.record_issued(7); // lands in shard 1
        r.record_outcome(9, OutcomeClass::Ok, 0.010, false);
        let s = r.snapshot();
        assert_eq!(s.issued, 1);
        assert_eq!(s.completed, 1);
    }

    #[test]
    fn delta_isolates_the_window() {
        let r = Recorder::new(1);
        r.record_issued(0);
        r.record_outcome(0, OutcomeClass::Ok, 0.010, false);
        let first = r.snapshot();
        r.record_issued(0);
        r.record_issued(0);
        r.record_outcome(0, OutcomeClass::AppError, 0.020, false);
        let second = r.snapshot();
        let w = second.delta(&first);
        assert_eq!(w.issued, 2);
        assert_eq!(w.completed, 0);
        assert_eq!(w.errors, [1, 0, 0, 0]);
        assert_eq!(w.response.total(), 1);
        // Empty window.
        let z = second.delta(&second);
        assert_eq!(z.issued, 0);
        assert_eq!(z.response.total(), 0);
    }

    #[test]
    fn progress_line_handles_empty_window() {
        let line = Snapshot::default().progress_line(10.0, 30.0);
        assert!(line.contains("t=30s"), "{line}");
        assert!(line.contains("offered 0.0 rps"), "{line}");
        assert!(line.contains("p50/p95/p99 -/-/- ms"), "{line}");
        // Degenerate window duration must not divide by zero.
        let line = Snapshot::default().progress_line(0.0, 0.0);
        assert!(line.contains("offered 0.0 rps"), "{line}");
    }

    #[test]
    fn delta_window_sums_back_to_cumulative() {
        let r = Recorder::new(2);
        let mut windows = DeltaWindow::new();
        let mut total = Snapshot::default();
        for i in 0..5u64 {
            r.record_issued(i as usize);
            if i % 2 == 0 {
                r.record_outcome(i as usize, OutcomeClass::Ok, 0.010 * (i + 1) as f64, false);
            } else {
                r.record_outcome(i as usize, OutcomeClass::Timeout, 1.0, false);
            }
            let w = windows.advance(&r.snapshot());
            assert_eq!(w.issued, 1, "each window holds exactly the new work");
            total.merge(&w);
        }
        assert_eq!(total, r.snapshot(), "sum of windows reconstructs the cumulative snapshot");
        assert_eq!(windows.cumulative(), &r.snapshot());
        // An empty window is empty, not negative. (Only the counters:
        // `delta` deliberately carries the running min/max through, since
        // extrema cannot be un-observed window by window.)
        let z = windows.advance(&r.snapshot());
        assert_eq!(z.issued, 0);
        assert_eq!(z.completed, 0);
        assert_eq!(z.errors, [0; 4]);
        assert_eq!(z.response.total(), 0);
    }

    #[test]
    fn error_rate_is_zero_when_nothing_finished() {
        let s = Snapshot::default();
        assert_eq!(s.error_rate(), 0.0);
        assert!(s.response_quantile_ms(0.5).is_nan());
    }

    #[test]
    fn snapshot_merge_accumulates_and_roundtrips() {
        let r = Recorder::new(2);
        r.record_issued(0);
        r.record_issued(1);
        r.record_outcome(0, OutcomeClass::Ok, 0.010, true);
        r.record_outcome(1, OutcomeClass::Shed, 0.001, false);
        let a = r.snapshot();
        let r2 = Recorder::new(1);
        r2.record_issued(0);
        r2.record_outcome(0, OutcomeClass::Timeout, 2.0, false);
        let b = r2.snapshot();

        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.issued, 3);
        assert_eq!(merged.completed, 1);
        assert_eq!(merged.errors, [0, 1, 0, 1]);
        assert_eq!(merged.cold_starts, 1);
        assert_eq!(merged.response.total(), 3);

        // Merging the other way round is identical (fleet aggregation
        // order independence).
        let mut flipped = b.clone();
        flipped.merge(&a);
        assert_eq!(merged, flipped);

        // Wire (de)serialization for the fleet protocol.
        let json = serde_json::to_string(&merged).unwrap();
        let back: Snapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(merged, back);
    }

    #[test]
    fn snapshot_exports_prometheus_text() {
        let r = Recorder::new(2);
        r.record_issued(0);
        r.record_outcome(0, OutcomeClass::Ok, 0.010, true);
        r.record_outcome(1, OutcomeClass::Transport, 0.5, false);
        let text = r.snapshot().to_prometheus("faasrail_replay");
        assert!(text.contains("faasrail_replay_issued_total 1"), "{text}");
        assert!(text.contains("faasrail_replay_completed_total 1"), "{text}");
        assert!(text.contains("faasrail_replay_errors_total{class=\"transport\"} 1"), "{text}");
        assert!(text.contains("faasrail_replay_response_seconds_count 2"), "{text}");
        assert!(text.contains("le=\"+Inf\""), "{text}");
    }
}

//! Cross-tier span joining: merge a client event log and a server event
//! log by trace id into end-to-end traces.
//!
//! The client (`InvocationSpan`) and the gateway (`ServerSpan`) timestamp
//! on different clocks — run-relative and gateway-relative respectively —
//! so the join estimates the offset between them before decomposing each
//! trace. The estimator is the classic NTP midpoint argument: for a
//! request/response exchange, the midpoint of the server's residency must
//! coincide with the midpoint of the client's exchange interval up to
//! asymmetric network delay, so `offset ≈ mid(server) − mid(client)`. We
//! take the median over all single-attempt successful pairs (robust to
//! stragglers), and bound the residual error by the median half of the
//! client-observed exchange time not accounted for by the server
//! (half-RTT): the true offset cannot differ from the midpoint estimate
//! by more than the one-way network delay.
//!
//! Orphans are first-class: a client span with no matching server span is
//! not a join bug, it is a measurement — gateway sheds happen *before*
//! the request is read (no trace id ever reaches the server) and
//! transport errors may fail before a byte is written — so orphan counts
//! per outcome class are reported alongside the joined set, and a
//! loopback replay with zero sheds must join 100% of spans.

use serde::{Deserialize, Serialize};

use crate::span::{InvocationSpan, OutcomeClass, ServerSpan, TelemetryEvent};

/// Estimated client↔server clock offset.
///
/// Convention: `offset_us` is the value of the server clock minus the
/// value of the client clock at the same physical instant, so a server
/// timestamp converts to the client clock as `t_client = t_server −
/// offset_us`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ClockOffset {
    /// Median midpoint offset, microseconds (server − client).
    pub offset_us: f64,
    /// Error bound on the offset: median half-RTT of the sampled
    /// exchanges, microseconds.
    pub error_us: f64,
    /// Exchanges sampled (single-attempt, both sides successful).
    pub pairs: u64,
}

/// Per-trace cross-tier stage decomposition, seconds. All stages are
/// non-negative; `net_out`/`net_back` are clamped at zero when the clock
/// offset error exceeds the true network time, so
/// `client_queue + net_out + gateway + service + net_back` can exceed
/// `response` by at most twice the offset error (and equals it exactly
/// when no clamp fired).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossTierStages {
    /// Pacer lateness: actual minus scheduled dispatch (client clock).
    pub lateness_s: f64,
    /// Dispatch → client worker pickup (client clock).
    pub client_queue_s: f64,
    /// Client worker pickup → gateway accept (cross-clock, offset-adjusted).
    pub net_out_s: f64,
    /// Gateway accept → handler start: connection queue wait plus request
    /// head read (server clock).
    pub gateway_s: f64,
    /// Handler start → handler end: backend execution (server clock).
    pub service_s: f64,
    /// Handler end → client completion: response flush plus return
    /// network path (cross-clock, offset-adjusted).
    pub net_back_s: f64,
    /// Client-observed end-to-end response (dispatch → completion).
    pub response_s: f64,
}

impl CrossTierStages {
    /// Decompose one joined pair under the given clock offset.
    fn compute(client: &InvocationSpan, server: &ServerSpan, offset: &ClockOffset) -> Self {
        // Server timestamps mapped onto the client clock.
        let accepted_client = server.accepted_us as f64 - offset.offset_us;
        let handler_end_client = server.handler_end_us as f64 - offset.offset_us;
        CrossTierStages {
            lateness_s: client.lateness_s(),
            client_queue_s: client.queue_wait_s(),
            net_out_s: ((accepted_client - client.picked_up_us as f64) / 1e6).max(0.0),
            gateway_s: server.queue_wait_s() + server.read_s(),
            service_s: server.handler_s(),
            net_back_s: ((client.completed_us as f64 - handler_end_client) / 1e6).max(0.0),
            response_s: client.response_s(),
        }
    }

    /// Sum of the five post-dispatch stages (everything but lateness),
    /// which telescopes to `response_s` up to clamped clock-offset error.
    pub fn stage_sum_s(&self) -> f64 {
        self.client_queue_s + self.net_out_s + self.gateway_s + self.service_s + self.net_back_s
    }
}

/// One end-to-end trace: a client span matched to its server span.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JoinedSpan {
    pub client: InvocationSpan,
    pub server: ServerSpan,
    /// Server spans that carried this trace id (>1 means the client
    /// retried; `server` is the last attempt by handler-end time).
    pub attempts: u64,
    pub stages: CrossTierStages,
}

/// The result of joining a client log against a server log.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SpanJoin {
    /// Successfully joined traces, in client dispatch order.
    pub joined: Vec<JoinedSpan>,
    /// Client spans with no matching server span, in client dispatch
    /// order (shed before the request was read, transport failures that
    /// never reached the gateway, or pre-tracing logs with zero ids).
    pub orphans: Vec<InvocationSpan>,
    /// Orphan counts indexed like [`OutcomeClass::ALL`]
    /// (`[ok, app_error, timeout, transport, shed]`).
    pub orphans_by_class: [u64; 5],
    /// Server spans whose trace id matched no client span (e.g. the
    /// abandoned earlier attempts of a client-side timeout, or another
    /// client sharing the gateway).
    pub server_unmatched: u64,
    /// Extra server spans beyond the first per joined trace (retries).
    pub extra_attempts: u64,
    /// The clock offset used for the cross-tier decomposition.
    pub offset: ClockOffset,
}

impl SpanJoin {
    /// Total orphaned client spans.
    pub fn orphaned(&self) -> u64 {
        self.orphans_by_class.iter().sum()
    }

    /// The `n` slowest joined traces by client end-to-end response time,
    /// worst first.
    pub fn slowest(&self, n: usize) -> Vec<&JoinedSpan> {
        let mut refs: Vec<&JoinedSpan> = self.joined.iter().collect();
        refs.sort_by(|a, b| {
            b.stages
                .response_s
                .partial_cmp(&a.stages.response_s)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        refs.truncate(n);
        refs
    }
}

fn class_index(c: OutcomeClass) -> usize {
    match c.error_index() {
        None => 0,
        Some(i) => i + 1,
    }
}

fn median(xs: &mut [f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    let n = xs.len();
    if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    }
}

/// Estimate the client↔server clock offset from matched pairs.
///
/// Only single-attempt pairs where both tiers report success are sampled:
/// retries and failures make the client exchange interval cover more than
/// one server residency, which breaks the midpoint argument.
fn estimate_offset(pairs: &[(&InvocationSpan, &ServerSpan, u64)]) -> ClockOffset {
    let mut offsets = Vec::new();
    let mut slacks = Vec::new();
    for (client, server, attempts) in pairs {
        if *attempts != 1
            || client.outcome != OutcomeClass::Ok
            || server.outcome != OutcomeClass::Ok
        {
            continue;
        }
        let client_mid = (client.picked_up_us as f64 + client.completed_us as f64) / 2.0;
        let server_mid = (server.accepted_us as f64 + server.flushed_us as f64) / 2.0;
        offsets.push(server_mid - client_mid);
        let client_width = client.completed_us.saturating_sub(client.picked_up_us) as f64;
        let server_width = server.flushed_us.saturating_sub(server.accepted_us) as f64;
        slacks.push(((client_width - server_width) / 2.0).max(0.0));
    }
    ClockOffset {
        pairs: offsets.len() as u64,
        offset_us: median(&mut offsets),
        error_us: median(&mut slacks),
    }
}

/// Estimate a local↔remote clock offset from explicit probe exchanges —
/// the same NTP midpoint argument as [`join_spans`], applied to protocol
/// pings instead of request spans. Each sample is a wall-clock triple
/// `(local_send_us, remote_us, local_recv_us)`: the remote peer's
/// timestamp should coincide with the midpoint of the local exchange
/// interval up to asymmetric network delay, so the offset (remote −
/// local) is the median of `remote − mid(send, recv)` and the residual
/// error is bounded by the median half round-trip. Used by the fleet
/// coordinator to measure agent↔coordinator skew before rebasing agent
/// span logs onto one fleet clock. Samples with `recv < send` (a clock
/// step mid-exchange) are discarded.
pub fn offset_from_probes(samples: &[(u64, u64, u64)]) -> ClockOffset {
    let mut offsets = Vec::new();
    let mut slacks = Vec::new();
    for &(send_us, remote_us, recv_us) in samples {
        if recv_us < send_us {
            continue;
        }
        let mid = (send_us as f64 + recv_us as f64) / 2.0;
        offsets.push(remote_us as f64 - mid);
        slacks.push((recv_us - send_us) as f64 / 2.0);
    }
    ClockOffset {
        pairs: offsets.len() as u64,
        offset_us: median(&mut offsets),
        error_us: median(&mut slacks),
    }
}

/// Join a client event stream against a server event stream by trace id.
///
/// Client spans joined to multiple server spans (retries) take the last
/// server attempt by handler-end time. Spans with `trace_id == 0` on
/// either side never match.
pub fn join_spans(client_events: &[TelemetryEvent], server_events: &[TelemetryEvent]) -> SpanJoin {
    use std::collections::HashMap;

    // trace id → server spans carrying it, in log order.
    let mut by_trace: HashMap<u64, Vec<&ServerSpan>> = HashMap::new();
    let mut server_total = 0u64;
    for event in server_events {
        if let TelemetryEvent::ServerSpan(s) = event {
            server_total += 1;
            if s.trace_id != 0 {
                by_trace.entry(s.trace_id).or_default().push(s);
            }
        }
    }

    let clients: Vec<&InvocationSpan> = client_events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Invocation(s) => Some(s),
            _ => None,
        })
        .collect();

    // First pass: match, pick the final attempt, estimate the offset.
    let mut matched: Vec<(&InvocationSpan, &ServerSpan, u64)> = Vec::new();
    let mut orphans: Vec<InvocationSpan> = Vec::new();
    let mut orphans_by_class = [0u64; 5];
    let mut matched_server = 0u64;
    for client in &clients {
        let candidates = (client.trace_id != 0).then(|| by_trace.get(&client.trace_id)).flatten();
        match candidates {
            Some(spans) => {
                let last = spans
                    .iter()
                    .max_by_key(|s| s.handler_end_us)
                    .expect("by_trace buckets are non-empty");
                matched_server += spans.len() as u64;
                matched.push((client, last, spans.len() as u64));
            }
            None => {
                orphans_by_class[class_index(client.outcome)] += 1;
                orphans.push((*client).clone());
            }
        }
    }
    let offset = estimate_offset(&matched);

    // Second pass: decompose under the estimated offset.
    let joined = matched
        .iter()
        .map(|(client, server, attempts)| JoinedSpan {
            client: (*client).clone(),
            server: (*server).clone(),
            attempts: *attempts,
            stages: CrossTierStages::compute(client, server, &offset),
        })
        .collect::<Vec<_>>();

    let extra_attempts: u64 = matched.iter().map(|(_, _, n)| n - 1).sum();
    SpanJoin {
        joined,
        orphans,
        orphans_by_class,
        server_unmatched: server_total - matched_server,
        extra_attempts,
        offset,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{derive_trace_id, ServerFault};

    /// Build a matched client/server pair with the given clock offset
    /// (server clock = client clock + offset) and symmetric one-way
    /// network delay.
    fn pair(
        seq: u64,
        offset_us: i64,
        net_us: u64,
        service_us: u64,
    ) -> (TelemetryEvent, TelemetryEvent) {
        let trace_id = derive_trace_id(99, seq);
        let dispatched = 1_000 + seq * 100_000;
        let picked_up = dispatched + 500;
        let accepted_client = picked_up + net_us; // client-clock instant
        let handler_start = accepted_client + 200;
        let handler_end = handler_start + service_us;
        let flushed = handler_end + 100;
        let completed = flushed + net_us;
        let to_server = |t: u64| (t as i64 + offset_us) as u64;
        let client = TelemetryEvent::Invocation(InvocationSpan {
            trace_id,
            seq,
            workload: 1,
            function_index: 0,
            scheduled_ms: 0,
            target_us: dispatched,
            dispatched_us: dispatched,
            picked_up_us: picked_up,
            completed_us: completed,
            service_ms: service_us as f64 / 1e3,
            outcome: OutcomeClass::Ok,
            cold_start: false,
            error: None,
        });
        let server = TelemetryEvent::ServerSpan(ServerSpan {
            trace_id,
            seq,
            worker: 0,
            accepted_us: to_server(accepted_client),
            dequeued_us: to_server(accepted_client + 50),
            handler_start_us: to_server(handler_start),
            handler_end_us: to_server(handler_end),
            flushed_us: to_server(flushed),
            queue_depth: 0,
            service_ms: service_us as f64 / 1e3,
            outcome: OutcomeClass::Ok,
            fault: None,
            cold_start: false,
        });
        (client, server)
    }

    fn logs(n: u64, offset_us: i64, net_us: u64) -> (Vec<TelemetryEvent>, Vec<TelemetryEvent>) {
        let mut client = Vec::new();
        let mut server = Vec::new();
        for seq in 0..n {
            let (c, s) = pair(seq, offset_us, net_us, 20_000);
            client.push(c);
            server.push(s);
        }
        (client, server)
    }

    #[test]
    fn probe_offset_recovers_injected_skew() {
        for injected in [-3_000_000i64, -47, 0, 512, 9_000_000] {
            // Symmetric exchanges with 400µs one-way delay plus one
            // outlier with a huge asymmetric delay the median must shrug
            // off, plus one backwards sample that must be discarded.
            let mut samples: Vec<(u64, u64, u64)> = (0..9u64)
                .map(|i| {
                    let send = 1_000_000 + i * 10_000;
                    let recv = send + 800;
                    let remote = ((send + 400) as i64 + injected) as u64;
                    (send, remote, recv)
                })
                .collect();
            samples.push((2_000_000, (2_500_000i64 + injected) as u64, 2_900_000));
            samples.push((5_000_000, 1, 4_000_000)); // recv < send: dropped
            let off = offset_from_probes(&samples);
            assert_eq!(off.pairs, 10);
            assert!(
                (off.offset_us - injected as f64).abs() <= off.error_us + 1e-6,
                "injected {injected}, estimated {} ± {}",
                off.offset_us,
                off.error_us
            );
            assert!(off.error_us <= 500.0, "median half-RTT bound: {}", off.error_us);
        }
        let empty = offset_from_probes(&[]);
        assert_eq!((empty.pairs, empty.offset_us, empty.error_us), (0, 0.0, 0.0));
    }

    #[test]
    fn clean_logs_join_completely() {
        let (client, server) = logs(20, 0, 300);
        let join = join_spans(&client, &server);
        assert_eq!(join.joined.len(), 20);
        assert_eq!(join.orphaned(), 0);
        assert_eq!(join.server_unmatched, 0);
        assert_eq!(join.extra_attempts, 0);
        assert_eq!(join.offset.pairs, 20);
    }

    #[test]
    fn offset_is_recovered_within_half_rtt() {
        for injected in [-5_000_000i64, -1_234, 0, 987, 3_000_000] {
            let (client, server) = logs(30, injected, 400);
            let join = join_spans(&client, &server);
            // Symmetric network: the midpoint estimator is exact up to
            // the bound it reports.
            assert!(
                (join.offset.offset_us - injected as f64).abs() <= join.offset.error_us + 1e-6,
                "injected {injected}, estimated {} ± {}",
                join.offset.offset_us,
                join.offset.error_us
            );
            // One-way delay 400µs + flush 100µs on one side → bound stays
            // small and sane.
            assert!(join.offset.error_us <= 500.0 + 1e-6);
        }
    }

    #[test]
    fn stages_are_nonnegative_and_sum_to_response_within_error() {
        for injected in [-2_000_000i64, 0, 2_000_000] {
            let (client, server) = logs(25, injected, 250);
            let join = join_spans(&client, &server);
            for j in &join.joined {
                let s = &j.stages;
                for (name, v) in [
                    ("lateness", s.lateness_s),
                    ("client_queue", s.client_queue_s),
                    ("net_out", s.net_out_s),
                    ("gateway", s.gateway_s),
                    ("service", s.service_s),
                    ("net_back", s.net_back_s),
                ] {
                    assert!(v >= 0.0, "{name} negative: {v}");
                }
                let err_s = 2.0 * join.offset.error_us / 1e6;
                assert!(
                    (s.stage_sum_s() - s.response_s).abs() <= err_s + 1e-9,
                    "sum {} vs response {} (err bound {err_s})",
                    s.stage_sum_s(),
                    s.response_s
                );
            }
        }
    }

    #[test]
    fn unmatched_client_spans_become_classified_orphans() {
        let (mut client, server) = logs(5, 0, 300);
        // A shed span (breaker fail-fast: never reached the gateway) and a
        // transport error (connect refused) with ids the server never saw.
        for (seq, outcome) in [(100u64, OutcomeClass::Shed), (101, OutcomeClass::Transport)] {
            client.push(TelemetryEvent::Invocation(InvocationSpan {
                trace_id: derive_trace_id(7, seq),
                seq,
                workload: 1,
                function_index: 0,
                scheduled_ms: 0,
                target_us: 0,
                dispatched_us: 0,
                picked_up_us: 10,
                completed_us: 20,
                service_ms: 0.0,
                outcome,
                cold_start: false,
                error: Some("down".into()),
            }));
        }
        let join = join_spans(&client, &server);
        assert_eq!(join.joined.len(), 5);
        assert_eq!(join.orphaned(), 2);
        assert_eq!(join.orphans_by_class, [0, 0, 0, 1, 1]);
        assert_eq!(join.orphans.len(), 2);
    }

    #[test]
    fn retries_take_the_last_server_attempt() {
        let (mut client, mut server) = logs(3, 0, 300);
        // Duplicate attempt for trace 0 with an *earlier* handler_end:
        // the join must keep the later (original) one.
        if let TelemetryEvent::ServerSpan(s0) = &server[0] {
            let mut early = s0.clone();
            early.accepted_us = 1;
            early.handler_start_us = 2;
            early.handler_end_us = 3;
            early.flushed_us = 4;
            early.outcome = OutcomeClass::Transport;
            early.fault = Some(ServerFault::Drop);
            server.push(TelemetryEvent::ServerSpan(early));
        } else {
            unreachable!()
        }
        // And an unmatched server span (another client's request).
        if let TelemetryEvent::ServerSpan(s0) = &server[1] {
            let mut foreign = s0.clone();
            foreign.trace_id = 0xF0F0;
            server.push(TelemetryEvent::ServerSpan(foreign));
        } else {
            unreachable!()
        }
        // Client log order should not matter for matching.
        client.reverse();
        let join = join_spans(&client, &server);
        assert_eq!(join.joined.len(), 3);
        assert_eq!(join.extra_attempts, 1);
        assert_eq!(join.server_unmatched, 1);
        let retried =
            join.joined.iter().find(|j| j.attempts == 2).expect("one trace has two attempts");
        assert_eq!(retried.server.outcome, OutcomeClass::Ok, "kept the later attempt");
    }

    #[test]
    fn zero_trace_ids_never_match() {
        let (mut client, mut server) = logs(2, 0, 300);
        for e in client.iter_mut().chain(server.iter_mut()) {
            match e {
                TelemetryEvent::Invocation(s) => s.trace_id = 0,
                TelemetryEvent::ServerSpan(s) => s.trace_id = 0,
                _ => {}
            }
        }
        let join = join_spans(&client, &server);
        assert!(join.joined.is_empty());
        assert_eq!(join.orphaned(), 2);
        assert_eq!(join.server_unmatched, 2);
    }

    #[test]
    fn slowest_orders_by_response_desc() {
        let (mut client, server) = logs(4, 0, 300);
        if let TelemetryEvent::Invocation(s) = &mut client[2] {
            s.completed_us += 5_000_000; // make seq 2 the worst trace
        }
        let join = join_spans(&client, &server);
        let worst = join.slowest(2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].client.seq, 2);
        assert!(worst[0].stages.response_s >= worst[1].stages.response_s);
    }
}

//! Post-hoc run reports from JSONL event logs.
//!
//! [`RunReport::from_events`] folds a telemetry event stream back into the
//! quantities the paper's fidelity argument rests on: the outcome
//! partition (completed + per-class errors must equal issued), a latency
//! decomposition separating pacer lateness, queue wait, backend service
//! time, and client/network overhead, and the per-minute offered vs
//! achieved series. Reports render as JSON (machine) or Markdown (human);
//! both are NaN-free so they survive `serde_json` round-trips.

use std::io::BufRead;

use serde::{Deserialize, Serialize};

use faasrail_stats::LogHistogram;

use crate::join::{join_spans, SpanJoin};
use crate::span::{InvocationSpan, OutcomeClass, RunInfo, RunSummary, TelemetryEvent};

/// Histogram plus exact sum, so reports can show a true mean alongside
/// approximate quantiles.
struct StatAcc {
    hist: LogHistogram,
    sum_s: f64,
}

impl StatAcc {
    fn new(hist: LogHistogram) -> Self {
        StatAcc { hist, sum_s: 0.0 }
    }

    fn latency() -> Self {
        Self::new(LogHistogram::latency_seconds())
    }

    fn record(&mut self, x_s: f64) {
        self.hist.record(x_s);
        self.sum_s += x_s;
    }

    fn stat(&self) -> LatencyStat {
        let count = self.hist.total();
        if count == 0 {
            return LatencyStat::default();
        }
        LatencyStat {
            count,
            mean_ms: self.sum_s / count as f64 * 1e3,
            p50_ms: self.hist.quantile(0.50) * 1e3,
            p95_ms: self.hist.quantile(0.95) * 1e3,
            p99_ms: self.hist.quantile(0.99) * 1e3,
            max_ms: self.hist.max() * 1e3,
        }
    }
}

/// Summary statistics for one latency component, in milliseconds. All
/// fields are `0.0` when `count == 0` (never NaN, so JSON stays lossless).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyStat {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub max_ms: f64,
}

/// Where the time went: per-stage latency statistics. `lateness`,
/// `queue_wait`, and `response` cover every span; `service` and `overhead`
/// only successful ones, since failed invocations report no meaningful
/// service time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct LatencyDecomposition {
    /// Pacer lateness: actual minus scheduled dispatch.
    pub lateness: LatencyStat,
    /// Dispatch → worker pickup.
    pub queue_wait: LatencyStat,
    /// Backend-reported pure execution time (successful spans).
    pub service: LatencyStat,
    /// Pickup → completion time beyond service (successful spans).
    pub overhead: LatencyStat,
    /// Dispatch → completion.
    pub response: LatencyStat,
}

/// Cross-tier latency decomposition built from joined client+server
/// spans: where the time went *across the wire*, not just inside the
/// client. `lateness`, `client_queue`, and `response` come from the
/// client clock; `gateway` and `service` from the server clock; `net_out`
/// and `net_back` bridge the two using the estimated offset.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossTierDecomposition {
    /// Pacer lateness: actual minus scheduled dispatch.
    pub lateness: LatencyStat,
    /// Dispatch → client worker pickup.
    pub client_queue: LatencyStat,
    /// Client worker pickup → gateway accept (outbound network + connect).
    pub net_out: LatencyStat,
    /// Gateway accept → handler start (connection queue + head read).
    pub gateway: LatencyStat,
    /// Handler start → handler end (backend execution).
    pub service: LatencyStat,
    /// Handler end → client completion (flush + return network path).
    pub net_back: LatencyStat,
    /// Client-observed end-to-end response of joined spans.
    pub response: LatencyStat,
}

/// Summary of a client↔server span join, embedded in [`RunReport`] when a
/// server log is supplied.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct CrossTierReport {
    /// Client spans matched to a server span by trace id.
    pub joined: u64,
    /// Client spans with no server counterpart, total and by class.
    /// Sheds and never-connected transport errors are *expected* here:
    /// the gateway rejects shed connections before reading the request.
    pub orphaned: u64,
    pub orphaned_ok: u64,
    pub orphaned_app_errors: u64,
    pub orphaned_timeouts: u64,
    pub orphaned_transport: u64,
    pub orphaned_shed: u64,
    /// Server spans matched by no client span.
    pub server_unmatched: u64,
    /// Extra server attempts beyond one per joined trace (client retries).
    pub extra_attempts: u64,
    /// Estimated server−client clock offset, microseconds.
    pub clock_offset_us: f64,
    /// Error bound on the offset (median half-RTT), microseconds.
    pub clock_offset_error_us: f64,
    /// Exchanges the offset was estimated from.
    pub clock_offset_pairs: u64,
    pub decomposition: CrossTierDecomposition,
}

impl CrossTierReport {
    /// Fold a span join into report statistics.
    pub fn from_join(join: &SpanJoin) -> CrossTierReport {
        let mut lateness = StatAcc::new(LogHistogram::new(1e-6, 60.0, 1.05));
        let mut client_queue = StatAcc::latency();
        let mut net_out = StatAcc::latency();
        let mut gateway = StatAcc::latency();
        let mut service = StatAcc::latency();
        let mut net_back = StatAcc::latency();
        let mut response = StatAcc::latency();
        for j in &join.joined {
            lateness.record(j.stages.lateness_s);
            client_queue.record(j.stages.client_queue_s);
            net_out.record(j.stages.net_out_s);
            gateway.record(j.stages.gateway_s);
            service.record(j.stages.service_s);
            net_back.record(j.stages.net_back_s);
            response.record(j.stages.response_s);
        }
        let [ok, app, timeout, transport, shed] = join.orphans_by_class;
        CrossTierReport {
            joined: join.joined.len() as u64,
            orphaned: join.orphaned(),
            orphaned_ok: ok,
            orphaned_app_errors: app,
            orphaned_timeouts: timeout,
            orphaned_transport: transport,
            orphaned_shed: shed,
            server_unmatched: join.server_unmatched,
            extra_attempts: join.extra_attempts,
            clock_offset_us: join.offset.offset_us,
            clock_offset_error_us: join.offset.error_us,
            clock_offset_pairs: join.offset.pairs,
            decomposition: CrossTierDecomposition {
                lateness: lateness.stat(),
                client_queue: client_queue.stat(),
                net_out: net_out.stat(),
                gateway: gateway.stat(),
                service: service.stat(),
                net_back: net_back.stat(),
                response: response.stat(),
            },
        }
    }
}

/// A full run report reconstructed from a telemetry event stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Run configuration, if the log carried a `run_start` event.
    pub run: Option<RunInfo>,
    /// Final totals, if the log carried a `run_end` event.
    pub end: Option<RunSummary>,
    /// Invocation spans seen (the log's own count of issued requests).
    pub issued: u64,
    pub completed: u64,
    pub errors: u64,
    pub app_errors: u64,
    pub timeouts: u64,
    pub transport_errors: u64,
    pub shed: u64,
    pub cold_starts: u64,
    pub decomposition: LatencyDecomposition,
    /// Cross-tier join summary, present when a server trace log was
    /// merged in (`RunReport::with_server_events`).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub cross_tier: Option<CrossTierReport>,
    /// Spans per scheduled experiment minute (offered load).
    pub issued_per_minute: Vec<u64>,
    /// Successful spans per scheduled minute (achieved load).
    pub completed_per_minute: Vec<u64>,
    /// Failed spans per scheduled minute.
    pub errors_per_minute: Vec<u64>,
    /// Fleet reassignment grants seen in the event stream (0 for
    /// single-process runs).
    #[serde(default)]
    pub reassignments: u64,
    /// Build provenance of the binary that folded this report (git sha,
    /// crate version, compiler). `None` only for reports deserialized
    /// from logs predating the field.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub build: Option<crate::build::BuildInfo>,
}

fn bump(v: &mut Vec<u64>, minute: usize) {
    if v.len() <= minute {
        v.resize(minute + 1, 0);
    }
    v[minute] += 1;
}

impl RunReport {
    /// Fold an event stream into a report. Order-insensitive apart from
    /// `run_start`/`run_end`, where the last one seen wins.
    pub fn from_events<'a, I>(events: I) -> RunReport
    where
        I: IntoIterator<Item = &'a TelemetryEvent>,
    {
        let mut report =
            RunReport { build: Some(crate::build::BuildInfo::current()), ..RunReport::default() };
        let mut lateness = StatAcc::new(LogHistogram::new(1e-6, 60.0, 1.05));
        let mut queue_wait = StatAcc::latency();
        let mut service = StatAcc::latency();
        let mut overhead = StatAcc::latency();
        let mut response = StatAcc::latency();

        for event in events {
            match event {
                TelemetryEvent::RunStart(info) => report.run = Some(info.clone()),
                TelemetryEvent::RunEnd(summary) => report.end = Some(*summary),
                TelemetryEvent::Invocation(span) => {
                    report.tally(span);
                    lateness.record(span.lateness_s());
                    queue_wait.record(span.queue_wait_s());
                    response.record(span.response_s());
                    if span.outcome == OutcomeClass::Ok {
                        service.record(span.service_s());
                        overhead.record(span.overhead_s());
                    }
                }
                // Server spans live in server trace logs; the client-side
                // report ignores them (see `with_server_events` for the
                // cross-tier join).
                TelemetryEvent::ServerSpan(_) => {}
                TelemetryEvent::Reassign(_) => report.reassignments += 1,
            }
        }

        report.decomposition = LatencyDecomposition {
            lateness: lateness.stat(),
            queue_wait: queue_wait.stat(),
            service: service.stat(),
            overhead: overhead.stat(),
            response: response.stat(),
        };
        report
    }

    /// Build a report from a client event stream merged with a server
    /// trace log: the client-only report plus the cross-tier join. Also
    /// returns the join itself so callers can inspect individual traces
    /// (`--slowest`).
    pub fn with_server_events(
        client_events: &[TelemetryEvent],
        server_events: &[TelemetryEvent],
    ) -> (RunReport, SpanJoin) {
        let mut report = RunReport::from_events(client_events.iter());
        let join = join_spans(client_events, server_events);
        report.cross_tier = Some(CrossTierReport::from_join(&join));
        (report, join)
    }

    fn tally(&mut self, span: &InvocationSpan) {
        self.issued += 1;
        if span.cold_start {
            self.cold_starts += 1;
        }
        let minute = span.scheduled_minute();
        bump(&mut self.issued_per_minute, minute);
        match span.outcome {
            OutcomeClass::Ok => {
                self.completed += 1;
                bump(&mut self.completed_per_minute, minute);
                return;
            }
            OutcomeClass::AppError => self.app_errors += 1,
            OutcomeClass::Timeout => self.timeouts += 1,
            OutcomeClass::Transport => self.transport_errors += 1,
            OutcomeClass::Shed => self.shed += 1,
        }
        self.errors += 1;
        bump(&mut self.errors_per_minute, minute);
    }

    /// Render as a Markdown document.
    pub fn to_markdown(&self) -> String {
        let mut out = String::with_capacity(2048);
        out.push_str("# FaaSRail run report\n\n");

        if let Some(run) = &self.run {
            out.push_str("## Run\n\n");
            out.push_str(&format!(
                "- requests scheduled: {}\n- duration: {} min\n- workers: {}\n- pacing: {} (compression {}x)\n\n",
                run.requests, run.duration_minutes, run.workers, run.pacing, run.compression,
            ));
        }

        out.push_str("## Outcomes\n\n");
        out.push_str("| outcome | count | share |\n|---|---:|---:|\n");
        let share = |n: u64| {
            if self.issued == 0 {
                "-".to_string()
            } else {
                format!("{:.2}%", n as f64 / self.issued as f64 * 100.0)
            }
        };
        for (label, n) in [
            ("issued", self.issued),
            ("completed", self.completed),
            ("app errors", self.app_errors),
            ("timeouts", self.timeouts),
            ("transport errors", self.transport_errors),
            ("shed", self.shed),
            ("cold starts", self.cold_starts),
        ] {
            out.push_str(&format!("| {label} | {n} | {} |\n", share(n)));
        }
        out.push('\n');

        out.push_str("## Latency decomposition\n\n");
        out.push_str("| stage | count | mean | p50 | p95 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n");
        for (label, s) in [
            ("pacer lateness", self.decomposition.lateness),
            ("queue wait", self.decomposition.queue_wait),
            ("service", self.decomposition.service),
            ("network overhead", self.decomposition.overhead),
            ("response", self.decomposition.response),
        ] {
            out.push_str(&format!(
                "| {label} | {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms |\n",
                s.count, s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms,
            ));
        }
        out.push('\n');

        if let Some(ct) = &self.cross_tier {
            out.push_str("## Cross-tier trace join\n\n");
            out.push_str(&format!(
                "- joined: {} · orphaned: {} (ok {}, app {}, timeout {}, transport {}, shed {}) · server-unmatched: {} · retry attempts: {}\n",
                ct.joined,
                ct.orphaned,
                ct.orphaned_ok,
                ct.orphaned_app_errors,
                ct.orphaned_timeouts,
                ct.orphaned_transport,
                ct.orphaned_shed,
                ct.server_unmatched,
                ct.extra_attempts,
            ));
            out.push_str(&format!(
                "- clock offset (server−client): {:.1} µs ± {:.1} µs over {} exchanges\n\n",
                ct.clock_offset_us, ct.clock_offset_error_us, ct.clock_offset_pairs,
            ));
            out.push_str("| stage | count | mean | p50 | p95 | p99 | max |\n|---|---:|---:|---:|---:|---:|---:|\n");
            for (label, s) in [
                ("pacer lateness", ct.decomposition.lateness),
                ("client queue", ct.decomposition.client_queue),
                ("network out", ct.decomposition.net_out),
                ("gateway queue", ct.decomposition.gateway),
                ("service", ct.decomposition.service),
                ("network back", ct.decomposition.net_back),
                ("response", ct.decomposition.response),
            ] {
                out.push_str(&format!(
                    "| {label} | {} | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms | {:.2} ms |\n",
                    s.count, s.mean_ms, s.p50_ms, s.p95_ms, s.p99_ms, s.max_ms,
                ));
            }
            out.push('\n');
        }

        out.push_str("## Per-minute offered vs achieved\n\n");
        out.push_str("| minute | offered | achieved | errors |\n|---:|---:|---:|---:|\n");
        let minutes = self
            .issued_per_minute
            .len()
            .max(self.completed_per_minute.len())
            .max(self.errors_per_minute.len());
        for m in 0..minutes {
            let get = |v: &Vec<u64>| v.get(m).copied().unwrap_or(0);
            out.push_str(&format!(
                "| {m} | {} | {} | {} |\n",
                get(&self.issued_per_minute),
                get(&self.completed_per_minute),
                get(&self.errors_per_minute),
            ));
        }

        if let Some(end) = &self.end {
            out.push_str(&format!(
                "\n## Totals (from run_end)\n\n- issued: {}\n- completed: {}\n- errors: {}\n- aborted: {}\n- wall time: {:.2} s\n",
                end.issued,
                end.completed,
                end.errors,
                end.aborted,
                end.wall_us as f64 / 1e6,
            ));
        }
        out
    }
}

/// Merge several event logs (one per fleet agent, or repeated `--events`
/// files) into a single coherent stream for [`RunReport::from_events`]:
///
/// * the `run_start` headers combine (requests and workers sum, duration
///   is the max, pacing/compression from the first log that has one);
/// * invocation spans are **deduplicated by trace id** — the first
///   occurrence wins; spans with `trace_id == 0` (untraced) are never
///   deduplicated — then **ordered by timestamp** (dispatch instant, with
///   trace id and sequence as tie-breakers), so overlapping or partially
///   overlapping agent logs fold into one schedule-ordered stream;
/// * server spans pass through, ordered by accept time;
/// * the `run_end` trailers combine (counts sum, `aborted` is sticky,
///   wall time is the max — the fleet run lasts as long as its slowest
///   agent).
///
/// Timestamps are taken as directly comparable: fleet agents start on one
/// synchronized epoch, so their run-relative clocks agree up to the skew
/// the coordinator already rebased out.
pub fn merge_event_logs<L: AsRef<[TelemetryEvent]>>(logs: &[L]) -> Vec<TelemetryEvent> {
    use std::collections::HashSet;

    let mut run: Option<RunInfo> = None;
    let mut end: Option<RunSummary> = None;
    let mut seen = HashSet::new();
    let mut spans: Vec<InvocationSpan> = Vec::new();
    let mut server_spans = Vec::new();
    let mut reassigns = Vec::new();
    for log in logs {
        for event in log.as_ref() {
            match event {
                TelemetryEvent::RunStart(info) => match &mut run {
                    None => run = Some(info.clone()),
                    Some(acc) => {
                        acc.requests += info.requests;
                        acc.workers += info.workers;
                        acc.duration_minutes = acc.duration_minutes.max(info.duration_minutes);
                    }
                },
                TelemetryEvent::RunEnd(summary) => match &mut end {
                    None => end = Some(*summary),
                    Some(acc) => {
                        acc.issued += summary.issued;
                        acc.completed += summary.completed;
                        acc.errors += summary.errors;
                        acc.aborted |= summary.aborted;
                        acc.wall_us = acc.wall_us.max(summary.wall_us);
                    }
                },
                TelemetryEvent::Invocation(span) => {
                    if span.trace_id == 0 || seen.insert(span.trace_id) {
                        spans.push(span.clone());
                    }
                }
                TelemetryEvent::ServerSpan(span) => server_spans.push(span.clone()),
                TelemetryEvent::Reassign(span) => reassigns.push(span.clone()),
            }
        }
    }
    spans.sort_by_key(|s| (s.dispatched_us, s.trace_id, s.seq));
    server_spans.sort_by_key(|s| (s.accepted_us, s.trace_id, s.seq));
    reassigns.sort_by_key(|r| (r.at_us, r.work, r.to_shard));

    let mut out = Vec::with_capacity(spans.len() + server_spans.len() + reassigns.len() + 2);
    out.extend(run.map(TelemetryEvent::RunStart));
    out.extend(spans.into_iter().map(TelemetryEvent::Invocation));
    out.extend(server_spans.into_iter().map(TelemetryEvent::ServerSpan));
    out.extend(reassigns.into_iter().map(TelemetryEvent::Reassign));
    out.extend(end.map(TelemetryEvent::RunEnd));
    out
}

/// The `n` slowest client spans by end-to-end response time, worst
/// first — the client-only counterpart of [`SpanJoin::slowest`] for runs
/// without a server trace log.
pub fn slowest_client_spans(events: &[TelemetryEvent], n: usize) -> Vec<&InvocationSpan> {
    let mut spans: Vec<&InvocationSpan> = events
        .iter()
        .filter_map(|e| match e {
            TelemetryEvent::Invocation(s) => Some(s),
            _ => None,
        })
        .collect();
    spans.sort_by(|a, b| {
        b.response_s().partial_cmp(&a.response_s()).unwrap_or(std::cmp::Ordering::Equal)
    });
    spans.truncate(n);
    spans
}

/// Parse a JSONL event log, skipping blank lines. Errors carry the
/// 1-based line number of the offending line.
pub fn parse_jsonl<R: BufRead>(reader: R) -> Result<Vec<TelemetryEvent>, String> {
    let mut events = Vec::new();
    for (i, line) in reader.lines().enumerate() {
        let line = line.map_err(|e| format!("line {}: read error: {e}", i + 1))?;
        if line.trim().is_empty() {
            continue;
        }
        let event: TelemetryEvent =
            serde_json::from_str(&line).map_err(|e| format!("line {}: {e}", i + 1))?;
        events.push(event);
    }
    Ok(events)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn span(seq: u64, minute: u64, outcome: OutcomeClass) -> TelemetryEvent {
        TelemetryEvent::Invocation(InvocationSpan {
            trace_id: crate::span::derive_trace_id(11, seq),
            seq,
            workload: 1,
            function_index: 0,
            scheduled_ms: minute * 60_000 + 10,
            target_us: 1_000,
            dispatched_us: 2_000,
            picked_up_us: 3_000,
            completed_us: 23_000,
            service_ms: 15.0,
            outcome,
            cold_start: seq == 0,
            error: (outcome != OutcomeClass::Ok).then(|| "boom".to_string()),
        })
    }

    #[test]
    fn report_partitions_outcomes_exactly() {
        let events = vec![
            span(0, 0, OutcomeClass::Ok),
            span(1, 0, OutcomeClass::Ok),
            span(2, 1, OutcomeClass::AppError),
            span(3, 1, OutcomeClass::Timeout),
            span(4, 2, OutcomeClass::Transport),
            span(5, 2, OutcomeClass::Shed),
        ];
        let r = RunReport::from_events(&events);
        assert_eq!(r.issued, 6);
        assert_eq!(r.completed, 2);
        assert_eq!(r.errors, 4);
        assert_eq!(r.completed + r.app_errors + r.timeouts + r.transport_errors + r.shed, r.issued);
        assert_eq!(r.cold_starts, 1);
        assert_eq!(r.issued_per_minute, [2, 2, 2]);
        assert_eq!(r.completed_per_minute, [2]);
        assert_eq!(r.errors_per_minute, [0, 2, 2]);
        // service/overhead only cover successful spans.
        assert_eq!(r.decomposition.service.count, 2);
        assert_eq!(r.decomposition.response.count, 6);
    }

    #[test]
    fn empty_report_is_nan_free_json() {
        let r = RunReport::from_events(std::iter::empty());
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("null") || r.run.is_none(), "{json}");
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(r, back);
        assert_eq!(back.decomposition.response.mean_ms, 0.0);
    }

    #[test]
    fn decomposition_math_matches_span_helpers() {
        let events = vec![span(0, 0, OutcomeClass::Ok)];
        let r = RunReport::from_events(&events);
        // dispatched 2000µs vs target 1000µs → 1 ms late.
        assert!((r.decomposition.lateness.mean_ms - 1.0).abs() < 1e-9);
        // picked up 3000µs → 1 ms queue wait.
        assert!((r.decomposition.queue_wait.mean_ms - 1.0).abs() < 1e-9);
        // completed 23000µs, picked up 3000µs, service 15 ms → 5 ms overhead.
        assert!((r.decomposition.overhead.mean_ms - 5.0).abs() < 1e-9);
        // response = 21 ms.
        assert!((r.decomposition.response.mean_ms - 21.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_roundtrip_and_errors() {
        let events = vec![
            TelemetryEvent::RunStart(RunInfo {
                requests: 2,
                duration_minutes: 1,
                workers: 1,
                pacing: "unpaced".to_string(),
                compression: 1.0,
            }),
            span(0, 0, OutcomeClass::Ok),
            TelemetryEvent::RunEnd(RunSummary {
                issued: 1,
                completed: 1,
                errors: 0,
                aborted: false,
                wall_us: 42,
            }),
        ];
        let mut log = String::new();
        for e in &events {
            log.push_str(&serde_json::to_string(e).unwrap());
            log.push('\n');
        }
        log.push('\n'); // trailing blank line is fine
        let parsed = parse_jsonl(Cursor::new(log)).unwrap();
        assert_eq!(parsed, events);
        let r = RunReport::from_events(&parsed);
        assert!(r.run.is_some());
        assert_eq!(r.end.unwrap().issued, 1);

        let err = parse_jsonl(Cursor::new("{\"event\":\"run_end\"\n")).unwrap_err();
        assert!(err.starts_with("line 1:"), "{err}");
    }

    fn server_for(client: &TelemetryEvent) -> TelemetryEvent {
        let TelemetryEvent::Invocation(c) = client else { panic!("not a span") };
        TelemetryEvent::ServerSpan(crate::span::ServerSpan {
            trace_id: c.trace_id,
            seq: c.seq,
            worker: 0,
            accepted_us: c.picked_up_us + 100,
            dequeued_us: c.picked_up_us + 150,
            handler_start_us: c.picked_up_us + 200,
            handler_end_us: c.completed_us - 200,
            flushed_us: c.completed_us - 100,
            queue_depth: 1,
            service_ms: c.service_ms,
            outcome: c.outcome,
            fault: None,
            cold_start: false,
        })
    }

    #[test]
    fn cross_tier_report_counts_joins_and_orphans() {
        let client = vec![
            span(0, 0, OutcomeClass::Ok),
            span(1, 0, OutcomeClass::Ok),
            span(2, 0, OutcomeClass::Shed),
        ];
        // Server saw only the two non-shed spans.
        let server = vec![server_for(&client[0]), server_for(&client[1])];
        let (report, join) = RunReport::with_server_events(&client, &server);
        let ct = report.cross_tier.as_ref().unwrap();
        assert_eq!(ct.joined, 2);
        assert_eq!(ct.orphaned, 1);
        assert_eq!(ct.orphaned_shed, 1);
        assert_eq!(ct.server_unmatched, 0);
        assert_eq!(ct.decomposition.response.count, 2);
        assert_eq!(join.joined.len(), 2);
        // Report JSON roundtrips with the optional section present.
        let json = serde_json::to_string(&report).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
        // And the markdown gains the join section.
        let md = report.to_markdown();
        assert!(md.contains("## Cross-tier trace join"), "{md}");
        assert!(md.contains("| gateway queue |"), "{md}");
    }

    #[test]
    fn client_only_report_omits_cross_tier_field() {
        let r = RunReport::from_events(&[span(0, 0, OutcomeClass::Ok)]);
        assert!(r.cross_tier.is_none());
        let json = serde_json::to_string(&r).unwrap();
        assert!(!json.contains("cross_tier"), "{json}");
        assert!(!r.to_markdown().contains("Cross-tier"), "no join section without server log");
    }

    #[test]
    fn merge_event_logs_dedupes_and_orders() {
        let header = |requests| {
            TelemetryEvent::RunStart(RunInfo {
                requests,
                duration_minutes: 2,
                workers: 4,
                pacing: "unpaced".to_string(),
                compression: 1.0,
            })
        };
        let trailer = |issued, aborted, wall_us| {
            TelemetryEvent::RunEnd(RunSummary {
                issued,
                completed: issued,
                errors: 0,
                aborted,
                wall_us,
            })
        };
        // Agent logs overlap on seq 1 (retransmitted span, same trace id).
        let a = vec![
            header(2),
            span(0, 0, OutcomeClass::Ok),
            span(1, 0, OutcomeClass::Ok),
            trailer(2, false, 100),
        ];
        let b = vec![
            header(3),
            span(1, 0, OutcomeClass::Ok),
            span(2, 1, OutcomeClass::Timeout),
            trailer(2, true, 250),
        ];

        let merged = merge_event_logs(&[a.clone(), b.clone()]);
        let spans: Vec<&InvocationSpan> = merged
            .iter()
            .filter_map(|e| match e {
                TelemetryEvent::Invocation(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(spans.len(), 3, "duplicate trace id folded away");
        assert!(spans.windows(2).all(|w| w[0].dispatched_us <= w[1].dispatched_us));

        match merged.first() {
            Some(TelemetryEvent::RunStart(info)) => {
                assert_eq!(info.requests, 5);
                assert_eq!(info.workers, 8);
                assert_eq!(info.duration_minutes, 2);
            }
            other => panic!("merged log must open with run_start, got {other:?}"),
        }
        match merged.last() {
            Some(TelemetryEvent::RunEnd(end)) => {
                assert_eq!(end.issued, 4);
                assert!(end.aborted, "aborted is sticky across agents");
                assert_eq!(end.wall_us, 250, "fleet wall time is the slowest agent's");
            }
            other => panic!("merged log must close with run_end, got {other:?}"),
        }

        // Merge order cannot change the span set.
        let flipped = merge_event_logs(&[b, a]);
        let count = |events: &[TelemetryEvent]| {
            events.iter().filter(|e| matches!(e, TelemetryEvent::Invocation(_))).count()
        };
        assert_eq!(count(&merged), count(&flipped));

        // The merged stream feeds the normal report path.
        let r = RunReport::from_events(&merged);
        assert_eq!(r.issued, 3);
        assert_eq!(r.completed, 2);
        assert_eq!(r.timeouts, 1);
    }

    #[test]
    fn merge_event_logs_keeps_untraced_spans() {
        let mut s0 = span(0, 0, OutcomeClass::Ok);
        let mut s1 = span(1, 0, OutcomeClass::Ok);
        for s in [&mut s0, &mut s1] {
            if let TelemetryEvent::Invocation(inner) = s {
                inner.trace_id = 0;
            }
        }
        let merged = merge_event_logs(&[vec![s0], vec![s1]]);
        assert_eq!(merged.len(), 2, "zero trace ids never dedupe");
    }

    #[test]
    fn slowest_client_spans_orders_worst_first() {
        let mut events = vec![
            span(0, 0, OutcomeClass::Ok),
            span(1, 0, OutcomeClass::Ok),
            span(2, 0, OutcomeClass::Ok),
        ];
        if let TelemetryEvent::Invocation(s) = &mut events[1] {
            s.completed_us += 1_000_000;
        }
        let worst = slowest_client_spans(&events, 2);
        assert_eq!(worst.len(), 2);
        assert_eq!(worst[0].seq, 1);
        assert!(worst[0].response_s() >= worst[1].response_s());
    }

    #[test]
    fn markdown_has_all_sections() {
        let events = vec![span(0, 0, OutcomeClass::Ok), span(1, 1, OutcomeClass::Timeout)];
        let md = RunReport::from_events(&events).to_markdown();
        assert!(md.contains("## Outcomes"), "{md}");
        assert!(md.contains("## Latency decomposition"), "{md}");
        assert!(md.contains("## Per-minute offered vs achieved"), "{md}");
        assert!(md.contains("| pacer lateness |"), "{md}");
        assert!(md.contains("| 1 | 1 | 0 | 1 |"), "{md}");
    }
}

//! Pluggable event sinks.
//!
//! The replayer and simulator emit [`TelemetryEvent`]s through a
//! `&dyn EventSink`, so the observability cost is chosen by the caller:
//! [`NullSink`] for none, [`RingSink`] for bounded in-memory capture
//! (tests, live inspection), [`JsonlSink`] for a buffered line-delimited
//! JSON log on disk. Sinks must be `Sync` — workers emit concurrently.

use std::collections::VecDeque;
use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::Mutex;

use crate::span::TelemetryEvent;

/// A destination for telemetry events. `emit` is called from replay worker
/// threads on the hot path; implementations should be cheap and must never
/// panic (a broken sink must not kill a run).
pub trait EventSink: Send + Sync {
    fn emit(&self, event: &TelemetryEvent);

    /// Whether this sink observes events at all. Hot loops may skip
    /// constructing per-invocation events entirely when this is false —
    /// the only implementation that returns false is [`NullSink`].
    fn enabled(&self) -> bool {
        true
    }

    /// Flush any buffered state. Called once at the end of a run.
    fn flush(&self) {}
}

/// Discards every event. The zero-overhead default.
#[derive(Debug, Default, Clone, Copy)]
pub struct NullSink;

impl EventSink for NullSink {
    fn emit(&self, _event: &TelemetryEvent) {}

    fn enabled(&self) -> bool {
        false
    }
}

/// Bounded in-memory buffer keeping the most recent events; older events
/// are evicted (and counted) once capacity is reached.
pub struct RingSink {
    cap: usize,
    buf: Mutex<VecDeque<TelemetryEvent>>,
    dropped: AtomicU64,
}

impl RingSink {
    /// `cap` must be non-zero.
    pub fn with_capacity(cap: usize) -> Self {
        assert!(cap > 0, "RingSink capacity must be non-zero");
        RingSink { cap, buf: Mutex::new(VecDeque::with_capacity(cap)), dropped: AtomicU64::new(0) }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TelemetryEvent> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Events evicted to make room.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl EventSink for RingSink {
    fn emit(&self, event: &TelemetryEvent) {
        let mut buf = self.buf.lock();
        if buf.len() == self.cap {
            buf.pop_front();
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        buf.push_back(event.clone());
    }
}

/// Buffered JSON-lines writer: one event per line, flushed on demand and on
/// drop. Write errors are counted, not propagated — a full disk degrades
/// the log, never the run.
pub struct JsonlSink<W: Write + Send> {
    inner: Mutex<BufWriter<W>>,
    write_errors: AtomicU64,
    autoflush: bool,
}

impl JsonlSink<File> {
    /// Create (truncating) an event log at `path`.
    pub fn create<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<File>> {
        Ok(JsonlSink::new(File::create(path)?))
    }

    /// Create (truncating) an autoflushing event log at `path`. Use for
    /// long-lived server processes that may be killed rather than shut
    /// down: every line reaches the OS immediately, so the log survives
    /// `SIGKILL` at the cost of one `write(2)` per event.
    pub fn create_autoflush<P: AsRef<Path>>(path: P) -> io::Result<JsonlSink<File>> {
        let mut sink = JsonlSink::new(File::create(path)?);
        sink.autoflush = true;
        Ok(sink)
    }
}

impl<W: Write + Send> JsonlSink<W> {
    pub fn new(writer: W) -> Self {
        JsonlSink {
            inner: Mutex::new(BufWriter::new(writer)),
            write_errors: AtomicU64::new(0),
            autoflush: false,
        }
    }

    /// Serialization/IO failures swallowed so far.
    pub fn write_errors(&self) -> u64 {
        self.write_errors.load(Ordering::Relaxed)
    }
}

impl<W: Write + Send> EventSink for JsonlSink<W> {
    fn emit(&self, event: &TelemetryEvent) {
        let mut w = self.inner.lock();
        let ok = serde_json::to_writer(&mut *w, event).is_ok()
            && w.write_all(b"\n").is_ok()
            && (!self.autoflush || w.flush().is_ok());
        if !ok {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn flush(&self) {
        if self.inner.lock().flush().is_err() {
            self.write_errors.fetch_add(1, Ordering::Relaxed);
        }
    }
}

impl<W: Write + Send> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        let _ = self.inner.lock().flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OutcomeClass, RunSummary};

    fn end(issued: u64) -> TelemetryEvent {
        TelemetryEvent::RunEnd(RunSummary {
            issued,
            completed: issued,
            errors: 0,
            aborted: false,
            wall_us: 1,
        })
    }

    #[test]
    fn ring_sink_keeps_most_recent_and_counts_evictions() {
        let sink = RingSink::with_capacity(3);
        assert!(sink.is_empty());
        for i in 0..5 {
            sink.emit(&end(i));
        }
        assert_eq!(sink.len(), 3);
        assert_eq!(sink.dropped(), 2);
        let kept: Vec<u64> = sink
            .events()
            .iter()
            .map(|e| match e {
                TelemetryEvent::RunEnd(s) => s.issued,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(kept, [2, 3, 4]);
    }

    #[test]
    fn jsonl_sink_writes_one_event_per_line() {
        let sink = JsonlSink::new(Vec::new());
        sink.emit(&end(1));
        sink.emit(&end(2));
        sink.flush();
        assert_eq!(sink.write_errors(), 0);
        // `JsonlSink` implements `Drop`, so the writer can't be moved out;
        // swap it for an empty one instead.
        let writer = std::mem::replace(&mut *sink.inner.lock(), BufWriter::new(Vec::new()));
        let bytes = writer.into_inner().unwrap();
        let text = String::from_utf8(bytes).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let e: TelemetryEvent = serde_json::from_str(line).unwrap();
            assert!(matches!(e, TelemetryEvent::RunEnd(_)));
        }
    }

    #[test]
    fn jsonl_sink_counts_write_errors_instead_of_panicking() {
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> io::Result<usize> {
                Err(io::Error::other("disk full"))
            }
            fn flush(&mut self) -> io::Result<()> {
                Err(io::Error::other("disk full"))
            }
        }
        let sink = JsonlSink::new(Broken);
        // BufWriter buffers the first small write; force IO with flush.
        sink.emit(&end(1));
        sink.flush();
        assert!(sink.write_errors() >= 1);
    }

    #[test]
    fn autoflush_sink_lines_are_durable_before_flush_or_drop() {
        let path = std::env::temp_dir().join(format!(
            "faasrail-autoflush-{}-{:?}.jsonl",
            std::process::id(),
            std::thread::current().id()
        ));
        let sink = JsonlSink::create_autoflush(&path).unwrap();
        sink.emit(&end(1));
        sink.emit(&end(2));
        // No flush(), and the sink is still alive: the lines must already
        // be on disk (this is what keeps server logs parseable after
        // SIGKILL, where Drop never runs).
        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "{text:?}");
        for line in lines {
            let _: TelemetryEvent = serde_json::from_str(line).unwrap();
        }
        drop(sink);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn null_sink_is_sync_and_silent() {
        fn assert_sink<S: EventSink>(_s: &S) {}
        let s = NullSink;
        assert_sink(&s);
        s.emit(&TelemetryEvent::Invocation(crate::span::InvocationSpan {
            trace_id: 0,
            seq: 0,
            workload: 0,
            function_index: 0,
            scheduled_ms: 0,
            target_us: 0,
            dispatched_us: 0,
            picked_up_us: 0,
            completed_us: 0,
            service_ms: 0.0,
            outcome: OutcomeClass::Ok,
            cold_start: false,
            error: None,
        }));
        s.flush();
    }
}

//! Captures build provenance at compile time so every artifact the
//! runtime emits (run reports, fleet reports, bench reports, `/healthz`)
//! is attributable to a commit without shelling out at runtime.
//!
//! Dependency-free: the git HEAD is read straight from `.git/` rather
//! than via a `git` subprocess, so the build works in containers without
//! git installed.

use std::env;
use std::fs;
use std::path::{Path, PathBuf};
use std::process::Command;

fn main() {
    println!(
        "cargo:rustc-env=FAASRAIL_GIT_SHA={}",
        git_sha().unwrap_or_else(|| "unknown".to_string())
    );
    println!(
        "cargo:rustc-env=FAASRAIL_RUSTC_VERSION={}",
        rustc_version().unwrap_or_else(|| "unknown".to_string())
    );
}

/// Resolve the current commit sha by reading `.git/HEAD` (and the ref
/// file it points at) from the nearest enclosing git directory.
fn git_sha() -> Option<String> {
    let manifest = PathBuf::from(env::var("CARGO_MANIFEST_DIR").ok()?);
    let git_dir = manifest.ancestors().map(|a| a.join(".git")).find(|g| g.exists())?;
    // Rebuild when HEAD moves (new commit / branch switch).
    println!("cargo:rerun-if-changed={}", git_dir.join("HEAD").display());
    let head = fs::read_to_string(git_dir.join("HEAD")).ok()?;
    let head = head.trim();
    if let Some(refname) = head.strip_prefix("ref: ") {
        let ref_path = git_dir.join(refname.trim());
        println!("cargo:rerun-if-changed={}", ref_path.display());
        if let Ok(sha) = fs::read_to_string(&ref_path) {
            return trim_sha(&sha);
        }
        // Ref may be packed.
        packed_ref_sha(&git_dir, refname.trim())
    } else {
        // Detached HEAD: the file holds the sha itself.
        trim_sha(head)
    }
}

fn packed_ref_sha(git_dir: &Path, refname: &str) -> Option<String> {
    let packed = fs::read_to_string(git_dir.join("packed-refs")).ok()?;
    for line in packed.lines() {
        if line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        if let (Some(sha), Some(name)) = (parts.next(), parts.next()) {
            if name == refname {
                return trim_sha(sha);
            }
        }
    }
    None
}

fn trim_sha(raw: &str) -> Option<String> {
    let s = raw.trim();
    if s.len() >= 7 && s.bytes().all(|b| b.is_ascii_hexdigit()) {
        Some(s.to_string())
    } else {
        None
    }
}

fn rustc_version() -> Option<String> {
    let rustc = env::var("RUSTC").unwrap_or_else(|_| "rustc".to_string());
    let out = Command::new(rustc).arg("--version").output().ok()?;
    if !out.status.success() {
        return None;
    }
    let v = String::from_utf8(out.stdout).ok()?;
    let v = v.trim();
    if v.is_empty() {
        None
    } else {
        Some(v.to_string())
    }
}

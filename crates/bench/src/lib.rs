//! Shared machinery for the figure-regeneration binaries and benches.
//!
//! Every table and figure of the paper's evaluation has a binary in
//! `src/bin/` (see DESIGN.md §3 for the index). Binaries print
//! machine-readable CSV to stdout — `# `-prefixed comment lines carry
//! section headers and paper-vs-measured summaries.
//!
//! Scale is controlled by the `FAASRAIL_SCALE` environment variable:
//! `small` (default; ~2 K-function traces, seconds per figure) or `paper`
//! (full 49.7 K-function / 908 M-invocation scale; use release builds).

pub mod harness;

use faasrail_stats::ecdf::{Ecdf, WeightedEcdf};
use faasrail_trace::azure::AzureTraceConfig;
use faasrail_trace::huawei::HuaweiTraceConfig;
use faasrail_trace::Trace;
use faasrail_workloads::{CostModel, WorkloadPool};

/// Experiment scale for the figure binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Reduced traces: fast, CI-friendly, same distributional shapes.
    Small,
    /// Full paper-scale traces (49 728 functions / 908 M invocations).
    Paper,
}

impl Scale {
    /// Read the scale from `FAASRAIL_SCALE` (default: small).
    pub fn from_env() -> Scale {
        match std::env::var("FAASRAIL_SCALE").as_deref() {
            Ok("paper") => Scale::Paper,
            _ => Scale::Small,
        }
    }
}

/// The deterministic seed shared by all figures (override: `FAASRAIL_SEED`).
pub fn seed_from_env() -> u64 {
    std::env::var("FAASRAIL_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(42)
}

/// The Azure trace at the chosen scale.
pub fn azure_trace(scale: Scale, seed: u64) -> Trace {
    let cfg = match scale {
        Scale::Small => AzureTraceConfig::small(seed),
        Scale::Paper => AzureTraceConfig::paper_scale(seed),
    };
    faasrail_trace::azure::generate(&cfg)
}

/// The Huawei trace at the chosen scale.
pub fn huawei_trace(scale: Scale, seed: u64) -> Trace {
    let cfg = match scale {
        Scale::Small => HuaweiTraceConfig::small(seed),
        Scale::Paper => HuaweiTraceConfig::paper_scale(seed),
    };
    faasrail_trace::huawei::generate(&cfg)
}

/// The standard modelled pool (2291 Workloads) and vanilla pool.
pub fn pools() -> (WorkloadPool, WorkloadPool) {
    let model = CostModel::default_calibration();
    (WorkloadPool::build_modelled(&model), WorkloadPool::vanilla(&model))
}

/// Print an unweighted CDF as `label,x,F(x)` rows, downsampled to `points`
/// quantile points (figures don't need millions of rows).
pub fn print_cdf(label: &str, ecdf: &Ecdf, points: usize) {
    for i in 0..=points {
        let q = i as f64 / points as f64;
        let x = ecdf.inverse_interp(q);
        println!("{label},{x:.6},{q:.6}");
    }
}

/// Print a weighted CDF as `label,x,F(x)` rows over its support
/// (downsampled to at most `points` support values).
pub fn print_wcdf(label: &str, wecdf: &WeightedEcdf, points: usize) {
    let n = wecdf.len();
    let step = (n / points).max(1);
    for i in (0..n).step_by(step) {
        let x = wecdf.values()[i];
        println!("{label},{x:.6},{:.6}", wecdf.cumulative()[i]);
    }
    if !(n - 1).is_multiple_of(step) {
        let x = wecdf.values()[n - 1];
        println!("{label},{x:.6},1.000000");
    }
}

/// Print a time series as `label,index,value` rows.
pub fn print_series(label: &str, values: &[f64]) {
    for (i, v) in values.iter().enumerate() {
        println!("{label},{i},{v:.6}");
    }
}

/// Print a `# `-prefixed comment line (section header / summary).
pub fn comment(s: &str) {
    println!("# {s}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_default_is_small() {
        // Note: relies on the variable being unset in the test env.
        if std::env::var("FAASRAIL_SCALE").is_err() {
            assert_eq!(Scale::from_env(), Scale::Small);
        }
    }

    #[test]
    fn pools_have_expected_sizes() {
        let (pool, vanilla) = pools();
        assert!(pool.len() > 2_000);
        assert_eq!(vanilla.len(), 10);
    }
}

//! Ablation: Thumbnails vs Minute-Range time scaling (paper §3.2.1.2 and
//! the §3.3 "long idle times" discussion).
//!
//! Thumbnails preserves the diurnal shape but smooths single-minute peaks
//! and compresses idle gaps; Minute Range preserves minute-level burstiness
//! verbatim but sees only its window.

use faasrail_bench::*;
use faasrail_core::{generate_requests, shrink, ShrinkRayConfig, TimeScaling};
use faasrail_stats::timeseries::{fano_factor, normalize_peak, rebin_sum};

fn main() {
    let seed = seed_from_env();
    let trace = azure_trace(Scale::from_env(), seed);
    let (pool, _) = pools();
    let day = trace.aggregate_minutes();
    let day_shape = normalize_peak(&rebin_sum(&day, 120));

    comment("Ablation: time-scaling mode (2h experiment, 20 rps, Azure)");
    println!("mode,requests,per_minute_fano,shape_mae_vs_day");
    // Thumbnails.
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).expect("shrink");
    let reqs = generate_requests(&spec, seed);
    let shape = normalize_peak(&reqs.per_minute_counts());
    let mae: f64 = day_shape.iter().zip(&shape).map(|(a, b)| (a - b).abs()).sum::<f64>() / 120.0;
    println!("thumbnails,{},{:.3},{:.4}", reqs.len(), fano_factor(&reqs.per_minute_counts()), mae);

    // Minute-Range windows at different day offsets.
    for start in [0usize, 360, 720, 1080] {
        let mut cfg = ShrinkRayConfig::new(120, 20.0);
        cfg.time_scaling = TimeScaling::MinuteRange { start, experiment_minutes: 120 };
        let (spec, _) = shrink(&trace, &pool, &cfg).expect("shrink");
        let reqs = generate_requests(&spec, seed);
        // Shape error vs the *window itself* is ~0 by construction; report
        // the error vs the whole-day shape to expose what the window misses.
        let shape = normalize_peak(&reqs.per_minute_counts());
        let mae: f64 =
            day_shape.iter().zip(&shape).map(|(a, b)| (a - b).abs()).sum::<f64>() / 120.0;
        println!(
            "minute_range_{start},{},{:.3},{:.4}",
            reqs.len(),
            fano_factor(&reqs.per_minute_counts()),
            mae
        );
    }
    comment("expected shape: thumbnails minimizes whole-day shape error;");
    comment("minute-range windows keep raw minute burstiness (higher Fano)");
    comment("but drift from the day's trend depending on the window.");
}

//! Figure 7: memory CDFs — Azure applications vs the distinct Workloads
//! appearing in a FaaSRail Spec-mode request trace.

use faasrail_bench::*;
use faasrail_core::{shrink, ShrinkRayConfig};
use faasrail_stats::ecdf::Ecdf;
use faasrail_trace::summarize::app_memory_ecdf;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let trace = azure_trace(scale, seed);
    let (pool, _) = pools();

    let cfg = ShrinkRayConfig::new(120, 20.0);
    let (spec, _) = shrink(&trace, &pool, &cfg).expect("shrink");
    let mut ids: Vec<u32> = spec.entries.iter().map(|e| e.workload.0).collect();
    ids.sort_unstable();
    ids.dedup();
    let mems: Vec<f64> = ids.iter().map(|&i| pool.workloads()[i as usize].memory_mb).collect();

    comment("Figure 7: CDFs of memory usage (MiB)");
    comment(&format!(
        "azure apps = {}, distinct spec workloads = {} over {} requests",
        trace.apps.len(),
        mems.len(),
        spec.total_requests()
    ));
    println!("series,memory_mb,cdf");
    print_cdf("azure_apps", &app_memory_ecdf(&trace), 200);
    print_cdf("faasrail_workloads", &Ecdf::new(&mems), 200);

    comment("--- summary ---");
    let azure_med = app_memory_ecdf(&trace).quantile(0.5);
    let pool_med = Ecdf::new(&mems).quantile(0.5);
    comment(&format!(
        "median memory: azure apps {azure_med:.0} MiB, faasrail workloads {pool_med:.0} MiB \
         (paper: 'not that dissimilar ... clearly shifted to its left')"
    ));
}

//! Figure 12: balance among benchmark types — the share of produced
//! requests per initial FunctionBench benchmark, for (a) the Azure mapping
//! in Spec mode and (b) the Huawei mapping in Smirnov-Transform mode.

use faasrail_bench::*;
use faasrail_core::smirnov::{self, SmirnovConfig};
use faasrail_core::{generate_requests, shrink, ShrinkRayConfig};
use faasrail_workloads::WorkloadKind;
use std::collections::BTreeMap;

fn print_balance(label: &str, counts: &BTreeMap<WorkloadKind, u64>) {
    let total: u64 = counts.values().sum();
    for kind in WorkloadKind::ALL {
        let c = counts.get(&kind).copied().unwrap_or(0);
        println!("{label},{},{:.4}", kind.name(), c as f64 / total as f64);
    }
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let (pool, _) = pools();

    // (a) Azure, Spec mode, 2 h / 20 rps (~118 K requests at paper scale).
    let azure = azure_trace(scale, seed);
    let (spec, _) = shrink(&azure, &pool, &ShrinkRayConfig::new(120, 20.0)).expect("shrink");
    let reqs = generate_requests(&spec, seed);
    let azure_counts = reqs.counts_by_kind(&pool);

    comment(&format!(
        "Figure 12a: benchmark balance, Azure Spec mode ({} requests; paper: ~118K)",
        reqs.len()
    ));
    println!("panel,benchmark,relative_occurrence");
    print_balance("12a_azure_spec", &azure_counts);

    // (b) Huawei, Smirnov mode, 35 K invocations.
    let huawei = huawei_trace(scale, seed);
    let cfg = SmirnovConfig { num_invocations: 35_000, ..SmirnovConfig::paper_default(seed) };
    let (_, report) = smirnov::generate(&huawei, &pool, &cfg);

    comment("Figure 12b: benchmark balance, Huawei Smirnov mode (35000 requests)");
    print_balance("12b_huawei_smirnov", &report.counts_by_kind);

    comment("--- summary ---");
    let total: u64 = azure_counts.values().sum();
    let lr_tr = azure_counts.get(&WorkloadKind::LrTraining).copied().unwrap_or(0);
    let cnn = azure_counts.get(&WorkloadKind::CnnServing).copied().unwrap_or(0);
    comment(&format!(
        "12a: lr_training share {:.4}, cnn_serving share {:.4} (paper: both very low)",
        lr_tr as f64 / total as f64,
        cnn as f64 / total as f64
    ));
    let h_total: u64 = report.counts_by_kind.values().sum();
    let aes = report.counts_by_kind.get(&WorkloadKind::Pyaes).copied().unwrap_or(0);
    comment(&format!(
        "12b: pyaes share {:.3} (paper: ~0.48); absent benchmarks: {}",
        aes as f64 / h_total as f64,
        WorkloadKind::ALL
            .iter()
            .filter(|k| !report.counts_by_kind.contains_key(k))
            .map(|k| k.name())
            .collect::<Vec<_>>()
            .join("/")
    ));
}

//! Self-verifying reproduction: every quantitative shape claim from
//! EXPERIMENTS.md, checked programmatically. Exits non-zero on any failure,
//! so `cargo run -p faasrail-bench --bin check_repro` is a one-command
//! reproduction audit (use `FAASRAIL_SCALE=paper` for the full-scale run).

use faasrail_baselines::poisson_emulation::{self, PoissonEmulationConfig};
use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, popularity_changes, DurationResolution};
use faasrail_core::dayselect::{cv_analysis, fraction_below};
use faasrail_core::smirnov::{self, SmirnovConfig};
use faasrail_core::{generate_requests, shrink, ShrinkRayConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::timeseries::{normalize_peak, rebin_sum};
use faasrail_stats::{ks_distance, ks_distance_weighted};
use faasrail_trace::summarize::{functions_duration_ecdf, invocations_duration_wecdf, top_share};
use faasrail_workloads::WorkloadKind;

struct Auditor {
    failures: u32,
    checks: u32,
}

impl Auditor {
    fn check(&mut self, name: &str, value: f64, lo: f64, hi: f64) {
        self.checks += 1;
        let ok = (lo..=hi).contains(&value);
        if !ok {
            self.failures += 1;
        }
        println!("{} {name}: {value:.4} (expected [{lo}, {hi}])", if ok { "PASS" } else { "FAIL" });
    }
}

fn main() -> std::process::ExitCode {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let paper = scale == Scale::Paper;
    let mut a = Auditor { failures: 0, checks: 0 };

    println!("# reproduction audit at {scale:?} scale, seed {seed}");
    let azure = azure_trace(scale, seed);
    let huawei = huawei_trace(scale, seed);
    let (pool, vanilla) = pools();

    // --- Input fidelity (§"Inputs" of EXPERIMENTS.md) ---
    let fe = functions_duration_ecdf(&azure);
    a.check("azure sub-second function fraction (paper ~0.50)", fe.eval(1_000.0), 0.40, 0.68);
    let we = invocations_duration_wecdf(&azure);
    a.check("azure sub-second invocation fraction (paper ~0.80)", we.eval(1_000.0), 0.70, 0.92);
    a.check(
        "azure top-8% invocation share (paper ~0.99)",
        top_share(&azure, 0.08),
        if paper { 0.93 } else { 0.80 },
        1.0,
    );

    // --- Fig 3: day sampling safety ---
    let cvs = cv_analysis(&azure);
    a.check("fraction CV(duration)<1 (paper ~0.9)", fraction_below(&cvs, 1.0, true), 0.85, 1.0);
    a.check("fraction CV(invocations)<1 (paper ~0.9)", fraction_below(&cvs, 1.0, false), 0.85, 1.0);

    // --- Fig 4: aggregation ---
    let agg = aggregate(&azure, DurationResolution::Millisecond);
    a.check(
        "aggregation ratio functions->Functions (paper 50K->12.8K ~ 0.26)",
        agg.len() as f64 / azure.functions.len() as f64,
        0.15,
        0.80,
    );
    let changes = popularity_changes(&azure, &agg);
    let big = changes.iter().filter(|&&c| c > 0.01).count();
    a.check("popularity outliers >1% (paper: 3)", big as f64, 0.0, 10.0);

    // --- Fig 6: pool vs vanilla ---
    let ks_pool = ks_distance(&fe, &pool.duration_ecdf());
    let ks_vanilla = ks_distance(&fe, &vanilla.duration_ecdf());
    a.check("KS(azure, pool) (paper: close)", ks_pool, 0.0, 0.25);
    a.check("KS improvement pool vs vanilla (paper: large)", ks_vanilla / ks_pool, 2.0, 100.0);

    // --- Figs 8-10: Spec mode ---
    let (spec, _) = shrink(&azure, &pool, &ShrinkRayConfig::new(120, 20.0)).expect("shrink");
    a.check("spec peak/budget", spec.peak_per_minute() as f64 / 1_200.0, 0.90, 1.0);
    let reqs = generate_requests(&spec, seed);
    let day_shape = normalize_peak(&rebin_sum(&azure.aggregate_minutes(), 120));
    let spec_shape = normalize_peak(&reqs.per_minute_counts());
    let mae: f64 =
        day_shape.iter().zip(&spec_shape).map(|(x, y)| (x - y).abs()).sum::<f64>() / 120.0;
    a.check("Fig8 load-shape MAE (paper: 'closely follows')", mae, 0.0, 0.05);
    let spec_mapped = WeightedEcdf::new(
        spec.entries
            .iter()
            .map(|e| (pool.get(e.workload).expect("mapped").mean_ms, e.total_requests() as f64)),
    );
    a.check("Fig9 KS(azure, spec mapped)", ks_distance_weighted(&we, &spec_mapped), 0.0, 0.15);

    // --- Fig 1 (baselines must be visibly worse) ---
    let poisson = poisson_emulation::generate(&vanilla, &PoissonEmulationConfig::paper_fig1(seed));
    let poisson_w =
        WeightedEcdf::new(poisson.expected_durations(&vanilla).into_iter().map(|d| (d, 1.0)));
    let ks_base = ks_distance_weighted(&we, &poisson_w);
    a.check("Fig1 plain-Poisson KS (paper: far)", ks_base, 0.25, 1.0);

    // --- Fig 11: Smirnov ---
    let n = if paper { 120_408 } else { 40_000 };
    let cfg = SmirnovConfig { num_invocations: n, ..SmirnovConfig::paper_default(seed) };
    let (sreq, _) = smirnov::generate(&azure, &pool, &cfg);
    let sm = WeightedEcdf::new(sreq.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
    a.check("Fig11a KS(azure, smirnov)", ks_distance_weighted(&we, &sm), 0.0, 0.10);
    let hwe = invocations_duration_wecdf(&huawei);
    let (hreq, hrep) = smirnov::generate(&huawei, &pool, &cfg);
    let hm = WeightedEcdf::new(hreq.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));
    a.check("Fig11b KS(huawei, smirnov)", ks_distance_weighted(&hwe, &hm), 0.0, 0.15);

    // --- Fig 12: benchmark balance ---
    let counts = reqs.counts_by_kind(&pool);
    let total: u64 = counts.values().sum();
    let share = |k: WorkloadKind, c: &std::collections::BTreeMap<WorkloadKind, u64>| {
        c.get(&k).copied().unwrap_or(0) as f64 / total.max(1) as f64
    };
    a.check(
        "Fig12a lr_training share (paper: very low)",
        share(WorkloadKind::LrTraining, &counts),
        0.0,
        0.05,
    );
    a.check(
        "Fig12a cnn_serving share (paper: rare)",
        share(WorkloadKind::CnnServing, &counts),
        0.0,
        0.05,
    );
    let h_total: u64 = hrep.counts_by_kind.values().sum();
    let aes = hrep.counts_by_kind.get(&WorkloadKind::Pyaes).copied().unwrap_or(0) as f64
        / h_total.max(1) as f64;
    a.check("Fig12b pyaes share (paper ~0.48)", aes, 0.30, 0.75);

    println!("# audit complete: {}/{} checks passed", a.checks - a.failures, a.checks);
    if a.failures == 0 {
        std::process::ExitCode::SUCCESS
    } else {
        std::process::ExitCode::FAILURE
    }
}

//! Figure 4: CDF of the popularity changes caused by aggregating trace
//! functions on their average execution duration.

use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, popularity_changes, DurationResolution};
use faasrail_stats::ecdf::Ecdf;

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let changes = popularity_changes(&trace, &agg);

    comment("Figure 4: CDF of Functions' popularity change due to aggregation");
    println!("series,popularity_change,cdf");
    // Clamp zeros to a tiny positive value so log-x plotting works, as in
    // the paper's 1e-7..1 axis.
    let clamped: Vec<f64> = changes.iter().map(|&c| c.max(1e-9)).collect();
    print_cdf("azure", &Ecdf::new(&clamped), 300);

    comment("--- summary ---");
    comment(&format!(
        "functions after aggregation: {} from {} (paper: 12757 from ~50K)",
        agg.len(),
        trace.functions.len()
    ));
    let outliers = changes.iter().filter(|&&c| c > 0.01).count();
    comment(&format!(
        "functions whose popularity moved by more than 1%: {outliers} (paper: 3 outliers)"
    ));
}

//! Figure 8: relative number of invocations over time — Azure day 1,
//! FaaSRail-Spec (2 h, max 20 rps, Thumbnails + per-minute Poisson), and a
//! plain Poisson process at 20 rps.

use faasrail_baselines::poisson_emulation::{self, PoissonEmulationConfig};
use faasrail_bench::*;
use faasrail_core::{generate_requests, shrink, ShrinkRayConfig};
use faasrail_stats::timeseries::{normalize_peak, rebin_sum};

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let trace = azure_trace(scale, seed);
    let (pool, vanilla) = pools();

    let cfg = ShrinkRayConfig::new(120, 20.0);
    let (spec, report) = shrink(&trace, &pool, &cfg).expect("shrink");
    let faasrail_reqs = generate_requests(&spec, seed);
    let poisson = poisson_emulation::generate(&vanilla, &PoissonEmulationConfig::paper_fig1(seed));

    comment("Figure 8: relative #invocations (normalized to peak)");
    comment("azure series is per trace minute (1440); others per experiment minute (120)");
    println!("series,minute,relative_load");
    print_series("azure_day1", &normalize_peak(&trace.aggregate_minutes()));
    print_series("faasrail_spec", &normalize_peak(&faasrail_reqs.per_minute_counts()));
    print_series("plain_poisson", &normalize_peak(&poisson.per_minute_counts()));

    comment("--- summary ---");
    let azure_shape = normalize_peak(&rebin_sum(&trace.aggregate_minutes(), 120));
    let spec_shape = normalize_peak(&faasrail_reqs.per_minute_counts());
    let mae: f64 =
        azure_shape.iter().zip(&spec_shape).map(|(a, b)| (a - b).abs()).sum::<f64>() / 120.0;
    comment(&format!(
        "mean |relative-load error| faasrail vs thumbnailed azure = {mae:.4} \
         (paper: 'closely follows local minima and maxima')"
    ));
    comment(&format!(
        "requests issued: {} (scale factor {:.2e}, peak {}/min ≤ 1200)",
        faasrail_reqs.len(),
        report.scale.factor,
        spec.peak_per_minute()
    ));
}

//! Ablation: sub-minute inter-arrival models (paper §3.2.1.3 plus this
//! repo's Cox-process extension toward the Huawei trace's per-second
//! burstiness, paper §3.3).

use faasrail_bench::*;
use faasrail_core::{generate_requests, shrink, IatModel, ShrinkRayConfig};
use faasrail_stats::timeseries::fano_factor;

fn main() {
    let seed = seed_from_env();
    let trace = azure_trace(Scale::from_env(), seed);
    let (pool, _) = pools();
    let (base_spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(60, 20.0)).expect("shrink");

    comment("Ablation: sub-minute IAT model (1h, 20 rps, Azure)");
    println!("model,requests,per_second_fano,peak_second,per_minute_fano");
    for (name, iat) in [
        ("equidistant", IatModel::Equidistant),
        ("uniform", IatModel::UniformRandom),
        ("poisson", IatModel::Poisson),
        ("bursty_cv0.5", IatModel::Bursty { cv: 0.5 }),
        ("bursty_cv1.5", IatModel::Bursty { cv: 1.5 }),
        ("bursty_cv3.0", IatModel::Bursty { cv: 3.0 }),
    ] {
        let mut spec = base_spec.clone();
        spec.iat = iat;
        let reqs = generate_requests(&spec, seed);
        let secs = reqs.per_second_counts();
        println!(
            "{name},{},{:.3},{},{:.3}",
            reqs.len(),
            fano_factor(&secs),
            secs.iter().copied().max().unwrap_or(0),
            fano_factor(&reqs.per_minute_counts()),
        );
    }
    comment("expected shape: second-scale Fano rises from uniform/Poisson");
    comment("(~1) to bursty CV=3 (>>1), with minute-level trends intact.");
    comment("note: equidistant is NOT smooth in aggregate — thousands of");
    comment("once-per-minute Functions all fire at the same intra-minute");
    comment("offset (count=1 => second 30), synchronizing into spikes; one");
    comment("more reason the paper prefers the Poisson sub-minute model.");
}

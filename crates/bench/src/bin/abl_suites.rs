//! Ablation: enriching the pool with the auxiliary suite (paper §3.3:
//! "a larger volume of benchmarking suites would lead to even greater
//! variety of output distinct Workloads").
//!
//! Compares the FunctionBench-only pool against the extended pool on the
//! metrics the paper cares about: closeness to the trace's runtime
//! distribution (Fig. 6), mapping quality, and benchmark diversity.

use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, DurationResolution};
use faasrail_core::mapping::{map_functions, MappingConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::{ks_distance, ks_distance_weighted};
use faasrail_trace::summarize::{functions_duration_ecdf, invocations_duration_wecdf};
use faasrail_workloads::{CostModel, WorkloadPool};

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let model = CostModel::default_calibration();
    let base = WorkloadPool::build_modelled(&model);
    let extended = WorkloadPool::build_modelled_extended(&model);
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let fn_target = functions_duration_ecdf(&trace);
    let inv_target = invocations_duration_wecdf(&trace);

    comment("Ablation: FunctionBench-only pool vs extended (auxiliary-suite) pool");
    println!(
        "pool,workloads,benchmarks,ks_pool_vs_azure,ks_mapped,weighted_rel_error,fallback_fraction"
    );
    for (name, pool) in [("functionbench", &base), ("extended", &extended)] {
        let m = map_functions(&agg, pool, &MappingConfig::default());
        let mapped = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).expect("mapped").mean_ms,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        println!(
            "{name},{},{},{:.4},{:.4},{:.4},{:.4}",
            pool.len(),
            pool.counts_by_kind().len(),
            ks_distance(&fn_target, &pool.duration_ecdf()),
            ks_distance_weighted(&inv_target, &mapped),
            m.stats.weighted_rel_error,
            m.stats.fallbacks as f64 / m.stats.functions as f64,
        );
    }
    comment("expected shape: the extended pool adds ~840 workloads across 6");
    comment("further benchmarks; the *mapped* distribution (what experiments");
    comment("actually replay) stays equally faithful with a lower weighted");
    comment("error, while the pool's own marginal CDF drifts from Azure's —");
    comment("mapping selects from the pool, so density matters, not marginals.");
}

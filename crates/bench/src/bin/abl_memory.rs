//! Ablation: memory-aware mapping (this repo's implementation of the paper
//! §3.3 "memory usage" next step).
//!
//! Sweeps the memory weight and reports the duration-fidelity /
//! memory-fidelity trade-off against the Azure per-app memory distribution
//! (Fig. 7's axes).

use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, DurationResolution};
use faasrail_core::mapping::{map_functions, MappingConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::{ks_distance_weighted, wasserstein1};
use faasrail_trace::summarize::invocations_duration_wecdf;

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let (pool, _) = pools();
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let dur_target = invocations_duration_wecdf(&trace);
    // Invocation-weighted memory target from the aggregated Functions.
    let mem_target = WeightedEcdf::new(
        agg.functions
            .iter()
            .filter(|f| f.total_invocations() > 0)
            .map(|f| (f.memory_mb, f.total_invocations() as f64)),
    );

    comment("Ablation: memory-aware mapping weight sweep (Azure)");
    println!("memory_weight,ks_duration,w1_memory_mb,weighted_rel_error");
    for weight in [0.0, 0.1, 0.25, 0.5, 1.0, 2.0] {
        let cfg = MappingConfig { memory_weight: weight, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        let mapped_dur = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).expect("mapped").mean_ms,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        let mapped_mem = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).expect("mapped").memory_mb,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        println!(
            "{weight},{:.4},{:.1},{:.4}",
            ks_distance_weighted(&dur_target, &mapped_dur),
            wasserstein1(&mem_target, &mapped_mem),
            m.stats.weighted_rel_error
        );
    }
    comment("expected shape: W1(memory) falls as the weight grows while");
    comment("KS(duration) stays flat — memory improves within the threshold,");
    comment("never at the cost of runtime representativity.");
}

//! Ablation: workload-selection balance strategy (paper §3.1.3's selection
//! pass vs the nearest-only mapping of Ilúvatar-style tools).

use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, DurationResolution};
use faasrail_core::mapping::{map_functions, BalanceStrategy, MappingConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::ks_distance_weighted;
use faasrail_trace::summarize::invocations_duration_wecdf;
use faasrail_workloads::WorkloadKind;
use std::collections::BTreeMap;

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let (pool, _) = pools();
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let target = invocations_duration_wecdf(&trace);

    comment("Ablation: balance strategy (Azure mapping)");
    println!("strategy,ks_mapped,distinct_workloads,benchmark_entropy_bits,max_kind_share");
    for (name, strategy) in [
        ("by_invocations", BalanceStrategy::ByInvocations),
        ("by_function_count", BalanceStrategy::ByFunctionCount),
        ("nearest_only", BalanceStrategy::NearestOnly),
    ] {
        let cfg = MappingConfig { balance: strategy, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        let mapped = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).expect("mapped").mean_ms,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        // Invocation share per benchmark kind → Shannon entropy.
        let mut per_kind: BTreeMap<WorkloadKind, f64> = BTreeMap::new();
        let mut total = 0.0;
        for a in &m.assignments {
            let w = agg.functions[a.function_index as usize].total_invocations() as f64;
            *per_kind.entry(pool.get(a.workload).expect("mapped").kind()).or_insert(0.0) += w;
            total += w;
        }
        let entropy: f64 = per_kind
            .values()
            .map(|&v| {
                let p = v / total;
                if p > 0.0 {
                    -p * p.log2()
                } else {
                    0.0
                }
            })
            .sum();
        let max_share = per_kind.values().cloned().fold(0.0, f64::max) / total;
        let mut distinct: Vec<u32> = m.assignments.iter().map(|a| a.workload.0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        println!(
            "{name},{:.4},{},{:.3},{:.3}",
            ks_distance_weighted(&target, &mapped),
            distinct.len(),
            entropy,
            max_share
        );
    }
    comment("expected shape: balanced strategies raise benchmark entropy and");
    comment("distinct-workload counts at equal (or negligibly worse) KS.");
}

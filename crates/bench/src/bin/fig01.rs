//! Figure 1: why common load-generation practices are not representative.
//!
//! Regenerates all four panels against the Azure trace:
//!   (a) CDFs of *functions'* average execution durations,
//!   (b) CDFs of *invocations'* execution durations,
//!   (c) function popularity (cumulative fraction of invocations),
//!   (d) load over time (per-minute counts, normalized to peak),
//! for (i) the trace itself, (ii) plain-Poisson emulation over vanilla
//! FunctionBench, and (iii) random trace sampling.

use faasrail_baselines::poisson_emulation::{self, PoissonEmulationConfig};
use faasrail_baselines::random_sampling::{self, RandomSamplingConfig};
use faasrail_bench::*;
use faasrail_core::RequestTrace;
use faasrail_stats::ecdf::{Ecdf, WeightedEcdf};
use faasrail_stats::ks_distance_weighted;
use faasrail_stats::timeseries::normalize_peak;
use faasrail_trace::summarize;
use faasrail_workloads::WorkloadPool;

fn popularity_curve_requests(trace: &RequestTrace) -> Vec<(f64, f64)> {
    let mut counts: std::collections::HashMap<u32, u64> = std::collections::HashMap::new();
    for r in &trace.requests {
        *counts.entry(r.function_index).or_insert(0) += 1;
    }
    let mut totals: Vec<u64> = counts.into_values().collect();
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = totals.iter().sum();
    let n = totals.len() as f64;
    let mut acc = 0u64;
    totals
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            acc += t;
            ((i + 1) as f64 / n, acc as f64 / grand as f64)
        })
        .collect()
}

fn weighted_from_requests(reqs: &RequestTrace, pool: &WorkloadPool) -> WeightedEcdf {
    WeightedEcdf::new(reqs.expected_durations(pool).into_iter().map(|d| (d, 1.0)))
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let trace = azure_trace(scale, seed);
    let (_, vanilla) = pools();

    let poisson = poisson_emulation::generate(&vanilla, &PoissonEmulationConfig::paper_fig1(seed));
    let sampling =
        random_sampling::generate(&trace, &vanilla, &RandomSamplingConfig::paper_fig1(seed));

    comment("Figure 1a: CDF of functions' average execution durations (ms)");
    println!("series,duration_ms,cdf");
    print_cdf("azure", &summarize::functions_duration_ecdf(&trace), 200);
    print_cdf("poisson_fb", &vanilla.duration_ecdf(), 10);
    // Random sampling uses the sampled functions' *mapped* workloads.
    let sampled_workload_durs: Vec<f64> = {
        let mut ids: Vec<u32> = sampling.requests.iter().map(|r| r.workload.0).collect();
        ids.sort_unstable();
        ids.dedup();
        ids.iter().map(|&i| vanilla.workloads()[i as usize].mean_ms).collect()
    };
    print_cdf("random_sampling", &Ecdf::new(&sampled_workload_durs), 10);

    comment("Figure 1b: CDF of invocations' execution durations (ms)");
    println!("series,duration_ms,cdf");
    let azure_inv = summarize::invocations_duration_wecdf(&trace);
    print_wcdf("azure", &azure_inv, 200);
    let poisson_inv = weighted_from_requests(&poisson, &vanilla);
    print_wcdf("poisson_fb", &poisson_inv, 50);
    let sampling_inv = weighted_from_requests(&sampling, &vanilla);
    print_wcdf("random_sampling", &sampling_inv, 50);

    comment("Figure 1c: popularity (cumulative fraction of invocations)");
    println!("series,frac_functions,cum_frac_invocations");
    for (x, y) in summarize::popularity_curve(&trace).iter().step_by(16) {
        println!("azure,{x:.6},{y:.6}");
    }
    for (x, y) in popularity_curve_requests(&poisson) {
        println!("poisson_fb,{x:.6},{y:.6}");
    }
    for (x, y) in popularity_curve_requests(&sampling) {
        println!("random_sampling,{x:.6},{y:.6}");
    }

    comment("Figure 1d: load over time (per-minute, normalized to peak)");
    println!("series,minute,relative_load");
    print_series("azure", &normalize_peak(&trace.aggregate_minutes()));
    print_series("poisson_fb", &normalize_peak(&poisson.per_minute_counts()));
    print_series("random_sampling", &normalize_peak(&sampling.per_minute_counts()));

    comment("--- summary (paper's qualitative claims, measured) ---");
    comment(&format!(
        "KS(azure, poisson_fb) invocation durations = {:.3} (paper: 'shifted left', large)",
        ks_distance_weighted(&azure_inv, &poisson_inv)
    ));
    comment(&format!(
        "KS(azure, random_sampling) invocation durations = {:.3} (paper: 'far from target')",
        ks_distance_weighted(&azure_inv, &sampling_inv)
    ));
    let top_share = summarize::top_share(&trace, 0.08);
    comment(&format!("azure top-8% function share = {top_share:.3} (paper: ~0.99)"));
}

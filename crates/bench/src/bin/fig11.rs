//! Figure 11: Smirnov-Transform mode — CDFs of invocations' expected
//! execution durations against (a) the Azure trace and (b) the Huawei
//! private trace.

use faasrail_bench::*;
use faasrail_core::smirnov::{self, SmirnovConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::ks_distance_weighted;
use faasrail_trace::summarize::invocations_duration_wecdf;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let (pool, _) = pools();
    let num = match scale {
        Scale::Small => 40_000,
        Scale::Paper => 120_408, // the paper's request count
    };

    for (panel, trace, label) in
        [("11a", azure_trace(scale, seed), "azure"), ("11b", huawei_trace(scale, seed), "huawei")]
    {
        let cfg = SmirnovConfig { num_invocations: num, ..SmirnovConfig::paper_default(seed) };
        let (reqs, report) = smirnov::generate(&trace, &pool, &cfg);
        let target = invocations_duration_wecdf(&trace);
        let got = WeightedEcdf::new(reqs.expected_durations(&pool).into_iter().map(|d| (d, 1.0)));

        comment(&format!(
            "Figure {panel}: invocation duration CDFs, {label} ({} trace invocations) vs \
             faasrail smirnov ({} requests)",
            trace.total_invocations(),
            reqs.len()
        ));
        println!("series,duration_ms,cdf");
        print_wcdf(label, &target, 250);
        print_wcdf(&format!("faasrail_smirnov_{label}"), &got, 250);
        comment(&format!(
            "KS({label}, smirnov) = {:.4}; mapped within threshold: {:.1}%; mean rel err {:.3}",
            ks_distance_weighted(&target, &got),
            report.within_threshold_fraction * 100.0,
            report.mean_rel_error
        ));
    }
}

//! Figure 3: CDFs of per-function coefficients of variation of daily
//! execution time and daily invocation count across all trace days — the
//! justification for single-day sampling.

use faasrail_bench::*;
use faasrail_core::dayselect::{cv_analysis, fraction_below};
use faasrail_stats::ecdf::Ecdf;

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let cvs = cv_analysis(&trace);

    let dur: Vec<f64> = cvs.iter().map(|c| c.cv_duration).filter(|v| v.is_finite()).collect();
    let inv: Vec<f64> = cvs.iter().map(|c| c.cv_invocations).filter(|v| v.is_finite()).collect();

    comment("Figure 3: CDF of cross-day CVs (Azure trace, all days)");
    println!("series,cv,cdf");
    print_cdf("execution_time", &Ecdf::new(&dur), 200);
    print_cdf("num_invocations", &Ecdf::new(&inv), 200);

    comment("--- summary ---");
    comment(&format!(
        "fraction with CV(execution time) < 1: {:.3} (paper: ~0.9)",
        fraction_below(&cvs, 1.0, true)
    ));
    comment(&format!(
        "fraction with CV(num invocations) < 1: {:.3} (paper: ~0.9)",
        fraction_below(&cvs, 1.0, false)
    ));
}

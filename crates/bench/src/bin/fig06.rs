//! Figure 6: CDFs of distinct-workload execution runtimes for (i) the Azure
//! trace, (ii) the Huawei private trace, (iii) vanilla FunctionBench, and
//! (iv) FaaSRail's augmented Workload pool — the augmentation payoff (Q1).

use faasrail_bench::*;
use faasrail_stats::ks_distance;
use faasrail_trace::summarize::functions_duration_ecdf;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let azure = azure_trace(scale, seed);
    let huawei = huawei_trace(scale, seed);
    let (pool, vanilla) = pools();

    let azure_e = functions_duration_ecdf(&azure);
    let huawei_e = functions_duration_ecdf(&huawei);
    let pool_e = pool.duration_ecdf();
    let vanilla_e = vanilla.duration_ecdf();

    comment("Figure 6: CDFs of execution runtimes of distinct workloads (ms)");
    comment(&format!(
        "cardinalities: azure={} huawei={} functionbench={} pool={} (paper: 49728/104/10/2291)",
        azure_e.len(),
        huawei_e.len(),
        vanilla_e.len(),
        pool_e.len()
    ));
    println!("series,duration_ms,cdf");
    print_cdf("azure", &azure_e, 200);
    print_cdf("huawei", &huawei_e, 100);
    print_cdf("functionbench", &vanilla_e, 10);
    print_cdf("workload_pool", &pool_e, 200);

    comment("--- summary ---");
    comment(&format!(
        "KS(azure, pool) = {:.3} vs KS(azure, vanilla FunctionBench) = {:.3} \
         (paper: pool 'significantly smoother and approximates Azure's')",
        ks_distance(&azure_e, &pool_e),
        ks_distance(&azure_e, &vanilla_e)
    ));
}

//! Figure 10: cumulative fraction of total invocations vs the percentage of
//! most popular functions — Azure day 1 vs the FaaSRail-Spec trace.

use faasrail_bench::*;
use faasrail_core::{shrink, ShrinkRayConfig};
use faasrail_trace::summarize;

fn spec_popularity(spec: &faasrail_core::ExperimentSpec) -> Vec<(f64, f64)> {
    let mut totals: Vec<u64> = spec.entries.iter().map(|e| e.total_requests()).collect();
    totals.sort_unstable_by(|a, b| b.cmp(a));
    let grand: u64 = totals.iter().sum();
    let n = totals.len() as f64;
    let mut acc = 0u64;
    totals
        .iter()
        .enumerate()
        .map(|(i, &t)| {
            acc += t;
            ((i + 1) as f64 / n, acc as f64 / grand as f64)
        })
        .collect()
}

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let trace = azure_trace(scale, seed);
    let (pool, _) = pools();
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).expect("shrink");

    comment("Figure 10: cumulative fraction of invocations vs % most popular functions");
    comment(&format!(
        "azure invocations = {}, faasrail requests = {}",
        trace.total_invocations(),
        spec.total_requests()
    ));
    println!("series,frac_functions,cum_frac_invocations");
    let azure_curve = summarize::popularity_curve(&trace);
    let step = (azure_curve.len() / 400).max(1);
    for (x, y) in azure_curve.iter().step_by(step) {
        println!("azure,{x:.6},{y:.6}");
    }
    for (x, y) in spec_popularity(&spec) {
        println!("faasrail_spec,{x:.6},{y:.6}");
    }

    comment("--- summary ---");
    let share_at = |curve: &[(f64, f64)], frac: f64| {
        curve.iter().take_while(|&&(f, _)| f <= frac).last().map(|&(_, s)| s).unwrap_or(0.0)
    };
    let spec_curve = spec_popularity(&spec);
    comment(&format!(
        "top-10% share: azure {:.3}, faasrail {:.3} (curves shifted but same skew/slope/tail)",
        share_at(&azure_curve, 0.10),
        share_at(&spec_curve, 0.10)
    ));
}

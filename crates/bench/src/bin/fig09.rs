//! Figure 9: CDFs of invocation execution runtimes — the Azure trace vs the
//! FaaSRail-Spec downscaled load (2 h / 20 rps).

use faasrail_bench::*;
use faasrail_core::{shrink, ShrinkRayConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::ks_distance_weighted;
use faasrail_trace::summarize::invocations_duration_wecdf;

fn main() {
    let scale = Scale::from_env();
    let seed = seed_from_env();
    let trace = azure_trace(scale, seed);
    let (pool, _) = pools();

    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(120, 20.0)).expect("shrink");

    let azure = invocations_duration_wecdf(&trace);
    let spec_trace_durs = WeightedEcdf::new(
        spec.entries.iter().map(|e| (e.trace_duration_ms, e.total_requests() as f64)),
    );
    let spec_mapped_durs = WeightedEcdf::new(
        spec.entries
            .iter()
            .map(|e| (pool.get(e.workload).expect("mapped").mean_ms, e.total_requests() as f64)),
    );

    comment("Figure 9: CDFs of invocations' execution runtimes (ms)");
    comment(&format!(
        "azure invocations = {}, faasrail spec requests = {} (paper: 909011626 vs 117760)",
        trace.total_invocations(),
        spec.total_requests()
    ));
    println!("series,duration_ms,cdf");
    print_wcdf("azure", &azure, 250);
    print_wcdf("faasrail_spec", &spec_mapped_durs, 250);

    comment("--- summary ---");
    comment(&format!(
        "KS(azure, spec trace-durations) = {:.4}; KS(azure, spec mapped-workloads) = {:.4} \
         (paper: 'accurately models the distribution')",
        ks_distance_weighted(&azure, &spec_trace_durs),
        ks_distance_weighted(&azure, &spec_mapped_durs)
    ));
}

//! Ablation: open-loop vs closed-loop load generation (coordinated
//! omission).
//!
//! FaaSRail's generator is open-loop by design: the schedule never waits for
//! the backend, so overload shows up as queueing latency. A closed-loop
//! harness at the same offered load measures each request from the moment a
//! worker picks it up — silently hiding the queueing and under-reporting
//! tail latency. This binary quantifies the gap on a deliberately
//! under-provisioned backend.

use faasrail_bench::*;
use faasrail_core::{generate_requests, shrink, ShrinkRayConfig};
use faasrail_loadgen::{
    replay, Backend, InvocationRequest, InvocationResult, Pacing, ReplayConfig,
};
use std::time::Duration;

/// A backend that takes a fixed 3 ms per invocation — slower than the
/// offered per-worker rate, so a queue must build.
struct Slow;

impl Backend for Slow {
    fn invoke(&self, _req: &InvocationRequest) -> InvocationResult {
        std::thread::sleep(Duration::from_millis(3));
        InvocationResult::success(3.0, false)
    }
}

fn main() {
    let seed = seed_from_env();
    let trace = azure_trace(Scale::from_env(), seed);
    let (pool, _) = pools();
    // One minute at up to 20 rps, replayed 6x compressed: offered inter-
    // arrival ~8 ms against 3 ms service on 1 worker → transient queueing.
    let (spec, _) = shrink(&trace, &pool, &ShrinkRayConfig::new(1, 20.0)).expect("shrink");
    let reqs = generate_requests(&spec, seed);

    comment("Ablation: open-loop vs closed-loop measurement (same backend, same load)");
    println!("mode,completed,p50_ms,p99_ms,max_ms");
    for (name, pacing) in
        [("open_loop", Pacing::RealTime { compression: 6.0 }), ("closed_loop", Pacing::ClosedLoop)]
    {
        let m = replay(&reqs, &pool, &Slow, &ReplayConfig { pacing, workers: 1 });
        println!(
            "{name},{},{:.2},{:.2},{:.2}",
            m.completed,
            m.response_quantile_ms(0.50),
            m.response_quantile_ms(0.99),
            m.response.max() * 1_000.0,
        );
    }
    comment("expected shape: closed-loop p99 hugs the 3 ms service time while");
    comment("open-loop p99 exposes the queueing the backend actually caused —");
    comment("the coordinated-omission gap FaaSRail's open-loop design avoids.");
}

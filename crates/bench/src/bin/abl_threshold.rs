//! Ablation: the mapping error threshold (paper §3.1.3's one tunable).
//!
//! Sweeps the relative-error threshold and reports the trade-off: tighter
//! thresholds reduce per-Function duration error but force more
//! nearest-neighbour fallbacks and concentrate load on fewer Workloads.

use faasrail_bench::*;
use faasrail_core::aggregate::{aggregate, DurationResolution};
use faasrail_core::mapping::{map_functions, MappingConfig};
use faasrail_stats::ecdf::WeightedEcdf;
use faasrail_stats::ks_distance_weighted;
use faasrail_trace::summarize::invocations_duration_wecdf;

fn main() {
    let trace = azure_trace(Scale::from_env(), seed_from_env());
    let (pool, _) = pools();
    let agg = aggregate(&trace, DurationResolution::Millisecond);
    let target = invocations_duration_wecdf(&trace);

    comment("Ablation: mapping error threshold sweep (Azure trace)");
    println!("threshold,ks_mapped,weighted_rel_error,fallback_fraction,distinct_workloads");
    for threshold in [0.01, 0.02, 0.05, 0.10, 0.20, 0.35, 0.50] {
        let cfg = MappingConfig { error_threshold: threshold, ..Default::default() };
        let m = map_functions(&agg, &pool, &cfg);
        let mapped = WeightedEcdf::new(m.assignments.iter().map(|a| {
            (
                pool.get(a.workload).expect("mapped").mean_ms,
                agg.functions[a.function_index as usize].total_invocations() as f64,
            )
        }));
        let mut distinct: Vec<u32> = m.assignments.iter().map(|a| a.workload.0).collect();
        distinct.sort_unstable();
        distinct.dedup();
        println!(
            "{threshold},{:.4},{:.4},{:.4},{}",
            ks_distance_weighted(&target, &mapped),
            m.stats.weighted_rel_error,
            m.stats.fallbacks as f64 / m.stats.functions as f64,
            distinct.len()
        );
    }
    comment("expected shape: KS grows slowly with threshold; fallbacks and");
    comment("concentration grow sharply as the threshold tightens below ~5%.");
}

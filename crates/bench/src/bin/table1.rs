//! Table 1: the FunctionBench workloads adopted by FaaSRail, with their
//! descriptions — plus, beyond the paper, each workload's vanilla modelled
//! runtime and footprint and its augmented variant count in the pool.

use faasrail_bench::{comment, pools};
use faasrail_workloads::{CostModel, WorkloadInput, WorkloadKind};

fn main() {
    let model = CostModel::default_calibration();
    let (pool, _) = pools();
    let counts = pool.counts_by_kind();

    comment("Table 1: workloads adopted from the FunctionBench suite");
    println!("workload,description,profile,vanilla_ms,vanilla_mb,pool_variants");
    for kind in WorkloadKind::ALL {
        let input = WorkloadInput::vanilla(kind);
        println!(
            "{},{},{:?},{:.2},{:.1},{}",
            kind.name(),
            kind.description(),
            kind.profile(),
            model.predict_ms(&input),
            input.memory_mb(),
            counts.get(&kind).copied().unwrap_or(0),
        );
    }
    comment(&format!("pool cardinality: {} (paper: 2291)", pool.len()));
}

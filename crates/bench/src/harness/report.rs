//! The `BenchReport` schema — FaaSRail's perf-trajectory file format.
//!
//! Every benchmark artifact the repo commits (`BENCH_gateway.json`,
//! `BENCH_sim_day1.json`) is one of these, so the online tier and the
//! simulator share a single trajectory format and one `bench diff`
//! implementation covers both. Following the SeBS methodology, a report
//! is only credible if it carries (a) the exact load it offered, (b) tail
//! percentiles down to p999, and (c) enough environment metadata to know
//! which commit, compiler, and machine produced the numbers.
//!
//! The schema is versioned via the `schema` field (`faasrail-bench/v1`);
//! readers reject files whose tag they don't recognise rather than
//! mis-diffing them.

use faasrail_stats::LogHistogram;
use faasrail_telemetry::BuildInfo;
use serde::{Deserialize, Serialize};

/// Schema tag written into every report.
pub const SCHEMA: &str = "faasrail-bench/v1";

/// A benchmark result: one workload spec, a ladder of measured rates,
/// optionally a saturation search summary and/or a simulator section.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Schema version tag; always [`SCHEMA`] for files this code writes.
    pub schema: String,
    /// Human name of the benchmark (e.g. `gateway-loopback`, `sim-day1`).
    pub name: String,
    /// Which tier was measured: `"gateway"` (online, over TCP) or
    /// `"sim"` (virtual-time simulator).
    pub tier: String,
    /// Environment the numbers were produced on.
    pub env: BenchEnv,
    /// The offered-load specification.
    pub workload: BenchWorkload,
    /// Fixed-rate measurement runs, in execution order (for a saturation
    /// search this is every probe the search made).
    pub runs: Vec<RateRun>,
    /// Saturation search result, when `bench saturate` produced the file.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub saturation: Option<SaturationSummary>,
    /// Simulator throughput numbers, when `lab run` produced the file.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub sim: Option<SimStats>,
}

impl BenchReport {
    /// Start an empty report for the given tier with the current
    /// environment captured.
    pub fn new(name: &str, tier: &str, workload: BenchWorkload) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_string(),
            name: name.to_string(),
            tier: tier.to_string(),
            env: BenchEnv::capture(),
            workload,
            runs: Vec::new(),
            saturation: None,
            sim: None,
        }
    }

    /// Parse a report, rejecting unknown schema tags.
    pub fn from_json(json: &str) -> Result<BenchReport, String> {
        let report: BenchReport =
            serde_json::from_str(json).map_err(|e| format!("invalid BENCH json: {e}"))?;
        if report.schema != SCHEMA {
            return Err(format!(
                "unsupported BENCH schema {:?} (this binary reads {SCHEMA:?})",
                report.schema
            ));
        }
        Ok(report)
    }

    /// Serialize with a stable field order and trailing newline (the
    /// committed-baseline format).
    pub fn to_json(&self) -> String {
        let mut s = serde_json::to_string_pretty(self).expect("BenchReport serializes");
        s.push('\n');
        s
    }

    /// Render the report as a compact human-readable markdown summary.
    pub fn to_markdown(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!("# bench: {} ({})\n\n", self.name, self.tier));
        out.push_str(&format!(
            "- build: {} @ {} ({}{})\n- host: {} × {}\n",
            self.env.build.version,
            self.env.build.short_sha(),
            self.env.build.rustc,
            if self.env.build.debug { ", DEBUG" } else { "" },
            self.env.cores,
            self.env.cpu_model,
        ));
        if let Some(sat) = &self.saturation {
            out.push_str(&format!(
                "- max sustained: **{:.0} RPS** (p99 ≤ {:.1} ms, error rate ≤ {:.4}; {} probes)\n",
                sat.max_sustained_rps, sat.criteria.p99_ms, sat.criteria.max_error_rate, sat.probes,
            ));
        }
        if let Some(sim) = &self.sim {
            out.push_str(&format!(
                "- sim: {:.2} M events/s ({} events, {} arrivals, {} ms wall)\n",
                sim.events_per_sec / 1e6,
                sim.events,
                sim.arrivals,
                sim.wall_ms,
            ));
        }
        if !self.runs.is_empty() {
            out.push_str(
                "\n| target RPS | achieved | err rate | p50 ms | p95 ms | p99 ms | p999 ms | ok |\n",
            );
            out.push_str("|---:|---:|---:|---:|---:|---:|---:|:--|\n");
            for r in &self.runs {
                let s = &r.stages.response;
                out.push_str(&format!(
                    "| {:.0} | {:.0} | {:.4} | {:.2} | {:.2} | {:.2} | {:.2} | {} |\n",
                    r.target_rps,
                    r.achieved_rps,
                    r.error_rate,
                    s.p50_ms,
                    s.p95_ms,
                    s.p99_ms,
                    s.p999_ms,
                    if r.accepted { "✓" } else { "✗" },
                ));
            }
        }
        out
    }
}

/// Environment metadata: what produced the numbers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEnv {
    /// Build provenance (git sha, crate version, rustc, debug flag).
    pub build: BuildInfo,
    /// CPU model string from `/proc/cpuinfo`, or `"unknown"`.
    pub cpu_model: String,
    /// Logical cores available to the process.
    pub cores: u64,
    /// Operating system (`std::env::consts::OS`).
    pub os: String,
    /// Architecture (`std::env::consts::ARCH`).
    pub arch: String,
}

impl BenchEnv {
    /// Capture the current environment.
    pub fn capture() -> BenchEnv {
        BenchEnv {
            build: BuildInfo::current(),
            cpu_model: cpu_model(),
            cores: std::thread::available_parallelism().map(|n| n.get() as u64).unwrap_or(0),
            os: std::env::consts::OS.to_string(),
            arch: std::env::consts::ARCH.to_string(),
        }
    }
}

fn cpu_model() -> String {
    let Ok(info) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".to_string();
    };
    for line in info.lines() {
        // x86 calls it "model name"; some arm kernels only expose
        // "Hardware" or per-cpu "CPU part" — take the first match.
        if let Some(rest) = line.split_once(':').filter(|(k, _)| {
            let k = k.trim();
            k == "model name" || k == "Hardware" || k == "cpu model"
        }) {
            let model = rest.1.trim();
            if !model.is_empty() {
                return model.to_string();
            }
        }
    }
    "unknown".to_string()
}

/// The offered-load specification a report measured under.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchWorkload {
    /// Arrival process: `"uniform"` or `"poisson"` for synthetic rates;
    /// `"trace"` for replayed traces; `"grid"` for lab experiment grids.
    pub arrivals: String,
    /// Per-rung run duration, seconds (0 for sim sections).
    pub duration_s: f64,
    /// Replay worker threads (client side).
    pub workers: u64,
    /// Deterministic seed the load was generated from.
    pub seed: u64,
    /// Free-form description of the target (e.g. `127.0.0.1:7001/noop`,
    /// `in-process`, `sim azure-day1`).
    pub target: String,
}

/// One stage's latency distribution with full tail percentiles.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct LatencyQuantiles {
    pub count: u64,
    pub mean_ms: f64,
    pub p50_ms: f64,
    pub p95_ms: f64,
    pub p99_ms: f64,
    pub p999_ms: f64,
    pub max_ms: f64,
}

/// Accumulates one latency stage into a histogram plus exact mean/max.
#[derive(Debug, Clone)]
pub struct QuantileAcc {
    hist: LogHistogram,
    count: u64,
    sum_s: f64,
    max_s: f64,
}

impl Default for QuantileAcc {
    fn default() -> Self {
        QuantileAcc::new()
    }
}

impl QuantileAcc {
    pub fn new() -> QuantileAcc {
        QuantileAcc { hist: LogHistogram::latency_seconds(), count: 0, sum_s: 0.0, max_s: 0.0 }
    }

    pub fn record(&mut self, seconds: f64) {
        self.hist.record(seconds);
        self.count += 1;
        self.sum_s += seconds;
        self.max_s = self.max_s.max(seconds);
    }

    pub fn quantiles(&self) -> LatencyQuantiles {
        if self.count == 0 {
            return LatencyQuantiles::default();
        }
        LatencyQuantiles {
            count: self.count,
            mean_ms: self.sum_s / self.count as f64 * 1e3,
            p50_ms: self.hist.quantile(0.50) * 1e3,
            p95_ms: self.hist.quantile(0.95) * 1e3,
            p99_ms: self.hist.quantile(0.99) * 1e3,
            p999_ms: self.hist.quantile(0.999) * 1e3,
            max_ms: self.max_s * 1e3,
        }
    }
}

/// The five-stage client-side latency decomposition, each with tails.
/// Mirrors the telemetry report's decomposition (lateness / queue wait /
/// service / overhead / response) but adds p999, which a saturation
/// benchmark can't do without.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct StageLatencies {
    /// Pacer dispatch lateness (open-loop: booked, never hidden).
    pub lateness: LatencyQuantiles,
    /// Dispatch → worker pickup.
    pub queue_wait: LatencyQuantiles,
    /// Backend-reported pure service time (successful requests).
    pub service: LatencyQuantiles,
    /// Client/network overhead beyond service time (successful requests).
    pub overhead: LatencyQuantiles,
    /// End-to-end dispatch → completion.
    pub response: LatencyQuantiles,
}

/// One fixed-rate measurement rung.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RateRun {
    /// The rate the pacer offered, requests per second.
    pub target_rps: f64,
    /// Wall-clock duration of the rung, seconds.
    pub duration_s: f64,
    /// Requests dispatched.
    pub offered: u64,
    /// Requests that completed successfully.
    pub completed: u64,
    /// Requests that failed (all classes, including shed).
    pub errors: u64,
    /// Completion throughput: `completed / duration`.
    pub achieved_rps: f64,
    /// `errors / offered` (0 when nothing was offered).
    pub error_rate: f64,
    /// Whether this rung met the acceptance criteria it was run under
    /// (always true for plain fixed-rate runs with no criteria).
    pub accepted: bool,
    /// Per-stage latency distributions.
    pub stages: StageLatencies,
}

/// What "sustained" means: the criteria a rung must meet for the
/// saturation search to call it passing.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AcceptCriteria {
    /// p99 end-to-end response time must stay at or below this.
    pub p99_ms: f64,
    /// Error rate (`errors / offered`) must stay at or below this.
    pub max_error_rate: f64,
    /// p99 pacer lateness must stay at or below this — past it the
    /// load generator itself can't hold the rate, so the measurement
    /// says nothing about the server.
    pub max_lateness_p99_ms: f64,
}

impl Default for AcceptCriteria {
    fn default() -> Self {
        AcceptCriteria { p99_ms: 50.0, max_error_rate: 0.001, max_lateness_p99_ms: 100.0 }
    }
}

impl AcceptCriteria {
    /// Does a measured rung meet the criteria?
    pub fn accepts(&self, run: &RateRun) -> bool {
        run.stages.response.p99_ms <= self.p99_ms
            && run.error_rate <= self.max_error_rate
            && run.stages.lateness.p99_ms <= self.max_lateness_p99_ms
    }
}

/// Result of a saturation binary search.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SaturationSummary {
    /// Highest rate that met the criteria (0 if even the lowest probe
    /// failed).
    pub max_sustained_rps: f64,
    /// The criteria searched under.
    pub criteria: AcceptCriteria,
    /// Number of measurement probes the search made.
    pub probes: u64,
}

/// Simulator throughput numbers (the lab tier's half of the trajectory).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimStats {
    /// Experiment scale (`small` / `paper`).
    pub scale: String,
    /// Grid cells executed.
    pub cells: u64,
    /// Worker threads the grid ran on.
    pub parallel: u64,
    /// Total simulated arrivals.
    pub arrivals: u64,
    /// Total simulator events processed.
    pub events: u64,
    /// Wall-clock time, milliseconds.
    pub wall_ms: u64,
    /// Aggregate event throughput.
    pub events_per_sec: f64,
    /// Peak RSS (`VmHWM`), MiB; 0 when unavailable.
    pub peak_rss_mb: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_report() -> BenchReport {
        let workload = BenchWorkload {
            arrivals: "uniform".to_string(),
            duration_s: 2.0,
            workers: 4,
            seed: 42,
            target: "loopback/noop".to_string(),
        };
        let mut r = BenchReport::new("gateway-loopback", "gateway", workload);
        let mut acc = QuantileAcc::new();
        for i in 1..=1000 {
            acc.record(i as f64 * 1e-4);
        }
        r.runs.push(RateRun {
            target_rps: 500.0,
            duration_s: 2.0,
            offered: 1000,
            completed: 1000,
            errors: 0,
            achieved_rps: 500.0,
            error_rate: 0.0,
            accepted: true,
            stages: StageLatencies { response: acc.quantiles(), ..Default::default() },
        });
        r
    }

    #[test]
    fn json_round_trips_exactly() {
        let r = sample_report();
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }

    #[test]
    fn unknown_schema_is_rejected() {
        let mut r = sample_report();
        r.schema = "faasrail-bench/v999".to_string();
        let err = BenchReport::from_json(&r.to_json()).unwrap_err();
        assert!(err.contains("v999"), "{err}");
    }

    #[test]
    fn quantile_acc_orders_tails() {
        let mut acc = QuantileAcc::new();
        for i in 1..=10_000 {
            acc.record(i as f64 * 1e-5);
        }
        let q = acc.quantiles();
        assert_eq!(q.count, 10_000);
        assert!(q.p50_ms <= q.p95_ms);
        assert!(q.p95_ms <= q.p99_ms);
        assert!(q.p99_ms <= q.p999_ms);
        assert!(q.p999_ms <= q.max_ms * 1.10, "p999 {} max {}", q.p999_ms, q.max_ms);
        assert!((q.mean_ms - 50.0).abs() < 1.0, "mean {}", q.mean_ms);
    }

    #[test]
    fn env_capture_is_populated() {
        let env = BenchEnv::capture();
        assert!(!env.build.git_sha.is_empty());
        assert!(!env.os.is_empty());
        assert!(!env.arch.is_empty());
    }

    #[test]
    fn markdown_mentions_saturation_and_rungs() {
        let mut r = sample_report();
        r.saturation = Some(SaturationSummary {
            max_sustained_rps: 1234.0,
            criteria: AcceptCriteria::default(),
            probes: 7,
        });
        let md = r.to_markdown();
        assert!(md.contains("1234"), "{md}");
        assert!(md.contains("| 500 |"), "{md}");
    }

    #[test]
    fn criteria_accept_logic() {
        let c = AcceptCriteria { p99_ms: 10.0, max_error_rate: 0.01, max_lateness_p99_ms: 50.0 };
        let mut run = sample_report().runs[0].clone();
        run.stages.response.p99_ms = 9.0;
        run.stages.lateness.p99_ms = 0.0;
        run.error_rate = 0.0;
        assert!(c.accepts(&run));
        run.stages.response.p99_ms = 11.0;
        assert!(!c.accepts(&run));
        run.stages.response.p99_ms = 9.0;
        run.error_rate = 0.02;
        assert!(!c.accepts(&run));
        run.error_rate = 0.0;
        run.stages.lateness.p99_ms = 60.0;
        assert!(!c.accepts(&run), "an over-lagged pacer must not count as sustained");
    }
}

//! The online-tier benchmark harness and perf-trajectory format.
//!
//! Three pieces (DESIGN.md §8):
//!
//! * [`report`] — the versioned [`BenchReport`](report::BenchReport)
//!   JSON schema both tiers emit (`BENCH_gateway.json`,
//!   `BENCH_sim_day1.json`): workload spec, RPS ladder with per-stage
//!   p50/p95/p99/p999, saturation summary, environment metadata;
//! * [`driver`] — open-loop fixed-rate measurement rungs over the
//!   replayer, plus a deterministic bracket-and-bisect saturation
//!   search that is pure over an injected measure function;
//! * [`diff`] — direction-aware, noise-floored regression diffing
//!   between two reports, the `bench diff` CI gate.

pub mod diff;
pub mod driver;
pub mod report;

pub use diff::{diff_reports, BenchDiff, DiffRow};
pub use driver::{run_fixed_rate, saturation_search, FixedRateSpec, SearchConfig};
pub use report::{
    AcceptCriteria, BenchEnv, BenchReport, BenchWorkload, LatencyQuantiles, QuantileAcc, RateRun,
    SaturationSummary, SimStats, StageLatencies, SCHEMA,
};

/// Re-emit a lab-tier [`faasrail_lab::BenchRecord`] through the shared
/// trajectory schema, so `BENCH_sim_day1.json` and `BENCH_gateway.json`
/// diff with the same tool.
pub fn sim_report(record: &faasrail_lab::BenchRecord) -> BenchReport {
    let workload = BenchWorkload {
        arrivals: "grid".to_string(),
        duration_s: 0.0,
        workers: record.parallel as u64,
        seed: 0,
        target: format!("sim {}", record.scale),
    };
    let mut r = BenchReport::new(&record.name, "sim", workload);
    r.sim = Some(SimStats {
        scale: record.scale.clone(),
        cells: record.cells as u64,
        parallel: record.parallel as u64,
        arrivals: record.arrivals,
        events: record.events,
        wall_ms: record.wall_ms,
        events_per_sec: record.events_per_sec,
        peak_rss_mb: record.peak_rss_mb,
    });
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sim_record_maps_into_the_shared_schema() {
        let rec = faasrail_lab::BenchRecord {
            name: "sim-day1".to_string(),
            scale: "small".to_string(),
            cells: 3,
            parallel: 2,
            arrivals: 1000,
            events: 5000,
            wall_ms: 250,
            events_per_sec: 20_000.0,
            peak_rss_mb: 64.0,
        };
        let r = sim_report(&rec);
        assert_eq!(r.schema, SCHEMA);
        assert_eq!(r.tier, "sim");
        let sim = r.sim.as_ref().unwrap();
        assert_eq!(sim.events, 5000);
        assert_eq!(sim.events_per_sec, 20_000.0);
        assert!(r.runs.is_empty() && r.saturation.is_none());
        // And it survives the schema round trip like any other report.
        let back = BenchReport::from_json(&r.to_json()).unwrap();
        assert_eq!(r, back);
    }
}
